//! Quickstart: run one workload on the MCM-GPU model, baseline vs
//! Barre Chord, and print what changed.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use barre_chord::system::{run_app, summary_line, SystemConfig, TranslationMode};
use barre_chord::workloads::AppId;

fn main() {
    // The scaled Table II configuration: 4 chiplets, LASP mapping,
    // 16 PTWs behind PCIe.
    let cfg = SystemConfig::scaled();
    let app = AppId::Gups;
    println!(
        "running `{}` ({}) on a {}-chiplet MCM-GPU\n",
        app.name(),
        app.full_name(),
        cfg.topology.n_chiplets
    );

    let base = run_app(app, &cfg, 42).expect("baseline run failed");
    println!("{}", summary_line("baseline", &base));

    let barre =
        run_app(app, &cfg.clone().with_mode(TranslationMode::Barre), 42).expect("Barre run failed");
    println!("{}", summary_line("Barre", &barre));

    let fbarre = run_app(
        app,
        &cfg.clone()
            .with_mode(TranslationMode::FBarre(Default::default())),
        42,
    )
    .expect("F-Barre run failed");
    println!("{}", summary_line("F-Barre-2Merge", &fbarre));

    println!(
        "\nBarre   speedup: {:.3}x  (page table walks cut {:.1}%)",
        barre_chord::system::speedup(&base, &barre),
        (1.0 - barre.walks as f64 / base.walks.max(1) as f64) * 100.0
    );
    println!(
        "F-Barre speedup: {:.3}x  (ATS traffic cut {:.1}%)",
        barre_chord::system::speedup(&base, &fbarre),
        (1.0 - fbarre.ats_requests as f64 / base.ats_requests.max(1) as f64) * 100.0
    );
}
