//! Chiplet scaling on a stencil workload.
//!
//! Stencil kernels progress in lockstep across chiplets — the best case
//! for coalescing-group translation. This example sweeps the MCM size
//! and shows how F-Barre's benefit grows with translation contention
//! (the paper's Fig 20 effect).
//!
//! ```text
//! cargo run --release --example stencil_scaling
//! ```

use barre_chord::system::{run_app, speedup, SystemConfig, TranslationMode};
use barre_chord::workloads::AppId;

fn main() {
    println!("F-Barre on `jac2d` (5-point Jacobi) across MCM sizes\n");
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>12}",
        "chiplets", "base cycles", "F-Barre cycles", "speedup", "intra-MCM"
    );
    for n in [2usize, 4, 8] {
        let mut cfg = SystemConfig::scaled();
        cfg.topology = cfg.topology.with_chiplets(n);
        let base = run_app(AppId::Jac2d, &cfg, 7).expect("baseline run failed");
        let fb = run_app(
            AppId::Jac2d,
            &cfg.clone()
                .with_mode(TranslationMode::FBarre(Default::default())),
            7,
        )
        .expect("F-Barre run failed");
        println!(
            "{n:>8} {:>14} {:>14} {:>9.3}x {:>12}",
            base.total_cycles,
            fb.total_cycles,
            speedup(&base, &fb),
            fb.intra_mcm_translations
        );
    }
    println!("\n(larger MCMs put more pressure on PCIe and the PTW pool,");
    println!(" so calculation-based translation buys more — Fig 20's shape)");
}
