//! Using the Barre Chord mechanism as a library, without the simulator:
//! drive the driver allocator, PTE encodings and PEC logic directly on
//! the paper's Fig 7a example.
//!
//! ```text
//! cargo run --release --example coalescing_anatomy
//! ```

use barre_chord::core::driver::{BarreAllocator, MappingPlan};
use barre_chord::core::{CoalInfo, CoalMode, PecLogic};
use barre_chord::mem::virt_alloc::VpnRange;
use barre_chord::mem::{ChipletId, FrameAllocator, Vpn};

fn main() {
    // Four chiplets, fresh memories.
    let mut frames: Vec<FrameAllocator> = (0..4).map(|_| FrameAllocator::new(1 << 16)).collect();

    // Data 1 of Fig 7a: 12 pages, LASP interleaves 3 consecutive VPNs
    // per chiplet.
    let plan = MappingPlan::interleaved(
        VpnRange {
            start: Vpn(0x1),
            pages: 12,
        },
        3,
        &[ChipletId(0), ChipletId(1), ChipletId(2), ChipletId(3)],
    );
    let mut driver = BarreAllocator::new(CoalMode::Expanded, 2);
    let alloc = driver
        .allocate(&plan, &mut frames)
        .expect("frames available");

    println!("driver mapping for data 1 (12 pages, interlv_gran = 3):\n");
    println!("{:>6} {:>14} {:>22}", "VPN", "PFN", "coalescing info");
    for (vpn, pte) in &alloc.ptes {
        let info = CoalInfo::decode(pte.coal_bits(), CoalMode::Expanded);
        println!(
            "{:>6} {:>14} {:>22}",
            format!("{vpn}"),
            format!("{}", pte.pfn()),
            info.map_or("-".into(), |i| format!(
                "inter={} intra={} merged={}",
                i.inter_order(),
                i.intra_order(),
                i.merged_groups()
            ))
        );
    }
    println!(
        "\nstats: {} pages coalesced, {} groups ({} merged), {} fallback",
        alloc.stats.coalesced_pages,
        alloc.stats.groups,
        alloc.stats.merged_groups,
        alloc.stats.fallback_pages
    );

    // Now the PEC logic: one translated PTE calculates its group mates.
    let logic = PecLogic::new(CoalMode::Expanded);
    let (vpn, pte) = alloc.ptes[3]; // VPN 0x4
    let info = CoalInfo::decode(pte.coal_bits(), CoalMode::Expanded).expect("coalesced");
    println!("\nfrom one walk of {vpn} -> {}:", pte.pfn());
    for m in logic.members(vpn, &info, &alloc.pec) {
        let calc = logic
            .calc_pfn(vpn, pte.pfn(), &info, &alloc.pec, m.vpn)
            .expect("member calculable");
        let actual = alloc
            .ptes
            .iter()
            .find(|(v, _)| *v == m.vpn)
            .map(|(_, p)| p.pfn())
            .expect("mapped");
        assert_eq!(calc, actual, "calculation must agree with the page table");
        println!("  {} -> {} (calculated, no page table walk)", m.vpn, calc);
    }
    println!("\nevery group member translated from a single walk.");
}
