//! §VI in action: on-demand paging with coalescing-group-granular fetch.
//!
//! The paper's discussion argues Barre integrates with on-demand paging
//! by fetching pages *in units of coalescing groups* — one far fault
//! maps the page on every sharer chiplet at the same local frame. This
//! example compares fault counts and run time for premapped, single-page
//! demand, and group-granular demand paging.
//!
//! ```text
//! cargo run --release --example demand_paging
//! ```

use barre_chord::system::{run_app, speedup, DemandPagingConfig, SystemConfig, TranslationMode};
use barre_chord::workloads::AppId;

fn main() {
    let app = AppId::Jac2d;
    let fb = TranslationMode::FBarre(Default::default());
    let premap = SystemConfig::scaled().with_mode(fb);
    let mut single = premap.clone();
    single.demand_paging = Some(DemandPagingConfig {
        fault_latency: 20_000,
        group_fetch: false,
    });
    let mut grouped = premap.clone();
    grouped.demand_paging = Some(DemandPagingConfig {
        fault_latency: 20_000,
        group_fetch: true,
    });

    println!(
        "on-demand paging on `{}` (F-Barre, 20 us faults)\n",
        app.name()
    );
    let base = run_app(app, &premap, 3).expect("premapped run failed");
    let s = run_app(app, &single, 3).expect("single-page demand run failed");
    let g = run_app(app, &grouped, 3).expect("group demand run failed");
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>10}",
        "mode", "faults", "pages mapped", "cycles", "vs premap"
    );
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>9.3}x",
        "premapped", 0, "-", base.total_cycles, 1.0
    );
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>9.3}x",
        "demand (1 page)",
        s.page_faults,
        s.demand_pages_mapped,
        s.total_cycles,
        speedup(&base, &s)
    );
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>9.3}x",
        "demand (group)",
        g.page_faults,
        g.demand_pages_mapped,
        g.total_cycles,
        speedup(&base, &g)
    );
    println!(
        "\ngroup fetch mapped {:.2} pages per fault — one fault covers the",
        g.demand_pages_mapped as f64 / g.page_faults.max(1) as f64
    );
    println!("whole coalescing group, as §VI describes.");
}
