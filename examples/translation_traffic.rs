//! Where do translations get served? A per-mode traffic anatomy.
//!
//! Runs a TLB-heavy gather workload under every translation architecture
//! and prints where each mode resolves its L2 TLB misses: page table
//! walks, IOMMU-side PEC calculation, or intra-MCM (LCF/RCF) paths.
//!
//! ```text
//! cargo run --release --example translation_traffic
//! ```

use barre_chord::system::{run_app, SystemConfig, TranslationMode};
use barre_chord::workloads::AppId;

fn main() {
    let cfg = SystemConfig::scaled();
    let app = AppId::Spmv;
    println!("translation anatomy for `{}`:\n", app.name());
    println!(
        "{:<18} {:>10} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "mode", "cycles", "ATS", "walks", "IOMMU-calc", "intra-MCM", "mesh KB"
    );
    let modes = [
        TranslationMode::Baseline,
        TranslationMode::Valkyrie,
        TranslationMode::Least,
        TranslationMode::Barre,
        TranslationMode::FBarre(Default::default()),
    ];
    for mode in modes {
        let m = run_app(app, &cfg.clone().with_mode(mode), 11).expect("run failed");
        println!(
            "{:<18} {:>10} {:>8} {:>10} {:>10} {:>10} {:>10}",
            mode.label(),
            m.total_cycles,
            m.ats_requests,
            m.walks,
            m.coalesced_translations,
            m.intra_mcm_translations,
            m.mesh_bytes / 1024,
        );
    }
    println!("\nreading the table:");
    println!("- Barre turns walks into IOMMU-calc (same ATS count, fewer walks)");
    println!("- F-Barre turns ATS itself into intra-MCM translations");
}
