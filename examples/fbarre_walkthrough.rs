//! The paper's Fig 12 walkthrough, executed on the real F-Barre
//! primitives: GPU0 translates 0xA1; GPU1 later needs 0xA2 and resolves
//! it *inside the MCM* — RCF prediction, peer-side LCF + TLB probe, PEC
//! calculation — without touching the IOMMU.
//!
//! ```text
//! cargo run --release --example fbarre_walkthrough
//! ```

use barre_chord::core::driver::{BarreAllocator, MappingPlan};
use barre_chord::core::fbarre::{FilterBank, FilterCmd, FilterUpdate};
use barre_chord::core::{CoalInfo, CoalMode, PecLogic};
use barre_chord::mem::virt_alloc::VpnRange;
use barre_chord::mem::{ChipletId, FrameAllocator, Vpn};
use barre_chord::tlb::{Tlb, TlbKey};

fn main() {
    // A data object whose pages 0xA1 (GPU0) and 0xA2 (GPU1) form one
    // coalescing group, as in Fig 12.
    let mut frames: Vec<FrameAllocator> = (0..2).map(|_| FrameAllocator::new(256)).collect();
    let plan = MappingPlan::interleaved(
        VpnRange {
            start: Vpn(0xA1),
            pages: 2,
        },
        1,
        &[ChipletId(0), ChipletId(1)],
    );
    let mut driver = BarreAllocator::new(CoalMode::Base, 1);
    let alloc = driver.allocate(&plan, &mut frames).unwrap();
    let logic = PecLogic::new(CoalMode::Base);

    let mut gpu0_tlb: Tlb<barre_chord::mem::Pte> = Tlb::new(64, 64);
    let mut gpu0 = FilterBank::new(ChipletId(0), 2, 256, 42);
    let mut gpu1 = FilterBank::new(ChipletId(1), 2, 256, 42);

    // [steps 0-1] GPU0 receives the ATS response for 0xA1: TLB fill +
    // LCF update.
    let (vpn_a1, pte_a1) = alloc.ptes[0];
    gpu0_tlb.insert(
        TlbKey {
            asid: 0,
            vpn: vpn_a1,
        },
        pte_a1,
    );
    gpu0.lcf_insert(0, vpn_a1);
    println!(
        "step 0-1: GPU0 fills TLB[{vpn_a1}] = {} and updates its LCF",
        pte_a1.pfn()
    );

    // [step 2] GPU0 advertises the exact VPN and every coalescing VPN in
    // GPU1's RCF0.
    let info = CoalInfo::decode(pte_a1.coal_bits(), CoalMode::Base).unwrap();
    for vpn in logic.advertised_vpns(vpn_a1, &info, &alloc.pec) {
        gpu1.apply_update(FilterUpdate {
            cmd: FilterCmd::Add,
            sender: ChipletId(0),
            asid: 0,
            vpn,
        });
        println!("step 2:   GPU0 -> GPU1 filter update: add {vpn} to RCF0");
    }

    // [step 3] GPU1 misses 0xA2 in its TLB and LCF but hits RCF0.
    let vpn_a2 = Vpn(0xA2);
    assert!(!gpu1.lcf_contains(0, vpn_a2));
    let predicted = gpu1.rcf_hit(0, vpn_a2).expect("RCF0 must hit");
    println!("step 3:   GPU1 misses {vpn_a2} locally; RCF predicts sharer {predicted}");

    // [steps 4-5] GPU0 receives the probe, computes the coalescing VPNs
    // of 0xA2, finds 0xA1 in its LCF, and probes its TLB.
    let candidates = logic.coalescing_candidates(&alloc.pec, vpn_a2, 1);
    println!("step 4:   GPU0 computes coalescing VPNs of {vpn_a2}: {candidates:?}");
    let provider = candidates
        .into_iter()
        .find(|&v| gpu0.lcf_contains(0, v))
        .expect("LCF must hit 0xA1");
    let pte = *gpu0_tlb
        .probe(TlbKey {
            asid: 0,
            vpn: provider,
        })
        .expect("provider resident");
    println!(
        "step 5:   LCF hits {provider}; TLB probe returns {}",
        pte.pfn()
    );

    // [steps 6-8] GPU0 calculates 0xA2's frame and replies; GPU1 fills.
    let info = CoalInfo::decode(pte.coal_bits(), CoalMode::Base).unwrap();
    let calc = logic
        .calc_pfn(provider, pte.pfn(), &info, &alloc.pec, vpn_a2)
        .expect("same group");
    let actual = alloc.ptes[1].1.pfn();
    assert_eq!(calc, actual, "calculated frame must match the page table");
    println!("step 6-8: GPU0 calculates {vpn_a2} -> {calc}; GPU1 fills its TLB.");
    println!("\nremote hit served inside the MCM — no PCIe, no page walk.");
}
