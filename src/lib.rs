//! # Barre Chord
//!
//! A from-scratch Rust reproduction of *Barre Chord: Efficient Virtual
//! Memory Translation for Multi-Chip-Module GPUs* (ISCA 2024), together
//! with every substrate the paper depends on: a deterministic MCM-GPU
//! translation-path simulator, an IOMMU model, page mapping policies,
//! synthetic versions of the 19 evaluated workloads, and the state-of-the-art
//! baselines (Valkyrie, Least, MGvm, ACUD, super pages).
//!
//! This facade crate re-exports the public API of every workspace crate so
//! downstream users can depend on a single package:
//!
//! ```
//! use barre_chord::system::{run_app, smoke_config, TranslationMode};
//! use barre_chord::workloads::AppId;
//!
//! let cfg = smoke_config().with_mode(TranslationMode::FBarre(Default::default()));
//! let metrics = run_app(AppId::Gups, &cfg, 42).expect("simulation failed");
//! assert!(metrics.total_cycles > 0);
//! ```
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub use barre_core as core;
pub use barre_filters as filters;
pub use barre_gpu as gpu;
pub use barre_iommu as iommu;
pub use barre_mapping as mapping;
pub use barre_mem as mem;
pub use barre_sim as sim;
pub use barre_system as system;
pub use barre_tlb as tlb;
pub use barre_workloads as workloads;
