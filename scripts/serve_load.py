#!/usr/bin/env python3
"""Concurrent load driver for the `barre serve` daemon.

Stdlib-only. Fires a mixed stream of JSONL simulation requests (a few
distinct valid configs, duplicates, and ~10% deliberately invalid
requests) at a running daemon from many client threads, then checks the
hardening contract from the outside:

  * every request receives exactly one JSON response line;
  * all `ok` responses for one config are byte-identical, whether they
    were served cold or from the verified result cache;
  * shed responses carry a positive `retry_after_ms` hint, and a client
    that honors the hint (sleeps, resends) eventually gets through —
    load shedding degrades latency, never correctness;
  * invalid requests come back as structured 400s, not dropped sockets;
  * `GET /healthz` on the HTTP shim stays green under load.

With `--save FILE` the canonical per-config `ok` line is written out;
with `--check FILE` responses are additionally compared against a
previously saved file — run once before a daemon restart and once after
to prove the warm-loaded cache serves byte-identical results.

Exit status: 0 on success, 1 on any violated assertion.
"""

import argparse
import json
import socket
import sys
import threading
import time

# A shed request is retried after its hint this many times before the
# client gives up and reports the daemon as wedged.
MAX_SHED_RETRIES = 50

CONFIGS = [
    '{"app":"gups","smoke":true,"seed":0}',
    '{"app":"gemv","smoke":true,"seed":0}',
    '{"app":"gups","smoke":true,"seed":1}',
    '{"app":"gemv","smoke":true,"seed":1}',
]
INVALID = [
    '{"app":"nosuch"}',
    '{"app":"gups","chiplets":0}',
    'not json at all',
]


def parse_addr(text):
    host, _, port = text.rpartition(":")
    return host, int(port)


def http_get(addr, path, timeout=10.0):
    """Raw HTTP/1.1 GET against the daemon's shim; returns (code, body)."""
    with socket.create_connection(parse_addr(addr), timeout=timeout) as s:
        s.sendall(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
        doc = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            doc += chunk
    head, _, body = doc.partition(b"\r\n\r\n")
    code = int(head.split(b" ", 2)[1])
    return code, body.decode()


class Client(threading.Thread):
    """One persistent connection sending a deterministic request mix."""

    def __init__(self, addr, index, count, timeout):
        super().__init__(name=f"client-{index}")
        self.addr, self.index, self.count, self.timeout = addr, index, count, timeout
        self.ok = {}  # config index -> list of response lines
        self.counts = {"ok": 0, "shed": 0, "error": 0, "other": 0}
        self.shed_recovered = 0  # requests shed at least once that got through
        self.failures = []

    def run(self):
        try:
            self.drive()
        except Exception as e:  # noqa: BLE001 - report, don't crash the harness
            self.failures.append(f"{self.name}: {type(e).__name__}: {e}")

    def drive(self):
        with socket.create_connection(parse_addr(self.addr), timeout=self.timeout) as s:
            reader = s.makefile("r", encoding="utf-8", newline="\n")
            for i in range(self.count):
                pick = (self.index + i) % 10
                if pick == 9:
                    line = INVALID[i % len(INVALID)]
                else:
                    line = CONFIGS[pick % len(CONFIGS)]
                sheds = 0
                while True:
                    s.sendall(line.encode() + b"\n")
                    resp = reader.readline()
                    if not resp.endswith("\n"):
                        self.failures.append(f"{self.name}: truncated response {resp!r}")
                        return
                    resp = resp.rstrip("\n")
                    try:
                        doc = json.loads(resp)
                    except json.JSONDecodeError:
                        self.failures.append(f"{self.name}: non-JSON response {resp!r}")
                        return
                    status = doc.get("status")
                    if status == "shed":
                        # Honor the hint: sleep what the daemon asked for
                        # and resend the same request. The soak asserts a
                        # polite client is never starved out.
                        self.counts["shed"] += 1
                        hint = doc.get("retry_after_ms", 0)
                        if hint < 1:
                            self.failures.append(f"{self.name}: shed without hint: {resp}")
                            hint = 50
                        sheds += 1
                        if sheds > MAX_SHED_RETRIES:
                            self.failures.append(
                                f"{self.name}: still shed after {MAX_SHED_RETRIES} "
                                f"hinted retries: {resp}"
                            )
                            break
                        time.sleep(hint / 1000.0)
                        continue
                    if sheds:
                        self.shed_recovered += 1
                    if status == "ok":
                        self.counts["ok"] += 1
                        if pick != 9:
                            self.ok.setdefault(pick % len(CONFIGS), []).append(resp)
                    elif status == "error":
                        self.counts["error"] += 1
                        if pick != 9:
                            self.failures.append(f"{self.name}: valid request rejected: {resp}")
                        elif doc.get("code") != 400:
                            self.failures.append(f"{self.name}: invalid not a 400: {resp}")
                    else:
                        self.counts["other"] += 1
                        self.failures.append(f"{self.name}: unexpected status: {resp}")
                    break


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--addr", default="127.0.0.1:7341", help="daemon host:port")
    ap.add_argument("--requests", type=int, default=200, help="total request count")
    ap.add_argument("--threads", type=int, default=16, help="concurrent client connections")
    ap.add_argument("--timeout", type=float, default=300.0, help="per-response socket timeout (s)")
    ap.add_argument("--save", help="write the canonical per-config ok lines to FILE")
    ap.add_argument("--check", help="compare ok lines against a previously saved FILE")
    args = ap.parse_args()

    code, body = http_get(args.addr, "/healthz")
    if code != 200:
        print(f"FAIL: /healthz returned {code}: {body}", file=sys.stderr)
        return 1

    per_thread = max(1, args.requests // args.threads)
    clients = [Client(args.addr, i, per_thread, args.timeout) for i in range(args.threads)]
    for c in clients:
        c.start()
    for c in clients:
        c.join()

    failures = [f for c in clients for f in c.failures]
    totals = {k: sum(c.counts[k] for c in clients) for k in clients[0].counts}
    recovered = sum(c.shed_recovered for c in clients)
    sent = per_thread * args.threads
    # Shed responses are not terminal — the client retried those — so the
    # terminal outcomes must cover every distinct request.
    answered = totals["ok"] + totals["error"] + totals["other"]
    if answered != sent:
        failures.append(f"sent {sent} requests but only {answered} were answered")
    if totals["shed"] > 0 and recovered == 0:
        failures.append(
            f"{totals['shed']} shed response(s) but no shed request ever got through"
        )

    # Byte-identity: cold responses and cache hits must be indistinguishable.
    canonical = {}
    for c in clients:
        for cfg, lines in c.ok.items():
            for line in lines:
                expect = canonical.setdefault(cfg, line)
                if line != expect:
                    failures.append(
                        f"config {cfg}: responses diverged:\n  {expect}\n  {line}"
                    )
    if not canonical:
        failures.append("no ok responses at all — daemon never ran a simulation?")

    code, _ = http_get(args.addr, "/healthz")
    if code != 200:
        failures.append(f"/healthz degraded under load: {code}")
    code, stats = http_get(args.addr, "/stats")
    if code != 200:
        failures.append(f"/stats returned {code}")
        stats = "{}"

    if args.check:
        with open(args.check, encoding="utf-8") as f:
            saved = {int(k): v for k, v in json.load(f).items()}
        for cfg, line in canonical.items():
            if cfg in saved and saved[cfg] != line:
                failures.append(
                    f"config {cfg}: response differs from saved baseline:\n"
                    f"  saved: {saved[cfg]}\n  now:   {line}"
                )
    if args.save:
        with open(args.save, "w", encoding="utf-8") as f:
            json.dump(canonical, f, indent=1)

    print(
        f"sent={sent} ok={totals['ok']} shed={totals['shed']} "
        f"shed_recovered={recovered} invalid={totals['error']}"
    )
    print(f"stats: {stats}")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
