#!/usr/bin/env python3
"""Validate a Prometheus text-format (0.0.4) exposition.

Stdlib only — CI scrapes a live daemon's /metrics mid-soak and pipes the
body through this script. It checks what a real scraper would choke on:

  * every sample line parses: name, optional {labels}, numeric value
  * every sample belongs to a family announced by both # HELP and # TYPE
  * TYPE values are legal (counter|gauge|histogram|summary|untyped)
  * counter samples are non-negative
  * histogram families carry _bucket/_sum/_count, the bucket counts are
    cumulative over increasing le, the +Inf bucket exists and equals
    _count
  * the exposition ends with a newline

Usage: check_metrics.py [file]   (reads stdin when no file is given)
Exit:  0 valid, 1 violations (listed on stderr), 2 usage.
"""

import re
import sys

NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
SAMPLE_RE = re.compile(rf"^({NAME})(?:\{{(.*)\}})?\s+(-?(?:[0-9.eE+-]+)|NaN|[+-]?Inf)$")
LABEL_RE = re.compile(rf'^({NAME})="((?:[^"\\]|\\.)*)"$')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def split_labels(s):
    """Split a label body on commas that sit outside quoted values."""
    out, cur, in_quotes, escaped = [], "", False, False
    for ch in s:
        if escaped:
            cur += ch
            escaped = False
            continue
        if ch == "\\":
            cur += ch
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
        if ch == "," and not in_quotes:
            out.append(cur)
            cur = ""
        else:
            cur += ch
    if cur:
        out.append(cur)
    return out


def family_of(name, families):
    """Map a histogram sample name back to its declared family."""
    for suffix in HIST_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return name


def validate(text):
    errors = []
    families = {}  # name -> {"help": bool, "type": str | None}
    samples = []  # (name, labels, value, lineno)

    if text and not text.endswith("\n"):
        errors.append("exposition does not end with a newline")

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                errors.append(f"line {lineno}: HELP without text: {line!r}")
                continue
            fam = families.setdefault(parts[2], {"help": False, "type": None})
            fam["help"] = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in TYPES:
                errors.append(f"line {lineno}: bad TYPE line: {line!r}")
                continue
            fam = families.setdefault(parts[2], {"help": False, "type": None})
            fam["type"] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name, label_body, value = m.groups()
        labels = {}
        for item in split_labels(label_body) if label_body else []:
            lm = LABEL_RE.match(item)
            if not lm:
                errors.append(f"line {lineno}: bad label {item!r} in: {line!r}")
            else:
                labels[lm.group(1)] = lm.group(2)
        try:
            num = float(value)
        except ValueError:
            errors.append(f"line {lineno}: bad value {value!r}")
            continue
        samples.append((name, labels, num, lineno))

    for name, _labels, num, lineno in samples:
        fam = family_of(name, families)
        decl = families.get(fam)
        if decl is None or decl["type"] is None or not decl["help"]:
            errors.append(
                f"line {lineno}: sample {name} has no # HELP + # TYPE for family {fam}"
            )
        elif decl["type"] == "counter" and num < 0:
            errors.append(f"line {lineno}: counter {name} is negative ({num})")

    for fam, decl in sorted(families.items()):
        if decl["type"] != "histogram":
            continue
        buckets, count, saw_sum = [], None, False
        for name, labels, num, lineno in samples:
            if name == fam + "_bucket":
                le = labels.get("le")
                if le is None:
                    errors.append(f"line {lineno}: {name} sample without le label")
                    continue
                try:
                    buckets.append((float(le), num))
                except ValueError:
                    errors.append(f"line {lineno}: bad le value {le!r}")
            elif name == fam + "_count":
                count = num
            elif name == fam + "_sum":
                saw_sum = True
        if not buckets:
            errors.append(f"histogram {fam} has no _bucket samples")
        else:
            les = [le for le, _ in buckets]
            if les != sorted(les):
                errors.append(f"histogram {fam}: le values not increasing: {les}")
            counts = [c for _, c in buckets]
            if any(b < a for a, b in zip(counts, counts[1:])):
                errors.append(f"histogram {fam}: bucket counts not cumulative: {counts}")
            if les[-1] != float("inf"):
                errors.append(f"histogram {fam}: missing +Inf bucket")
            elif count is not None and counts[-1] != count:
                errors.append(
                    f"histogram {fam}: +Inf bucket {counts[-1]} != _count {count}"
                )
        if count is None:
            errors.append(f"histogram {fam} has no _count sample")
        if not saw_sum:
            errors.append(f"histogram {fam} has no _sum sample")

    return errors, len(samples), len(families)


def main(argv):
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    if len(argv) == 2:
        with open(argv[1], encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()
    errors, n_samples, n_families = validate(text)
    if not n_samples:
        errors.append("exposition contains no samples")
    if errors:
        for e in errors:
            print(f"check_metrics: {e}", file=sys.stderr)
        return 1
    print(f"ok: {n_samples} sample(s) across {n_families} family(ies)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
