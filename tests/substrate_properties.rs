//! Randomized property tests on the substrate data structures:
//! cuckoo-filter membership, event-queue ordering, link timing
//! monotonicity, and frame allocator conservation.
//!
//! Driven by the workspace's deterministic [`Rng`] rather than an
//! external property-testing crate so the build stays path-only.

use barre_chord::filters::{CuckooFilter, Filter, IdealFilter};
use barre_chord::mem::{FrameAllocator, LocalPfn};
use barre_chord::sim::{EventQueue, Link, Rng};

/// A cuckoo filter never produces false negatives for keys it actually
/// stored, under arbitrary interleavings of inserts and deletes.
#[test]
fn cuckoo_no_false_negatives() {
    for case in 0..64u64 {
        let mut g = Rng::new(0xF11E ^ case);
        let n_ops = 1 + g.next_below(299) as usize;
        let mut f = CuckooFilter::paper_default(7);
        let mut model = IdealFilter::unbounded();
        for _ in 0..n_ops {
            let key = g.next_below(500);
            if g.chance(0.5) {
                if f.insert(key) {
                    model.insert(key);
                }
            } else if model.contains(key) {
                // The model says one copy exists; the filter must agree
                // and be able to delete it.
                assert!(f.contains(key), "case {case}: false negative on {key}");
                assert!(f.remove(key));
                model.remove(key);
            }
        }
        // Everything still in the model is still findable.
        for key in 0u64..500 {
            if model.contains(key) {
                assert!(f.contains(key), "case {case}: lost {key}");
            }
        }
    }
}

/// Events always pop in nondecreasing time order with FIFO ties.
#[test]
fn event_queue_total_order() {
    for case in 0..64u64 {
        let mut g = Rng::new(0xE0E0 ^ case);
        let n = 1 + g.next_below(199) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(g.next_below(10_000), i);
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t >= lt, "case {case}: time went backwards");
                if t == lt {
                    // FIFO among equal timestamps ⇒ insertion index grows.
                    assert!(i > li, "case {case}: tie broken out of order");
                }
            }
            last = Some((t, i));
        }
    }
}

/// Link arrivals are monotone in send order and never precede
/// `now + serialization + latency`.
#[test]
fn link_timing_monotone() {
    for case in 0..64u64 {
        let mut g = Rng::new(0x117C ^ case);
        let latency = g.next_below(200);
        let bw = 1 + g.next_below(63);
        let n = 1 + g.next_below(99) as usize;
        let mut sends: Vec<(u64, u64)> = (0..n)
            .map(|_| (g.next_below(1_000), 1 + g.next_below(511)))
            .collect();
        sends.sort_by_key(|(t, _)| *t);
        let mut l = Link::new(latency, bw);
        let mut last_arrival = 0;
        for (now, bytes) in sends {
            let arr = l.send(now, bytes);
            assert!(arr >= now + l.serialization(bytes) + latency, "case {case}");
            assert!(arr >= last_arrival, "case {case}: arrivals reordered");
            last_arrival = arr;
        }
    }
}

/// The frame allocator conserves frames: free count + live allocations
/// always equals capacity, and no frame is handed out twice.
#[test]
fn frame_allocator_conserves() {
    for case in 0..64u64 {
        let mut g = Rng::new(0xF4A3 ^ case);
        let cap = 1 + g.next_below(255) as usize;
        let n_ops = 1 + g.next_below(399) as usize;
        let mut a = FrameAllocator::new(cap);
        let mut live: Vec<LocalPfn> = Vec::new();
        for _ in 0..n_ops {
            if g.chance(0.5) {
                if let Some(f) = a.alloc_any() {
                    assert!(!live.contains(&f), "case {case}: double allocation of {f}");
                    live.push(f);
                }
            } else if let Some(f) = live.pop() {
                a.free(f);
            }
            assert_eq!(a.free_frames() as usize + live.len(), cap, "case {case}");
        }
    }
}

/// A naive reference model of an LRU set-associative TLB.
mod tlb_reference {
    use barre_chord::mem::Vpn;
    use barre_chord::sim::Rng;
    use barre_chord::tlb::{Tlb, TlbKey};

    /// Reference: per-set vector ordered by recency (front = MRU).
    struct RefTlb {
        sets: Vec<Vec<(TlbKey, u32)>>,
        ways: usize,
    }

    impl RefTlb {
        fn new(sets: usize, ways: usize) -> Self {
            Self {
                sets: (0..sets).map(|_| Vec::new()).collect(),
                ways,
            }
        }

        fn set_of(&self, key: TlbKey) -> usize {
            ((key.vpn.0 ^ ((key.asid as u64) << 17)) as usize) & (self.sets.len() - 1)
        }

        fn lookup(&mut self, key: TlbKey) -> Option<u32> {
            let s = self.set_of(key);
            let set = &mut self.sets[s];
            if let Some(pos) = set.iter().position(|(k, _)| *k == key) {
                let e = set.remove(pos);
                let v = e.1;
                set.insert(0, e);
                Some(v)
            } else {
                None
            }
        }

        fn insert(&mut self, key: TlbKey, val: u32) {
            let s = self.set_of(key);
            let set = &mut self.sets[s];
            if let Some(pos) = set.iter().position(|(k, _)| *k == key) {
                set.remove(pos);
            } else if set.len() == self.ways {
                set.pop();
            }
            set.insert(0, (key, val));
        }
    }

    /// The production TLB's hit/miss behaviour matches a naive MRU-list
    /// LRU model operation for operation.
    #[test]
    fn tlb_matches_reference_lru() {
        for case in 0..48u64 {
            let mut g = Rng::new(0x71B0 ^ case);
            let n_ops = 1 + g.next_below(399) as usize;
            let mut t: Tlb<u32> = Tlb::new(32, 4);
            let mut r = RefTlb::new(8, 4);
            for _ in 0..n_ops {
                let key = TlbKey {
                    asid: 0,
                    vpn: Vpn(g.next_below(64)),
                };
                if g.chance(0.5) {
                    let val = g.next_below(1000) as u32;
                    t.insert(key, val);
                    r.insert(key, val);
                } else {
                    let got = t.lookup(key).copied();
                    let want = r.lookup(key);
                    assert_eq!(got, want, "case {case}: divergence at {}", key.vpn);
                }
            }
        }
    }
}
