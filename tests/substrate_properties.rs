//! Property-based tests on the substrate data structures: cuckoo-filter
//! membership, event-queue ordering, link timing monotonicity, and frame
//! allocator conservation.

use proptest::prelude::*;

use barre_chord::filters::{CuckooFilter, Filter, IdealFilter};
use barre_chord::mem::{FrameAllocator, LocalPfn};
use barre_chord::sim::{EventQueue, Link};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A cuckoo filter never produces false negatives for keys it
    /// actually stored, under arbitrary interleavings of inserts and
    /// deletes.
    #[test]
    fn cuckoo_no_false_negatives(ops in prop::collection::vec((0u64..500, any::<bool>()), 1..300)) {
        let mut f = CuckooFilter::paper_default(7);
        let mut model = IdealFilter::unbounded();
        for (key, insert) in ops {
            if insert {
                if f.insert(key) {
                    model.insert(key);
                }
            } else if model.contains(key) {
                // The model says one copy exists; the filter must agree
                // and be able to delete it.
                prop_assert!(f.contains(key), "false negative on {key}");
                prop_assert!(f.remove(key));
                model.remove(key);
            }
        }
        // Everything still in the model is still findable.
        for key in 0u64..500 {
            if model.contains(key) {
                prop_assert!(f.contains(key), "lost {key}");
            }
        }
    }

    /// Events always pop in nondecreasing time order with FIFO ties.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    // FIFO among equal timestamps ⇒ insertion index grows.
                    prop_assert!(i > li, "tie broken out of order");
                }
            }
            last = Some((t, i));
        }
    }

    /// Link arrivals are monotone in send order and never precede
    /// `now + serialization + latency`.
    #[test]
    fn link_timing_monotone(
        latency in 0u64..200,
        bw in 1u64..64,
        sends in prop::collection::vec((0u64..1_000, 1u64..512), 1..100),
    ) {
        let mut l = Link::new(latency, bw);
        let mut sorted = sends.clone();
        sorted.sort_by_key(|(t, _)| *t);
        let mut last_arrival = 0;
        for (now, bytes) in sorted {
            let arr = l.send(now, bytes);
            prop_assert!(arr >= now + l.serialization(bytes) + latency);
            prop_assert!(arr >= last_arrival, "arrivals reordered");
            last_arrival = arr;
        }
    }

    /// The frame allocator conserves frames: free count + live
    /// allocations always equals capacity, and no frame is handed out
    /// twice.
    #[test]
    fn frame_allocator_conserves(
        cap in 1usize..256,
        ops in prop::collection::vec(any::<bool>(), 1..400),
    ) {
        let mut a = FrameAllocator::new(cap);
        let mut live: Vec<LocalPfn> = Vec::new();
        for alloc in ops {
            if alloc {
                if let Some(f) = a.alloc_any() {
                    prop_assert!(!live.contains(&f), "double allocation of {f}");
                    live.push(f);
                }
            } else if let Some(f) = live.pop() {
                a.free(f);
            }
            prop_assert_eq!(a.free_frames() as usize + live.len(), cap);
        }
    }
}

/// A naive reference model of an LRU set-associative TLB.
mod tlb_reference {
    use barre_chord::mem::Vpn;
    use barre_chord::tlb::{Tlb, TlbKey};
    use proptest::prelude::*;

    /// Reference: per-set vector ordered by recency (front = MRU).
    struct RefTlb {
        sets: Vec<Vec<(TlbKey, u32)>>,
        ways: usize,
    }

    impl RefTlb {
        fn new(sets: usize, ways: usize) -> Self {
            Self {
                sets: (0..sets).map(|_| Vec::new()).collect(),
                ways,
            }
        }

        fn set_of(&self, key: TlbKey) -> usize {
            ((key.vpn.0 ^ ((key.asid as u64) << 17)) as usize) & (self.sets.len() - 1)
        }

        fn lookup(&mut self, key: TlbKey) -> Option<u32> {
            let s = self.set_of(key);
            let set = &mut self.sets[s];
            if let Some(pos) = set.iter().position(|(k, _)| *k == key) {
                let e = set.remove(pos);
                let v = e.1;
                set.insert(0, e);
                Some(v)
            } else {
                None
            }
        }

        fn insert(&mut self, key: TlbKey, val: u32) {
            let s = self.set_of(key);
            let set = &mut self.sets[s];
            if let Some(pos) = set.iter().position(|(k, _)| *k == key) {
                set.remove(pos);
            } else if set.len() == self.ways {
                set.pop();
            }
            set.insert(0, (key, val));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The production TLB's hit/miss behaviour matches a naive
        /// MRU-list LRU model operation for operation.
        #[test]
        fn tlb_matches_reference_lru(
            ops in prop::collection::vec((0u64..64, any::<bool>(), 0u32..1000), 1..400)
        ) {
            let mut t: Tlb<u32> = Tlb::new(32, 4);
            let mut r = RefTlb::new(8, 4);
            for (vpn, is_insert, val) in ops {
                let key = TlbKey { asid: 0, vpn: Vpn(vpn) };
                if is_insert {
                    t.insert(key, val);
                    r.insert(key, val);
                } else {
                    let got = t.lookup(key).copied();
                    let want = r.lookup(key);
                    prop_assert_eq!(got, want, "divergence at vpn {}", vpn);
                }
            }
        }
    }
}
