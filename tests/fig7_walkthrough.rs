//! The paper's Fig 7 worked example, end to end:
//!
//! Three data objects of 12, 4 and 3 pages are mapped by LASP over four
//! chiplets. "Without Barre, each page needs one translation separately;
//! a total of 19 translations for the three data. With Barre, the pages
//! in the same coalescing group can be served by one translation. […]
//! Thus, a total of five translations can cover the 19 pages."

use barre_chord::core::driver::{BarreAllocator, MappingPlan};
use barre_chord::core::CoalMode;
use barre_chord::iommu::{AtsRequest, Iommu, IommuConfig};
use barre_chord::mem::virt_alloc::VpnRange;
use barre_chord::mem::{ChipletId, FrameAllocator, PageTable, Vpn};

fn chiplets() -> Vec<ChipletId> {
    (0..4).map(ChipletId).collect()
}

/// Builds the Fig 7a address space: data 1 (12 pages, gran 3), data 2
/// (4 pages, gran 1), data 3 (3 pages, gran 1 over three chiplets).
fn build() -> (PageTable, Vec<barre_chord::core::PecEntry>, Vec<Vpn>) {
    let mut frames: Vec<FrameAllocator> = (0..4).map(|_| FrameAllocator::new(1024)).collect();
    let mut driver = BarreAllocator::new(CoalMode::Base, 1);
    let mut pt = PageTable::new(0);
    let mut pecs = Vec::new();
    let mut all_vpns = Vec::new();

    let plans = [
        // Data 1: VPNs 0x1..=0xC, three pages per chiplet.
        MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x1),
                pages: 12,
            },
            3,
            &chiplets(),
        ),
        // Data 2: VPNs 0xA1..=0xA4, one page per chiplet.
        MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0xA1),
                pages: 4,
            },
            1,
            &chiplets(),
        ),
        // Data 3: VPNs 0xB4..=0xB6, one page on each of three chiplets.
        MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0xB4),
                pages: 3,
            },
            1,
            &chiplets()[..3],
        ),
    ];
    for plan in plans {
        let out = driver.allocate(&plan, &mut frames).unwrap();
        for (v, p) in out.ptes {
            pt.map(v, p);
            all_vpns.push(v);
        }
        pecs.push(out.pec);
    }
    assert_eq!(all_vpns.len(), 19, "Fig 7a maps 19 pages");
    (pt, pecs, all_vpns)
}

#[test]
fn five_translations_cover_nineteen_pages() {
    let (pt, pecs, vpns) = build();
    let mut iommu = Iommu::new(IommuConfig {
        barre: true,
        ptws: Some(1), // serialize walks so pending requests coalesce
        pw_queue_entries: 64,
        ..IommuConfig::default()
    });
    for pec in pecs {
        iommu.register_pec(pec);
    }
    // All 19 translations are requested at (nearly) the same time —
    // the premise of Fig 7b's timeline.
    for (i, &vpn) in vpns.iter().enumerate() {
        let accepted = iommu.enqueue(AtsRequest {
            id: i as u64,
            asid: 0,
            vpn,
            chiplet: ChipletId((i % 4) as u8),
            issued_at: 0,
        });
        assert!(accepted);
    }
    let mut now = 0;
    let mut walks = 0;
    let mut served = 0;
    while !iommu.is_idle() {
        let started = iommu.dispatch(now);
        for (ptw, done) in started {
            walks += 1;
            now = done;
            served += iommu.complete_walk(ptw, now, |_, v| pt.lookup(v)).len();
        }
    }
    assert_eq!(served, 19, "every page translated");
    // Data 1: 3 groups; data 2: 1 group; data 3: 1 group = 5 walks.
    assert_eq!(walks, 5, "five translations cover the 19 pages (Fig 7)");
}

#[test]
fn without_barre_nineteen_walks() {
    let (pt, _, vpns) = build();
    let mut iommu = Iommu::new(IommuConfig {
        barre: false,
        ptws: Some(1),
        pw_queue_entries: 64,
        ..IommuConfig::default()
    });
    for (i, &vpn) in vpns.iter().enumerate() {
        iommu.enqueue(AtsRequest {
            id: i as u64,
            asid: 0,
            vpn,
            chiplet: ChipletId((i % 4) as u8),
            issued_at: 0,
        });
    }
    let mut now = 0;
    let mut walks = 0;
    while !iommu.is_idle() {
        for (ptw, done) in iommu.dispatch(now) {
            walks += 1;
            now = done;
            iommu.complete_walk(ptw, now, |_, v| pt.lookup(v));
        }
    }
    assert_eq!(walks, 19, "one walk per page without Barre");
}

#[test]
fn fig7b_latency_is_cut_by_more_than_half() {
    // Fig 7b: with all requests pending, Barre finishes the batch in
    // well under half the serialized walk time.
    let (pt, pecs, vpns) = build();
    let run = |barre: bool| -> u64 {
        let mut iommu = Iommu::new(IommuConfig {
            barre,
            ptws: Some(1),
            pw_queue_entries: 64,
            ..IommuConfig::default()
        });
        if barre {
            for pec in pecs.clone() {
                iommu.register_pec(pec);
            }
        }
        for (i, &vpn) in vpns.iter().enumerate() {
            iommu.enqueue(AtsRequest {
                id: i as u64,
                asid: 0,
                vpn,
                chiplet: ChipletId((i % 4) as u8),
                issued_at: 0,
            });
        }
        let mut now = 0;
        let mut last_ready = 0;
        while !iommu.is_idle() {
            for (ptw, done) in iommu.dispatch(now) {
                now = done;
                for (ready, _) in iommu.complete_walk(ptw, now, |_, v| pt.lookup(v)) {
                    last_ready = last_ready.max(ready);
                }
            }
        }
        last_ready
    };
    let base = run(false);
    let barre = run(true);
    assert!(
        barre * 2 < base,
        "Barre cuts the batch latency by over half: {barre} vs {base}"
    );
}
