//! Cross-crate integration tests: full-machine runs under every
//! translation architecture, verifying system-level invariants rather
//! than component behaviour. Debug builds additionally verify every
//! translation fill against the page table (a `debug_assert` inside the
//! machine).

use barre_chord::system::{
    run_app as try_run_app, run_pair as try_run_pair, smoke_config, speedup, FBarreConfig, MmuKind,
    RunMetrics, SystemConfig, TranslationMode,
};
use barre_chord::workloads::{AppId, AppPair};

/// These tests exercise well-formed configurations, so any `SimError`
/// is itself a failure worth panicking on.
fn run_app(app: AppId, cfg: &SystemConfig, seed: u64) -> RunMetrics {
    try_run_app(app, cfg, seed).expect("run failed")
}

fn run_pair(pair: AppPair, cfg: &SystemConfig, seed: u64) -> RunMetrics {
    try_run_pair(pair, cfg, seed).expect("run failed")
}

fn modes() -> Vec<TranslationMode> {
    vec![
        TranslationMode::Baseline,
        TranslationMode::Valkyrie,
        TranslationMode::Least,
        TranslationMode::SharedL2Ideal,
        TranslationMode::Barre,
        TranslationMode::FBarre(FBarreConfig::default()),
        TranslationMode::FBarre(FBarreConfig {
            max_merged: 4,
            ..FBarreConfig::default()
        }),
    ]
}

#[test]
fn every_mode_completes_and_accounts() {
    let cfg = smoke_config();
    for mode in modes() {
        let m = run_app(AppId::Jac2d, &cfg.clone().with_mode(mode), 1);
        assert!(m.total_cycles > 0, "{}: empty run", mode.label());
        assert!(m.warp_mem_instructions > 0, "{}", mode.label());
        // Every executed memory instruction produced at least one access.
        assert!(
            m.data_accesses >= m.warp_mem_instructions,
            "{}: accesses {} < warp insts {}",
            mode.label(),
            m.data_accesses,
            m.warp_mem_instructions
        );
        // Translation accounting: L1 misses >= L2 lookups' primaries.
        assert!(m.l1_tlb_lookups >= m.l1_tlb_misses, "{}", mode.label());
        assert!(m.l2_tlb_lookups >= m.l2_tlb_misses, "{}", mode.label());
    }
}

#[test]
fn all_modes_run_identically_twice() {
    let cfg = smoke_config();
    for mode in modes() {
        let a = run_app(AppId::Atax, &cfg.clone().with_mode(mode), 77);
        let b = run_app(AppId::Atax, &cfg.clone().with_mode(mode), 77);
        assert_eq!(a.total_cycles, b.total_cycles, "{}", mode.label());
        assert_eq!(a.walks, b.walks, "{}", mode.label());
        assert_eq!(a.mesh_bytes, b.mesh_bytes, "{}", mode.label());
    }
}

#[test]
fn barre_never_walks_more_than_baseline() {
    let cfg = smoke_config();
    for app in [AppId::Jac2d, AppId::St2d, AppId::Gups] {
        let base = run_app(app, &cfg, 5);
        let barre = run_app(app, &cfg.clone().with_mode(TranslationMode::Barre), 5);
        // Timing shifts can perturb TLB hit patterns slightly; allow 5%.
        assert!(
            barre.walks <= base.walks + base.walks / 20,
            "{app}: {} > {}",
            barre.walks,
            base.walks
        );
        // Work conservation: walks + calculated >= unique misses served.
        assert_eq!(
            barre.walks + barre.coalesced_translations,
            barre.ats_requests,
            "{app}: every ATS is answered by exactly one walk or calculation"
        );
    }
}

#[test]
fn fbarre_reduces_pcie_traffic() {
    let cfg = smoke_config();
    let base = run_app(AppId::Gups, &cfg, 3);
    let fb = run_app(
        AppId::Gups,
        &cfg.clone()
            .with_mode(TranslationMode::FBarre(FBarreConfig::default())),
        3,
    );
    assert!(fb.pcie_bytes < base.pcie_bytes);
    assert!(fb.intra_mcm_translations > 0);
}

#[test]
fn gmmu_platform_runs_without_pcie_translation_traffic() {
    let mut cfg = smoke_config();
    cfg.mmu = MmuKind::Gmmu;
    let m = run_app(AppId::Jac2d, &cfg, 9);
    assert!(m.total_cycles > 0);
    assert_eq!(m.pcie_bytes, 0, "GMMU walks must stay inside the package");
    assert!(m.gmmu_local_walks + m.gmmu_remote_walks > 0);
}

#[test]
fn gmmu_barre_removes_remote_walks() {
    let mut cfg = smoke_config();
    cfg.mmu = MmuKind::Gmmu;
    let base = run_app(AppId::St2d, &cfg, 2);
    let bc = run_app(
        AppId::St2d,
        &cfg.clone()
            .with_mode(TranslationMode::FBarre(FBarreConfig::default())),
        2,
    );
    assert!(
        bc.gmmu_remote_walks <= base.gmmu_remote_walks,
        "{} > {}",
        bc.gmmu_remote_walks,
        base.gmmu_remote_walks
    );
}

#[test]
fn multi_app_isolation() {
    // A pair run completes and executes both kernels' instructions.
    let cfg = smoke_config();
    let pair = AppPair {
        a: AppId::Gemv,
        b: AppId::Gups,
    };
    let solo_a = run_app(AppId::Gemv, &cfg, 4);
    let both = run_pair(pair, &cfg, 4);
    assert!(both.warp_mem_instructions > solo_a.warp_mem_instructions);
    assert!(both.total_cycles >= solo_a.total_cycles / 2);
}

#[test]
fn infinite_ptws_cap_the_benefit() {
    // Fig 1's saturation argument: infinite PTWs must help, but cannot
    // beat a bound set by walk latency + PCIe (here: sanity-bounded).
    let cfg = smoke_config();
    let base8 = run_app(AppId::Gups, &cfg.clone().with_ptws(Some(8)), 6);
    let inf = run_app(AppId::Gups, &cfg.clone().with_ptws(None), 6);
    let sp = speedup(&base8, &inf);
    assert!(sp >= 1.0, "infinite PTWs should not hurt: {sp}");
    assert!(sp < 20.0, "infinite PTWs cannot be magic: {sp}");
}

#[test]
fn page_sizes_translate_correctly() {
    use barre_chord::mem::PageSize;
    let cfg = smoke_config();
    for ps in PageSize::all() {
        let m = run_app(AppId::Jac2d, &cfg.clone().with_page_size(ps), 8);
        assert!(m.total_cycles > 0, "{ps}");
        // Bigger pages, fewer translations.
        if ps != PageSize::Size4K {
            let base = run_app(AppId::Jac2d, &cfg, 8);
            assert!(m.ats_requests <= base.ats_requests, "{ps}");
        }
    }
}

#[test]
fn migration_runs_and_moves_pages() {
    use barre_chord::system::MigrationConfig;
    let mut cfg = smoke_config();
    // Low threshold so the short smoke run triggers migrations.
    cfg.migration = Some(MigrationConfig {
        threshold: 4,
        overhead: 500,
    });
    cfg.policy = barre_chord::mapping::PolicyKind::RoundRobin; // many remote accesses
    let m = run_app(AppId::Gups, &cfg, 10);
    assert!(m.migrations > 0, "no migrations triggered");
    // And under Barre Chord the same setup still translates correctly
    // (debug_assert verifies fills) while keeping some coalescing.
    let bc = run_app(
        AppId::Gups,
        &cfg.clone()
            .with_mode(TranslationMode::FBarre(FBarreConfig::default())),
        10,
    );
    assert!(bc.total_cycles > 0);
}

#[test]
fn scaled_config_matches_paper_ratios() {
    let paper = SystemConfig::paper();
    let scaled = SystemConfig::scaled();
    // The scaled model must keep the pressure ratio (streams per PTW)
    // within 2x of the paper's.
    let paper_streams = paper.topology.total_cus() * paper.cu_slots;
    let scaled_streams = scaled.topology.total_cus() * scaled.cu_slots;
    let pr = paper_streams as f64 / paper.ptws.unwrap() as f64;
    let sr = scaled_streams as f64 / scaled.ptws.unwrap() as f64;
    assert!(
        sr >= pr / 8.0 && sr <= pr * 8.0,
        "pressure ratio drifted: {pr} vs {sr}"
    );
}

#[test]
fn demand_paging_group_fetch_cuts_faults() {
    use barre_chord::system::DemandPagingConfig;
    let mut cfg = smoke_config();
    cfg.demand_paging = Some(DemandPagingConfig {
        fault_latency: 5_000,
        group_fetch: false,
    });
    // Single-page faults under plain demand paging.
    let single = run_app(
        AppId::Jac2d,
        &cfg.clone().with_mode(TranslationMode::Barre),
        12,
    );
    assert!(single.page_faults > 0, "no faults under demand paging");
    assert_eq!(
        single.demand_pages_mapped,
        single.page_faults.min(single.demand_pages_mapped)
    );
    // Group fetch maps several pages per fault (§VI).
    cfg.demand_paging = Some(DemandPagingConfig {
        fault_latency: 5_000,
        group_fetch: true,
    });
    let grouped = run_app(
        AppId::Jac2d,
        &cfg.clone().with_mode(TranslationMode::Barre),
        12,
    );
    assert!(grouped.page_faults > 0);
    assert!(
        grouped.demand_pages_mapped > grouped.page_faults,
        "group fetch should map more pages than faults: {} vs {}",
        grouped.demand_pages_mapped,
        grouped.page_faults
    );
    assert!(
        grouped.page_faults < single.page_faults,
        "group fetch should take fewer faults: {} vs {}",
        grouped.page_faults,
        single.page_faults
    );
}
