//! Serial vs parallel sweep equivalence.
//!
//! The run-level worker pool (`barre_sim::pool`) must be invisible in
//! results: the same batch of `(spec, cfg, seed)` jobs has to produce
//! byte-identical `RunMetrics` vectors at any thread count, because each
//! simulation is single-threaded and the pool returns results in input
//! order. These tests pin that property at the `run_batch` layer the
//! CLI and bench harness build on.

use barre_chord::system::{run_batch, smoke_config, BatchJob, RunMetrics, TranslationMode};
use barre_chord::workloads::AppId;

fn batch() -> Vec<BatchJob> {
    let base = smoke_config();
    let modes = [
        base.clone(),
        base.clone().with_mode(TranslationMode::Barre),
        base.with_mode(TranslationMode::FBarre(Default::default())),
    ];
    [AppId::Gemv, AppId::Jac2d]
        .into_iter()
        .flat_map(|app| {
            modes
                .iter()
                .map(move |cfg| (app.spec(), cfg.clone(), 0x15CA_2024))
        })
        .collect()
}

fn unwrap_all(results: Vec<Result<RunMetrics, barre_chord::system::SimError>>) -> Vec<RunMetrics> {
    results
        .into_iter()
        .map(|r| r.expect("smoke runs cannot fail"))
        .collect()
}

#[test]
fn serial_and_parallel_batches_are_byte_identical() {
    let serial = unwrap_all(run_batch(batch(), 1).expect("serial batch"));
    for threads in [2, 4] {
        let parallel = unwrap_all(run_batch(batch(), threads).expect("parallel batch"));
        assert_eq!(
            serial, parallel,
            "metrics diverged between 1 and {threads} threads"
        );
    }
    // Sanity: the batch really ran (6 jobs, live results).
    assert_eq!(serial.len(), 6);
    assert!(serial.iter().all(|m| m.total_cycles > 0));
    assert!(serial.iter().all(|m| m.events_processed > 0));
}

#[test]
fn pool_results_preserve_input_order() {
    // Two distinguishable jobs, many threads: results must line up with
    // inputs, not completion order.
    let base = smoke_config();
    let jobs: Vec<BatchJob> = vec![
        (AppId::Gemv.spec(), base.clone(), 1),
        (AppId::Gups.spec(), base, 1),
    ];
    let out = unwrap_all(run_batch(jobs, 4).expect("batch"));
    let gemv = run_batch(vec![(AppId::Gemv.spec(), smoke_config(), 1)], 1)
        .expect("single")
        .remove(0)
        .expect("run");
    assert_eq!(out[0], gemv);
    assert_ne!(out[0], out[1]);
}
