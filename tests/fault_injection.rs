//! Fault-injection invariants: the chaos machinery must be invisible
//! when unused, deterministic when used, and conservation-preserving
//! under message loss.
//!
//! The hardcoded fingerprints pin the key robustness-work guarantee:
//! adding the fault/retry/watchdog plumbing did not move a single cycle
//! of the fault-free simulation.

use barre_chord::sim::FaultPlan;
use barre_chord::system::{run_app, smoke_config, RunMetrics, SystemConfig, TranslationMode};
use barre_chord::workloads::AppId;

fn run(app: AppId, cfg: &SystemConfig, seed: u64) -> RunMetrics {
    run_app(app, cfg, seed).expect("run failed")
}

/// (total_cycles, l2_tlb_misses, ats_requests) captured on the pre-fault
/// codebase for `smoke_config()` at seed 1. These exact values must
/// survive any refactoring of the fault path.
const BASELINES: [(AppId, u64, u64, u64); 3] = [
    (AppId::Gemv, 40_454, 128, 128),
    (AppId::St2d, 40_277, 191, 191),
    (AppId::Jac2d, 45_471, 191, 191),
];

#[test]
fn empty_plan_is_cycle_identical_to_pre_fault_baseline() {
    let cfg = smoke_config();
    assert!(cfg.fault_plan.is_empty());
    for (app, cycles, misses, ats) in BASELINES {
        let m = run(app, &cfg, 1);
        assert_eq!(m.total_cycles, cycles, "{app}: cycles moved");
        assert_eq!(m.l2_tlb_misses, misses, "{app}: misses moved");
        assert_eq!(m.ats_requests, ats, "{app}: ATS count moved");
        assert_eq!(m.faults_injected, 0, "{app}");
        assert_eq!(m.ats_retries, 0, "{app}");
        assert_eq!(m.fallback_translations, 0, "{app}");
        assert_eq!(m.watchdog_fired, 0, "{app}");
    }
}

#[test]
fn explicit_zero_rate_plan_matches_no_injector_run() {
    // A plan whose every rate is 0.0 must not consume a single RNG draw
    // or event slot: metrics match the default (injector-free) run
    // field for field on every counter that feeds the figures.
    let plain = smoke_config();
    let zeroed = smoke_config().with_fault_plan(FaultPlan::none());
    for app in [AppId::Gemv, AppId::Gups, AppId::Jac2d] {
        let a = run(app, &plain, 7);
        let b = run(app, &zeroed, 7);
        assert_eq!(a.total_cycles, b.total_cycles, "{app}");
        assert_eq!(a.l1_tlb_misses, b.l1_tlb_misses, "{app}");
        assert_eq!(a.l2_tlb_misses, b.l2_tlb_misses, "{app}");
        assert_eq!(a.ats_requests, b.ats_requests, "{app}");
        assert_eq!(a.walks, b.walks, "{app}");
        assert_eq!(a.pcie_bytes, b.pcie_bytes, "{app}");
        assert_eq!(a.mesh_bytes, b.mesh_bytes, "{app}");
    }
}

fn drop_plan() -> FaultPlan {
    FaultPlan {
        ats_request_drop: 0.05,
        ats_response_drop: 0.05,
        ..FaultPlan::none()
    }
}

#[test]
fn same_seed_and_plan_reproduce_identical_metrics() {
    let cfg = smoke_config().with_fault_plan(drop_plan());
    for app in [AppId::Gemv, AppId::Jac2d] {
        let a = run(app, &cfg, 11);
        let b = run(app, &cfg, 11);
        assert_eq!(a.total_cycles, b.total_cycles, "{app}");
        assert_eq!(a.faults_injected, b.faults_injected, "{app}");
        assert_eq!(a.ats_retries, b.ats_retries, "{app}");
        assert_eq!(a.ats_timeouts, b.ats_timeouts, "{app}");
        assert_eq!(a.fallback_translations, b.fallback_translations, "{app}");
        assert_eq!(a.ats_requests, b.ats_requests, "{app}");
        assert_eq!(a.walks, b.walks, "{app}");
    }
}

#[test]
fn dropped_messages_retry_and_conserve_translations() {
    // Under sustained request+response loss every run must still drain,
    // the retry machinery must actually engage, and every counted ATS
    // request must be answered by exactly one of: a walk, a PEC
    // calculation, or a conventional-walk fallback.
    for mode in [TranslationMode::Baseline, TranslationMode::Barre] {
        let cfg = smoke_config().with_mode(mode).with_fault_plan(drop_plan());
        for app in [AppId::Gemv, AppId::Gups, AppId::Jac2d] {
            let m = run(app, &cfg, 3);
            assert!(m.total_cycles > 0, "{app}: did not run");
            assert!(m.faults_injected > 0, "{app}: no faults landed");
            assert!(m.ats_retries > 0, "{app}: drops never triggered a retry");
            assert_eq!(
                m.walks + m.coalesced_translations + m.fallback_translations,
                m.ats_requests,
                "{app}: translation conservation broken \
                 (walks {} + coalesced {} + fallback {} != ats {})",
                m.walks,
                m.coalesced_translations,
                m.fallback_translations,
                m.ats_requests
            );
            assert_eq!(m.watchdog_fired, 0, "{app}: watchdog fired on a live run");
        }
    }
}

#[test]
fn pcie_spikes_and_walker_stalls_slow_but_complete() {
    let plan = FaultPlan {
        pcie_spike_rate: 0.1,
        pcie_spike_cycles: 400,
        walker_stall_rate: 0.1,
        walker_stall_cycles: 300,
        ..FaultPlan::none()
    };
    let cfg = smoke_config();
    let chaotic = cfg.clone().with_fault_plan(plan);
    for app in [AppId::Gemv, AppId::Jac2d] {
        let clean = run(app, &cfg, 5);
        let m = run(app, &chaotic, 5);
        assert!(m.faults_injected > 0, "{app}: no latency faults landed");
        assert!(
            m.total_cycles >= clean.total_cycles,
            "{app}: latency faults sped the run up ({} < {})",
            m.total_cycles,
            clean.total_cycles
        );
        // Latency-only faults lose nothing: the plain conservation law
        // (no fallbacks needed) still holds.
        assert_eq!(m.fallback_translations, 0, "{app}");
        assert_eq!(m.walks + m.coalesced_translations, m.ats_requests, "{app}");
    }
}

#[test]
fn pec_corruption_is_survivable_under_barre() {
    let plan = FaultPlan {
        pec_corrupt_rate: 0.05,
        ..FaultPlan::none()
    };
    let cfg = smoke_config()
        .with_mode(TranslationMode::Barre)
        .with_fault_plan(plan);
    let m = run(AppId::St2d, &cfg, 9);
    assert!(m.total_cycles > 0);
    assert_eq!(
        m.walks + m.coalesced_translations + m.fallback_translations,
        m.ats_requests
    );
}
