//! Reproducibility guarantees: identical seeds give byte-identical
//! metrics; different seeds actually change the stochastic workloads;
//! and configuration knobs change only what they should.

use barre_chord::system::{
    run_app as try_run_app, smoke_config, FBarreConfig, RunMetrics, SystemConfig, TranslationMode,
};
use barre_chord::workloads::AppId;

/// These tests exercise well-formed configurations, so any `SimError`
/// is itself a failure worth panicking on.
fn run_app(app: AppId, cfg: &SystemConfig, seed: u64) -> RunMetrics {
    try_run_app(app, cfg, seed).expect("run failed")
}

fn fingerprint(m: &RunMetrics) -> Vec<u64> {
    vec![
        m.total_cycles,
        m.warp_instructions,
        m.l1_tlb_misses,
        m.l2_tlb_misses,
        m.ats_requests,
        m.walks,
        m.coalesced_translations,
        m.intra_mcm_translations,
        m.pcie_bytes,
        m.mesh_bytes,
        m.remote_data_accesses,
        m.filter_updates_sent,
        m.filter_updates_dropped,
    ]
}

#[test]
fn identical_seeds_are_bit_identical() {
    let cfg = smoke_config().with_mode(TranslationMode::FBarre(FBarreConfig::default()));
    for app in [AppId::Gups, AppId::Jac2d, AppId::Spmv] {
        let a = run_app(app, &cfg, 99);
        let b = run_app(app, &cfg, 99);
        assert_eq!(fingerprint(&a), fingerprint(&b), "{app} diverged");
    }
}

#[test]
fn different_seeds_change_stochastic_apps() {
    let cfg = smoke_config();
    let a = run_app(AppId::Gups, &cfg, 1);
    let b = run_app(AppId::Gups, &cfg, 2);
    assert_ne!(
        a.total_cycles, b.total_cycles,
        "gups must depend on the seed"
    );
}

#[test]
fn deterministic_apps_ignore_seed() {
    // Purely structural streams (no RNG) must not change with the seed
    // beyond filter hashing, which baseline mode does not use.
    let cfg = smoke_config();
    let a = run_app(AppId::Jac2d, &cfg, 1);
    let b = run_app(AppId::Jac2d, &cfg, 2);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.l2_tlb_misses, b.l2_tlb_misses);
}

#[test]
fn mode_changes_translation_but_not_work() {
    // Whatever the translation architecture, the kernel executes the
    // same instructions and data accesses.
    let base = run_app(AppId::St2d, &smoke_config(), 5);
    for mode in [
        TranslationMode::Valkyrie,
        TranslationMode::Least,
        TranslationMode::Barre,
        TranslationMode::FBarre(FBarreConfig::default()),
    ] {
        let m = run_app(AppId::St2d, &smoke_config().with_mode(mode), 5);
        assert_eq!(
            m.warp_instructions,
            base.warp_instructions,
            "{} changed the executed work",
            mode.label()
        );
        assert_eq!(
            m.data_accesses,
            base.data_accesses,
            "{} changed the data accesses",
            mode.label()
        );
    }
}
