//! Structural validation of the 19 synthetic kernels: each app's address
//! stream must exhibit the *pattern* its real counterpart has — that is
//! the whole basis of the workload substitution (DESIGN.md).

use std::collections::BTreeSet;

use barre_chord::gpu::pattern::WarpAccess;
use barre_chord::mem::VirtAddr;
use barre_chord::workloads::{AppId, WorkloadSpec};

/// Builds CTA `cta`'s stream with synthetic disjoint bases.
fn stream(spec: WorkloadSpec, cta: u64) -> (Vec<WarpAccess>, Vec<(u64, u64)>) {
    let ds = spec.datasets();
    let mut next = 1u64 << 32;
    let mut bases = Vec::new();
    let mut ranges = Vec::new();
    for d in &ds {
        bases.push(VirtAddr(next));
        ranges.push((next, next + d.bytes));
        next += d.bytes + (1 << 24);
    }
    let n = spec.n_ctas(32);
    let mut p = spec.cta_pattern(cta, n, &bases, 7);
    let mut out = Vec::new();
    while let Some(w) = p.next_warp() {
        out.push(w);
        if out.len() > 200_000 {
            break;
        }
    }
    (out, ranges)
}

fn pages_of(w: &WarpAccess) -> BTreeSet<u64> {
    w.addrs.iter().map(|a| a.0 >> 12).collect()
}

#[test]
fn streaming_apps_are_page_coalesced() {
    // gemv/cov/fwt-class streams: a warp instruction touches at most 2
    // pages (256 B contiguous).
    for app in [AppId::Gemv, AppId::Cov, AppId::Fwt, AppId::Fft] {
        let (ws, _) = stream(app.spec(), 1);
        assert!(!ws.is_empty());
        for w in &ws {
            assert!(
                pages_of(w).len() <= 2,
                "{app}: streaming warp touched {} pages",
                pages_of(w).len()
            );
        }
    }
}

#[test]
fn gather_apps_touch_many_pages_per_warp() {
    for app in [AppId::Gups, AppId::Spmv, AppId::Gesm] {
        let (ws, _) = stream(app.spec(), 2);
        let wide = ws.iter().filter(|w| pages_of(w).len() >= 16).count();
        assert!(
            wide * 2 > ws.len(),
            "{app}: only {wide}/{} warps are page-wide gathers",
            ws.len()
        );
    }
}

#[test]
fn stencil_apps_revisit_rows() {
    // jac2d: each offset is touched by 4 phases (3 reads + 1 write),
    // and the write goes to the second grid.
    let (ws, ranges) = stream(AppId::Jac2d.spec(), 3);
    let writes = ws.iter().filter(|w| w.write).count();
    assert!(
        writes * 5 > ws.len(),
        "too few writes: {writes}/{}",
        ws.len()
    );
    let (b_lo, b_hi) = ranges[1];
    for w in ws.iter().filter(|w| w.write) {
        assert!(
            w.addrs.iter().all(|a| (b_lo..b_hi).contains(&a.0)),
            "jac2d write outside grid B"
        );
    }
}

#[test]
fn transpose_writes_are_scattered() {
    let (ws, ranges) = stream(AppId::Matr.spec(), 0);
    let (b_lo, b_hi) = ranges[1];
    let scattered_writes = ws
        .iter()
        .filter(|w| w.write && pages_of(w).len() >= 16)
        .count();
    assert!(scattered_writes > 0, "matr has no scattered writes");
    // And the writes land in the output matrix.
    for w in ws.iter().filter(|w| w.write) {
        assert!(w.addrs.iter().all(|a| (b_lo..b_hi).contains(&a.0)));
    }
}

#[test]
fn graph_apps_have_hot_head() {
    // Zipf-distributed gathers concentrate on low offsets.
    for app in [AppId::Pr, AppId::Sssp] {
        let (ws, ranges) = stream(app.spec(), 4);
        let (lo, hi) = ranges[0];
        let len = hi - lo;
        let (mut head, mut total) = (0u64, 0u64);
        for w in &ws {
            for a in &w.addrs {
                if (lo..hi).contains(&a.0) {
                    total += 1;
                    if a.0 - lo < len / 8 {
                        head += 1;
                    }
                }
            }
        }
        assert!(
            head * 2 > total,
            "{app}: head {head}/{total} — no power-law skew"
        );
    }
}

#[test]
fn slices_partition_blocked_data() {
    // Different CTAs' row slices of a Blocked matrix are disjoint
    // (ignoring shared vectors/halos).
    let spec = AppId::Gemv.spec();
    let (w0, ranges) = stream(spec, 0);
    let (w9, _) = stream(spec, 9);
    let (a_lo, a_hi) = ranges[0];
    let pages = |ws: &[WarpAccess]| -> BTreeSet<u64> {
        ws.iter()
            .flat_map(|w| w.addrs.iter())
            .filter(|a| (a_lo..a_hi).contains(&a.0))
            .map(|a| a.0 >> 12)
            .collect()
    };
    let p0 = pages(&w0);
    let p9 = pages(&w9);
    assert!(!p0.is_empty() && !p9.is_empty());
    assert!(
        p0.intersection(&p9).count() <= 1,
        "row slices overlap: {} shared pages",
        p0.intersection(&p9).count()
    );
}

#[test]
fn wavefront_covers_distinct_tiles() {
    let spec = AppId::Nw.spec();
    let (w0, _) = stream(spec, 0);
    let (w1, _) = stream(spec, 1);
    let p0: BTreeSet<u64> = w0.iter().flat_map(pages_of).collect();
    let p1: BTreeSet<u64> = w1.iter().flat_map(pages_of).collect();
    assert!(
        p0.intersection(&p1).count() == 0,
        "nw tiles must be disjoint"
    );
}

#[test]
fn scale16_footprint_grows() {
    for app in [AppId::Gups, AppId::Jac2d] {
        let b1: u64 = app.spec().datasets().iter().map(|d| d.bytes).sum();
        let b16: u64 = WorkloadSpec { app, scale: 16 }
            .datasets()
            .iter()
            .map(|d| d.bytes)
            .sum();
        assert!(b16 >= 12 * b1, "{app}: 16x scale grew only {b1}->{b16}");
    }
}

#[test]
fn all_apps_emit_bounded_lanes() {
    for app in AppId::all() {
        let (ws, ranges) = stream(app.spec(), 5);
        for w in &ws {
            assert!(
                (1..=32).contains(&w.addrs.len()),
                "{app}: warp with {} lanes",
                w.addrs.len()
            );
            for a in &w.addrs {
                assert!(
                    ranges.iter().any(|(lo, hi)| (*lo..*hi).contains(&a.0)),
                    "{app}: address {a} outside all datasets"
                );
            }
        }
    }
}
