//! Property-based tests of the Barre Chord core invariants.
//!
//! These are the paper's correctness claims, checked over randomized
//! plans, fragmentation patterns and PTE layouts:
//!
//! 1. **Same-local-PFN invariant**: every member of a coalescing group is
//!    mapped at the same local PFN (modulo intra-run offset).
//! 2. **Calculation soundness**: for any two members of a group, the PEC
//!    calculator derives exactly the frame the page table holds.
//! 3. **Encoding roundtrip**: PTE coalescing bits survive encode/decode
//!    under every layout.
//! 4. **No cross-group leakage**: pages outside a group are never
//!    "calculated".

use proptest::prelude::*;

use barre_chord::core::driver::{BarreAllocator, MappingPlan};
use barre_chord::core::{CoalInfo, CoalMode, PecLogic};
use barre_chord::mem::virt_alloc::VpnRange;
use barre_chord::mem::{ChipletId, FrameAllocator, PageTable, Vpn};
use barre_chord::sim::Rng;

fn chiplets(n: u8) -> Vec<ChipletId> {
    (0..n).map(ChipletId).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn driver_allocation_is_sound(
        pages in 1u64..200,
        gran in 1u64..12,
        n_chiplets in 2u8..8,
        mode_sel in 0u8..2,
        max_merged in 1u8..5,
        frag in 0.0f64..0.6,
        seed in 0u64..1000,
    ) {
        let mode = if mode_sel == 0 { CoalMode::Base } else { CoalMode::Expanded };
        let max_merged = if mode == CoalMode::Base { 1 } else { max_merged.min(4) };
        let mut frames: Vec<FrameAllocator> = (0..n_chiplets as usize)
            .map(|_| FrameAllocator::new(4096))
            .collect();
        let mut rng = Rng::new(seed);
        for f in frames.iter_mut() {
            f.fragment(&mut rng, frag);
        }
        let plan = MappingPlan::interleaved(
            VpnRange { start: Vpn(0x100), pages },
            gran,
            &chiplets(n_chiplets),
        );
        let mut driver = BarreAllocator::new(mode, max_merged);
        let out = match driver.allocate(&plan, &mut frames) {
            Ok(o) => o,
            Err(_) => return Ok(()), // legitimately out of memory under heavy fragmentation
        };

        // Every page mapped exactly once, on its planned chiplet.
        prop_assert_eq!(out.ptes.len() as u64, pages);
        let mut pt = PageTable::new(0);
        for (v, p) in &out.ptes {
            prop_assert_eq!(
                p.pfn().chiplet(),
                plan.chiplet_of(*v).unwrap(),
                "page on wrong chiplet"
            );
            prop_assert!(pt.map(*v, *p).is_none(), "double mapping");
        }

        let logic = PecLogic::new(mode);
        for (v, p) in &out.ptes {
            let Some(info) = CoalInfo::decode(p.coal_bits(), mode) else { continue };
            // 3. encoding roundtrip
            prop_assert_eq!(CoalInfo::decode(info.encode(), mode), Some(info));
            let members = logic.members(*v, &info, &out.pec);
            prop_assert!(
                members.iter().any(|m| m.vpn == *v),
                "PTE must be a member of its own group"
            );
            prop_assert!(members.len() as u32 >= 2, "coalesced group of one");
            for m in &members {
                let actual = pt.lookup(m.vpn).expect("member mapped");
                // 1. same local PFN modulo run offset
                let run_base_pte = p.pfn().local().0 - info.intra_order() as u64;
                prop_assert_eq!(
                    actual.pfn().local().0,
                    run_base_pte + m.intra_order as u64,
                    "local-PFN invariant broken at {}", m.vpn
                );
                // 2. calculation soundness
                let calc = logic
                    .calc_pfn(*v, p.pfn(), &info, &out.pec, m.vpn)
                    .expect("member calculable");
                prop_assert_eq!(calc, actual.pfn(), "miscalculated {}", m.vpn);
            }
            // 4. no leakage: non-members never calculate
            for (w, _) in &out.ptes {
                if members.iter().any(|m| m.vpn == *w) {
                    continue;
                }
                prop_assert!(
                    logic.calc_pfn(*v, p.pfn(), &info, &out.pec, *w).is_none(),
                    "cross-group calculation {} from {}", w, v
                );
            }
        }
    }

    #[test]
    fn coalescing_candidates_cover_all_real_groups(
        pages in 4u64..120,
        gran in 1u64..8,
        n_chiplets in 2u8..5,
        max_merged in 1u8..3,
    ) {
        // Every VPN that can calculate `target` must appear in `target`'s
        // candidate set — otherwise the F-Barre LCF path would miss real
        // opportunities.
        let mode = if max_merged > 1 { CoalMode::Expanded } else { CoalMode::Base };
        let mut frames: Vec<FrameAllocator> = (0..n_chiplets as usize)
            .map(|_| FrameAllocator::new(4096))
            .collect();
        let plan = MappingPlan::interleaved(
            VpnRange { start: Vpn(0x10), pages },
            gran,
            &chiplets(n_chiplets),
        );
        let mut driver = BarreAllocator::new(mode, max_merged);
        let out = driver.allocate(&plan, &mut frames).unwrap();
        let logic = PecLogic::new(mode);
        for (v, p) in &out.ptes {
            let Some(info) = CoalInfo::decode(p.coal_bits(), mode) else { continue };
            for m in logic.members(*v, &info, &out.pec) {
                if m.vpn == *v {
                    continue;
                }
                let cands = logic.coalescing_candidates(&out.pec, m.vpn, max_merged);
                prop_assert!(
                    cands.contains(v),
                    "candidate set of {} misses provider {}", m.vpn, v
                );
            }
        }
    }

    #[test]
    fn pte_coal_bits_roundtrip_all_layouts(bits in 0u16..(1 << 11)) {
        for mode in [CoalMode::Base, CoalMode::Expanded, CoalMode::Wide] {
            if let Some(info) = CoalInfo::decode(bits, mode) {
                // Decoded info re-encodes to an equivalent decoding.
                let re = CoalInfo::decode(info.encode(), mode);
                prop_assert_eq!(re, Some(info));
            }
        }
    }
}
