//! Randomized property tests of the Barre Chord core invariants.
//!
//! These are the paper's correctness claims, checked over randomized
//! plans, fragmentation patterns and PTE layouts:
//!
//! 1. **Same-local-PFN invariant**: every member of a coalescing group is
//!    mapped at the same local PFN (modulo intra-run offset).
//! 2. **Calculation soundness**: for any two members of a group, the PEC
//!    calculator derives exactly the frame the page table holds.
//! 3. **Encoding roundtrip**: PTE coalescing bits survive encode/decode
//!    under every layout.
//! 4. **No cross-group leakage**: pages outside a group are never
//!    "calculated".
//!
//! Case generation is driven by the workspace's own deterministic
//! [`Rng`] (the external proptest dependency would break the offline,
//! path-only dependency build), so every failure reproduces from the
//! printed case seed.

use barre_chord::core::driver::{BarreAllocator, MappingPlan};
use barre_chord::core::{CoalInfo, CoalMode, PecLogic};
use barre_chord::mem::virt_alloc::VpnRange;
use barre_chord::mem::{ChipletId, FrameAllocator, PageTable, Vpn};
use barre_chord::sim::Rng;

fn chiplets(n: u8) -> Vec<ChipletId> {
    (0..n).map(ChipletId).collect()
}

#[test]
fn driver_allocation_is_sound() {
    for case in 0..64u64 {
        let mut g = Rng::new(0xC0A1 ^ case);
        let pages = 1 + g.next_below(199);
        let gran = 1 + g.next_below(11);
        let n_chiplets = 2 + g.next_below(6) as u8;
        let mode = if g.chance(0.5) {
            CoalMode::Base
        } else {
            CoalMode::Expanded
        };
        let max_merged = if mode == CoalMode::Base {
            1
        } else {
            (1 + g.next_below(4) as u8).min(4)
        };
        let frag = g.next_f64() * 0.6;
        let seed = g.next_below(1000);

        let mut frames: Vec<FrameAllocator> = (0..n_chiplets as usize)
            .map(|_| FrameAllocator::new(4096))
            .collect();
        let mut rng = Rng::new(seed);
        for f in frames.iter_mut() {
            f.fragment(&mut rng, frag);
        }
        let plan = MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x100),
                pages,
            },
            gran,
            &chiplets(n_chiplets),
        );
        let mut driver = BarreAllocator::new(mode, max_merged);
        let out = match driver.allocate(&plan, &mut frames) {
            Ok(o) => o,
            Err(_) => continue, // legitimately out of memory under heavy fragmentation
        };

        // Every page mapped exactly once, on its planned chiplet.
        assert_eq!(out.ptes.len() as u64, pages, "case {case}");
        let mut pt = PageTable::new(0);
        for (v, p) in &out.ptes {
            assert_eq!(
                p.pfn().chiplet(),
                plan.chiplet_of(*v).unwrap(),
                "case {case}: page on wrong chiplet"
            );
            assert!(pt.map(*v, *p).is_none(), "case {case}: double mapping");
        }

        let logic = PecLogic::new(mode);
        for (v, p) in &out.ptes {
            let Some(info) = CoalInfo::decode(p.coal_bits(), mode) else {
                continue;
            };
            // 3. encoding roundtrip
            assert_eq!(CoalInfo::decode(info.encode(), mode), Some(info));
            let members = logic.members(*v, &info, &out.pec);
            assert!(
                members.iter().any(|m| m.vpn == *v),
                "case {case}: PTE must be a member of its own group"
            );
            assert!(
                members.len() as u32 >= 2,
                "case {case}: coalesced group of one"
            );
            for m in &members {
                let actual = pt.lookup(m.vpn).expect("member mapped");
                // 1. same local PFN modulo run offset
                let run_base_pte = p.pfn().local().0 - info.intra_order() as u64;
                assert_eq!(
                    actual.pfn().local().0,
                    run_base_pte + m.intra_order as u64,
                    "case {case}: local-PFN invariant broken at {}",
                    m.vpn
                );
                // 2. calculation soundness
                let calc = logic
                    .calc_pfn(*v, p.pfn(), &info, &out.pec, m.vpn)
                    .expect("member calculable");
                assert_eq!(calc, actual.pfn(), "case {case}: miscalculated {}", m.vpn);
            }
            // 4. no leakage: non-members never calculate
            for (w, _) in &out.ptes {
                if members.iter().any(|m| m.vpn == *w) {
                    continue;
                }
                assert!(
                    logic.calc_pfn(*v, p.pfn(), &info, &out.pec, *w).is_none(),
                    "case {case}: cross-group calculation {} from {}",
                    w,
                    v
                );
            }
        }
    }
}

#[test]
fn coalescing_candidates_cover_all_real_groups() {
    // Every VPN that can calculate `target` must appear in `target`'s
    // candidate set — otherwise the F-Barre LCF path would miss real
    // opportunities.
    for case in 0..64u64 {
        let mut g = Rng::new(0xCA4D ^ case);
        let pages = 4 + g.next_below(116);
        let gran = 1 + g.next_below(7);
        let n_chiplets = 2 + g.next_below(3) as u8;
        let max_merged = 1 + g.next_below(2) as u8;
        let mode = if max_merged > 1 {
            CoalMode::Expanded
        } else {
            CoalMode::Base
        };
        let mut frames: Vec<FrameAllocator> = (0..n_chiplets as usize)
            .map(|_| FrameAllocator::new(4096))
            .collect();
        let plan = MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x10),
                pages,
            },
            gran,
            &chiplets(n_chiplets),
        );
        let mut driver = BarreAllocator::new(mode, max_merged);
        let out = driver.allocate(&plan, &mut frames).unwrap();
        let logic = PecLogic::new(mode);
        for (v, p) in &out.ptes {
            let Some(info) = CoalInfo::decode(p.coal_bits(), mode) else {
                continue;
            };
            for m in logic.members(*v, &info, &out.pec) {
                if m.vpn == *v {
                    continue;
                }
                let cands = logic.coalescing_candidates(&out.pec, m.vpn, max_merged);
                assert!(
                    cands.contains(v),
                    "case {case}: candidate set of {} misses provider {}",
                    m.vpn,
                    v
                );
            }
        }
    }
}

#[test]
fn pte_coal_bits_roundtrip_all_layouts() {
    // Exhaustive over the full 11-bit space — cheaper than sampling.
    for bits in 0u16..(1 << 11) {
        for mode in [CoalMode::Base, CoalMode::Expanded, CoalMode::Wide] {
            if let Some(info) = CoalInfo::decode(bits, mode) {
                // Decoded info re-encodes to an equivalent decoding.
                let re = CoalInfo::decode(info.encode(), mode);
                assert_eq!(re, Some(info), "bits {bits:#x} under {mode:?}");
            }
        }
    }
}
