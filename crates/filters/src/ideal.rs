//! Exact counting-set filter.
//!
//! The *Least* baseline is modeled per the paper's §VII-A: "implemented by
//! applying an ideal 1024-entry cuckoo filter (100% true positive) as the
//! local TLB tracker". [`IdealFilter`] provides that: exact membership with
//! multiplicity, optionally capacity-bounded.

use std::collections::BTreeMap;

use crate::Filter;

/// An exact multiset filter with optional capacity.
///
/// When a capacity is set and reached, further inserts are dropped (the
/// tracker simply stops covering new entries, as a full filter would).
///
/// # Example
///
/// ```
/// use barre_filters::{Filter, IdealFilter};
///
/// let mut f = IdealFilter::unbounded();
/// f.insert(7);
/// f.insert(7);
/// f.remove(7);
/// assert!(f.contains(7)); // one copy remains
/// ```
#[derive(Debug, Clone, Default)]
pub struct IdealFilter {
    counts: BTreeMap<u64, u32>,
    len: usize,
    capacity: Option<usize>,
    dropped: u64,
}

impl IdealFilter {
    /// An exact filter with no capacity bound.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// An exact filter that drops inserts beyond `capacity` stored items.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// Items dropped because the filter was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Filter for IdealFilter {
    fn insert(&mut self, key: u64) -> bool {
        if let Some(cap) = self.capacity {
            if self.len >= cap {
                self.dropped += 1;
                return false;
            }
        }
        *self.counts.entry(key).or_insert(0) += 1;
        self.len += 1;
        true
    }

    fn remove(&mut self, key: u64) -> bool {
        match self.counts.get_mut(&key) {
            Some(c) => {
                *c -= 1;
                if *c == 0 {
                    self.counts.remove(&key);
                }
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.counts.contains_key(&key)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.counts.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_membership() {
        let mut f = IdealFilter::unbounded();
        f.insert(1);
        assert!(f.contains(1));
        assert!(!f.contains(2));
        assert!(f.remove(1));
        assert!(!f.contains(1));
        assert!(!f.remove(1));
    }

    #[test]
    fn multiset_semantics() {
        let mut f = IdealFilter::unbounded();
        f.insert(5);
        f.insert(5);
        assert_eq!(f.len(), 2);
        f.remove(5);
        assert!(f.contains(5));
        f.remove(5);
        assert!(!f.contains(5));
    }

    #[test]
    fn capacity_drops() {
        let mut f = IdealFilter::with_capacity(2);
        assert!(f.insert(1));
        assert!(f.insert(2));
        assert!(!f.insert(3));
        assert_eq!(f.dropped(), 1);
        f.remove(1);
        assert!(f.insert(3));
    }

    #[test]
    fn clear_resets() {
        let mut f = IdealFilter::with_capacity(4);
        f.insert(1);
        f.clear();
        assert!(f.is_empty());
        assert!(f.insert(9));
    }
}
