//! Cuckoo filter (Fan et al., CoNEXT 2014).
//!
//! Partial-key cuckoo hashing: an item `x` has two candidate buckets,
//!
//! ```text
//! i1 = hash(x)            mod m
//! i2 = i1 ^ hash(fp(x))   mod m
//! ```
//!
//! so either bucket is reachable from the other using only the stored
//! fingerprint — the property that makes relocation (and therefore
//! deletion) possible without the original key.

use barre_sim::Rng;

use crate::Filter;

/// Maximum displacement chain length before an insert is declared failed,
/// as in the original paper.
const MAX_KICKS: usize = 500;

/// A cuckoo filter with `rows` buckets of `ways` fingerprints.
///
/// # Example
///
/// ```
/// use barre_filters::{CuckooFilter, Filter};
///
/// let mut f = CuckooFilter::paper_default(7);
/// f.insert(0xA1);
/// assert!(f.contains(0xA1));
/// f.remove(0xA1);
/// assert!(!f.contains(0xA1));
/// ```
#[derive(Debug, Clone)]
pub struct CuckooFilter {
    slots: Vec<u16>, // 0 = empty, else fingerprint
    rows: usize,
    ways: usize,
    fp_bits: u32,
    len: usize,
    seed: u64,
    kick_rng: Rng,
    dropped: u64,
}

fn mix(x: u64, seed: u64) -> u64 {
    // SplitMix64 finalizer over a seeded input; a high-quality 64-bit mixer.
    let mut z = x ^ seed.rotate_left(25) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CuckooFilter {
    /// Creates a filter with `rows` buckets, `ways` slots per bucket and
    /// `fp_bits`-bit fingerprints. `seed` perturbs the hash functions so
    /// distinct filters alias differently.
    ///
    /// # Panics
    ///
    /// Panics unless `rows` is a power of two, `ways > 0`, and
    /// `1 <= fp_bits <= 16`.
    pub fn new(rows: usize, ways: usize, fp_bits: u32, seed: u64) -> Self {
        assert!(rows.is_power_of_two(), "rows must be a power of two");
        assert!(ways > 0, "ways must be nonzero");
        assert!((1..=16).contains(&fp_bits), "fp_bits must be in 1..=16");
        Self {
            slots: vec![0; rows * ways],
            rows,
            ways,
            fp_bits,
            len: 0,
            seed,
            kick_rng: Rng::new(seed ^ 0xC0FF_EE00),
            dropped: 0,
        }
    }

    /// The paper's Table II configuration: 256 rows, 4 ways, 9-bit
    /// fingerprints (1024 entries).
    pub fn paper_default(seed: u64) -> Self {
        Self::new(256, 4, 9, seed)
    }

    /// Number of buckets.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Slots per bucket.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.rows * self.ways
    }

    /// Load factor in `[0, 1]`.
    pub fn load(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    /// Items dropped due to insertion failure (over-full table).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The theoretical false-positive upper bound `2·ways / 2^fp_bits`
    /// (§VII-K quotes 1.53% for the default configuration).
    pub fn theoretical_fp_rate(&self) -> f64 {
        (2.0 * self.ways as f64) / (1u64 << self.fp_bits) as f64
    }

    fn fingerprint(&self, key: u64) -> u16 {
        // Fingerprints must be nonzero (0 marks an empty slot).
        let h = mix(key, self.seed ^ 0xF1F1_F1F1);
        let mask = (1u32 << self.fp_bits) - 1;
        let fp = (h as u32) & mask;
        if fp == 0 {
            1
        } else {
            fp as u16
        }
    }

    fn index1(&self, key: u64) -> usize {
        (mix(key, self.seed) as usize) & (self.rows - 1)
    }

    fn alt_index(&self, index: usize, fp: u16) -> usize {
        (index ^ (mix(fp as u64, self.seed ^ 0xA5A5) as usize)) & (self.rows - 1)
    }

    fn bucket(&self, row: usize) -> &[u16] {
        &self.slots[row * self.ways..(row + 1) * self.ways]
    }

    fn bucket_mut(&mut self, row: usize) -> &mut [u16] {
        &mut self.slots[row * self.ways..(row + 1) * self.ways]
    }

    fn try_place(&mut self, row: usize, fp: u16) -> bool {
        let b = self.bucket_mut(row);
        for s in b {
            if *s == 0 {
                *s = fp;
                return true;
            }
        }
        false
    }
}

impl Filter for CuckooFilter {
    fn insert(&mut self, key: u64) -> bool {
        let fp = self.fingerprint(key);
        let i1 = self.index1(key);
        let i2 = self.alt_index(i1, fp);
        if self.try_place(i1, fp) || self.try_place(i2, fp) {
            self.len += 1;
            return true;
        }
        // Relocate: kick a random resident fingerprint.
        let mut row = if self.kick_rng.chance(0.5) { i1 } else { i2 };
        let mut fp = fp;
        for _ in 0..MAX_KICKS {
            let victim_slot = self.kick_rng.index(self.ways);
            let b = self.bucket_mut(row);
            std::mem::swap(&mut b[victim_slot], &mut fp);
            row = self.alt_index(row, fp);
            if self.try_place(row, fp) {
                self.len += 1;
                return true;
            }
        }
        // Insertion failed; the displaced fingerprint is dropped. A real
        // deployment would keep a one-item stash; for sharer prediction a
        // dropped entry only costs a missed sharing opportunity.
        self.dropped += 1;
        false
    }

    fn remove(&mut self, key: u64) -> bool {
        let fp = self.fingerprint(key);
        let i1 = self.index1(key);
        let i2 = self.alt_index(i1, fp);
        for row in [i1, i2] {
            let b = self.bucket_mut(row);
            if let Some(slot) = b.iter_mut().find(|s| **s == fp) {
                *slot = 0;
                self.len -= 1;
                return true;
            }
        }
        false
    }

    fn contains(&self, key: u64) -> bool {
        let fp = self.fingerprint(key);
        let i1 = self.index1(key);
        let i2 = self.alt_index(i1, fp);
        self.bucket(i1).contains(&fp) || self.bucket(i2).contains(&fp)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.slots.fill(0);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_delete() {
        let mut f = CuckooFilter::paper_default(1);
        for k in 0..100u64 {
            assert!(f.insert(k));
        }
        for k in 0..100u64 {
            assert!(f.contains(k), "lost key {k}");
        }
        for k in 0..100u64 {
            assert!(f.remove(k));
        }
        assert!(f.is_empty());
    }

    #[test]
    fn no_false_negatives_until_drop() {
        let mut f = CuckooFilter::new(64, 4, 12, 3);
        let mut stored = Vec::new();
        for k in 0..200u64 {
            if f.insert(k * 7919) {
                stored.push(k * 7919);
            }
        }
        for &k in &stored {
            assert!(f.contains(k));
        }
    }

    #[test]
    fn false_positive_rate_near_theory() {
        let mut f = CuckooFilter::paper_default(5);
        // ~50% load.
        for k in 0..512u64 {
            f.insert(k);
        }
        let mut fps = 0u32;
        let probes = 100_000u32;
        for k in 0..probes as u64 {
            if f.contains(1_000_000 + k) {
                fps += 1;
            }
        }
        let rate = fps as f64 / probes as f64;
        // Theory bound is 2*4/512 = 1.56%; at half load expect below that.
        assert!(rate < 0.02, "fp rate {rate}");
        assert!((f.theoretical_fp_rate() - 0.015625).abs() < 1e-12);
    }

    #[test]
    fn alt_index_is_involution() {
        let f = CuckooFilter::paper_default(9);
        for k in 0..1000u64 {
            let fp = f.fingerprint(k);
            let i1 = f.index1(k);
            let i2 = f.alt_index(i1, fp);
            assert_eq!(f.alt_index(i2, fp), i1, "key {k}");
        }
    }

    #[test]
    fn high_load_reports_drops() {
        let mut f = CuckooFilter::new(16, 4, 9, 2); // 64 slots
        let mut failed = 0;
        for k in 0..200u64 {
            if !f.insert(k) {
                failed += 1;
            }
        }
        assert!(failed > 0);
        assert_eq!(f.dropped(), failed);
        assert!(f.len() <= f.capacity());
    }

    #[test]
    fn duplicate_inserts_are_counted() {
        let mut f = CuckooFilter::paper_default(4);
        assert!(f.insert(42));
        assert!(f.insert(42));
        assert_eq!(f.len(), 2);
        assert!(f.remove(42));
        assert!(f.contains(42)); // one copy left
        assert!(f.remove(42));
        assert!(!f.contains(42));
    }

    #[test]
    fn clear_empties() {
        let mut f = CuckooFilter::paper_default(6);
        for k in 0..50 {
            f.insert(k);
        }
        f.clear();
        assert!(f.is_empty());
        assert!(!f.contains(7));
    }

    #[test]
    fn remove_absent_is_false() {
        let mut f = CuckooFilter::paper_default(8);
        assert!(!f.remove(123));
    }

    #[test]
    fn load_factor_tracks() {
        let mut f = CuckooFilter::new(16, 4, 9, 11);
        for k in 0..32u64 {
            f.insert(k);
        }
        assert!((f.load() - 0.5).abs() < 1e-12);
    }
}
