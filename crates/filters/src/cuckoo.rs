//! Cuckoo filter (Fan et al., CoNEXT 2014).
//!
//! Partial-key cuckoo hashing: an item `x` has two candidate buckets,
//!
//! ```text
//! i1 = hash(x)            mod m
//! i2 = i1 ^ hash(fp(x))   mod m
//! ```
//!
//! so either bucket is reachable from the other using only the stored
//! fingerprint — the property that makes relocation (and therefore
//! deletion) possible without the original key.

use barre_sim::Rng;

use crate::Filter;

/// Maximum displacement chain length before an insert is declared failed,
/// as in the original paper.
const MAX_KICKS: usize = 500;

/// The two candidate rows and fingerprint of one key, precomputed so a
/// single hash can serve many probes.
///
/// A `KeyHash` is only meaningful for filters sharing the geometry and
/// seed of the filter that produced it ([`CuckooFilter::key_hash`]
/// documents the contract); probing an unrelated filter with it is not
/// unsafe, just meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyHash {
    fp: u16,
    i1: usize,
    i2: usize,
}

/// A cuckoo filter with `rows` buckets of `ways` fingerprints.
///
/// # Example
///
/// ```
/// use barre_filters::{CuckooFilter, Filter};
///
/// let mut f = CuckooFilter::paper_default(7);
/// f.insert(0xA1);
/// assert!(f.contains(0xA1));
/// f.remove(0xA1);
/// assert!(!f.contains(0xA1));
/// ```
#[derive(Debug, Clone)]
pub struct CuckooFilter {
    slots: Vec<u16>, // 0 = empty, else fingerprint
    rows: usize,
    ways: usize,
    fp_bits: u32,
    len: usize,
    seed: u64,
    kick_rng: Rng,
    dropped: u64,
    max_kicks: usize,
    // alt_xor[fp] = hash(fp) & (rows - 1), so the partial-key relocation
    // `i2 = i1 ^ hash(fp)` is a table lookup instead of a 64-bit mix on
    // every probe. 2^fp_bits entries, built once at construction.
    alt_xor: Vec<u32>,
}

fn mix(x: u64, seed: u64) -> u64 {
    // SplitMix64 finalizer over a seeded input; a high-quality 64-bit mixer.
    let mut z = x ^ seed.rotate_left(25) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CuckooFilter {
    /// Creates a filter with `rows` buckets, `ways` slots per bucket and
    /// `fp_bits`-bit fingerprints. `seed` perturbs the hash functions so
    /// distinct filters alias differently.
    ///
    /// # Panics
    ///
    /// Panics unless `rows` is a power of two, `ways > 0`, and
    /// `1 <= fp_bits <= 16`.
    pub fn new(rows: usize, ways: usize, fp_bits: u32, seed: u64) -> Self {
        Self::with_max_kicks(rows, ways, fp_bits, seed, MAX_KICKS)
    }

    /// Creates a filter like [`new`](Self::new) but with a bounded
    /// displacement chain: an insert gives up after `max_kicks`
    /// relocations instead of the paper's 500. Hardware filter pipelines
    /// budget a handful of swaps per insert; a small bound turns the
    /// saturated-table worst case (hundreds of futile kicks per insert)
    /// into a constant-cost drop, at the price of dropping slightly
    /// earlier when a long chain would eventually have found a slot.
    ///
    /// # Panics
    ///
    /// Panics unless `rows` is a power of two, `ways > 0`, and
    /// `1 <= fp_bits <= 16`.
    pub fn with_max_kicks(
        rows: usize,
        ways: usize,
        fp_bits: u32,
        seed: u64,
        max_kicks: usize,
    ) -> Self {
        assert!(rows.is_power_of_two(), "rows must be a power of two");
        assert!(ways > 0, "ways must be nonzero");
        assert!((1..=16).contains(&fp_bits), "fp_bits must be in 1..=16");
        let alt_xor = (0..1u32 << fp_bits)
            .map(|fp| (mix(fp as u64, seed ^ 0xA5A5) as u32) & (rows as u32 - 1))
            .collect();
        Self {
            slots: vec![0; rows * ways],
            rows,
            ways,
            fp_bits,
            len: 0,
            seed,
            kick_rng: Rng::new(seed ^ 0xC0FF_EE00),
            dropped: 0,
            max_kicks,
            alt_xor,
        }
    }

    /// The paper's Table II configuration: 256 rows, 4 ways, 9-bit
    /// fingerprints (1024 entries).
    pub fn paper_default(seed: u64) -> Self {
        Self::new(256, 4, 9, seed)
    }

    /// Number of buckets.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Slots per bucket.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.rows * self.ways
    }

    /// Load factor in `[0, 1]`.
    pub fn load(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    /// Items dropped due to insertion failure (over-full table).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The theoretical false-positive upper bound `2·ways / 2^fp_bits`
    /// (§VII-K quotes 1.53% for the default configuration).
    pub fn theoretical_fp_rate(&self) -> f64 {
        (2.0 * self.ways as f64) / (1u64 << self.fp_bits) as f64
    }

    /// Precomputes the fingerprint and both candidate rows of `key` with a
    /// single `mix()` call: the row index comes from the low bits and the
    /// fingerprint from the top 16 (they never overlap — `fp_bits <= 16`
    /// and row counts stay far below 2^48).
    ///
    /// The result is reusable across every filter constructed with the
    /// same `(rows, ways, fp_bits, seed)` tuple, which is how a bank of
    /// peer filters serves one probe with one hash.
    pub fn key_hash(&self, key: u64) -> KeyHash {
        let h = mix(key, self.seed);
        let i1 = (h as usize) & (self.rows - 1);
        let mask = (1u32 << self.fp_bits) - 1;
        let raw = ((h >> 48) as u32) & mask;
        let fp = if raw == 0 { 1 } else { raw as u16 };
        KeyHash {
            fp,
            i1,
            i2: self.alt_index(i1, fp),
        }
    }

    #[cfg(test)]
    fn fingerprint(&self, key: u64) -> u16 {
        self.key_hash(key).fp
    }

    #[cfg(test)]
    fn index1(&self, key: u64) -> usize {
        self.key_hash(key).i1
    }

    fn alt_index(&self, index: usize, fp: u16) -> usize {
        // `fp` is masked to `fp_bits` at creation and `alt_xor` holds
        // `1 << fp_bits` entries, so the lookup cannot actually miss;
        // checked access keeps the path provably panic-free anyway.
        let xor = self.alt_xor.get(fp as usize).copied().unwrap_or(0);
        (index ^ xor as usize) & (self.rows - 1)
    }

    /// Membership probe from a precomputed [`KeyHash`] — the batched
    /// lookup used when one key is checked against several same-seed
    /// filters.
    pub fn contains_hashed(&self, h: KeyHash) -> bool {
        self.bucket(h.i1).contains(&h.fp) || self.bucket(h.i2).contains(&h.fp)
    }

    fn bucket(&self, row: usize) -> &[u16] {
        // `row` is always masked to `rows` and `slots.len() == rows *
        // ways`, so the range is in-bounds by construction; checked
        // slicing keeps the probe path provably panic-free.
        let start = row * self.ways;
        self.slots.get(start..start + self.ways).unwrap_or(&[])
    }

    fn bucket_mut(&mut self, row: usize) -> &mut [u16] {
        &mut self.slots[row * self.ways..(row + 1) * self.ways]
    }

    fn try_place(&mut self, row: usize, fp: u16) -> bool {
        let b = self.bucket_mut(row);
        for s in b {
            if *s == 0 {
                *s = fp;
                return true;
            }
        }
        false
    }
}

impl Filter for CuckooFilter {
    fn insert(&mut self, key: u64) -> bool {
        let KeyHash { fp, i1, i2 } = self.key_hash(key);
        if self.try_place(i1, fp) || self.try_place(i2, fp) {
            self.len += 1;
            return true;
        }
        // Relocate: kick a random resident fingerprint.
        let mut row = if self.kick_rng.chance(0.5) { i1 } else { i2 };
        let mut fp = fp;
        for _ in 0..self.max_kicks {
            let victim_slot = self.kick_rng.index(self.ways);
            let b = self.bucket_mut(row);
            std::mem::swap(&mut b[victim_slot], &mut fp);
            row = self.alt_index(row, fp);
            if self.try_place(row, fp) {
                self.len += 1;
                return true;
            }
        }
        // Insertion failed; the displaced fingerprint is dropped. A real
        // deployment would keep a one-item stash; for sharer prediction a
        // dropped entry only costs a missed sharing opportunity.
        self.dropped += 1;
        false
    }

    fn remove(&mut self, key: u64) -> bool {
        let KeyHash { fp, i1, i2 } = self.key_hash(key);
        for row in [i1, i2] {
            let b = self.bucket_mut(row);
            if let Some(slot) = b.iter_mut().find(|s| **s == fp) {
                *slot = 0;
                self.len -= 1;
                return true;
            }
        }
        false
    }

    fn contains(&self, key: u64) -> bool {
        self.contains_hashed(self.key_hash(key))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.slots.fill(0);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_delete() {
        let mut f = CuckooFilter::paper_default(1);
        for k in 0..100u64 {
            assert!(f.insert(k));
        }
        for k in 0..100u64 {
            assert!(f.contains(k), "lost key {k}");
        }
        for k in 0..100u64 {
            assert!(f.remove(k));
        }
        assert!(f.is_empty());
    }

    #[test]
    fn no_false_negatives_until_drop() {
        let mut f = CuckooFilter::new(64, 4, 12, 3);
        let mut stored = Vec::new();
        for k in 0..200u64 {
            if f.insert(k * 7919) {
                stored.push(k * 7919);
            }
        }
        for &k in &stored {
            assert!(f.contains(k));
        }
    }

    #[test]
    fn false_positive_rate_near_theory() {
        let mut f = CuckooFilter::paper_default(5);
        // ~50% load.
        for k in 0..512u64 {
            f.insert(k);
        }
        let mut fps = 0u32;
        let probes = 100_000u32;
        for k in 0..probes as u64 {
            if f.contains(1_000_000 + k) {
                fps += 1;
            }
        }
        let rate = fps as f64 / probes as f64;
        // Theory bound is 2*4/512 = 1.56%; at half load expect below that.
        assert!(rate < 0.02, "fp rate {rate}");
        assert!((f.theoretical_fp_rate() - 0.015625).abs() < 1e-12);
    }

    #[test]
    fn alt_index_is_involution() {
        let f = CuckooFilter::paper_default(9);
        for k in 0..1000u64 {
            let fp = f.fingerprint(k);
            let i1 = f.index1(k);
            let i2 = f.alt_index(i1, fp);
            assert_eq!(f.alt_index(i2, fp), i1, "key {k}");
        }
    }

    #[test]
    fn high_load_reports_drops() {
        let mut f = CuckooFilter::new(16, 4, 9, 2); // 64 slots
        let mut failed = 0;
        for k in 0..200u64 {
            if !f.insert(k) {
                failed += 1;
            }
        }
        assert!(failed > 0);
        assert_eq!(f.dropped(), failed);
        assert!(f.len() <= f.capacity());
    }

    #[test]
    fn duplicate_inserts_are_counted() {
        let mut f = CuckooFilter::paper_default(4);
        assert!(f.insert(42));
        assert!(f.insert(42));
        assert_eq!(f.len(), 2);
        assert!(f.remove(42));
        assert!(f.contains(42)); // one copy left
        assert!(f.remove(42));
        assert!(!f.contains(42));
    }

    #[test]
    fn clear_empties() {
        let mut f = CuckooFilter::paper_default(6);
        for k in 0..50 {
            f.insert(k);
        }
        f.clear();
        assert!(f.is_empty());
        assert!(!f.contains(7));
    }

    #[test]
    fn remove_absent_is_false() {
        let mut f = CuckooFilter::paper_default(8);
        assert!(!f.remove(123));
    }

    #[test]
    fn key_hash_matches_scalar_probe() {
        let mut f = CuckooFilter::paper_default(13);
        for k in 0..300u64 {
            f.insert(k * 31);
        }
        for k in 0..600u64 {
            let h = f.key_hash(k * 31);
            assert_eq!(f.contains_hashed(h), f.contains(k * 31), "key {k}");
        }
    }

    #[test]
    fn key_hash_shared_across_same_seed_filters() {
        // Two filters with identical geometry and seed: one hash serves
        // probes against both (the FilterBank batched-RCF contract).
        let mut a = CuckooFilter::paper_default(21);
        let mut b = CuckooFilter::paper_default(21);
        a.insert(0xA1);
        b.insert(0xB2);
        let ha = a.key_hash(0xA1);
        let hb = a.key_hash(0xB2);
        assert_eq!(ha, b.key_hash(0xA1));
        assert!(a.contains_hashed(ha) && !a.contains_hashed(hb));
        assert!(b.contains_hashed(hb) && !b.contains_hashed(ha));
    }

    #[test]
    fn bounded_kicks_drop_instead_of_walking() {
        // A saturated 8-slot table: budget-2 inserts must still succeed
        // while space remains, then fail fast without corrupting `len`.
        let mut f = CuckooFilter::with_max_kicks(2, 4, 9, 17, 2);
        let mut stored = 0u64;
        for k in 0..64u64 {
            if f.insert(k) {
                stored += 1;
            }
        }
        assert_eq!(f.len() as u64, stored);
        assert!(f.len() <= f.capacity());
        assert!(f.dropped() > 0);
    }

    #[test]
    fn load_factor_tracks() {
        let mut f = CuckooFilter::new(16, 4, 9, 11);
        for k in 0..32u64 {
            f.insert(k);
        }
        assert!((f.load() - 0.5).abs() < 1e-12);
    }
}
