//! Membership filters used for sharer prediction.
//!
//! F-Barre locates which GPU chiplet can translate a VPN by consulting one
//! *remote coalescing-group filter* (RCF) per peer and one *local
//! coalescing-group filter* (LCF) — all cuckoo filters, because sharer
//! prediction requires **deletion** (entries must leave the filter when the
//! backing TLB entry is evicted), which Bloom filters cannot do.
//!
//! * [`CuckooFilter`] — a from-scratch implementation of Fan et al.,
//!   *Cuckoo Filter: Practically Better than Bloom* (CoNEXT 2014), with the
//!   paper's Table II configuration (256 rows × 4 ways × 9-bit
//!   fingerprints) as the default.
//! * [`IdealFilter`] — an exact (100% true-positive, 0% false-positive)
//!   counting set, used to model the *Least* baseline's "ideal 1024-entry
//!   cuckoo filter" tracker and oracle sensitivity studies.

pub mod cuckoo;
pub mod ideal;

pub use cuckoo::{CuckooFilter, KeyHash};
pub use ideal::IdealFilter;

/// Common interface of sharer-prediction filters.
///
/// Object-safe so the system model can switch between real and ideal
/// filters at run time.
pub trait Filter {
    /// Inserts a key. Returns `false` if the filter had to drop the item
    /// (cuckoo insertion failure on an over-full table).
    fn insert(&mut self, key: u64) -> bool;

    /// Removes one copy of a key. Returns `false` if no copy was present.
    fn remove(&mut self, key: u64) -> bool;

    /// Whether the key may be present (subject to false positives).
    fn contains(&self, key: u64) -> bool;

    /// Number of stored fingerprints/items.
    fn len(&self) -> usize;

    /// Whether the filter is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all contents (TLB shootdown resets every LCF/RCF, §VI).
    fn clear(&mut self);
}
