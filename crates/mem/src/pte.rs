//! x86-64-style page table entries.
//!
//! The layout follows the hardware format the paper extends (Fig 8):
//!
//! ```text
//!  63      62..52       51..12   11..9  8..0
//!  NX   [ignored: 11b]   PFN     avail  flags
//! ```
//!
//! Bits 52–62 are ignored by the hardware walker and are where Barre Chord
//! stores its coalescing information (`coal_bitmap`, `inter-GPU_coal_order`,
//! and in the expanded format `intra-GPU_coal_order` and
//! `#_merged_coal_groups`). This crate only exposes the raw 11-bit field;
//! `barre-core` defines the two encodings on top of it.

use std::fmt;

use crate::addr::GlobalPfn;

/// Low-order architectural flag bits of a PTE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PteFlags {
    /// Entry maps a frame.
    pub present: bool,
    /// Writable mapping.
    pub writable: bool,
    /// User-accessible (GPU process) mapping.
    pub user: bool,
    /// Set by the walker on first access.
    pub accessed: bool,
    /// Set on first write.
    pub dirty: bool,
}

impl Default for PteFlags {
    fn default() -> Self {
        Self {
            present: true,
            writable: true,
            user: true,
            accessed: false,
            dirty: false,
        }
    }
}

const BIT_PRESENT: u64 = 1 << 0;
const BIT_WRITABLE: u64 = 1 << 1;
const BIT_USER: u64 = 1 << 2;
const BIT_ACCESSED: u64 = 1 << 5;
const BIT_DIRTY: u64 = 1 << 6;
const PFN_SHIFT: u32 = 12;
const PFN_MASK: u64 = ((1u64 << 40) - 1) << PFN_SHIFT; // bits 12..51
const COAL_SHIFT: u32 = 52;
const COAL_MASK: u64 = ((1u64 << 11) - 1) << COAL_SHIFT; // bits 52..62

/// A 64-bit page table entry.
///
/// # Example
///
/// ```
/// use barre_mem::{ChipletId, GlobalPfn, LocalPfn, Pte, PteFlags};
///
/// let pfn = GlobalPfn::compose(ChipletId(1), LocalPfn(0x75));
/// let pte = Pte::new(pfn, PteFlags::default());
/// assert!(pte.flags().present);
/// assert_eq!(pte.pfn(), pfn);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pte(u64);

impl Pte {
    /// An all-zero (non-present) entry.
    pub const NOT_PRESENT: Pte = Pte(0);

    /// Builds an entry mapping `pfn` with `flags` and zeroed coalescing bits.
    ///
    /// # Panics
    ///
    /// Panics if the PFN does not fit the 40-bit frame field.
    pub fn new(pfn: GlobalPfn, flags: PteFlags) -> Self {
        assert!(pfn.0 < (1 << 40), "PFN exceeds 40-bit field");
        let mut w = pfn.0 << PFN_SHIFT;
        if flags.present {
            w |= BIT_PRESENT;
        }
        if flags.writable {
            w |= BIT_WRITABLE;
        }
        if flags.user {
            w |= BIT_USER;
        }
        if flags.accessed {
            w |= BIT_ACCESSED;
        }
        if flags.dirty {
            w |= BIT_DIRTY;
        }
        Pte(w)
    }

    /// Raw 64-bit word.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs an entry from a raw word.
    pub fn from_raw(raw: u64) -> Self {
        Pte(raw)
    }

    /// Whether the entry maps a frame.
    pub fn is_present(self) -> bool {
        self.0 & BIT_PRESENT != 0
    }

    /// The mapped global frame number.
    pub fn pfn(self) -> GlobalPfn {
        GlobalPfn((self.0 & PFN_MASK) >> PFN_SHIFT)
    }

    /// Replaces the frame number, keeping flags and coalescing bits.
    pub fn with_pfn(self, pfn: GlobalPfn) -> Self {
        assert!(pfn.0 < (1 << 40), "PFN exceeds 40-bit field");
        Pte((self.0 & !PFN_MASK) | (pfn.0 << PFN_SHIFT))
    }

    /// Architectural flags.
    pub fn flags(self) -> PteFlags {
        PteFlags {
            present: self.0 & BIT_PRESENT != 0,
            writable: self.0 & BIT_WRITABLE != 0,
            user: self.0 & BIT_USER != 0,
            accessed: self.0 & BIT_ACCESSED != 0,
            dirty: self.0 & BIT_DIRTY != 0,
        }
    }

    /// The 11 ignored bits (52–62) Barre Chord repurposes for coalescing
    /// information.
    pub fn coal_bits(self) -> u16 {
        ((self.0 & COAL_MASK) >> COAL_SHIFT) as u16
    }

    /// Returns a copy with the 11-bit coalescing field replaced.
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds 11 bits.
    pub fn with_coal_bits(self, bits: u16) -> Self {
        assert!(bits < (1 << 11), "coalescing field exceeds 11 bits");
        Pte((self.0 & !COAL_MASK) | ((bits as u64) << COAL_SHIFT))
    }

    /// Marks the accessed bit (done by the walker).
    pub fn mark_accessed(self) -> Self {
        Pte(self.0 | BIT_ACCESSED)
    }

    /// Marks the dirty bit (done on write translations).
    pub fn mark_dirty(self) -> Self {
        Pte(self.0 | BIT_DIRTY)
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_present() {
            return write!(f, "PTE[not-present]");
        }
        write!(f, "PTE[{} coal={:#05x}]", self.pfn(), self.coal_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{ChipletId, LocalPfn};

    fn pfn(c: u8, l: u64) -> GlobalPfn {
        GlobalPfn::compose(ChipletId(c), LocalPfn(l))
    }

    #[test]
    fn roundtrips_pfn_and_flags() {
        let p = pfn(3, 0x114);
        let pte = Pte::new(p, PteFlags::default());
        assert_eq!(pte.pfn(), p);
        assert!(pte.is_present());
        assert!(pte.flags().writable);
        assert!(!pte.flags().dirty);
    }

    #[test]
    fn coal_bits_are_independent_of_pfn() {
        let pte = Pte::new(pfn(1, 0x75), PteFlags::default()).with_coal_bits(0b111_0000_0101);
        assert_eq!(pte.coal_bits(), 0b111_0000_0101);
        assert_eq!(pte.pfn(), pfn(1, 0x75));
        let moved = pte.with_pfn(pfn(2, 0x88));
        assert_eq!(moved.coal_bits(), 0b111_0000_0101);
        assert_eq!(moved.pfn(), pfn(2, 0x88));
    }

    #[test]
    #[should_panic(expected = "11 bits")]
    fn coal_bits_bounds_checked() {
        let _ = Pte::default().with_coal_bits(1 << 11);
    }

    #[test]
    fn not_present_default() {
        assert!(!Pte::NOT_PRESENT.is_present());
        assert_eq!(Pte::default(), Pte::NOT_PRESENT);
    }

    #[test]
    fn accessed_dirty_marks() {
        let pte = Pte::new(pfn(0, 1), PteFlags::default());
        let pte = pte.mark_accessed().mark_dirty();
        assert!(pte.flags().accessed);
        assert!(pte.flags().dirty);
    }

    #[test]
    fn raw_roundtrip() {
        let pte = Pte::new(pfn(2, 42), PteFlags::default()).with_coal_bits(0x55);
        assert_eq!(Pte::from_raw(pte.raw()), pte);
    }

    #[test]
    fn display_shows_structure() {
        let pte = Pte::new(pfn(1, 0x75), PteFlags::default());
        assert!(pte.to_string().contains("GPU1"));
        assert!(Pte::NOT_PRESENT.to_string().contains("not-present"));
    }
}
