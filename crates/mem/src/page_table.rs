//! A 4-level radix page table.
//!
//! Mirrors the x86-64 structure the IOMMU walks: four levels of 512-entry
//! tables indexed by 9-bit VPN slices. The simulator's walkers charge the
//! paper's 500-cycle walk latency; this structure provides the actual
//! mapping state, the PTE storage for coalescing bits, and the level count
//! used by partial-walk models.

use std::fmt;

use crate::addr::Vpn;
use crate::pte::Pte;

const LEVELS: u32 = 4;
const BITS_PER_LEVEL: u32 = 9;
const FANOUT: usize = 1 << BITS_PER_LEVEL;

/// Outcome of a page-table walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// The leaf entry, if the VPN is mapped with a present entry.
    pub pte: Option<Pte>,
    /// Number of table levels touched (1..=4); a hole high in the tree
    /// terminates the walk early.
    pub levels: u32,
}

enum Node {
    Interior(Box<[Option<Node>; FANOUT]>),
    Leaf(Box<[Pte; FANOUT]>),
}

impl Node {
    fn interior() -> Node {
        Node::Interior(Box::new(std::array::from_fn(|_| None)))
    }

    fn leaf() -> Node {
        Node::Leaf(Box::new([Pte::NOT_PRESENT; FANOUT]))
    }
}

/// A per-address-space 4-level page table.
///
/// # Example
///
/// ```
/// use barre_mem::{ChipletId, GlobalPfn, LocalPfn, PageTable, Pte, PteFlags, Vpn};
///
/// let mut pt = PageTable::new(1);
/// let pfn = GlobalPfn::compose(ChipletId(0), LocalPfn(0x75));
/// pt.map(Vpn(0x1), Pte::new(pfn, PteFlags::default()));
/// assert_eq!(pt.lookup(Vpn(0x1)).unwrap().pfn(), pfn);
/// assert!(pt.lookup(Vpn(0x2)).is_none());
/// ```
pub struct PageTable {
    asid: u16,
    root: Node,
    mapped: u64,
}

impl PageTable {
    /// Creates an empty table for address-space `asid`.
    pub fn new(asid: u16) -> Self {
        Self {
            asid,
            root: Node::interior(),
            mapped: 0,
        }
    }

    /// Address-space id this table translates.
    pub fn asid(&self) -> u16 {
        self.asid
    }

    /// Number of present leaf entries.
    pub fn len(&self) -> u64 {
        self.mapped
    }

    /// Whether no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.mapped == 0
    }

    fn index_at(vpn: Vpn, level: u32) -> usize {
        // level 0 = root, level 3 = leaf table.
        let shift = BITS_PER_LEVEL * (LEVELS - 1 - level);
        ((vpn.0 >> shift) as usize) & (FANOUT - 1)
    }

    /// Installs (or replaces) the leaf entry for `vpn`.
    ///
    /// Returns the previous entry if one was present.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` exceeds the 36-bit space covered by four levels.
    pub fn map(&mut self, vpn: Vpn, pte: Pte) -> Option<Pte> {
        assert!(
            vpn.0 < (1u64 << (BITS_PER_LEVEL * LEVELS)),
            "VPN out of range"
        );
        let mut node = &mut self.root;
        for level in 0..LEVELS - 1 {
            let idx = Self::index_at(vpn, level);
            let Node::Interior(children) = node else {
                // barre:allow(P001) tree shape invariant upheld by this function
                unreachable!("leaf encountered above the bottom level")
            };
            node = children[idx].get_or_insert_with(|| {
                if level == LEVELS - 2 {
                    Node::leaf()
                } else {
                    Node::interior()
                }
            });
        }
        let Node::Leaf(ptes) = node else {
            // barre:allow(P001) tree shape invariant upheld by this function
            unreachable!("interior node at leaf level")
        };
        let idx = Self::index_at(vpn, LEVELS - 1);
        let prev = ptes[idx];
        ptes[idx] = pte;
        match (prev.is_present(), pte.is_present()) {
            (false, true) => self.mapped += 1,
            (true, false) => self.mapped -= 1,
            _ => {}
        }
        if prev.is_present() {
            Some(prev)
        } else {
            None
        }
    }

    /// Leaf entry for `vpn` if mapped and present.
    pub fn lookup(&self, vpn: Vpn) -> Option<Pte> {
        let r = self.walk(vpn);
        r.pte
    }

    /// Full walk, reporting the number of levels touched. This is what a
    /// hardware walker experiences: a hole at level `k` stops the walk
    /// after `k+1` accesses.
    pub fn walk(&self, vpn: Vpn) -> WalkResult {
        if vpn.0 >= (1u64 << (BITS_PER_LEVEL * LEVELS)) {
            return WalkResult {
                pte: None,
                levels: 1,
            };
        }
        let mut node = &self.root;
        for level in 0..LEVELS - 1 {
            let idx = Self::index_at(vpn, level);
            let Node::Interior(children) = node else {
                // Shape corruption cannot happen (`map` maintains it);
                // degrade to a hole at this level rather than panic.
                return WalkResult {
                    pte: None,
                    levels: level + 1,
                };
            };
            match &children[idx] {
                Some(next) => node = next,
                None => {
                    return WalkResult {
                        pte: None,
                        levels: level + 1,
                    }
                }
            }
        }
        let Node::Leaf(ptes) = node else {
            // Same degradation as above: a malformed bottom level reads
            // as unmapped.
            return WalkResult {
                pte: None,
                levels: LEVELS,
            };
        };
        let pte = ptes[Self::index_at(vpn, LEVELS - 1)];
        WalkResult {
            pte: pte.is_present().then_some(pte),
            levels: LEVELS,
        }
    }

    /// Removes the mapping for `vpn`, returning the previous entry.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        if self.lookup(vpn).is_some() {
            self.map(vpn, Pte::NOT_PRESENT)
        } else {
            None
        }
    }

    /// Rewrites the entry for an already-mapped `vpn` in place (migration,
    /// coalescing-bit updates). Returns `false` if `vpn` was not mapped.
    pub fn update(&mut self, vpn: Vpn, f: impl FnOnce(Pte) -> Pte) -> bool {
        match self.lookup(vpn) {
            Some(old) => {
                let new = f(old);
                self.map(vpn, new);
                true
            }
            None => false,
        }
    }

    /// Present `(vpn, pte)` pairs in `[start, end)`, ascending.
    pub fn iter_range(&self, start: Vpn, end: Vpn) -> Vec<(Vpn, Pte)> {
        let mut out = Vec::new();
        for v in start.0..end.0 {
            if let Some(pte) = self.lookup(Vpn(v)) {
                out.push((Vpn(v), pte));
            }
        }
        out
    }

    /// Total number of walker memory accesses used so far... not tracked
    /// here; timing belongs to the IOMMU model. Number of levels is exposed
    /// for it instead.
    pub const fn levels() -> u32 {
        LEVELS
    }
}

impl fmt::Debug for PageTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageTable")
            .field("asid", &self.asid)
            .field("mapped", &self.mapped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{ChipletId, GlobalPfn, LocalPfn};
    use crate::pte::PteFlags;

    fn pte(c: u8, l: u64) -> Pte {
        Pte::new(
            GlobalPfn::compose(ChipletId(c), LocalPfn(l)),
            PteFlags::default(),
        )
    }

    #[test]
    fn map_lookup_unmap() {
        let mut pt = PageTable::new(0);
        assert!(pt.is_empty());
        pt.map(Vpn(0xABCDE), pte(1, 7));
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.lookup(Vpn(0xABCDE)).unwrap().pfn().local(), LocalPfn(7));
        assert_eq!(pt.unmap(Vpn(0xABCDE)).unwrap().pfn().local(), LocalPfn(7));
        assert!(pt.lookup(Vpn(0xABCDE)).is_none());
        assert!(pt.is_empty());
    }

    #[test]
    fn remap_returns_previous() {
        let mut pt = PageTable::new(0);
        assert!(pt.map(Vpn(5), pte(0, 1)).is_none());
        let prev = pt.map(Vpn(5), pte(0, 2)).unwrap();
        assert_eq!(prev.pfn().local(), LocalPfn(1));
        assert_eq!(pt.len(), 1);
    }

    #[test]
    fn walk_levels_reflect_tree_shape() {
        let mut pt = PageTable::new(0);
        // Unmapped space: hole at the root.
        assert_eq!(pt.walk(Vpn(0)).levels, 1);
        pt.map(Vpn(0), pte(0, 1));
        // Mapped VPN: full 4-level walk.
        assert_eq!(pt.walk(Vpn(0)).levels, 4);
        // Sibling in the same leaf table: 4 levels but absent.
        let r = pt.walk(Vpn(1));
        assert_eq!(r.levels, 4);
        assert!(r.pte.is_none());
        // A VPN in a different top-level subtree: early hole again.
        let far = Vpn(1 << 27);
        assert_eq!(pt.walk(far).levels, 1);
    }

    #[test]
    fn sparse_vpns_do_not_collide() {
        let mut pt = PageTable::new(0);
        let vpns = [0u64, 1, 511, 512, 0x3FFFF, 0xFFFFFFF, (1 << 36) - 1];
        for (i, &v) in vpns.iter().enumerate() {
            pt.map(Vpn(v), pte(0, i as u64 + 1));
        }
        for (i, &v) in vpns.iter().enumerate() {
            assert_eq!(
                pt.lookup(Vpn(v)).unwrap().pfn().local(),
                LocalPfn(i as u64 + 1),
                "vpn {v:#x}"
            );
        }
        assert_eq!(pt.len(), vpns.len() as u64);
    }

    #[test]
    fn update_in_place() {
        let mut pt = PageTable::new(0);
        pt.map(Vpn(9), pte(0, 1));
        assert!(pt.update(Vpn(9), |p| p.with_coal_bits(0x7F)));
        assert_eq!(pt.lookup(Vpn(9)).unwrap().coal_bits(), 0x7F);
        assert!(!pt.update(Vpn(10), |p| p));
    }

    #[test]
    fn iter_range_ascending() {
        let mut pt = PageTable::new(0);
        for v in [3u64, 1, 7] {
            pt.map(Vpn(v), pte(0, v));
        }
        let got: Vec<u64> = pt
            .iter_range(Vpn(0), Vpn(8))
            .iter()
            .map(|(v, _)| v.0)
            .collect();
        assert_eq!(got, vec![1, 3, 7]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vpn_out_of_range_panics() {
        let mut pt = PageTable::new(0);
        pt.map(Vpn(1 << 36), pte(0, 1));
    }
}
