//! Typed addresses.
//!
//! Newtypes keep virtual page numbers, local physical frame numbers and
//! global physical frame numbers statically distinct — confusing a local and
//! a global PFN is precisely the class of bug the Barre PFN calculator must
//! not have.

use std::fmt;

/// Bit position where the chiplet id starts inside a [`GlobalPfn`].
///
/// A 40-bit PTE frame field (x86-64 bits 12–51) minus a 4-bit chiplet id
/// leaves 36 bits of local frame space per chiplet, far more than any
/// simulated capacity.
pub const CHIPLET_PFN_SHIFT: u32 = 36;

/// Identifier of one GPU chiplet in the MCM package (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChipletId(pub u8);

impl ChipletId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChipletId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPU{}", self.0)
    }
}

/// A virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

impl Vpn {
    /// VPN shifted back into a byte address (given a page shift).
    pub fn base_addr(self, page_shift: u32) -> VirtAddr {
        VirtAddr(self.0 << page_shift)
    }

    /// Checked addition of a page delta.
    pub fn offset(self, delta: i64) -> Option<Vpn> {
        self.0.checked_add_signed(delta).map(Vpn)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V:{:#x}", self.0)
    }
}

impl fmt::LowerHex for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A physical frame number local to one chiplet's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LocalPfn(pub u64);

impl fmt::Display for LocalPfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L:{:#x}", self.0)
    }
}

/// A physical frame number in the MCM-wide flat frame space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GlobalPfn(pub u64);

impl GlobalPfn {
    /// Builds a global PFN from a chiplet id and a local frame number.
    ///
    /// # Panics
    ///
    /// Panics if the local PFN overflows into the chiplet-id bits.
    pub fn compose(chiplet: ChipletId, local: LocalPfn) -> Self {
        assert!(
            local.0 < (1 << CHIPLET_PFN_SHIFT),
            "local PFN {local} overflows chiplet field"
        );
        GlobalPfn(((chiplet.0 as u64) << CHIPLET_PFN_SHIFT) | local.0)
    }

    /// The chiplet owning this frame.
    pub fn chiplet(self) -> ChipletId {
        ChipletId((self.0 >> CHIPLET_PFN_SHIFT) as u8)
    }

    /// The frame number within its chiplet's memory.
    pub fn local(self) -> LocalPfn {
        LocalPfn(self.0 & ((1 << CHIPLET_PFN_SHIFT) - 1))
    }

    /// The base byte address of the frame (given a page shift).
    pub fn base_addr(self, page_shift: u32) -> PhysAddr {
        PhysAddr(self.0 << page_shift)
    }
}

impl fmt::Display for GlobalPfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P:{}+{:#x}", self.chiplet(), self.local().0)
    }
}

/// A byte-granular virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// The VPN containing this address (given a page shift).
    pub fn vpn(self, page_shift: u32) -> Vpn {
        Vpn(self.0 >> page_shift)
    }

    /// Offset within the page.
    pub fn page_offset(self, page_shift: u32) -> u64 {
        self.0 & ((1 << page_shift) - 1)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

/// A byte-granular physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The global PFN containing this address (given a page shift).
    pub fn pfn(self, page_shift: u32) -> GlobalPfn {
        GlobalPfn(self.0 >> page_shift)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_roundtrips() {
        for c in 0..16u8 {
            let g = GlobalPfn::compose(ChipletId(c), LocalPfn(0x1234));
            assert_eq!(g.chiplet(), ChipletId(c));
            assert_eq!(g.local(), LocalPfn(0x1234));
        }
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn compose_rejects_oversized_local() {
        let _ = GlobalPfn::compose(ChipletId(0), LocalPfn(1 << CHIPLET_PFN_SHIFT));
    }

    #[test]
    fn paper_example_layout() {
        // The paper's Fig 7a: data 1 page 0x1 maps to GPU0's local 0x75;
        // same local frame on GPU1 differs only in the chiplet field.
        let a = GlobalPfn::compose(ChipletId(0), LocalPfn(0x75));
        let b = GlobalPfn::compose(ChipletId(1), LocalPfn(0x75));
        assert_eq!(a.local(), b.local());
        assert_ne!(a, b);
        assert_eq!(b.0 - a.0, 1 << CHIPLET_PFN_SHIFT);
    }

    #[test]
    fn vpn_addr_roundtrip() {
        let va = VirtAddr(0x1234_5678);
        let vpn = va.vpn(12);
        assert_eq!(vpn, Vpn(0x12345));
        assert_eq!(vpn.base_addr(12), VirtAddr(0x1234_5000));
        assert_eq!(va.page_offset(12), 0x678);
    }

    #[test]
    fn vpn_offset_is_checked() {
        assert_eq!(Vpn(10).offset(-3), Some(Vpn(7)));
        assert_eq!(Vpn(2).offset(-3), None);
    }

    #[test]
    fn display_formats() {
        let g = GlobalPfn::compose(ChipletId(3), LocalPfn(0x75));
        assert_eq!(g.to_string(), "P:GPU3+0x75");
        assert_eq!(Vpn(0xA).to_string(), "V:0xa");
        assert_eq!(ChipletId(1).to_string(), "GPU1");
    }

    #[test]
    fn phys_addr_pfn() {
        let g = GlobalPfn::compose(ChipletId(1), LocalPfn(0x88));
        let pa = g.base_addr(12);
        assert_eq!(pa.pfn(12), g);
    }
}
