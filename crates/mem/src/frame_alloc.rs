//! Per-chiplet physical frame allocator.
//!
//! The GPU driver allocates local frames out of each chiplet's memory. The
//! Barre driver modification (paper §IV-G) needs three capabilities beyond
//! a plain allocator, all provided here:
//!
//! * query whether a *specific* frame is free (to find frames commonly
//!   available across sharer chiplets),
//! * claim a specific frame,
//! * find *contiguous* free runs (for contiguity-aware coalescing-group
//!   expansion, §V-B).

use barre_sim::Rng;

use crate::addr::LocalPfn;

/// A bitmap allocator over one chiplet's local frame space.
///
/// # Example
///
/// ```
/// use barre_mem::FrameAllocator;
/// use barre_mem::LocalPfn;
///
/// let mut a = FrameAllocator::new(1024);
/// let f = a.alloc_any().unwrap();
/// assert!(!a.is_free(f));
/// a.free(f);
/// assert!(a.is_free(f));
/// assert!(a.alloc_specific(LocalPfn(77)));
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    used: Vec<bool>,
    free_count: u64,
    cursor: usize,
}

impl FrameAllocator {
    /// Creates an allocator managing `frames` local frames, all free.
    pub fn new(frames: usize) -> Self {
        Self {
            used: vec![false; frames],
            free_count: frames as u64,
            cursor: 0,
        }
    }

    /// Total managed frames.
    pub fn capacity(&self) -> usize {
        self.used.len()
    }

    /// Currently free frames.
    pub fn free_frames(&self) -> u64 {
        self.free_count
    }

    /// Currently allocated frames, counted from the bitmap (not the
    /// cached free counter) — the conservation sanitizer compares the
    /// two to catch accounting drift.
    pub fn allocated_frames(&self) -> u64 {
        self.used.iter().filter(|&&u| u).count() as u64
    }

    /// Whether `pfn` is in range and unallocated.
    pub fn is_free(&self, pfn: LocalPfn) -> bool {
        self.used.get(pfn.0 as usize).map(|&u| !u).unwrap_or(false)
    }

    /// Allocates any free frame (first-fit from a roving cursor, which
    /// spreads allocations like a real buddy-list head).
    pub fn alloc_any(&mut self) -> Option<LocalPfn> {
        if self.free_count == 0 {
            return None;
        }
        let n = self.used.len();
        for i in 0..n {
            let idx = (self.cursor + i) % n;
            if !self.used[idx] {
                self.used[idx] = true;
                self.free_count -= 1;
                self.cursor = (idx + 1) % n;
                return Some(LocalPfn(idx as u64));
            }
        }
        None
    }

    /// Claims a specific frame; returns `false` if it was taken or out of
    /// range.
    pub fn alloc_specific(&mut self, pfn: LocalPfn) -> bool {
        match self.used.get_mut(pfn.0 as usize) {
            Some(u) if !*u => {
                *u = true;
                self.free_count -= 1;
                true
            }
            _ => false,
        }
    }

    /// Releases a frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is out of range or already free (double free).
    pub fn free(&mut self, pfn: LocalPfn) {
        let slot = self
            .used
            .get_mut(pfn.0 as usize)
            // barre:allow(P001) documented-panic API (see # Panics above)
            .expect("freeing out-of-range frame");
        assert!(*slot, "double free of {pfn}");
        *slot = false;
        self.free_count += 1;
    }

    /// Finds (without claiming) the lowest run of `len` contiguous free
    /// frames starting at or after `from`.
    pub fn find_free_run(&self, from: LocalPfn, len: usize) -> Option<LocalPfn> {
        if len == 0 {
            return Some(from);
        }
        let n = self.used.len();
        let mut run = 0usize;
        let mut start = from.0 as usize;
        let mut i = from.0 as usize;
        while i < n {
            if self.used[i] {
                run = 0;
                start = i + 1;
            } else {
                run += 1;
                if run == len {
                    return Some(LocalPfn(start as u64));
                }
            }
            i += 1;
        }
        None
    }

    /// Pre-occupies roughly `fraction` of the frames at random — used to
    /// model a fragmented memory and exercise the Barre driver's fallback
    /// and the expansion allocator's partial-run behaviour.
    pub fn fragment(&mut self, rng: &mut Rng, fraction: f64) {
        for i in 0..self.used.len() {
            if !self.used[i] && rng.chance(fraction) {
                self.used[i] = true;
                self.free_count -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut a = FrameAllocator::new(4);
        let mut got = Vec::new();
        while let Some(f) = a.alloc_any() {
            got.push(f.0);
        }
        assert_eq!(got.len(), 4);
        assert_eq!(a.free_frames(), 0);
        a.free(LocalPfn(2));
        assert_eq!(a.alloc_any(), Some(LocalPfn(2)));
    }

    #[test]
    fn alloc_specific_conflicts() {
        let mut a = FrameAllocator::new(8);
        assert!(a.alloc_specific(LocalPfn(5)));
        assert!(!a.alloc_specific(LocalPfn(5)));
        assert!(!a.alloc_specific(LocalPfn(100)));
        assert_eq!(a.free_frames(), 7);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = FrameAllocator::new(2);
        a.alloc_specific(LocalPfn(0));
        a.free(LocalPfn(0));
        a.free(LocalPfn(0));
    }

    #[test]
    fn find_free_run_skips_holes() {
        let mut a = FrameAllocator::new(16);
        for f in [1u64, 2, 6] {
            a.alloc_specific(LocalPfn(f));
        }
        // Free layout: 0 [1 2 used] 3 4 5 [6 used] 7..15
        assert_eq!(a.find_free_run(LocalPfn(0), 1), Some(LocalPfn(0)));
        assert_eq!(a.find_free_run(LocalPfn(0), 3), Some(LocalPfn(3)));
        assert_eq!(a.find_free_run(LocalPfn(0), 9), Some(LocalPfn(7)));
        assert_eq!(a.find_free_run(LocalPfn(0), 10), None);
        assert_eq!(a.find_free_run(LocalPfn(4), 2), Some(LocalPfn(4)));
    }

    #[test]
    fn fragment_reduces_free_frames() {
        let mut a = FrameAllocator::new(10_000);
        let mut rng = Rng::new(1);
        a.fragment(&mut rng, 0.3);
        let free = a.free_frames();
        assert!((6_000..8_000).contains(&free), "free={free}");
    }

    #[test]
    fn cursor_spreads_allocations() {
        let mut a = FrameAllocator::new(4);
        let f0 = a.alloc_any().unwrap();
        a.free(f0);
        // Next allocation does not immediately reuse the just-freed frame.
        assert_ne!(a.alloc_any(), Some(f0));
    }
}
