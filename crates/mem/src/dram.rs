//! DRAM channel timing.
//!
//! Table II: 1 TB/s per chiplet, 100 ns access latency. At the model's
//! 1 GHz clock that is 1000 bytes/cycle and 100 cycles. A single
//! [`barre_sim::Link`] captures both the fixed latency and bandwidth
//! contention; row-buffer/bank detail is below the abstraction level the
//! paper's results depend on (its DRAM section explicitly defers
//! interleaving to the memory controller).

use barre_sim::{Cycle, Link};

/// One chiplet's local DRAM.
///
/// # Example
///
/// ```
/// use barre_mem::Dram;
/// let mut d = Dram::new(100, 1000);
/// let done = d.access(0, 64);
/// assert_eq!(done, 0 + 1 + 100);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    channel: Link,
    accesses: u64,
}

impl Dram {
    /// Creates a DRAM with `latency` cycles and `bytes_per_cycle` bandwidth.
    pub fn new(latency: Cycle, bytes_per_cycle: u64) -> Self {
        Self {
            channel: Link::new(latency, bytes_per_cycle),
            accesses: 0,
        }
    }

    /// DRAM with the paper's Table II parameters (100 ns, 1 TB/s).
    pub fn paper_default() -> Self {
        Self::new(100, 1000)
    }

    /// Performs an access of `bytes` at `now`; returns the completion cycle.
    pub fn access(&mut self, now: Cycle, bytes: u64) -> Cycle {
        self.accesses += 1;
        self.channel.send(now, bytes)
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.channel.total_bytes()
    }

    /// Clears dynamic state.
    pub fn reset(&mut self) {
        self.channel.reset();
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_applies() {
        let mut d = Dram::new(100, 64);
        assert_eq!(d.access(50, 64), 50 + 1 + 100);
        assert_eq!(d.accesses(), 1);
        assert_eq!(d.bytes(), 64);
    }

    #[test]
    fn bandwidth_queues() {
        let mut d = Dram::new(10, 1);
        let a = d.access(0, 100);
        let b = d.access(0, 100);
        assert_eq!(a, 110);
        assert_eq!(b, 210);
    }

    #[test]
    fn reset_clears() {
        let mut d = Dram::paper_default();
        d.access(0, 64);
        d.reset();
        assert_eq!(d.accesses(), 0);
        assert_eq!(d.bytes(), 0);
    }
}
