//! Virtual address space allocation.
//!
//! Each GPU `malloc` call reserves a contiguous VPN range for one data
//! object (one matrix, one graph, …). A simple bump allocator with a guard
//! gap matches how real drivers lay out large allocations and guarantees
//! that distinct data never share a coalescing-group VPN range.

use crate::addr::Vpn;

/// Identifier of one allocated data object within an address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataId(pub u32);

/// A contiguous VPN range `[start, start + pages)` owned by one data object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VpnRange {
    /// First VPN of the object.
    pub start: Vpn,
    /// Number of pages.
    pub pages: u64,
}

impl VpnRange {
    /// One-past-the-last VPN.
    pub fn end(&self) -> Vpn {
        Vpn(self.start.0 + self.pages)
    }

    /// Whether `vpn` falls inside the range.
    pub fn contains(&self, vpn: Vpn) -> bool {
        (self.start.0..self.end().0).contains(&vpn.0)
    }

    /// Index of `vpn` within the range (0-based), if contained.
    pub fn index_of(&self, vpn: Vpn) -> Option<u64> {
        self.contains(vpn).then(|| vpn.0 - self.start.0)
    }

    /// VPN at `index` within the range.
    ///
    /// # Panics
    ///
    /// Panics if `index >= pages`.
    pub fn vpn_at(&self, index: u64) -> Vpn {
        assert!(index < self.pages, "index out of range");
        Vpn(self.start.0 + index)
    }

    /// All VPNs in the range, ascending.
    pub fn iter(&self) -> impl Iterator<Item = Vpn> + '_ {
        (self.start.0..self.end().0).map(Vpn)
    }
}

/// A bump allocator over an address space's VPN range.
///
/// # Example
///
/// ```
/// use barre_mem::VirtAllocator;
///
/// let mut va = VirtAllocator::new();
/// let (a_id, a) = va.alloc(100);
/// let (b_id, b) = va.alloc(50);
/// assert_ne!(a_id, b_id);
/// assert!(b.start.0 >= a.end().0); // disjoint
/// ```
#[derive(Debug, Clone)]
pub struct VirtAllocator {
    next: u64,
    ranges: Vec<VpnRange>,
}

/// Guard gap (in pages) between consecutive allocations; mirrors driver
/// alignment and keeps neighbouring data from producing adjacent VPNs.
const GUARD_PAGES: u64 = 16;

impl VirtAllocator {
    /// Creates an allocator starting at VPN 1 (VPN 0 is left unmapped as a
    /// null guard).
    pub fn new() -> Self {
        Self {
            next: 1,
            ranges: Vec::new(),
        }
    }

    /// Reserves `pages` contiguous VPNs; returns the data id and range.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn alloc(&mut self, pages: u64) -> (DataId, VpnRange) {
        assert!(pages > 0, "cannot allocate zero pages");
        let range = VpnRange {
            start: Vpn(self.next),
            pages,
        };
        self.next += pages + GUARD_PAGES;
        let id = DataId(self.ranges.len() as u32);
        self.ranges.push(range);
        (id, range)
    }

    /// Range of a previously allocated data object.
    pub fn range(&self, id: DataId) -> Option<VpnRange> {
        self.ranges.get(id.0 as usize).copied()
    }

    /// The data object containing `vpn`, if any.
    pub fn find(&self, vpn: Vpn) -> Option<(DataId, VpnRange)> {
        self.ranges
            .iter()
            .enumerate()
            .find(|(_, r)| r.contains(vpn))
            .map(|(i, r)| (DataId(i as u32), *r))
    }

    /// Number of allocations made.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

impl Default for VirtAllocator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint() {
        let mut va = VirtAllocator::new();
        let (_, a) = va.alloc(10);
        let (_, b) = va.alloc(10);
        for v in a.iter() {
            assert!(!b.contains(v));
        }
    }

    #[test]
    fn range_arithmetic() {
        let r = VpnRange {
            start: Vpn(0x10),
            pages: 4,
        };
        assert_eq!(r.end(), Vpn(0x14));
        assert!(r.contains(Vpn(0x13)));
        assert!(!r.contains(Vpn(0x14)));
        assert_eq!(r.index_of(Vpn(0x12)), Some(2));
        assert_eq!(r.index_of(Vpn(0x14)), None);
        assert_eq!(r.vpn_at(3), Vpn(0x13));
    }

    #[test]
    fn find_locates_owner() {
        let mut va = VirtAllocator::new();
        let (a_id, a) = va.alloc(5);
        let (b_id, b) = va.alloc(7);
        assert_eq!(va.find(a.vpn_at(4)).unwrap().0, a_id);
        assert_eq!(va.find(b.vpn_at(0)).unwrap().0, b_id);
        assert!(va.find(Vpn(0)).is_none());
        assert_eq!(va.range(b_id), Some(b));
    }

    #[test]
    #[should_panic(expected = "zero pages")]
    fn zero_alloc_panics() {
        VirtAllocator::new().alloc(0);
    }
}
