//! Memory substrate for the Barre Chord MCM-GPU model.
//!
//! Provides the address-space vocabulary shared by every other crate:
//! typed virtual/physical addresses ([`addr`]), page sizes ([`page`]),
//! x86-64-style page-table entries with the 11 spare bits the paper uses
//! for coalescing information ([`pte`]), a real 4-level radix page table
//! ([`page_table`]), per-chiplet physical frame allocators
//! ([`frame_alloc`]), a virtual-address bump allocator ([`virt_alloc`])
//! and a DRAM channel timing model ([`dram`]).
//!
//! # Address model
//!
//! An MCM-GPU exposes one flat physical frame space where each chiplet owns
//! a contiguous slice, exactly like the paper's example (`GPU0` frames start
//! at `0xA000`, `GPU1` at `0xB000`, …). A [`GlobalPfn`] is
//! `chiplet_id << CHIPLET_PFN_SHIFT | local_pfn`, so the *local* PFN — the
//! quantity Barre equalizes across chiplets — is recoverable by masking.
//!
//! ```
//! use barre_mem::{ChipletId, GlobalPfn, LocalPfn};
//!
//! let g = GlobalPfn::compose(ChipletId(2), LocalPfn(0x75));
//! assert_eq!(g.chiplet(), ChipletId(2));
//! assert_eq!(g.local(), LocalPfn(0x75));
//! ```

pub mod addr;
pub mod dram;
pub mod frame_alloc;
pub mod page;
pub mod page_table;
pub mod pte;
pub mod virt_alloc;

pub use addr::{ChipletId, GlobalPfn, LocalPfn, PhysAddr, VirtAddr, Vpn, CHIPLET_PFN_SHIFT};
pub use dram::Dram;
pub use frame_alloc::FrameAllocator;
pub use page::PageSize;
pub use page_table::{PageTable, WalkResult};
pub use pte::{Pte, PteFlags};
pub use virt_alloc::VirtAllocator;
