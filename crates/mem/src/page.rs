//! Page sizes.

use std::fmt;

/// Translation granule. The paper's baseline is 4 KiB; §VII-H4 evaluates
/// 64 KiB and 2 MiB, and §VII-H5 compares against a 2 MiB super page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PageSize {
    /// 4 KiB base pages.
    #[default]
    Size4K,
    /// 64 KiB large pages.
    Size64K,
    /// 2 MiB super pages.
    Size2M,
}

impl PageSize {
    /// log2 of the page size in bytes.
    pub fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size64K => 16,
            PageSize::Size2M => 21,
        }
    }

    /// Page size in bytes.
    pub fn bytes(self) -> u64 {
        1 << self.shift()
    }

    /// Number of 4 KiB base frames covered by one page of this size.
    pub fn base_frames(self) -> u64 {
        self.bytes() / PageSize::Size4K.bytes()
    }

    /// All supported sizes, smallest first.
    pub fn all() -> [PageSize; 3] {
        [PageSize::Size4K, PageSize::Size64K, PageSize::Size2M]
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4KB"),
            PageSize::Size64K => write!(f, "64KB"),
            PageSize::Size2M => write!(f, "2MB"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_correct() {
        assert_eq!(PageSize::Size4K.bytes(), 4096);
        assert_eq!(PageSize::Size64K.bytes(), 65536);
        assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn base_frames() {
        assert_eq!(PageSize::Size4K.base_frames(), 1);
        assert_eq!(PageSize::Size64K.base_frames(), 16);
        assert_eq!(PageSize::Size2M.base_frames(), 512);
    }

    #[test]
    fn display() {
        assert_eq!(PageSize::Size2M.to_string(), "2MB");
    }

    #[test]
    fn default_is_4k() {
        assert_eq!(PageSize::default(), PageSize::Size4K);
    }
}
