//! The 19 Table I applications.
//!
//! Each application is defined by its data objects, the per-CTA slice of
//! its iteration space, and the warp-level access stream of its algorithm.
//! Footprints are scaled down from the originals so a full experiment
//! sweep runs in seconds; the *relative* TLB pressure (the low/mid/high
//! MPKI classes of Table I) is preserved, and `table1_mpki` reports the
//! measured values next to the paper's.

use barre_gpu::pattern::AccessPattern;
use barre_mapping::DataHint;
use barre_mem::VirtAddr;
use barre_sim::Rng;

use crate::patterns::{
    Butterfly, Chain, ColStream, RandGather, RowStream, StencilRows, Wavefront, ZipfGather, ELEM,
};

/// Table I IOMMU-intensity class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// L2 TLB MPKI below 1.
    Low,
    /// MPKI between 1 and 50.
    Mid,
    /// MPKI above 100.
    High,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::Low => write!(f, "low"),
            Category::Mid => write!(f, "mid"),
            Category::High => write!(f, "high"),
        }
    }
}

/// How CTAs reach a data object — determines the mapping policies' hints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// Row-blocked: CTA `i` streams the `i`-th contiguous slice.
    Blocked,
    /// Column-strided: every CTA strides across the whole object.
    Strided,
    /// Gathered: data-dependent, effectively random.
    Irregular,
}

/// One data object of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetDecl {
    /// Footprint in bytes.
    pub bytes: u64,
    /// Access structure.
    pub class: AccessClass,
}

impl DatasetDecl {
    /// The compiler hint a LASP/CODA pass would derive, in pages of
    /// `page_shift`, for an `n_chiplets` MCM.
    pub fn hint(&self, page_shift: u32, n_chiplets: usize) -> DataHint {
        let pages = (self.bytes >> page_shift).max(1);
        match self.class {
            AccessClass::Blocked => DataHint::linear((pages / n_chiplets as u64).max(1)),
            // Strided data has row-level locality at best: interleave
            // finely so every chiplet holds a share of each column.
            AccessClass::Strided => DataHint::linear(1),
            AccessClass::Irregular => DataHint::irregular(),
        }
    }
}

/// The 19 applications of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum AppId {
    Gemv,
    Corr,
    Adi,
    Fft,
    Pr,
    Fwt,
    Cov,
    Sssp,
    Jac2d,
    Fdtd2d,
    Lu,
    Nw,
    Atax,
    St2d,
    Matr,
    Gups,
    Bicg,
    Spmv,
    Gesm,
}

impl AppId {
    /// All applications in Table I order.
    pub fn all() -> [AppId; 19] {
        use AppId::*;
        [
            Gemv, Corr, Adi, Fft, Pr, Fwt, Cov, Sssp, Jac2d, Fdtd2d, Lu, Nw, Atax, St2d, Matr,
            Gups, Bicg, Spmv, Gesm,
        ]
    }

    /// Table I abbreviation.
    pub fn name(&self) -> &'static str {
        match self {
            AppId::Gemv => "gemv",
            AppId::Corr => "corr",
            AppId::Adi => "adi",
            AppId::Fft => "fft",
            AppId::Pr => "pr",
            AppId::Fwt => "fwt",
            AppId::Cov => "cov",
            AppId::Sssp => "sssp",
            AppId::Jac2d => "jac2d",
            AppId::Fdtd2d => "fdtd2d",
            AppId::Lu => "lu",
            AppId::Nw => "nw",
            AppId::Atax => "atax",
            AppId::St2d => "st2d",
            AppId::Matr => "matr",
            AppId::Gups => "gups",
            AppId::Bicg => "bicg",
            AppId::Spmv => "spmv",
            AppId::Gesm => "gesm",
        }
    }

    /// Full application name (Table I).
    pub fn full_name(&self) -> &'static str {
        match self {
            AppId::Gemv => "gemver",
            AppId::Corr => "correlation",
            AppId::Adi => "adi",
            AppId::Fft => "fft",
            AppId::Pr => "pagerank",
            AppId::Fwt => "fastwalshtransform",
            AppId::Cov => "covariance",
            AppId::Sssp => "sssp",
            AppId::Jac2d => "jacobi2d",
            AppId::Fdtd2d => "fdtd2d",
            AppId::Lu => "lu",
            AppId::Nw => "nw",
            AppId::Atax => "atax",
            AppId::St2d => "stencil2d",
            AppId::Matr => "matrixtranspose",
            AppId::Gups => "gups",
            AppId::Bicg => "bicg",
            AppId::Spmv => "spmv",
            AppId::Gesm => "gesummv",
        }
    }

    /// The L2 TLB MPKI the paper measured (Table I).
    pub fn paper_mpki(&self) -> f64 {
        match self {
            AppId::Gemv => 0.015,
            AppId::Corr => 0.045,
            AppId::Adi => 0.051,
            AppId::Fft => 0.48,
            AppId::Pr => 0.828,
            AppId::Fwt => 2.27,
            AppId::Cov => 3.24,
            AppId::Sssp => 3.38,
            AppId::Jac2d => 4.78,
            AppId::Fdtd2d => 10.12,
            AppId::Lu => 17.14,
            AppId::Nw => 21.56,
            AppId::Atax => 34.28,
            AppId::St2d => 46.90,
            AppId::Matr => 174.99,
            AppId::Gups => 724.80,
            AppId::Bicg => 2128.63,
            AppId::Spmv => 3835.95,
            AppId::Gesm => 4762.86,
        }
    }

    /// Table I class.
    pub fn category(&self) -> Category {
        match self.paper_mpki() {
            m if m < 1.0 => Category::Low,
            m if m < 100.0 => Category::Mid,
            _ => Category::High,
        }
    }

    /// The default (scale-1) workload.
    pub fn spec(self) -> WorkloadSpec {
        WorkloadSpec {
            app: self,
            scale: 1,
        }
    }
}

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A runnable workload: an application at a footprint scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// The application.
    pub app: AppId,
    /// Footprint multiplier (Fig 24-right uses 16; matrix dimensions grow
    /// by √scale).
    pub scale: u64,
}

impl WorkloadSpec {
    /// Linear dimension factor (√scale, so footprints grow by `scale`).
    fn s(&self) -> u64 {
        (self.scale as f64).sqrt().round().max(1.0) as u64
    }

    /// Per-app geometry, calibrated against the scaled `SystemConfig` so
    /// the measured L2 TLB MPKI lands in the paper's class (Table I) and
    /// preserves the paper's within-class ordering. Matrices are
    /// `rows × cols` of 8-byte elements; `cols × 8` is the row pitch that
    /// controls how many pages an uncoalesced (column) warp touches.
    fn dims(&self) -> AppDims {
        let s = self.s();
        match self.app {
            AppId::Gemv => AppDims {
                rows: 256 * s,
                cols: 256 * s,
                aux: 2 << 10,
                passes: 12,
            },
            AppId::Corr => AppDims {
                rows: 128 * s,
                cols: 128 * s,
                aux: 0,
                passes: 1,
            },
            AppId::Adi => AppDims {
                rows: 256 * s,
                cols: 256 * s,
                aux: 0,
                passes: 8,
            },
            AppId::Fft => AppDims {
                rows: 0,
                cols: 0,
                aux: (2 << 20) * self.scale,
                passes: 1,
            },
            AppId::Pr => AppDims {
                rows: 0,
                cols: 0,
                aux: (1 << 20) * self.scale,
                passes: 1,
            },
            AppId::Fwt => AppDims {
                rows: 0,
                cols: 0,
                aux: (4 << 20) * self.scale,
                passes: 1,
            },
            AppId::Cov => AppDims {
                rows: 1536 * s,
                cols: 512 * s,
                aux: 0,
                passes: 2,
            },
            AppId::Sssp => AppDims {
                rows: 0,
                cols: 0,
                aux: (1 << 20) * self.scale,
                passes: 1,
            },
            AppId::Jac2d => AppDims {
                rows: 1024 * s,
                cols: 512 * s,
                aux: 0,
                passes: 1,
            },
            AppId::Fdtd2d => AppDims {
                rows: 1024 * s,
                cols: 512 * s,
                aux: 0,
                passes: 1,
            },
            AppId::Lu => AppDims {
                rows: 3072 * s,
                cols: 256 * s,
                aux: 0,
                passes: 2,
            },
            AppId::Nw => AppDims {
                rows: 64,
                cols: 64,
                aux: 96,
                passes: 1,
            },
            AppId::Atax => AppDims {
                rows: 2048 * s,
                cols: 256 * s,
                aux: 256 * s * ELEM,
                passes: 1,
            },
            AppId::St2d => AppDims {
                rows: 2048 * s,
                cols: 256 * s,
                aux: 0,
                passes: 1,
            },
            AppId::Matr => AppDims {
                rows: 2048 * s,
                cols: 512 * s,
                aux: 0,
                passes: 1,
            },
            AppId::Gups => AppDims {
                rows: 0,
                cols: 0,
                aux: (8 << 20) * self.scale,
                passes: 1,
            },
            AppId::Bicg => AppDims {
                rows: 2048 * s,
                cols: 512 * s,
                aux: 512 * s * ELEM,
                passes: 1,
            },
            AppId::Spmv => AppDims {
                rows: 0,
                cols: 0,
                aux: (16 << 20) * self.scale,
                passes: 1,
            },
            AppId::Gesm => AppDims {
                rows: 2048 * s,
                cols: 512 * s,
                aux: 0,
                passes: 1,
            },
        }
    }

    /// The application's data objects, in allocation order.
    pub fn datasets(&self) -> Vec<DatasetDecl> {
        use AccessClass::*;
        let d = self.dims();
        let mat = d.rows * d.cols * ELEM;
        match self.app {
            AppId::Gemv => vec![
                DatasetDecl {
                    bytes: mat,
                    class: Blocked,
                },
                DatasetDecl {
                    bytes: d.aux,
                    class: Blocked,
                },
            ],
            AppId::Corr => vec![DatasetDecl {
                bytes: mat,
                class: Strided,
            }],
            AppId::Adi => vec![DatasetDecl {
                bytes: mat,
                class: Blocked,
            }],
            AppId::Fft => vec![DatasetDecl {
                bytes: d.aux,
                class: Blocked,
            }],
            AppId::Pr => vec![
                DatasetDecl {
                    bytes: d.aux,
                    class: Irregular,
                },
                DatasetDecl {
                    bytes: 512 << 10,
                    class: Blocked,
                },
            ],
            AppId::Fwt => vec![DatasetDecl {
                bytes: d.aux,
                class: Blocked,
            }],
            AppId::Cov => vec![DatasetDecl {
                bytes: mat,
                class: Blocked,
            }],
            AppId::Sssp => vec![
                DatasetDecl {
                    bytes: d.aux,
                    class: Irregular,
                },
                DatasetDecl {
                    bytes: 512 << 10,
                    class: Blocked,
                },
            ],
            AppId::Jac2d => vec![
                DatasetDecl {
                    bytes: mat,
                    class: Blocked,
                },
                DatasetDecl {
                    bytes: mat,
                    class: Blocked,
                },
            ],
            AppId::Fdtd2d => vec![
                DatasetDecl {
                    bytes: mat,
                    class: Blocked,
                },
                DatasetDecl {
                    bytes: mat,
                    class: Blocked,
                },
                DatasetDecl {
                    bytes: mat,
                    class: Blocked,
                },
            ],
            AppId::Lu => vec![DatasetDecl {
                bytes: mat,
                class: Blocked,
            }],
            AppId::Nw => {
                // One DP tile per CTA wave; `aux` holds the tile count.
                let tile = d.rows * d.cols * ELEM;
                vec![DatasetDecl {
                    bytes: tile * d.aux,
                    class: Strided,
                }]
            }
            AppId::Atax => vec![
                DatasetDecl {
                    bytes: mat,
                    class: Strided,
                },
                DatasetDecl {
                    bytes: d.aux,
                    class: Blocked,
                },
            ],
            AppId::St2d => vec![
                DatasetDecl {
                    bytes: mat,
                    class: Blocked,
                },
                DatasetDecl {
                    bytes: mat,
                    class: Blocked,
                },
            ],
            AppId::Matr => vec![
                DatasetDecl {
                    bytes: mat,
                    class: Blocked,
                },
                DatasetDecl {
                    bytes: mat,
                    class: Strided,
                },
            ],
            AppId::Gups => vec![DatasetDecl {
                bytes: d.aux,
                class: Irregular,
            }],
            AppId::Bicg => vec![
                DatasetDecl {
                    bytes: mat,
                    class: Strided,
                },
                DatasetDecl {
                    bytes: d.aux,
                    class: Blocked,
                },
            ],
            AppId::Spmv => vec![
                DatasetDecl {
                    bytes: 512 << 10,
                    class: Blocked,
                },
                DatasetDecl {
                    bytes: d.aux,
                    class: Irregular,
                },
            ],
            AppId::Gesm => vec![
                DatasetDecl {
                    bytes: mat,
                    class: Strided,
                },
                DatasetDecl {
                    bytes: mat,
                    class: Strided,
                },
            ],
        }
    }

    /// Number of CTAs the kernel launches (enough for several waves per
    /// CU).
    pub fn n_ctas(&self, total_cus: usize) -> u64 {
        (total_cus as u64 * 4).max(8)
    }

    /// Warp-level instructions per memory instruction (compute intensity).
    pub fn insns_per_warp(&self) -> u64 {
        match self.app {
            AppId::Gemv => 24,
            AppId::Corr => 20,
            AppId::Adi => 20,
            AppId::Fft => 24,
            AppId::Pr => 12,
            AppId::Fwt => 8,
            AppId::Cov => 12,
            AppId::Sssp => 6,
            AppId::Jac2d => 8,
            AppId::Fdtd2d => 4,
            AppId::Lu => 16,
            AppId::Nw => 4,
            AppId::Atax => 18,
            AppId::St2d => 2,
            AppId::Matr => 20,
            AppId::Gups => 40,
            AppId::Bicg => 7,
            AppId::Spmv => 8,
            AppId::Gesm => 6,
        }
    }

    /// Builds CTA `cta`'s access stream given each dataset's base virtual
    /// address (allocation order of [`datasets`](Self::datasets)).
    ///
    /// # Panics
    ///
    /// Panics if `bases` does not match the dataset count.
    pub fn cta_pattern(
        &self,
        cta: u64,
        n_ctas: u64,
        bases: &[VirtAddr],
        seed: u64,
    ) -> Box<dyn AccessPattern> {
        let ds = self.datasets();
        assert_eq!(bases.len(), ds.len(), "one base per dataset required");
        let insns = self.insns_per_warp();
        let d = self.dims();
        let rng = Rng::new(seed ^ (cta.wrapping_mul(0x9E37_79B9)) ^ 0xBA22E);
        // CTA's slice of an `n`-element space.
        let slice = |n: u64| -> (u64, u64) {
            let lo = n * cta / n_ctas;
            let hi = n * (cta + 1) / n_ctas;
            (lo, hi.saturating_sub(lo))
        };
        let row_pitch = d.cols * ELEM;
        let row_slice = |base: VirtAddr, passes: u32| -> Box<dyn AccessPattern> {
            let (r0, rn) = slice(d.rows);
            Box::new(RowStream::new(
                VirtAddr(base.0 + r0 * row_pitch),
                rn.max(1) * row_pitch,
                passes,
            ))
        };
        let boxed: Box<dyn AccessPattern> = match self.app {
            AppId::Gemv => Box::new(Chain::new(
                vec![
                    row_slice(bases[0], d.passes as u32),
                    Box::new(RowStream::new(bases[1], d.aux, 2)),
                ],
                insns,
            )),
            AppId::Corr => {
                // Column-pair correlation: the matrix is small and hot;
                // each CTA walks every column once (pitch 1 KiB keeps
                // lanes page-coalesced).
                Box::new(ColStream::new(bases[0], d.rows, d.cols).with_insns(insns))
            }
            AppId::Adi => {
                let (r0, rn) = slice(d.rows);
                Box::new(Chain::new(
                    vec![
                        Box::new(
                            StencilRows::new(bases[0], d.cols, r0, rn.max(1))
                                .with_grid_rows(d.rows),
                        ),
                        Box::new(
                            StencilRows::new(bases[0], d.cols, r0, rn.max(1))
                                .with_grid_rows(d.rows),
                        ),
                        Box::new(
                            ColStream::new(bases[0], d.rows, d.cols).with_rows(r0, r0 + rn.max(1)),
                        ),
                    ],
                    insns,
                ))
            }
            AppId::Fft | AppId::Fwt => {
                let seg = (d.aux / n_ctas).max(4096);
                Box::new(Butterfly::new(VirtAddr(bases[0].0 + cta * seg), seg).with_insns(insns))
            }
            AppId::Pr => Box::new(Chain::new(
                vec![
                    Box::new(ZipfGather::new(bases[0], d.aux, 768, rng)),
                    Box::new(RowStream::new(bases[1], (512u64 << 10) / n_ctas, 1)),
                ],
                insns,
            )),
            AppId::Cov => row_slice_with_insns(row_slice(bases[0], d.passes as u32), insns),
            AppId::Sssp => Box::new(Chain::new(
                vec![
                    Box::new(ZipfGather::new(bases[0], d.aux, 512, rng)),
                    Box::new(RowStream::new(bases[1], (512u64 << 10) / n_ctas, 1)),
                ],
                insns,
            )),
            AppId::Jac2d => {
                let (r0, rn) = slice(d.rows);
                Box::new(
                    StencilRows::new(bases[0], d.cols, r0, rn.max(1))
                        .with_grid_rows(d.rows)
                        .with_write_base(bases[1])
                        .with_insns(insns),
                )
            }
            AppId::Fdtd2d => {
                let (r0, rn) = slice(d.rows);
                let st = |from: usize, to: usize| -> Box<dyn AccessPattern> {
                    Box::new(
                        StencilRows::new(bases[from], d.cols, r0, rn.max(1))
                            .with_grid_rows(d.rows)
                            .with_write_base(bases[to]),
                    )
                };
                Box::new(Chain::new(vec![st(0, 2), st(1, 2), st(2, 0)], insns))
            }
            AppId::Lu => {
                // Streaming row elimination plus scattered pivot-column
                // reads (one page per lane across the trailing matrix).
                let bytes = d.rows * d.cols * ELEM;
                Box::new(Chain::new(
                    vec![
                        row_slice(bases[0], d.passes as u32),
                        Box::new(RandGather::new(bases[0], bytes, 2, rng)),
                    ],
                    insns,
                ))
            }
            AppId::Nw => {
                // One DP tile per CTA (tiles cycle).
                let tile_bytes = d.rows * d.cols * ELEM;
                let t = cta % d.aux;
                Box::new(
                    Wavefront::new(VirtAddr(bases[0].0 + t * tile_bytes), d.rows).with_insns(insns),
                )
            }
            AppId::Atax => {
                // y = Aᵀ(Ax): the transposed pass gathers one page per
                // lane across A.
                let bytes = d.rows * d.cols * ELEM;
                Box::new(Chain::new(
                    vec![
                        row_slice(bases[0], 1),
                        Box::new(RandGather::new(bases[0], bytes, 2, rng)),
                        Box::new(RowStream::new(bases[1], d.aux, 1)),
                    ],
                    insns,
                ))
            }
            AppId::St2d => {
                // 5-point row stencil plus a short column sweep at the
                // slice boundary (halo columns), the SHOC kernel's
                // column-major register-tiling pass.
                let (r0, rn) = slice(d.rows);
                let (c0, _) = slice(d.cols);
                Box::new(Chain::new(
                    vec![
                        Box::new(
                            StencilRows::new(bases[0], d.cols, r0, rn.max(1))
                                .with_grid_rows(d.rows)
                                .with_write_base(bases[1]),
                        ),
                        Box::new(
                            ColStream::new(
                                VirtAddr(bases[0].0 + r0 * d.cols * ELEM),
                                512.min(d.rows - r0).max(1),
                                d.cols,
                            )
                            .with_cols(c0, c0 + 2),
                        ),
                    ],
                    insns,
                ))
            }
            AppId::Matr => {
                // Transposed writes: every lane of a store lands a row
                // apart — one page per lane, scattered over the whole
                // output matrix.
                let _ = slice(d.cols);
                let bytes = d.rows * d.cols * ELEM;
                Box::new(Chain::new(
                    vec![
                        row_slice(bases[0], 1),
                        Box::new(RandGather::new(bases[1], bytes, 48, rng)),
                    ],
                    insns,
                ))
            }
            AppId::Gups => Box::new(RandGather::new(bases[0], d.aux, 96, rng).with_insns(insns)),
            AppId::Bicg => {
                // q = A p (streaming rows) then s = Aᵀ r (page-wide
                // gather over the transposed layout).
                let bytes = d.rows * d.cols * ELEM;
                Box::new(Chain::new(
                    vec![
                        row_slice(bases[0], 1),
                        Box::new(RandGather::new(bases[0], bytes, 128, rng)),
                        Box::new(RowStream::new(bases[1], d.aux, 1)),
                    ],
                    insns,
                ))
            }
            AppId::Spmv => Box::new(Chain::new(
                vec![
                    Box::new(RowStream::new(bases[0], (512u64 << 10) / n_ctas, 1)),
                    Box::new(RandGather::new(bases[1], d.aux, 96, rng)),
                ],
                insns,
            )),
            AppId::Gesm => {
                // gesummv's transposed, column-major accesses behave as
                // page-wide gathers over both matrices: essentially every
                // lane of every memory instruction touches a fresh page —
                // the highest-pressure stream in Table I.
                let bytes = d.rows * d.cols * ELEM;
                let mut r2 = rng;
                let rb = r2.fork();
                Box::new(Chain::new(
                    vec![
                        Box::new(RandGather::new(bases[0], bytes, 96, r2)),
                        Box::new(RandGather::new(bases[1], bytes, 96, rb)),
                    ],
                    insns,
                ))
            }
        };
        boxed
    }
}

/// Per-app geometry.
#[derive(Debug, Clone, Copy)]
struct AppDims {
    rows: u64,
    cols: u64,
    /// App-specific extra: vector bytes, table bytes, or tile count.
    aux: u64,
    passes: u64,
}

fn row_slice_with_insns(p: Box<dyn AccessPattern>, insns: u64) -> Box<dyn AccessPattern> {
    Box::new(Chain::new(vec![p], insns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_apps_with_unique_names() {
        let apps = AppId::all();
        assert_eq!(apps.len(), 19);
        let names: std::collections::BTreeSet<_> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 19);
    }

    #[test]
    fn categories_match_table1() {
        assert_eq!(AppId::Gemv.category(), Category::Low);
        assert_eq!(AppId::Pr.category(), Category::Low);
        assert_eq!(AppId::Fwt.category(), Category::Mid);
        assert_eq!(AppId::St2d.category(), Category::Mid);
        assert_eq!(AppId::Matr.category(), Category::High);
        assert_eq!(AppId::Gesm.category(), Category::High);
        let low = AppId::all()
            .iter()
            .filter(|a| a.category() == Category::Low)
            .count();
        let high = AppId::all()
            .iter()
            .filter(|a| a.category() == Category::High)
            .count();
        assert_eq!(low, 5);
        assert_eq!(high, 5);
    }

    #[test]
    fn every_app_yields_accesses() {
        for app in AppId::all() {
            let spec = app.spec();
            let ds = spec.datasets();
            assert!(!ds.is_empty(), "{app}: no datasets");
            // Fake disjoint bases 256 MiB apart.
            let bases: Vec<VirtAddr> = (0..ds.len())
                .map(|i| VirtAddr((i as u64 + 1) << 28))
                .collect();
            let mut p = spec.cta_pattern(0, spec.n_ctas(32), &bases, 42);
            let mut count = 0u64;
            while let Some(w) = p.next_warp() {
                assert!(!w.addrs.is_empty(), "{app}: empty warp");
                count += 1;
                if count > 2_000_000 {
                    panic!("{app}: unbounded pattern");
                }
            }
            assert!(count > 0, "{app}: empty stream");
        }
    }

    #[test]
    fn accesses_stay_within_datasets() {
        for app in AppId::all() {
            let spec = app.spec();
            let ds = spec.datasets();
            let bases: Vec<VirtAddr> = {
                let mut next = 1u64 << 30;
                ds.iter()
                    .map(|d| {
                        let b = VirtAddr(next);
                        next += d.bytes + (1 << 24);
                        b
                    })
                    .collect()
            };
            let n_ctas = spec.n_ctas(32);
            for cta in [0, n_ctas / 2, n_ctas - 1] {
                let mut p = spec.cta_pattern(cta, n_ctas, &bases, 1);
                let mut seen = 0;
                while let Some(w) = p.next_warp() {
                    for a in &w.addrs {
                        let inside = ds
                            .iter()
                            .zip(&bases)
                            .any(|(d, b)| (b.0..b.0 + d.bytes).contains(&a.0));
                        assert!(inside, "{app}: cta {cta} addr {a} outside datasets");
                    }
                    seen += 1;
                    if seen > 100_000 {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_streams() {
        let spec = AppId::Gups.spec();
        let bases = [VirtAddr(1 << 30)];
        let a: Vec<_> = {
            let mut p = spec.cta_pattern(3, 64, &bases, 9);
            std::iter::from_fn(|| p.next_warp()).collect()
        };
        let b: Vec<_> = {
            let mut p = spec.cta_pattern(3, 64, &bases, 9);
            std::iter::from_fn(|| p.next_warp()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn scale_grows_footprint() {
        let d1: u64 = AppId::Bicg.spec().datasets().iter().map(|d| d.bytes).sum();
        let d16: u64 = WorkloadSpec {
            app: AppId::Bicg,
            scale: 16,
        }
        .datasets()
        .iter()
        .map(|d| d.bytes)
        .sum();
        assert!(d16 >= 12 * d1, "16x scale should grow footprint ~16x");
    }

    #[test]
    fn hints_follow_access_class() {
        let blocked = DatasetDecl {
            bytes: 1 << 20,
            class: AccessClass::Blocked,
        };
        let h = blocked.hint(12, 4);
        assert_eq!(h.locality_gran, Some(64));
        assert!(!h.irregular);
        let strided = DatasetDecl {
            bytes: 1 << 20,
            class: AccessClass::Strided,
        };
        assert_eq!(strided.hint(12, 4).locality_gran, Some(1));
        let irr = DatasetDecl {
            bytes: 1 << 20,
            class: AccessClass::Irregular,
        };
        assert!(irr.hint(12, 4).irregular);
    }
}
