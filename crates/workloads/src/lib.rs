//! Synthetic versions of the paper's 19 workloads (Table I).
//!
//! The original evaluation runs PolyBench / SHOC / Rodinia / HeteroMark /
//! AMD-SDK / Pannotia / MAFIA binaries inside MGPUSim. Translation
//! behaviour, however, depends only on each kernel's **virtual address
//! stream** — footprint, stride structure, warp coalescing, inter-CTA
//! sharing — so each application is reproduced as a synthetic kernel
//! emitting the address stream of its algorithm (see DESIGN.md's
//! substitution table):
//!
//! * dense row streams (`gemv`, `gemver`-style vector kernels),
//! * column-major passes over row-major matrices (`atax`, `bicg`, `gesm`,
//!   `matr` writes) — one page per lane, the high-MPKI class,
//! * stencil sweeps (`adi`, `jac2d`, `fdtd2d`, `st2d`),
//! * power-of-two butterfly strides (`fft`, `fwt`),
//! * blocked/wavefront dense kernels (`lu`, `nw`, `corr`, `cov`),
//! * CSR gathers with power-law column skew (`pr`, `sssp`, `spmv`),
//! * uniform random updates (`gups`).
//!
//! [`AppId::paper_mpki`] records Table I's measured MPKI; the
//! `table1_mpki` bench prints paper-vs-measured per app.

pub mod apps;
pub mod multi;
pub mod patterns;

pub use apps::{AppId, Category, DatasetDecl, WorkloadSpec};
pub use multi::AppPair;
