//! Reusable warp-level access generators.
//!
//! Every workload kernel is assembled from these parts. All generators are
//! deterministic given their construction arguments (random ones take an
//! explicit [`Rng`]).

use barre_gpu::pattern::{AccessPattern, WarpAccess, WARP_LANES};
use barre_mem::VirtAddr;
use barre_sim::Rng;

/// Element size used by every kernel (f64 / 64-bit indices).
pub const ELEM: u64 = 8;

/// Bytes one fully-coalesced warp instruction covers.
pub const WARP_BYTES: u64 = WARP_LANES as u64 * ELEM;

/// A chain of patterns executed back to back (multi-phase kernels).
pub struct Chain {
    parts: Vec<Box<dyn AccessPattern>>,
    current: usize,
    insns: u64,
}

impl Chain {
    /// Chains `parts` in order.
    pub fn new(parts: Vec<Box<dyn AccessPattern>>, insns_per_access: u64) -> Self {
        Self {
            parts,
            current: 0,
            insns: insns_per_access.max(1),
        }
    }
}

impl AccessPattern for Chain {
    fn next_warp(&mut self) -> Option<WarpAccess> {
        while self.current < self.parts.len() {
            if let Some(a) = self.parts[self.current].next_warp() {
                return Some(a);
            }
            self.current += 1;
        }
        None
    }

    fn insns_per_access(&self) -> u64 {
        self.insns
    }
}

/// Coalesced row-major stream over `[base, base + bytes)`, optionally
/// repeated for multiple passes, optionally writing.
pub struct RowStream {
    base: u64,
    bytes: u64,
    offset: u64,
    passes_left: u32,
    write: bool,
    insns: u64,
}

impl RowStream {
    /// Streams `bytes` from `base`, `passes` times.
    pub fn new(base: VirtAddr, bytes: u64, passes: u32) -> Self {
        Self {
            base: base.0,
            bytes,
            offset: 0,
            passes_left: passes,
            write: false,
            insns: 10,
        }
    }

    /// Makes the stream a store stream.
    pub fn writing(mut self) -> Self {
        self.write = true;
        self
    }

    /// Overrides instructions per access.
    pub fn with_insns(mut self, insns: u64) -> Self {
        self.insns = insns.max(1);
        self
    }
}

impl AccessPattern for RowStream {
    fn next_warp(&mut self) -> Option<WarpAccess> {
        if self.passes_left == 0 || self.bytes == 0 {
            return None;
        }
        let a = WarpAccess {
            addrs: vec![
                VirtAddr(self.base + self.offset),
                VirtAddr(self.base + (self.offset + WARP_BYTES - 1).min(self.bytes - 1)),
            ],
            write: self.write,
        };
        self.offset += WARP_BYTES;
        if self.offset >= self.bytes {
            self.offset = 0;
            self.passes_left -= 1;
        }
        Some(a)
    }

    fn insns_per_access(&self) -> u64 {
        self.insns
    }
}

/// Column-major traversal of a row-major matrix: each warp instruction
/// gathers 32 lanes separated by the row pitch — one page per lane when
/// the pitch reaches the page size. This is the address stream of
/// `gesummv`/`bicg`/`atax` transposed passes and `matrixtranspose` writes.
pub struct ColStream {
    base: u64,
    pitch: u64,
    rows: u64,
    cols: u64,
    col: u64,
    col_end: u64,
    row_block: u64,
    block_offset: u64,
    write: bool,
    insns: u64,
}

impl ColStream {
    /// Walks a `rows × cols`-element matrix at `base` column by column;
    /// each warp covers 32 consecutive rows of one column.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(base: VirtAddr, rows: u64, cols: u64) -> Self {
        assert!(rows > 0 && cols > 0, "empty matrix");
        Self {
            base: base.0,
            pitch: cols * ELEM,
            rows,
            cols,
            col: 0,
            col_end: cols,
            row_block: 0,
            block_offset: 0,
            write: false,
            insns: 10,
        }
    }

    /// Rotates the starting row block (stagger concurrent CTAs so their
    /// column sweeps do not touch the same pages in lockstep).
    pub fn rotated(mut self, blocks: u64) -> Self {
        self.block_offset = blocks;
        self
    }

    /// Restricts the walk to rows `[lo, hi)` — the per-CTA row-block
    /// slice of a transposed pass (each CTA owns distinct pages).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn with_rows(mut self, lo: u64, hi: u64) -> Self {
        assert!(lo < hi && hi <= self.rows, "bad row range {lo}..{hi}");
        self.base += lo * self.pitch;
        self.rows = hi - lo;
        self
    }

    /// Restricts the walk to columns `[lo, hi)` (CTA work slicing).
    pub fn with_cols(mut self, lo: u64, hi: u64) -> Self {
        self.col = lo.min(self.cols);
        self.col_end = hi.min(self.cols);
        self
    }

    /// Makes the stream a store stream.
    pub fn writing(mut self) -> Self {
        self.write = true;
        self
    }

    /// Overrides instructions per access.
    pub fn with_insns(mut self, insns: u64) -> Self {
        self.insns = insns.max(1);
        self
    }
}

impl AccessPattern for ColStream {
    fn next_warp(&mut self) -> Option<WarpAccess> {
        if self.col >= self.col_end {
            return None;
        }
        let total_blocks = self.rows.div_ceil(WARP_LANES as u64);
        let block = (self.row_block + self.block_offset) % total_blocks;
        let first_row = block * WARP_LANES as u64;
        let lanes = (self.rows - first_row).min(WARP_LANES as u64);
        let addrs = (0..lanes)
            .map(|l| VirtAddr(self.base + (first_row + l) * self.pitch + self.col * ELEM))
            .collect();
        let a = WarpAccess {
            addrs,
            write: self.write,
        };
        self.row_block += 1;
        if self.row_block * WARP_LANES as u64 >= self.rows {
            self.row_block = 0;
            self.col += 1;
        }
        Some(a)
    }

    fn insns_per_access(&self) -> u64 {
        self.insns
    }
}

/// Uniform random 8-byte updates over a table (GUPS).
pub struct RandGather {
    base: u64,
    bytes: u64,
    remaining: u64,
    rng: Rng,
    write: bool,
    insns: u64,
}

impl RandGather {
    /// Issues `count` warp instructions of 32 uniform random lanes each.
    pub fn new(base: VirtAddr, bytes: u64, count: u64, rng: Rng) -> Self {
        Self {
            base: base.0,
            bytes: bytes.max(ELEM),
            remaining: count,
            rng,
            write: true,
            insns: 10,
        }
    }

    /// Overrides instructions per access.
    pub fn with_insns(mut self, insns: u64) -> Self {
        self.insns = insns.max(1);
        self
    }
}

impl AccessPattern for RandGather {
    fn next_warp(&mut self) -> Option<WarpAccess> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let slots = self.bytes / ELEM;
        let addrs = (0..WARP_LANES)
            .map(|_| VirtAddr(self.base + self.rng.next_below(slots) * ELEM))
            .collect();
        Some(WarpAccess {
            addrs,
            write: self.write,
        })
    }

    fn insns_per_access(&self) -> u64 {
        self.insns
    }
}

/// Power-law (Zipf-like) gathers over a table — CSR column accesses of
/// graph kernels (`pagerank`, `sssp`) and `spmv`. Hot entries concentrate
/// on low indices, giving partial TLB reuse.
pub struct ZipfGather {
    base: u64,
    bytes: u64,
    remaining: u64,
    rng: Rng,
    insns: u64,
}

impl ZipfGather {
    /// Issues `count` warp instructions of 32 Zipf-distributed lanes.
    pub fn new(base: VirtAddr, bytes: u64, count: u64, rng: Rng) -> Self {
        Self {
            base: base.0,
            bytes: bytes.max(ELEM),
            remaining: count,
            rng,
            insns: 10,
        }
    }

    /// Overrides instructions per access.
    pub fn with_insns(mut self, insns: u64) -> Self {
        self.insns = insns.max(1);
        self
    }
}

impl AccessPattern for ZipfGather {
    fn next_warp(&mut self) -> Option<WarpAccess> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let slots = self.bytes / ELEM;
        let addrs = (0..WARP_LANES)
            .map(|_| VirtAddr(self.base + self.rng.zipf_like(slots) * ELEM))
            .collect();
        Some(WarpAccess {
            addrs,
            write: false,
        })
    }

    fn insns_per_access(&self) -> u64 {
        self.insns
    }
}

/// Butterfly passes with doubling strides (`fft`, `fastwalshtransform`):
/// pass `p` pairs element `i` with `i + 2^p`; warps stay coalesced within
/// each half, so every warp instruction touches two blocks.
pub struct Butterfly {
    base: u64,
    bytes: u64,
    stride: u64,
    offset: u64,
    insns: u64,
}

impl Butterfly {
    /// Runs log2(bytes/ELEM) passes over `bytes` from `base`, starting at
    /// stride `ELEM`.
    pub fn new(base: VirtAddr, bytes: u64) -> Self {
        Self {
            base: base.0,
            bytes: bytes.max(2 * WARP_BYTES),
            stride: WARP_BYTES,
            offset: 0,
            insns: 10,
        }
    }

    /// Overrides instructions per access.
    pub fn with_insns(mut self, insns: u64) -> Self {
        self.insns = insns.max(1);
        self
    }
}

impl AccessPattern for Butterfly {
    fn next_warp(&mut self) -> Option<WarpAccess> {
        if self.stride >= self.bytes {
            return None;
        }
        // Touch the pair (offset, offset + stride).
        let a = WarpAccess {
            addrs: vec![
                VirtAddr(self.base + self.offset),
                VirtAddr(self.base + self.offset + self.stride),
            ],
            write: true,
        };
        self.offset += WARP_BYTES;
        // Skip the upper half of each 2*stride block.
        if self.offset % (2 * self.stride) >= self.stride {
            self.offset += self.stride;
        }
        if self.offset + self.stride >= self.bytes {
            self.offset = 0;
            self.stride *= 2;
        }
        Some(a)
    }

    fn insns_per_access(&self) -> u64 {
        self.insns
    }
}

/// 5-point stencil sweep over a 2-D grid slice: for each output row,
/// streams the row above, the row itself, the row below, and the output
/// row (`jacobi2d`, `stencil2d`, `fdtd2d` per field).
pub struct StencilRows {
    base: u64,
    write_base: u64,
    pitch: u64,
    first_row: u64,
    rows: u64,
    grid_rows: u64,
    row: u64,
    phase: u8,
    offset: u64,
    insns: u64,
}

impl StencilRows {
    /// Sweeps rows `[first_row, first_row + rows)` of a grid with
    /// `cols`-element rows at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is zero.
    pub fn new(base: VirtAddr, cols: u64, first_row: u64, rows: u64) -> Self {
        assert!(cols > 0, "empty grid");
        Self {
            base: base.0,
            write_base: base.0,
            pitch: cols * ELEM,
            first_row,
            rows,
            grid_rows: first_row + rows,
            row: 0,
            phase: 0,
            offset: 0,
            insns: 10,
        }
    }

    /// Declares the full grid height so halo reads of interior slices can
    /// reach one row beyond the slice (clamped at the grid edge). Halo
    /// rows are exactly the pages neighbouring CTA slices share.
    pub fn with_grid_rows(mut self, grid_rows: u64) -> Self {
        self.grid_rows = grid_rows.max(self.first_row + self.rows);
        self
    }

    /// Writes results into a second grid (`jacobi2d`'s B, `fdtd2d`'s
    /// cross-field updates) instead of in place.
    pub fn with_write_base(mut self, write_base: VirtAddr) -> Self {
        self.write_base = write_base.0;
        self
    }

    /// Overrides instructions per access.
    pub fn with_insns(mut self, insns: u64) -> Self {
        self.insns = insns.max(1);
        self
    }
}

impl AccessPattern for StencilRows {
    fn next_warp(&mut self) -> Option<WarpAccess> {
        if self.row >= self.rows {
            return None;
        }
        let r = self.first_row + self.row;
        let neighbor = match self.phase {
            0 => r.saturating_sub(1),
            1 => r,
            2 => (r + 1).min(self.grid_rows.saturating_sub(1)),
            _ => r,
        };
        let write = self.phase == 3;
        let grid = if write { self.write_base } else { self.base };
        let addr = grid + neighbor * self.pitch + self.offset;
        let a = WarpAccess {
            addrs: vec![VirtAddr(addr), VirtAddr(addr + WARP_BYTES - 1)],
            write,
        };
        self.phase += 1;
        if self.phase == 4 {
            self.phase = 0;
            self.offset += WARP_BYTES;
            if self.offset >= self.pitch {
                self.offset = 0;
                self.row += 1;
            }
        }
        Some(a)
    }

    fn insns_per_access(&self) -> u64 {
        self.insns
    }
}

/// Anti-diagonal wavefront over a 2-D dynamic-programming table
/// (`needleman-wunsch`): each warp instruction reads 32 cells along an
/// anti-diagonal — lane addresses separated by `pitch − ELEM`.
pub struct Wavefront {
    base: u64,
    pitch_elems: u64,
    n: u64,
    diag: u64,
    block: u64,
    insns: u64,
}

impl Wavefront {
    /// Walks the anti-diagonals of an `n × n` table at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(base: VirtAddr, n: u64) -> Self {
        assert!(n > 0, "empty table");
        Self {
            base: base.0,
            pitch_elems: n,
            n,
            diag: 1,
            block: 0,
            insns: 10,
        }
    }

    /// Overrides instructions per access.
    pub fn with_insns(mut self, insns: u64) -> Self {
        self.insns = insns.max(1);
        self
    }
}

impl AccessPattern for Wavefront {
    fn next_warp(&mut self) -> Option<WarpAccess> {
        if self.diag >= 2 * self.n - 1 {
            return None;
        }
        // Cells on diagonal d: (i, d - i) for valid i.
        let lo = self.diag.saturating_sub(self.n - 1);
        let hi = self.diag.min(self.n - 1);
        let len = hi - lo + 1;
        let first = lo + self.block * WARP_LANES as u64;
        if first > hi {
            self.diag += 1;
            self.block = 0;
            return self.next_warp();
        }
        let lanes = (hi - first + 1).min(WARP_LANES as u64);
        let addrs = (0..lanes)
            .map(|l| {
                let i = first + l;
                let j = self.diag - i;
                VirtAddr(self.base + (i * self.pitch_elems + j) * ELEM)
            })
            .collect();
        self.block += 1;
        if self.block * WARP_LANES as u64 >= len {
            self.block = 0;
            self.diag += 1;
        }
        Some(WarpAccess { addrs, write: true })
    }

    fn insns_per_access(&self) -> u64 {
        self.insns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(p: &mut dyn AccessPattern) -> Vec<WarpAccess> {
        std::iter::from_fn(|| p.next_warp()).collect()
    }

    #[test]
    fn row_stream_is_sequential_and_repeats() {
        let mut p = RowStream::new(VirtAddr(0x1000), 512, 2);
        let a = drain(&mut p);
        assert_eq!(a.len(), 4); // 512/256 × 2 passes
        assert_eq!(a[0].addrs[0], VirtAddr(0x1000));
        assert_eq!(a[1].addrs[0], VirtAddr(0x1100));
        assert_eq!(a[2].addrs[0], VirtAddr(0x1000));
        assert!(!a[0].write);
    }

    #[test]
    fn row_stream_writing_marks_stores() {
        let mut p = RowStream::new(VirtAddr(0), 256, 1).writing();
        assert!(p.next_warp().unwrap().write);
    }

    #[test]
    fn col_stream_one_page_per_lane() {
        // 64 rows × 512 cols: pitch = 4096 bytes = one 4 KiB page per row.
        let mut p = ColStream::new(VirtAddr(0), 64, 512);
        let a = p.next_warp().unwrap();
        assert_eq!(a.addrs.len(), 32);
        // Lane addresses are one page apart.
        assert_eq!(a.addrs[1].0 - a.addrs[0].0, 4096);
        // Full drain covers rows/32 × cols warps.
        let rest = drain(&mut p);
        assert_eq!(rest.len() + 1, (64 / 32) * 512);
    }

    #[test]
    fn col_stream_handles_row_remainder() {
        let mut p = ColStream::new(VirtAddr(0), 40, 4);
        let a = p.next_warp().unwrap();
        assert_eq!(a.addrs.len(), 32);
        let b = p.next_warp().unwrap();
        assert_eq!(b.addrs.len(), 8);
    }

    #[test]
    fn rand_gather_bounded_and_deterministic() {
        let mk = || RandGather::new(VirtAddr(0x10000), 4096, 10, Rng::new(7));
        let a: Vec<_> = drain(&mut mk());
        let b: Vec<_> = drain(&mut mk());
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        for w in &a {
            assert_eq!(w.addrs.len(), 32);
            for addr in &w.addrs {
                assert!((0x10000..0x11000).contains(&addr.0));
            }
        }
    }

    #[test]
    fn zipf_gather_skews_low() {
        let mut p = ZipfGather::new(VirtAddr(0), 1 << 20, 100, Rng::new(3));
        let a = drain(&mut p);
        let low = a
            .iter()
            .flat_map(|w| &w.addrs)
            .filter(|addr| addr.0 < (1 << 17))
            .count();
        let total = a.iter().map(|w| w.addrs.len()).sum::<usize>();
        assert!(low * 2 > total, "low fraction {low}/{total}");
    }

    #[test]
    fn butterfly_strides_double() {
        let mut p = Butterfly::new(VirtAddr(0), 4 * WARP_BYTES);
        let a = drain(&mut p);
        assert!(!a.is_empty());
        // First pass pairs offset and offset+WARP_BYTES.
        assert_eq!(a[0].addrs[1].0 - a[0].addrs[0].0, WARP_BYTES);
        // Last pass pairs the two halves.
        let last = a.last().unwrap();
        assert_eq!(last.addrs[1].0 - last.addrs[0].0, 2 * WARP_BYTES);
    }

    #[test]
    fn stencil_touches_three_rows_plus_store() {
        let mut p = StencilRows::new(VirtAddr(0), 32, 4, 1).with_grid_rows(8);
        let a = drain(&mut p);
        assert_eq!(a.len(), 4);
        let pitch = 32 * ELEM;
        assert_eq!(a[0].addrs[0].0, 3 * pitch);
        assert_eq!(a[1].addrs[0].0, 4 * pitch);
        assert_eq!(a[2].addrs[0].0, 5 * pitch);
        assert!(a[3].write);
    }

    #[test]
    fn wavefront_covers_all_diagonals() {
        let n = 8u64;
        let mut p = Wavefront::new(VirtAddr(0), n);
        let a = drain(&mut p);
        // Diagonals 1..2n-2 inclusive.
        let cells: usize = a.iter().map(|w| w.addrs.len()).sum();
        let expected: u64 = (1..2 * n - 1)
            .map(|d| d.min(n - 1).min(2 * n - 2 - d) + 1)
            .sum();
        assert_eq!(cells as u64, expected);
    }

    #[test]
    fn chain_runs_parts_in_order() {
        let mut c = Chain::new(
            vec![
                Box::new(RowStream::new(VirtAddr(0), 256, 1)),
                Box::new(RowStream::new(VirtAddr(0x10000), 256, 1)),
            ],
            5,
        );
        let a = drain(&mut c);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].addrs[0], VirtAddr(0));
        assert_eq!(a[1].addrs[0], VirtAddr(0x10000));
        assert_eq!(c.insns_per_access(), 5);
    }
}
