//! Multi-programming pairs (§VII-I).
//!
//! The paper evaluates fine-grained CTA-level sharing of two concurrent
//! applications with different IOMMU intensities: Low-Low, Low-Mid,
//! Low-High, Mid-Mid, Mid-High, High-High. Each member runs in its own
//! address space (ASID) and the CTA scheduler interleaves both kernels'
//! CTAs on the same CUs.

use crate::apps::{AppId, Category};

/// A co-scheduled application pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppPair {
    /// First application (ASID 0).
    pub a: AppId,
    /// Second application (ASID 1).
    pub b: AppId,
}

impl AppPair {
    /// The representative pair for each intensity combination, chosen
    /// deterministically from Table I's classes.
    pub fn representative(c1: Category, c2: Category) -> AppPair {
        let pick = |c: Category, which: usize| -> AppId {
            let pool: Vec<AppId> = AppId::all()
                .into_iter()
                .filter(|a| a.category() == c)
                .collect();
            pool[which % pool.len()]
        };
        AppPair {
            a: pick(c1, 0),
            b: pick(c2, 1),
        }
    }

    /// The six combinations evaluated in Fig 27a.
    pub fn fig27_pairs() -> Vec<(String, AppPair)> {
        use Category::*;
        [
            (Low, Low),
            (Low, Mid),
            (Low, High),
            (Mid, Mid),
            (Mid, High),
            (High, High),
        ]
        .into_iter()
        .map(|(c1, c2)| (format!("{c1}-{c2}"), AppPair::representative(c1, c2)))
        .collect()
    }

    /// Label like `gemv+fwt`.
    pub fn label(&self) -> String {
        format!("{}+{}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representatives_match_classes() {
        let p = AppPair::representative(Category::Low, Category::High);
        assert_eq!(p.a.category(), Category::Low);
        assert_eq!(p.b.category(), Category::High);
    }

    #[test]
    fn six_fig27_pairs() {
        let pairs = AppPair::fig27_pairs();
        assert_eq!(pairs.len(), 6);
        assert_eq!(pairs[0].0, "low-low");
        // Same-class pairs pick two distinct apps.
        for (_, p) in &pairs {
            if p.a.category() == p.b.category() {
                assert_ne!(p.a, p.b);
            }
        }
    }

    #[test]
    fn labels_are_readable() {
        let p = AppPair {
            a: AppId::Gemv,
            b: AppId::Gups,
        };
        assert_eq!(p.label(), "gemv+gups");
    }
}
