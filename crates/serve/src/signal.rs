//! Drain-signal handling shared by the daemon and the sweep supervisor.
//!
//! Both SIGINT and SIGTERM request the same thing — a graceful drain —
//! so one handler records which signal arrived and flips one flag. The
//! daemon drains and exits 0; the supervisor drains and exits
//! `128 + signal` (130 for Ctrl-C, 143 for SIGTERM) with a resume hint.

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

/// Set by the signal handler; checked between job dispatches, during
/// backoff sleeps, and by the daemon's accept/connection loops. Once
/// set, no new work is admitted — in-flight work finishes (or hits its
/// deadline) and is journaled before the process exits.
pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Which signal requested the drain (0 until one arrives).
pub static SIGNAL: AtomicI32 = AtomicI32::new(0);

/// POSIX SIGINT.
pub const SIGINT: i32 = 2;
/// POSIX SIGTERM.
pub const SIGTERM: i32 = 15;

extern "C" fn on_drain_signal(sig: i32) {
    SIGNAL.store(sig, Ordering::SeqCst);
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the drain handler for SIGINT *and* SIGTERM (the first of
/// either drains; the default disposition is not restored, so journals
/// and the cache index always stay consistent).
#[cfg(unix)]
pub fn install_drain_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    // SAFETY: installing a handler that only stores to atomics is
    // async-signal-safe; the previous dispositions are intentionally
    // discarded.
    unsafe {
        let _ = signal(SIGINT, on_drain_signal);
        let _ = signal(SIGTERM, on_drain_signal);
    }
}

/// No-op off unix: everything still works, it just cannot drain on a
/// signal.
#[cfg(not(unix))]
pub fn install_drain_handlers() {}

/// Whether a drain signal has been observed.
pub fn shutting_down() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Conventional exit code after a signal-initiated drain: `128 + signal`
/// (130 after SIGINT, 143 after SIGTERM). Falls back to SIGINT's code
/// when no signal was recorded.
pub fn drain_exit_code() -> i32 {
    let sig = SIGNAL.load(Ordering::SeqCst);
    128 + if sig <= 0 { SIGINT } else { sig }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_the_128_plus_signal_convention() {
        // The default (no signal recorded) is the SIGINT code; the
        // mapping itself is pure arithmetic.
        assert_eq!(128 + SIGINT, 130);
        assert_eq!(128 + SIGTERM, 143);
        let sig = SIGNAL.load(Ordering::SeqCst);
        if sig <= 0 {
            assert_eq!(drain_exit_code(), 130);
        } else {
            assert_eq!(drain_exit_code(), 128 + sig);
        }
    }
}
