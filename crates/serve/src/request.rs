//! Request validation: one JSONL line in, one canonical job out.
//!
//! A request is a single JSON object. Recognized fields (all optional
//! except `app`):
//!
//! | field        | type          | meaning                                     |
//! |--------------|---------------|---------------------------------------------|
//! | `id`         | string ≤128   | opaque client tag, echoed in the response   |
//! | `app`        | string        | workload abbreviation (`barre list`)        |
//! | `mode`       | string        | translation mode label                      |
//! | `policy`     | string        | mapping policy label                        |
//! | `page_size`  | string        | `4k` / `64k` / `2m`                         |
//! | `ptws`       | int or `"inf"`| page-table walkers per chiplet              |
//! | `chiplets`   | int 1..=64    | chiplet count                               |
//! | `seed`       | int (u64)     | simulation seed                             |
//! | `smoke`      | bool          | small fast configuration                    |
//! | `paper`      | bool          | paper-scale configuration                   |
//! | `gmmu`       | bool          | IOMMU → GMMU                                |
//! | `migration`  | bool          | enable page migration                       |
//! | `frames`     | int ≥1        | physical frames per chiplet (capacity cap)  |
//! | `timeout_ms` | int           | per-request deadline override               |
//!
//! Unknown fields are rejected — a typo must fail loudly, not silently
//! run the wrong simulation.
//!
//! Validation resolves aliases (`fbarre2` → `fbarre`, `round-robin` →
//! `rr`, `4kb` → `4k`) and renders the request as a **canonical argv**
//! in a fixed flag order; the journal [`fingerprint`] of that argv is
//! the request's content address, so equal simulations collide in the
//! result cache no matter how the client spelled them. `id` and
//! `timeout_ms` are deliberately excluded from the argv: they change
//! how a request is handled, never what it computes.

use barre_system::journal::json_escape;
use barre_system::{fingerprint, FBarreConfig, TranslationMode};
use barre_workloads::AppId;

/// Resolves an application by its Table I abbreviation.
pub fn app_by_name(name: &str) -> Option<AppId> {
    AppId::all().into_iter().find(|a| a.name() == name)
}

/// Resolves a translation mode label.
pub fn mode_by_name(name: &str) -> Option<TranslationMode> {
    Some(match name {
        "baseline" => TranslationMode::Baseline,
        "valkyrie" => TranslationMode::Valkyrie,
        "least" => TranslationMode::Least,
        "shared-l2" => TranslationMode::SharedL2Ideal,
        "barre" => TranslationMode::Barre,
        "fbarre" | "fbarre2" => TranslationMode::FBarre(FBarreConfig::default()),
        "fbarre1" | "fbarre-nomerge" => TranslationMode::FBarre(FBarreConfig {
            max_merged: 1,
            ..FBarreConfig::default()
        }),
        "fbarre4" => TranslationMode::FBarre(FBarreConfig {
            max_merged: 4,
            ..FBarreConfig::default()
        }),
        _ => return None,
    })
}

/// Resolves a mapping policy label.
pub fn policy_by_name(name: &str) -> Option<barre_mapping::PolicyKind> {
    Some(match name {
        "lasp" => barre_mapping::PolicyKind::Lasp,
        "coda" => barre_mapping::PolicyKind::Coda,
        "rr" | "round-robin" => barre_mapping::PolicyKind::RoundRobin,
        "chunking" => barre_mapping::PolicyKind::Chunking,
        _ => return None,
    })
}

/// Resolves a page-size label.
pub fn page_size_by_name(name: &str) -> Option<barre_mem::PageSize> {
    Some(match name {
        "4k" | "4kb" => barre_mem::PageSize::Size4K,
        "64k" | "64kb" => barre_mem::PageSize::Size64K,
        "2m" | "2mb" => barre_mem::PageSize::Size2M,
        _ => return None,
    })
}

/// Canonical spelling of a mode label (aliases collapse so equal
/// simulations get equal fingerprints).
fn canonical_mode(name: &str) -> Option<&'static str> {
    Some(match name {
        "baseline" => "baseline",
        "valkyrie" => "valkyrie",
        "least" => "least",
        "shared-l2" => "shared-l2",
        "barre" => "barre",
        "fbarre" | "fbarre2" => "fbarre",
        "fbarre1" | "fbarre-nomerge" => "fbarre1",
        "fbarre4" => "fbarre4",
        _ => return None,
    })
}

/// Canonical spelling of a policy label.
fn canonical_policy(name: &str) -> Option<&'static str> {
    Some(match name {
        "lasp" => "lasp",
        "coda" => "coda",
        "rr" | "round-robin" => "rr",
        "chunking" => "chunking",
        _ => return None,
    })
}

/// Canonical spelling of a page-size label.
fn canonical_page_size(name: &str) -> Option<&'static str> {
    Some(match name {
        "4k" | "4kb" => "4k",
        "64k" | "64kb" => "64k",
        "2m" | "2mb" => "2m",
        _ => return None,
    })
}

/// A validated request, ready to enqueue: the canonical child argv
/// (starting with `run`), its fingerprint (the cache key), and the
/// handling-only fields that stay out of the fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidRequest {
    /// Client-supplied tag, echoed in every response to this request.
    pub id: Option<String>,
    /// Human label (`"gups/barre"`; `"gups/default"` without a mode).
    pub label: String,
    /// Canonical argv the child is spawned with (after the binary name).
    pub child_args: Vec<String>,
    /// Journal fingerprint of `child_args` — the content address.
    pub fingerprint: String,
    /// Per-request deadline override in milliseconds.
    pub timeout_ms: Option<u64>,
}

struct Fields {
    id: Option<String>,
    app: Option<String>,
    mode: Option<String>,
    policy: Option<String>,
    page_size: Option<String>,
    ptws: Option<String>,
    chiplets: Option<u64>,
    seed: Option<u64>,
    frames: Option<u64>,
    timeout_ms: Option<u64>,
    smoke: bool,
    paper: bool,
    gmmu: bool,
    migration: bool,
}

fn want_str(key: &str, v: &barre_system::Json) -> Result<String, String> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field {key} must be a string"))
}

fn want_u64(key: &str, v: &barre_system::Json) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("field {key} must be a non-negative integer"))
}

fn want_bool(key: &str, v: &barre_system::Json) -> Result<bool, String> {
    match v {
        barre_system::Json::Bool(b) => Ok(*b),
        _ => Err(format!("field {key} must be a boolean")),
    }
}

/// Parses and validates one request line into a canonical job.
///
/// # Errors
///
/// A human-readable description of the first problem (returned to the
/// client in a `400`-style response).
pub fn parse_request(line: &str) -> Result<ValidRequest, String> {
    let v = barre_system::Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let pairs = v.as_obj().ok_or("request must be a JSON object")?;
    let mut f = Fields {
        id: None,
        app: None,
        mode: None,
        policy: None,
        page_size: None,
        ptws: None,
        chiplets: None,
        seed: None,
        frames: None,
        timeout_ms: None,
        smoke: false,
        paper: false,
        gmmu: false,
        migration: false,
    };
    for (k, val) in pairs {
        match k.as_str() {
            "id" => {
                let id = want_str(k, val)?;
                if id.len() > 128 {
                    return Err("field id longer than 128 bytes".to_string());
                }
                if id.chars().any(|c| (c as u32) < 0x20) {
                    return Err("field id contains control characters".to_string());
                }
                f.id = Some(id);
            }
            "app" => {
                let name = want_str(k, val)?;
                if app_by_name(&name).is_none() {
                    return Err(format!("unknown app {name}"));
                }
                f.app = Some(name);
            }
            "mode" => {
                let name = want_str(k, val)?;
                f.mode = Some(
                    canonical_mode(&name)
                        .ok_or_else(|| format!("unknown mode {name}"))?
                        .to_string(),
                );
            }
            "policy" => {
                let name = want_str(k, val)?;
                f.policy = Some(
                    canonical_policy(&name)
                        .ok_or_else(|| format!("unknown policy {name}"))?
                        .to_string(),
                );
            }
            "page_size" => {
                let name = want_str(k, val)?;
                f.page_size = Some(
                    canonical_page_size(&name)
                        .ok_or_else(|| format!("unknown page size {name}"))?
                        .to_string(),
                );
            }
            "ptws" => match val {
                barre_system::Json::Str(s) if s == "inf" => f.ptws = Some("inf".to_string()),
                _ => {
                    let n = val
                        .as_u64()
                        .ok_or("field ptws must be a positive integer or \"inf\"")?;
                    if n == 0 || n > 65_536 {
                        return Err(format!("ptws {n} outside 1..=65536 (or \"inf\")"));
                    }
                    f.ptws = Some(n.to_string());
                }
            },
            "chiplets" => {
                let n = want_u64(k, val)?;
                if !(1..=64).contains(&n) {
                    return Err(format!("chiplets {n} outside 1..=64"));
                }
                f.chiplets = Some(n);
            }
            "seed" => f.seed = Some(want_u64(k, val)?),
            "frames" => {
                let n = want_u64(k, val)?;
                if n == 0 {
                    return Err("frames must be at least 1".to_string());
                }
                f.frames = Some(n);
            }
            "timeout_ms" => {
                let n = want_u64(k, val)?;
                if n == 0 || n > 3_600_000 {
                    return Err(format!("timeout_ms {n} outside 1..=3600000"));
                }
                f.timeout_ms = Some(n);
            }
            "smoke" => f.smoke = want_bool(k, val)?,
            "paper" => f.paper = want_bool(k, val)?,
            "gmmu" => f.gmmu = want_bool(k, val)?,
            "migration" => f.migration = want_bool(k, val)?,
            other => return Err(format!("unknown field {other}")),
        }
    }
    let app = f.app.ok_or("missing required field app")?;
    if f.smoke && f.paper {
        return Err("smoke and paper are mutually exclusive".to_string());
    }
    // Canonical argv: fixed flag order, so fingerprints are a pure
    // function of request *content*.
    let mut args: Vec<String> = vec!["run".into(), "--metrics-json".into()];
    if f.smoke {
        args.push("--smoke".into());
    }
    if f.paper {
        args.push("--paper".into());
    }
    args.push("--app".into());
    args.push(app.clone());
    if let Some(m) = &f.mode {
        args.push("--mode".into());
        args.push(m.clone());
    }
    if let Some(p) = &f.policy {
        args.push("--policy".into());
        args.push(p.clone());
    }
    if let Some(ps) = &f.page_size {
        args.push("--page-size".into());
        args.push(ps.clone());
    }
    if let Some(p) = &f.ptws {
        args.push("--ptws".into());
        args.push(p.clone());
    }
    if let Some(c) = f.chiplets {
        args.push("--chiplets".into());
        args.push(c.to_string());
    }
    if f.gmmu {
        args.push("--gmmu".into());
    }
    if f.migration {
        args.push("--migration".into());
    }
    if let Some(n) = f.frames {
        args.push("--frames".into());
        args.push(n.to_string());
    }
    if let Some(s) = f.seed {
        args.push("--seed".into());
        args.push(s.to_string());
    }
    let parts: Vec<&str> = args.iter().map(String::as_str).collect();
    let fp = fingerprint(&parts);
    let label = format!("{app}/{}", f.mode.as_deref().unwrap_or("default"));
    Ok(ValidRequest {
        id: f.id,
        label,
        child_args: args,
        fingerprint: fp,
        timeout_ms: f.timeout_ms,
    })
}

// ---------------------------------------------------------------------------
// Response rendering
// ---------------------------------------------------------------------------

fn id_field(id: Option<&str>) -> String {
    match id {
        Some(id) => format!(",\"id\":{}", json_escape(id)),
        None => String::new(),
    }
}

/// Success response. `metrics_json` is the canonical [`RunMetrics`]
/// encoding — the whole line is a pure function of the request content,
/// which is what makes cache hits byte-identical to cold runs.
///
/// [`RunMetrics`]: barre_system::RunMetrics
pub fn render_ok(
    id: Option<&str>,
    fp: &str,
    label: &str,
    digest: &str,
    hist_digest: &str,
    metrics_json: &str,
) -> String {
    format!(
        "{{\"status\":\"ok\"{}{},\"label\":{},\"digest\":{},\"hist_digest\":{},\"metrics\":{}}}",
        id_field(id),
        format_args!(",\"fingerprint\":{}", json_escape(fp)),
        json_escape(label),
        json_escape(digest),
        json_escape(hist_digest),
        metrics_json
    )
}

/// Structured non-success response (`status` is one of `error`,
/// `failed`, `timeout`, `quarantined`, `draining`).
pub fn render_reject(id: Option<&str>, status: &str, code: u16, error: &str) -> String {
    format!(
        "{{\"status\":{}{},\"code\":{code},\"error\":{}}}",
        json_escape(status),
        id_field(id),
        json_escape(error)
    )
}

/// Load-shed response: the admission queue is full; retry after the
/// hinted delay.
pub fn render_shed(id: Option<&str>, retry_after_ms: u64) -> String {
    format!(
        "{{\"status\":\"shed\"{},\"code\":429,\"retry_after_ms\":{retry_after_ms}}}",
        id_field(id)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_parses_and_is_canonical() {
        let r = parse_request(r#"{"app":"gups"}"#).expect("parse");
        assert_eq!(r.label, "gups/default");
        assert_eq!(r.child_args[0], "run");
        assert_eq!(r.child_args[1], "--metrics-json");
        assert!(r.id.is_none() && r.timeout_ms.is_none());
    }

    #[test]
    fn aliases_collapse_to_one_fingerprint() {
        let a = parse_request(r#"{"app":"gups","mode":"fbarre","page_size":"4k","policy":"rr"}"#)
            .expect("a");
        let b = parse_request(
            r#"{"policy":"round-robin","page_size":"4kb","mode":"fbarre2","app":"gups"}"#,
        )
        .expect("b");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.child_args, b.child_args);
    }

    #[test]
    fn id_and_timeout_do_not_change_the_fingerprint() {
        let a = parse_request(r#"{"app":"gemv","smoke":true}"#).expect("a");
        let b =
            parse_request(r#"{"id":"x-1","app":"gemv","smoke":true,"timeout_ms":500}"#).expect("b");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(b.id.as_deref(), Some("x-1"));
        assert_eq!(b.timeout_ms, Some(500));
    }

    #[test]
    fn different_content_means_different_fingerprints() {
        let a = parse_request(r#"{"app":"gemv","seed":1}"#).expect("a");
        let b = parse_request(r#"{"app":"gemv","seed":2}"#).expect("b");
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn rejects_bad_requests() {
        for bad in [
            "not json",
            "[1,2]",
            r#"{"mode":"barre"}"#,
            r#"{"app":"nosuch"}"#,
            r#"{"app":"gups","mode":"warp-drive"}"#,
            r#"{"app":"gups","typo_field":1}"#,
            r#"{"app":"gups","smoke":true,"paper":true}"#,
            r#"{"app":"gups","chiplets":0}"#,
            r#"{"app":"gups","chiplets":65}"#,
            r#"{"app":"gups","ptws":0}"#,
            r#"{"app":"gups","frames":0}"#,
            r#"{"app":"gups","timeout_ms":0}"#,
            r#"{"app":"gups","smoke":"yes"}"#,
            r#"{"app":"gups","id":"a\tb"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn ptws_inf_and_numbers_parse() {
        let a = parse_request(r#"{"app":"gups","ptws":"inf"}"#).expect("inf");
        assert!(a.child_args.contains(&"inf".to_string()));
        let b = parse_request(r#"{"app":"gups","ptws":8}"#).expect("8");
        assert!(b.child_args.contains(&"8".to_string()));
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn name_helpers_cover_all_labels() {
        for m in [
            "baseline",
            "valkyrie",
            "least",
            "shared-l2",
            "barre",
            "fbarre",
            "fbarre1",
            "fbarre4",
        ] {
            assert!(mode_by_name(m).is_some(), "{m}");
            assert!(canonical_mode(m).is_some(), "{m}");
        }
        for p in ["lasp", "coda", "rr", "chunking"] {
            assert!(policy_by_name(p).is_some(), "{p}");
            assert!(canonical_policy(p).is_some(), "{p}");
        }
        for s in ["4k", "64k", "2m"] {
            assert!(page_size_by_name(s).is_some(), "{s}");
            assert!(canonical_page_size(s).is_some(), "{s}");
        }
    }

    #[test]
    fn responses_are_single_json_lines() {
        for line in [
            render_ok(Some("i1"), "f", "gups/barre", "d", "h", "{}"),
            render_reject(None, "error", 400, "unknown app zz"),
            render_shed(Some("i2"), 1500),
        ] {
            assert!(!line.contains('\n'));
            assert!(barre_system::Json::parse(&line).is_ok(), "{line}");
        }
    }
}
