//! The queue's JSONL wire protocol: one request line in, one reply line
//! out, over the same TCP framing `barre serve` uses.
//!
//! Completed results travel as embedded journal lines (a `done` record
//! rendered by [`JournalRecord::to_line`], escaped as a JSON string), so
//! the wire format inherits the journal's digest discipline and both
//! ends reuse one parser instead of re-describing `RunMetrics` here.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use barre_system::journal::json_escape;
use barre_system::{JournalRecord, Json};

use super::state::JobSpec;

/// One request/reply exchange with the coordinator over a fresh
/// connection. A fresh connection per exchange is deliberate: it makes
/// every call independently survivable across coordinator crashes and
/// restarts — there is no session state to lose.
pub fn exchange(addr: &str, req: &Request) -> Result<Reply, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut out = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    out.write_all(req.to_line().as_bytes())
        .and_then(|()| out.write_all(b"\n"))
        .and_then(|()| out.flush())
        .map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Err("connection closed without a reply".to_string()),
        Ok(_) => Reply::from_line(line.trim()),
        Err(e) => Err(format!("recv: {e}")),
    }
}

/// A request a dispatch client or worker sends the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue jobs (idempotent per fingerprint).
    Submit {
        /// Jobs to enqueue.
        jobs: Vec<JobSpec>,
    },
    /// Ask for one job under a lease.
    Lease {
        /// Worker identity.
        worker: String,
    },
    /// Extend a held lease.
    Heartbeat {
        /// Worker identity.
        worker: String,
        /// Leased job.
        fingerprint: String,
    },
    /// Deliver a finished job's `done` journal record.
    Complete {
        /// Worker identity (stamped onto the accepted record).
        worker: String,
        /// The worker's `done` record, digest included.
        record: Box<JournalRecord>,
    },
    /// Report an attempt that did not produce a result.
    Fail {
        /// Worker identity.
        worker: String,
        /// Leased job.
        fingerprint: String,
        /// Attempts the worker made under this lease.
        attempts: u32,
        /// Exit classification (`"signal:9"`, `"timeout"`, …).
        exit: String,
        /// Whether retrying is pointless (usage/permanent exits).
        permanent: bool,
    },
    /// Fetch terminal records for a fingerprint list.
    Collect {
        /// Fingerprints the client is waiting on.
        fingerprints: Vec<String>,
    },
}

/// A coordinator reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Submit acknowledged.
    Submitted {
        /// Newly enqueued jobs.
        accepted: u64,
        /// Fingerprints already known (dedup).
        known: u64,
        /// Total jobs tracked.
        total: u64,
    },
    /// A lease grant.
    Job {
        /// Job identity.
        fingerprint: String,
        /// Human label.
        label: String,
        /// Child argv to execute.
        args: Vec<String>,
        /// Lease duration; heartbeat well within it.
        lease_ms: u64,
        /// Fleet-trace correlation id from the submitting client, if
        /// any. Older coordinators simply omit the field.
        corr: Option<String>,
    },
    /// Nothing leasable right now.
    Empty {
        /// Suggested poll delay.
        retry_after_ms: u64,
        /// Jobs not yet terminal.
        active: u64,
    },
    /// Coordinator is draining; stop asking.
    Draining,
    /// Heartbeat accepted — the lease still belongs to this worker.
    HeartbeatOk,
    /// The lease is gone (expired, finished, or never granted) — the
    /// worker must abandon its attempt.
    HeartbeatLost,
    /// Completion verdict: `"ok"`, `"duplicate"`, `"conflict"`,
    /// `"requeued"` (digest mismatch), or `"unknown"`.
    Completed {
        /// The verdict string.
        verdict: String,
    },
    /// Failure acknowledged.
    Failed {
        /// The job went back to the queue with backoff.
        requeued: bool,
        /// The job was quarantined as poison.
        quarantined: bool,
    },
    /// Terminal records for a collect request.
    Collected {
        /// Jobs not yet terminal.
        pending: u64,
        /// Fingerprints the coordinator has never seen (the client
        /// should resubmit).
        unknown: u64,
        /// Terminal records, in request order.
        records: Vec<JournalRecord>,
    },
    /// Malformed or unserviceable request.
    Error {
        /// Human-readable reason.
        error: String,
    },
}

fn arr_of_strings(v: &Json) -> Result<Vec<String>, String> {
    let items = v.as_arr().ok_or_else(|| "expected array".to_string())?;
    let mut out = Vec::with_capacity(items.len());
    for it in items {
        out.push(
            it.as_str()
                .map(str::to_string)
                .ok_or_else(|| "expected string array".to_string())?,
        );
    }
    Ok(out)
}

fn want_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing/invalid \"{key}\""))
}

fn want_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing/invalid \"{key}\""))
}

fn want_bool(v: &Json, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing/invalid \"{key}\"")),
    }
}

fn render_args(args: &[String]) -> String {
    let parts: Vec<String> = args.iter().map(|a| json_escape(a)).collect();
    format!("[{}]", parts.join(","))
}

impl Request {
    /// Renders the request as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Submit { jobs } => {
                let parts: Vec<String> = jobs
                    .iter()
                    .map(|j| {
                        let corr = j
                            .corr
                            .as_deref()
                            .map(|c| format!(",\"corr\":{}", json_escape(c)))
                            .unwrap_or_default();
                        format!(
                            "{{\"fingerprint\":{},\"label\":{},\"args\":{}{corr}}}",
                            json_escape(&j.fingerprint),
                            json_escape(&j.label),
                            render_args(&j.args),
                        )
                    })
                    .collect();
                format!("{{\"op\":\"submit\",\"jobs\":[{}]}}", parts.join(","))
            }
            Request::Lease { worker } => {
                format!("{{\"op\":\"lease\",\"worker\":{}}}", json_escape(worker))
            }
            Request::Heartbeat {
                worker,
                fingerprint,
            } => format!(
                "{{\"op\":\"heartbeat\",\"worker\":{},\"fingerprint\":{}}}",
                json_escape(worker),
                json_escape(fingerprint),
            ),
            Request::Complete { worker, record } => format!(
                "{{\"op\":\"complete\",\"worker\":{},\"record\":{}}}",
                json_escape(worker),
                json_escape(&record.to_line()),
            ),
            Request::Fail {
                worker,
                fingerprint,
                attempts,
                exit,
                permanent,
            } => format!(
                "{{\"op\":\"fail\",\"worker\":{},\"fingerprint\":{},\"attempts\":{attempts},\"exit\":{},\"permanent\":{permanent}}}",
                json_escape(worker),
                json_escape(fingerprint),
                json_escape(exit),
            ),
            Request::Collect { fingerprints } => format!(
                "{{\"op\":\"collect\",\"fingerprints\":{}}}",
                render_args(fingerprints),
            ),
        }
    }

    /// Parses one wire line into a request.
    pub fn from_line(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let op = want_str(&v, "op")?;
        match op.as_str() {
            "submit" => {
                let items = v
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| "missing/invalid \"jobs\"".to_string())?;
                let mut jobs = Vec::with_capacity(items.len());
                for it in items {
                    jobs.push(JobSpec {
                        fingerprint: want_str(it, "fingerprint")?,
                        label: want_str(it, "label")?,
                        args: arr_of_strings(
                            it.get("args")
                                .ok_or_else(|| "missing \"args\"".to_string())?,
                        )?,
                        corr: it.get("corr").and_then(Json::as_str).map(str::to_string),
                    });
                }
                Ok(Request::Submit { jobs })
            }
            "lease" => Ok(Request::Lease {
                worker: want_str(&v, "worker")?,
            }),
            "heartbeat" => Ok(Request::Heartbeat {
                worker: want_str(&v, "worker")?,
                fingerprint: want_str(&v, "fingerprint")?,
            }),
            "complete" => {
                let raw = want_str(&v, "record")?;
                let record = JournalRecord::from_line(&raw)
                    .map_err(|e| format!("bad embedded record: {e}"))?;
                Ok(Request::Complete {
                    worker: want_str(&v, "worker")?,
                    record: Box::new(record),
                })
            }
            "fail" => Ok(Request::Fail {
                worker: want_str(&v, "worker")?,
                fingerprint: want_str(&v, "fingerprint")?,
                attempts: u32::try_from(want_u64(&v, "attempts")?).unwrap_or(u32::MAX),
                exit: want_str(&v, "exit")?,
                permanent: want_bool(&v, "permanent")?,
            }),
            "collect" => Ok(Request::Collect {
                fingerprints: arr_of_strings(
                    v.get("fingerprints")
                        .ok_or_else(|| "missing \"fingerprints\"".to_string())?,
                )?,
            }),
            other => Err(format!("unknown op \"{other}\"")),
        }
    }
}

impl Reply {
    /// Renders the reply as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Reply::Submitted {
                accepted,
                known,
                total,
            } => format!(
                "{{\"status\":\"submitted\",\"accepted\":{accepted},\"known\":{known},\"total\":{total}}}"
            ),
            Reply::Job {
                fingerprint,
                label,
                args,
                lease_ms,
                corr,
            } => {
                let corr = corr
                    .as_deref()
                    .map(|c| format!(",\"corr\":{}", json_escape(c)))
                    .unwrap_or_default();
                format!(
                    "{{\"status\":\"job\",\"fingerprint\":{},\"label\":{},\"args\":{},\"lease_ms\":{lease_ms}{corr}}}",
                    json_escape(fingerprint),
                    json_escape(label),
                    render_args(args),
                )
            }
            Reply::Empty {
                retry_after_ms,
                active,
            } => format!(
                "{{\"status\":\"empty\",\"retry_after_ms\":{retry_after_ms},\"active\":{active}}}"
            ),
            Reply::Draining => "{\"status\":\"draining\"}".to_string(),
            Reply::HeartbeatOk => "{\"status\":\"ok\"}".to_string(),
            Reply::HeartbeatLost => "{\"status\":\"lost\"}".to_string(),
            Reply::Completed { verdict } => {
                format!("{{\"status\":{}}}", json_escape(verdict))
            }
            Reply::Failed {
                requeued,
                quarantined,
            } => format!(
                "{{\"status\":\"failed\",\"requeued\":{requeued},\"quarantined\":{quarantined}}}"
            ),
            Reply::Collected {
                pending,
                unknown,
                records,
            } => {
                let parts: Vec<String> =
                    records.iter().map(|r| json_escape(&r.to_line())).collect();
                format!(
                    "{{\"status\":\"collected\",\"pending\":{pending},\"unknown\":{unknown},\"records\":[{}]}}",
                    parts.join(","),
                )
            }
            Reply::Error { error } => {
                format!("{{\"status\":\"error\",\"error\":{}}}", json_escape(error))
            }
        }
    }

    /// Parses one wire line into a reply.
    pub fn from_line(line: &str) -> Result<Reply, String> {
        let v = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let status = want_str(&v, "status")?;
        match status.as_str() {
            "submitted" => Ok(Reply::Submitted {
                accepted: want_u64(&v, "accepted")?,
                known: want_u64(&v, "known")?,
                total: want_u64(&v, "total")?,
            }),
            "job" => Ok(Reply::Job {
                fingerprint: want_str(&v, "fingerprint")?,
                label: want_str(&v, "label")?,
                args: arr_of_strings(
                    v.get("args")
                        .ok_or_else(|| "missing \"args\"".to_string())?,
                )?,
                lease_ms: want_u64(&v, "lease_ms")?,
                corr: v.get("corr").and_then(Json::as_str).map(str::to_string),
            }),
            "empty" => Ok(Reply::Empty {
                retry_after_ms: want_u64(&v, "retry_after_ms")?,
                active: want_u64(&v, "active")?,
            }),
            "draining" => Ok(Reply::Draining),
            "ok" => Ok(Reply::HeartbeatOk),
            "lost" => Ok(Reply::HeartbeatLost),
            "failed" => Ok(Reply::Failed {
                requeued: want_bool(&v, "requeued")?,
                quarantined: want_bool(&v, "quarantined")?,
            }),
            "collected" => {
                let items = v
                    .get("records")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| "missing/invalid \"records\"".to_string())?;
                let mut records = Vec::with_capacity(items.len());
                for it in items {
                    let raw = it
                        .as_str()
                        .ok_or_else(|| "record entries must be strings".to_string())?;
                    records.push(
                        JournalRecord::from_line(raw)
                            .map_err(|e| format!("bad embedded record: {e}"))?,
                    );
                }
                Ok(Reply::Collected {
                    pending: want_u64(&v, "pending")?,
                    unknown: want_u64(&v, "unknown")?,
                    records,
                })
            }
            "error" => Ok(Reply::Error {
                error: want_str(&v, "error")?,
            }),
            // ok/duplicate/conflict/requeued/unknown completion verdicts.
            other => Ok(Reply::Completed {
                verdict: other.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use barre_system::{metrics_digest, JournalEvent, RunMetrics};

    fn roundtrip_req(req: Request) {
        let line = req.to_line();
        let back = Request::from_line(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert_eq!(back, req, "{line}");
    }

    fn roundtrip_reply(reply: Reply) {
        let line = reply.to_line();
        let back = Reply::from_line(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert_eq!(back, reply, "{line}");
    }

    #[test]
    fn requests_roundtrip_including_awkward_strings() {
        roundtrip_req(Request::Submit {
            jobs: vec![
                JobSpec {
                    fingerprint: "abc123".into(),
                    label: "gups/\"quoted\"".into(),
                    args: vec!["sweep".into(), "--ptw-share".into(), "0.5\n".into()],
                    corr: Some("c0011223344556677".into()),
                },
                JobSpec {
                    fingerprint: "def456".into(),
                    label: "gups/plain".into(),
                    args: vec!["sweep".into()],
                    corr: None,
                },
            ],
        });
        roundtrip_req(Request::Lease {
            worker: "host-a:1".into(),
        });
        roundtrip_req(Request::Heartbeat {
            worker: "w".into(),
            fingerprint: "f".into(),
        });
        roundtrip_req(Request::Fail {
            worker: "w".into(),
            fingerprint: "f".into(),
            attempts: 3,
            exit: "signal:9".into(),
            permanent: false,
        });
        roundtrip_req(Request::Collect {
            fingerprints: vec!["f1".into(), "f2".into()],
        });
    }

    #[test]
    fn complete_embeds_a_done_record_verbatim() {
        let m = Box::new(RunMetrics {
            total_cycles: 42,
            ..Default::default()
        });
        let rec = JournalRecord {
            fingerprint: "f1".into(),
            label: "gups/barre".into(),
            event: JournalEvent::Done {
                attempts: 1,
                exit: "ok".into(),
                digest: metrics_digest(&m),
                hist_digest: None,
                worker: None,
                metrics: m,
            },
        };
        let req = Request::Complete {
            worker: "w1".into(),
            record: Box::new(rec.clone()),
        };
        let line = req.to_line();
        match Request::from_line(&line).expect("parse") {
            Request::Complete { worker, record } => {
                assert_eq!(worker, "w1");
                assert_eq!(record.to_line(), rec.to_line());
            }
            other => panic!("expected complete, got {other:?}"),
        }
    }

    #[test]
    fn replies_roundtrip_including_embedded_records() {
        roundtrip_reply(Reply::Submitted {
            accepted: 3,
            known: 2,
            total: 5,
        });
        roundtrip_reply(Reply::Job {
            fingerprint: "f1".into(),
            label: "gups/barre".into(),
            args: vec!["sweep".into(), "--job-index".into(), "7".into()],
            lease_ms: 10_000,
            corr: Some("c8899aabbccddeeff".into()),
        });
        // Older peers omit "corr" entirely: the field parses as absent.
        match Reply::from_line(
            "{\"status\":\"job\",\"fingerprint\":\"f1\",\"label\":\"l\",\"args\":[],\"lease_ms\":5}",
        )
        .expect("legacy job reply")
        {
            Reply::Job { corr, .. } => assert_eq!(corr, None),
            other => panic!("expected job, got {other:?}"),
        }
        roundtrip_reply(Reply::Empty {
            retry_after_ms: 250,
            active: 4,
        });
        roundtrip_reply(Reply::Draining);
        roundtrip_reply(Reply::HeartbeatOk);
        roundtrip_reply(Reply::HeartbeatLost);
        roundtrip_reply(Reply::Completed {
            verdict: "duplicate".into(),
        });
        roundtrip_reply(Reply::Failed {
            requeued: true,
            quarantined: false,
        });
        let m = Box::new(RunMetrics {
            total_cycles: 7,
            ..Default::default()
        });
        roundtrip_reply(Reply::Collected {
            pending: 1,
            unknown: 0,
            records: vec![JournalRecord {
                fingerprint: "f1".into(),
                label: "gups/barre".into(),
                event: JournalEvent::Done {
                    attempts: 2,
                    exit: "ok".into(),
                    digest: metrics_digest(&m),
                    hist_digest: None,
                    worker: Some("w1".into()),
                    metrics: m,
                },
            }],
        });
    }

    #[test]
    fn garbage_lines_are_rejected_with_context() {
        assert!(Request::from_line("not json").is_err());
        assert!(Request::from_line("{\"op\":\"noop\"}").is_err());
        assert!(Request::from_line("{\"op\":\"lease\"}").is_err());
        assert!(Reply::from_line("{\"no\":\"status\"}").is_err());
        assert!(Request::from_line(
            "{\"op\":\"complete\",\"worker\":\"w\",\"record\":\"garbage\"}"
        )
        .is_err());
    }
}
