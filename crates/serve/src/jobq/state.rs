//! The queue coordinator's state machine — pure and deterministic.
//!
//! Every transition takes the current time as a parameter and returns
//! the journal records describing it, so the whole lease protocol is
//! unit-testable without sockets, threads, or a clock. The coordinator
//! wraps one `QueueState` in a mutex, feeds it wall-clock milliseconds,
//! and appends whatever records come back to its write-ahead journal.
//!
//! Job lifecycle:
//!
//! ```text
//! queued ──lease──▶ leased ──complete──▶ done        (terminal)
//!   ▲                  │ ├──fail(permanent)──▶ failed (terminal)
//!   │                  │ └──fail(transient)─┐
//!   └── backoff ◀──────┴──lease expiry──────┤
//!                                           └─▶ quarantined when the
//!                                               job burned max_leases
//!                                               leases     (terminal)
//! ```
//!
//! Re-dispatch after an expired or transiently-failed lease waits a
//! deterministic capped backoff ([`backoff_delay`] of the lease count);
//! quarantine reuses the serve [`CircuitBreaker`]: each burned lease is
//! a recorded failure, and the breaker tripping open is the poison
//! verdict. Results are digest-verified on ingest and deduplicated
//! first-wins with conflict detection — the same contract
//! `merge_journals` enforces across shards, so a slow worker's late
//! duplicate is byte-compatible with the winner or loudly rejected.

use std::collections::BTreeMap;

use barre_system::{metrics_digest, metrics_hist_digest, JournalEvent, JournalRecord, RunMetrics};

use crate::attempt::backoff_delay;
use crate::breaker::CircuitBreaker;

/// One job as submitted by a dispatch client.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Stable identity (the supervisor's `job_fingerprint`).
    pub fingerprint: String,
    /// Human label (`"gups/barre"`).
    pub label: String,
    /// Child argv to execute (includes `--job-index`).
    pub args: Vec<String>,
    /// Fleet-trace correlation id minted by the dispatch client, if
    /// any. Held in memory only — it never enters the journal, so
    /// journal bytes stay identical whether or not tracing is on.
    pub corr: Option<String>,
}

/// Where a job currently is in its lifecycle.
#[derive(Debug, Clone)]
enum Slot {
    /// Waiting for a worker; not leasable before `not_before_ms`.
    Queued { not_before_ms: u64 },
    /// Held by `worker` until `deadline_ms` (heartbeats extend it).
    Leased { worker: String, deadline_ms: u64 },
    /// Finished: the terminal journal record (`done`/`failed`/
    /// `quarantined`) is the state.
    Terminal(JournalRecord),
}

#[derive(Debug, Clone)]
struct Entry {
    label: String,
    args: Vec<String>,
    slot: Slot,
    /// Leases granted so far (1-based lease numbers come from here).
    leases: u32,
    /// Last worker that held a lease, for compaction/attribution.
    last_worker: Option<String>,
    /// Correlation id from the submitting client (in-memory only; lost
    /// on coordinator restart, by design — journals stay byte-stable).
    corr: Option<String>,
}

/// Reply to a lease request.
#[derive(Debug, Clone, PartialEq)]
pub enum LeaseReply {
    /// A job to run, with the lease duration the worker must heartbeat
    /// within.
    Job {
        /// Job identity.
        fingerprint: String,
        /// Human label.
        label: String,
        /// Child argv to execute.
        args: Vec<String>,
        /// Lease duration in milliseconds.
        lease_ms: u64,
        /// Correlation id from the submitting client, forwarded so the
        /// worker can stitch its attempt into the same fleet trace.
        corr: Option<String>,
    },
    /// Nothing leasable right now.
    Empty {
        /// Suggested poll delay.
        retry_after_ms: u64,
        /// Jobs not yet terminal (0 = the sweep is finished).
        active: usize,
    },
}

/// Verdict on an ingested completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestReply {
    /// First verified result for this job — recorded.
    Accepted,
    /// The job was already done with an identical digest (slow-worker
    /// duplicate) — dropped, first wins.
    Duplicate,
    /// The job was already done with a *different* digest — rejected
    /// and counted; the first result stands.
    Conflict,
    /// The stored digest does not match the metrics payload (corrupt
    /// transmission) — rejected, and the lease is burned so the job
    /// re-dispatches.
    BadDigest,
    /// No such fingerprint.
    Unknown,
}

/// Verdict on a reported failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailReply {
    /// The job went back to the queue (with backoff).
    pub requeued: bool,
    /// The job was quarantined as poison.
    pub quarantined: bool,
}

/// What lease expiry found, for the coordinator's log.
#[derive(Debug, Clone)]
pub struct Expiry {
    /// Job identity.
    pub fingerprint: String,
    /// Human label.
    pub label: String,
    /// Worker whose lease lapsed.
    pub worker: String,
    /// Whether the expiry quarantined the job.
    pub quarantined: bool,
}

/// Counters for `/stats` and the drain summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueCounts {
    /// Jobs waiting (including backoff waits).
    pub queued: usize,
    /// Jobs currently under lease.
    pub leased: usize,
    /// Jobs completed.
    pub done: usize,
    /// Jobs failed permanently.
    pub failed: usize,
    /// Jobs quarantined as poison.
    pub quarantined: usize,
    /// Leases that expired without a result.
    pub expired: u64,
    /// Digest conflicts rejected on ingest.
    pub conflicts: u64,
    /// Identical duplicate completions dropped.
    pub duplicates: u64,
}

impl QueueCounts {
    /// Jobs in a non-terminal state.
    pub fn active(&self) -> usize {
        self.queued.saturating_add(self.leased)
    }

    /// All jobs ever submitted.
    pub fn total(&self) -> usize {
        self.active()
            .saturating_add(self.done)
            .saturating_add(self.failed)
            .saturating_add(self.quarantined)
    }
}

/// The coordinator's whole job table. See the module docs for the
/// lifecycle.
pub struct QueueState {
    lease_ms: u64,
    max_leases: u32,
    entries: BTreeMap<String, Entry>,
    /// Submission order — the order `collect` and compaction preserve,
    /// which is what makes a distributed sweep's merged journal
    /// byte-identical to a serial one.
    order: Vec<String>,
    breaker: CircuitBreaker,
    expired: u64,
    conflicts: u64,
    duplicates: u64,
}

impl QueueState {
    /// An empty queue granting `lease_ms` leases and quarantining a job
    /// after `max_leases` burned leases (0 disables quarantine).
    pub fn new(lease_ms: u64, max_leases: u32) -> Self {
        QueueState {
            lease_ms: lease_ms.max(1),
            max_leases,
            entries: BTreeMap::new(),
            order: Vec::new(),
            breaker: CircuitBreaker::new(max_leases),
            expired: 0,
            conflicts: 0,
            duplicates: 0,
        }
    }

    /// The lease duration granted to workers, in milliseconds.
    pub fn lease_ms(&self) -> u64 {
        self.lease_ms
    }

    /// Accepts new jobs; fingerprints already known (in any state) are
    /// skipped, so resubmission after a client reconnect is idempotent.
    /// Returns `(accepted, already_known)` plus the `queued` records to
    /// journal.
    pub fn submit(&mut self, specs: &[JobSpec]) -> (usize, usize, Vec<JournalRecord>) {
        let mut accepted = 0usize;
        let mut known = 0usize;
        let mut records = Vec::new();
        for spec in specs {
            if self.entries.contains_key(&spec.fingerprint) {
                known = known.saturating_add(1);
                continue;
            }
            self.entries.insert(
                spec.fingerprint.clone(),
                Entry {
                    label: spec.label.clone(),
                    args: spec.args.clone(),
                    slot: Slot::Queued { not_before_ms: 0 },
                    leases: 0,
                    last_worker: None,
                    corr: spec.corr.clone(),
                },
            );
            self.order.push(spec.fingerprint.clone());
            records.push(JournalRecord {
                fingerprint: spec.fingerprint.clone(),
                label: spec.label.clone(),
                event: JournalEvent::Queued {
                    args: spec.args.clone(),
                },
            });
            accepted = accepted.saturating_add(1);
        }
        (accepted, known, records)
    }

    /// Grants the first leasable job (submission order) to `worker`.
    pub fn lease(&mut self, worker: &str, now_ms: u64) -> (LeaseReply, Vec<JournalRecord>) {
        let mut next_wait: Option<u64> = None;
        for fp in &self.order {
            let Some(e) = self.entries.get_mut(fp) else {
                continue;
            };
            match &e.slot {
                Slot::Queued { not_before_ms } if *not_before_ms <= now_ms => {
                    e.leases = e.leases.saturating_add(1);
                    e.last_worker = Some(worker.to_string());
                    e.slot = Slot::Leased {
                        worker: worker.to_string(),
                        deadline_ms: now_ms.saturating_add(self.lease_ms),
                    };
                    let rec = JournalRecord {
                        fingerprint: fp.clone(),
                        label: e.label.clone(),
                        event: JournalEvent::Leased {
                            worker: worker.to_string(),
                            lease: e.leases,
                        },
                    };
                    let reply = LeaseReply::Job {
                        fingerprint: fp.clone(),
                        label: e.label.clone(),
                        args: e.args.clone(),
                        lease_ms: self.lease_ms,
                        corr: e.corr.clone(),
                    };
                    return (reply, vec![rec]);
                }
                Slot::Queued { not_before_ms } => {
                    let wait = not_before_ms.saturating_sub(now_ms);
                    next_wait = Some(next_wait.map_or(wait, |w| w.min(wait)));
                }
                Slot::Leased { deadline_ms, .. } => {
                    let wait = deadline_ms.saturating_sub(now_ms);
                    next_wait = Some(next_wait.map_or(wait, |w| w.min(wait)));
                }
                Slot::Terminal(_) => {}
            }
        }
        let counts = self.counts();
        let retry_after_ms = next_wait
            .unwrap_or(self.lease_ms)
            .clamp(50, self.lease_ms.max(50));
        (
            LeaseReply::Empty {
                retry_after_ms,
                active: counts.active(),
            },
            Vec::new(),
        )
    }

    /// Extends `worker`'s lease on `fp`. Returns false when the lease is
    /// lost (expired and re-dispatched, finished, or never granted) —
    /// the worker should abandon its attempt.
    pub fn heartbeat(&mut self, fp: &str, worker: &str, now_ms: u64) -> bool {
        let Some(e) = self.entries.get_mut(fp) else {
            return false;
        };
        match &mut e.slot {
            Slot::Leased {
                worker: holder,
                deadline_ms,
            } if holder == worker => {
                *deadline_ms = now_ms.saturating_add(self.lease_ms);
                true
            }
            _ => false,
        }
    }

    /// Ingests a completion: digest-verify, dedup first-wins, detect
    /// conflicts. A verified first result is terminal regardless of who
    /// holds the lease — work done is work done, even if the lease
    /// expired and the job was re-dispatched meanwhile.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        fp: &str,
        worker: &str,
        attempts: u32,
        exit: &str,
        digest: &str,
        hist_digest: Option<&str>,
        metrics: Box<RunMetrics>,
        now_ms: u64,
    ) -> (IngestReply, Vec<JournalRecord>) {
        if !self.entries.contains_key(fp) {
            return (IngestReply::Unknown, Vec::new());
        }
        let digest_ok = digest == metrics_digest(&metrics)
            && hist_digest.is_none_or(|h| h == metrics_hist_digest(&metrics));
        if !digest_ok {
            // Corrupt transmission: burn the lease so the job re-runs.
            let (_, records) = self.burn_lease(fp, "bad-digest", now_ms);
            return (IngestReply::BadDigest, records);
        }
        let Some(e) = self.entries.get_mut(fp) else {
            return (IngestReply::Unknown, Vec::new());
        };
        if let Slot::Terminal(prev) = &e.slot {
            if let JournalEvent::Done { digest: d0, .. } = &prev.event {
                return if d0 == digest {
                    self.duplicates = self.duplicates.saturating_add(1);
                    (IngestReply::Duplicate, Vec::new())
                } else {
                    self.conflicts = self.conflicts.saturating_add(1);
                    (IngestReply::Conflict, Vec::new())
                };
            }
            // A verified completion displaces failed/quarantined — the
            // same done-beats-failed rule merge_journals applies.
        }
        let rec = JournalRecord {
            fingerprint: fp.to_string(),
            label: e.label.clone(),
            event: JournalEvent::Done {
                attempts,
                exit: exit.to_string(),
                digest: digest.to_string(),
                hist_digest: hist_digest.map(str::to_string),
                worker: Some(worker.to_string()),
                metrics,
            },
        };
        e.slot = Slot::Terminal(rec.clone());
        self.breaker.record_success(fp);
        (IngestReply::Accepted, vec![rec])
    }

    /// Ingests a reported failure: permanent failures are terminal;
    /// transient ones burn the lease (requeue with backoff, or
    /// quarantine once the budget is gone).
    pub fn fail(
        &mut self,
        fp: &str,
        attempts: u32,
        exit: &str,
        permanent: bool,
        now_ms: u64,
    ) -> (FailReply, Vec<JournalRecord>) {
        let Some(e) = self.entries.get_mut(fp) else {
            return (
                FailReply {
                    requeued: false,
                    quarantined: false,
                },
                Vec::new(),
            );
        };
        if matches!(e.slot, Slot::Terminal(_)) {
            return (
                FailReply {
                    requeued: false,
                    quarantined: false,
                },
                Vec::new(),
            );
        }
        if permanent {
            let rec = JournalRecord {
                fingerprint: fp.to_string(),
                label: e.label.clone(),
                event: JournalEvent::Failed {
                    attempts,
                    exit: exit.to_string(),
                    dump: None,
                },
            };
            e.slot = Slot::Terminal(rec.clone());
            return (
                FailReply {
                    requeued: false,
                    quarantined: false,
                },
                vec![rec],
            );
        }
        let (quarantined, records) = self.burn_lease(fp, exit, now_ms);
        (
            FailReply {
                requeued: !quarantined,
                quarantined,
            },
            records,
        )
    }

    /// Expires lapsed leases: each is a burned lease (requeue with
    /// backoff, or quarantine). Returns the records to journal and what
    /// happened, for the coordinator's log.
    pub fn tick(&mut self, now_ms: u64) -> (Vec<JournalRecord>, Vec<Expiry>) {
        let lapsed: Vec<(String, String)> = self
            .entries
            .iter()
            .filter_map(|(fp, e)| match &e.slot {
                Slot::Leased {
                    worker,
                    deadline_ms,
                } if *deadline_ms < now_ms => Some((fp.clone(), worker.clone())),
                _ => None,
            })
            .collect();
        let mut records = Vec::new();
        let mut expiries = Vec::new();
        for (fp, worker) in lapsed {
            self.expired = self.expired.saturating_add(1);
            let label = self
                .entries
                .get(&fp)
                .map(|e| e.label.clone())
                .unwrap_or_default();
            let (quarantined, recs) = self.burn_lease(&fp, "lease-expired", now_ms);
            records.extend(recs);
            expiries.push(Expiry {
                fingerprint: fp,
                label,
                worker,
                quarantined,
            });
        }
        (records, expiries)
    }

    /// A lease ended without a verified result: record the failure on
    /// the breaker and either requeue with deterministic capped backoff
    /// or quarantine. Returns whether the job was quarantined.
    fn burn_lease(&mut self, fp: &str, exit: &str, now_ms: u64) -> (bool, Vec<JournalRecord>) {
        let tripped = self.breaker.record_failure(fp) || self.breaker.is_open(fp);
        let Some(e) = self.entries.get_mut(fp) else {
            return (false, Vec::new());
        };
        if matches!(e.slot, Slot::Terminal(_)) {
            return (false, Vec::new());
        }
        if tripped && self.max_leases > 0 {
            let rec = JournalRecord {
                fingerprint: fp.to_string(),
                label: e.label.clone(),
                event: JournalEvent::Quarantined {
                    leases: e.leases,
                    exit: exit.to_string(),
                },
            };
            e.slot = Slot::Terminal(rec.clone());
            return (true, vec![rec]);
        }
        let delay = u64::try_from(backoff_delay(e.leases).as_millis()).unwrap_or(u64::MAX);
        e.slot = Slot::Queued {
            not_before_ms: now_ms.saturating_add(delay),
        };
        (false, Vec::new())
    }

    /// The correlation id the submitting client attached to `fp`, if
    /// any — for the coordinator's fleet-trace events on transitions
    /// that arrive without one (expiry, completion, failure).
    pub fn corr_of(&self, fp: &str) -> Option<&str> {
        self.entries.get(fp).and_then(|e| e.corr.as_deref())
    }

    /// Terminal records for the requested fingerprints, in request
    /// order, plus how many are still pending and how many are unknown
    /// (a client seeing `unknown > 0` resubmits — the coordinator lost
    /// its journal).
    pub fn collect(&self, fps: &[String]) -> (Vec<JournalRecord>, usize, usize) {
        let mut records = Vec::new();
        let mut pending = 0usize;
        let mut unknown = 0usize;
        for fp in fps {
            match self.entries.get(fp) {
                Some(Entry {
                    slot: Slot::Terminal(rec),
                    ..
                }) => records.push(rec.clone()),
                Some(_) => pending = pending.saturating_add(1),
                None => unknown = unknown.saturating_add(1),
            }
        }
        (records, pending, unknown)
    }

    /// Current counters.
    pub fn counts(&self) -> QueueCounts {
        let mut c = QueueCounts {
            expired: self.expired,
            conflicts: self.conflicts,
            duplicates: self.duplicates,
            ..Default::default()
        };
        for e in self.entries.values() {
            match &e.slot {
                Slot::Queued { .. } => c.queued = c.queued.saturating_add(1),
                Slot::Leased { .. } => c.leased = c.leased.saturating_add(1),
                Slot::Terminal(rec) => match &rec.event {
                    JournalEvent::Done { .. } => c.done = c.done.saturating_add(1),
                    JournalEvent::Quarantined { .. } => {
                        c.quarantined = c.quarantined.saturating_add(1);
                    }
                    _ => c.failed = c.failed.saturating_add(1),
                },
            }
        }
        c
    }

    /// Rebuilds the state a write-ahead journal describes. Terminal
    /// records stand; anything else is re-queued immediately (a lease
    /// in flight at crash time either re-reports — dedup absorbs it —
    /// or is simply redone). Burned leases are replayed onto the
    /// breaker so a poison job cannot reset its budget by crashing the
    /// coordinator.
    pub fn replay(records: &[JournalRecord], lease_ms: u64, max_leases: u32) -> Self {
        let mut st = QueueState::new(lease_ms, max_leases);
        for rec in records {
            match &rec.event {
                JournalEvent::Queued { args } => {
                    if !st.entries.contains_key(&rec.fingerprint) {
                        st.entries.insert(
                            rec.fingerprint.clone(),
                            Entry {
                                label: rec.label.clone(),
                                args: args.clone(),
                                slot: Slot::Queued { not_before_ms: 0 },
                                leases: 0,
                                last_worker: None,
                                corr: None,
                            },
                        );
                        st.order.push(rec.fingerprint.clone());
                    }
                }
                JournalEvent::Leased { worker, lease } => {
                    if let Some(e) = st.entries.get_mut(&rec.fingerprint) {
                        if !matches!(e.slot, Slot::Terminal(_)) {
                            e.leases = e.leases.max(*lease);
                            e.last_worker = Some(worker.clone());
                        }
                    }
                }
                JournalEvent::Done { .. }
                | JournalEvent::Failed { .. }
                | JournalEvent::Quarantined { .. } => {
                    if let Some(e) = st.entries.get_mut(&rec.fingerprint) {
                        e.slot = Slot::Terminal(rec.clone());
                    } else {
                        // Terminal record without its queued line (an
                        // older journal form): tolerate it.
                        st.entries.insert(
                            rec.fingerprint.clone(),
                            Entry {
                                label: rec.label.clone(),
                                args: Vec::new(),
                                slot: Slot::Terminal(rec.clone()),
                                leases: 0,
                                last_worker: None,
                                corr: None,
                            },
                        );
                        st.order.push(rec.fingerprint.clone());
                    }
                }
                JournalEvent::Start { .. } => {}
            }
        }
        // Seed the breaker with the burned leases of unfinished jobs.
        let unfinished: Vec<(String, u32)> = st
            .entries
            .iter()
            .filter(|(_, e)| !matches!(e.slot, Slot::Terminal(_)))
            .map(|(fp, e)| (fp.clone(), e.leases))
            .collect();
        for (fp, leases) in unfinished {
            for _ in 0..leases {
                let _ = st.breaker.record_failure(&fp);
            }
        }
        st
    }

    /// The minimal record sequence reproducing this state (one `queued`
    /// per job, a lease-count marker for unfinished jobs, the terminal
    /// record where one exists) — what compaction writes at drain and
    /// after replay so the journal stays proportional to the job count.
    pub fn compacted(&self) -> Vec<JournalRecord> {
        let mut out = Vec::with_capacity(self.entries.len() * 2);
        for fp in &self.order {
            let Some(e) = self.entries.get(fp) else {
                continue;
            };
            out.push(JournalRecord {
                fingerprint: fp.clone(),
                label: e.label.clone(),
                event: JournalEvent::Queued {
                    args: e.args.clone(),
                },
            });
            match &e.slot {
                Slot::Terminal(rec) => out.push(rec.clone()),
                _ if e.leases > 0 => out.push(JournalRecord {
                    fingerprint: fp.clone(),
                    label: e.label.clone(),
                    event: JournalEvent::Leased {
                        worker: e.last_worker.clone().unwrap_or_default(),
                        lease: e.leases,
                    },
                }),
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(fp: &str) -> JobSpec {
        JobSpec {
            fingerprint: fp.to_string(),
            label: format!("app/{fp}"),
            args: vec!["sweep".into(), "--job-index".into(), "0".into()],
            corr: Some(format!("c{fp}")),
        }
    }

    fn metrics(cycles: u64) -> Box<RunMetrics> {
        Box::new(RunMetrics {
            total_cycles: cycles,
            ..Default::default()
        })
    }

    fn complete_ok(
        st: &mut QueueState,
        fp: &str,
        worker: &str,
        cycles: u64,
        now: u64,
    ) -> IngestReply {
        let m = metrics(cycles);
        let d = metrics_digest(&m);
        let h = metrics_hist_digest(&m);
        let (reply, _) = st.complete(fp, worker, 1, "ok", &d, Some(&h), m, now);
        reply
    }

    #[test]
    fn lease_complete_happy_path() {
        let mut st = QueueState::new(1000, 3);
        let (acc, known, recs) = st.submit(&[spec("f1"), spec("f2"), spec("f1")]);
        assert_eq!((acc, known), (2, 1));
        assert_eq!(recs.len(), 2);
        let (reply, recs) = st.lease("w1", 0);
        assert!(matches!(reply, LeaseReply::Job { ref fingerprint, .. } if fingerprint == "f1"));
        assert_eq!(recs.len(), 1);
        assert!(st.heartbeat("f1", "w1", 500));
        assert!(!st.heartbeat("f1", "w2", 500), "wrong holder");
        assert_eq!(
            complete_ok(&mut st, "f1", "w1", 10, 600),
            IngestReply::Accepted
        );
        let c = st.counts();
        assert_eq!((c.done, c.queued, c.leased), (1, 1, 0));
        // The stamped record carries the worker identity.
        let (recs, pending, unknown) = st.collect(&["f1".into(), "f2".into(), "fx".into()]);
        assert_eq!((recs.len(), pending, unknown), (1, 1, 1));
        match &recs[0].event {
            JournalEvent::Done { worker, .. } => assert_eq!(worker.as_deref(), Some("w1")),
            other => panic!("expected done, got {other:?}"),
        }
    }

    #[test]
    fn expired_lease_requeues_with_backoff_then_quarantines() {
        let mut st = QueueState::new(100, 3);
        st.submit(&[spec("f1")]);
        // Lease 1 expires.
        let (reply, _) = st.lease("w1", 0);
        assert!(matches!(reply, LeaseReply::Job { .. }));
        let (recs, exp) = st.tick(101);
        assert!(recs.is_empty(), "requeue writes no record");
        assert_eq!(exp.len(), 1);
        assert!(!exp[0].quarantined);
        assert_eq!(st.counts().expired, 1);
        // Backoff: not leasable immediately.
        let (reply, _) = st.lease("w1", 102);
        let hint = match reply {
            LeaseReply::Empty {
                retry_after_ms,
                active,
            } => {
                assert_eq!(active, 1);
                retry_after_ms
            }
            other => panic!("expected empty, got {other:?}"),
        };
        assert!(hint >= 50, "{hint}");
        // After backoff (200ms for lease 1), leasable again.
        let (reply, _) = st.lease("w1", 400);
        assert!(matches!(reply, LeaseReply::Job { .. }));
        let _ = st.tick(501);
        // Third lease; its expiry trips the breaker (max_leases = 3).
        let (reply, _) = st.lease("w2", 1000);
        assert!(matches!(reply, LeaseReply::Job { .. }));
        let (recs, exp) = st.tick(1101);
        assert_eq!(recs.len(), 1);
        assert!(exp[0].quarantined);
        match &recs[0].event {
            JournalEvent::Quarantined { leases, exit } => {
                assert_eq!(*leases, 3);
                assert_eq!(exit, "lease-expired");
            }
            other => panic!("expected quarantined, got {other:?}"),
        }
        assert_eq!(st.counts().quarantined, 1);
        // Quarantined jobs are never re-leased.
        let (reply, _) = st.lease("w1", 9999);
        assert!(matches!(reply, LeaseReply::Empty { active: 0, .. }));
    }

    #[test]
    fn ingest_dedups_first_wins_and_detects_conflicts() {
        let mut st = QueueState::new(1000, 3);
        st.submit(&[spec("f1")]);
        let _ = st.lease("w1", 0);
        assert_eq!(
            complete_ok(&mut st, "f1", "w1", 10, 1),
            IngestReply::Accepted
        );
        // Identical duplicate from a slow worker: dropped silently.
        assert_eq!(
            complete_ok(&mut st, "f1", "w2", 10, 2),
            IngestReply::Duplicate
        );
        // Different digest: conflict, first result stands.
        assert_eq!(
            complete_ok(&mut st, "f1", "w2", 11, 3),
            IngestReply::Conflict
        );
        let c = st.counts();
        assert_eq!((c.duplicates, c.conflicts, c.done), (1, 1, 1));
        let (recs, _, _) = st.collect(&["f1".into()]);
        match &recs[0].event {
            JournalEvent::Done {
                metrics, worker, ..
            } => {
                assert_eq!(metrics.total_cycles, 10);
                assert_eq!(worker.as_deref(), Some("w1"));
            }
            other => panic!("expected done, got {other:?}"),
        }
    }

    #[test]
    fn bad_digest_burns_the_lease_and_success_resets_the_budget() {
        let mut st = QueueState::new(1000, 2);
        st.submit(&[spec("f1")]);
        let _ = st.lease("w1", 0);
        let m = metrics(10);
        let (reply, _) = st.complete("f1", "w1", 1, "ok", "not-the-digest", None, m, 1);
        assert_eq!(reply, IngestReply::BadDigest);
        // Burned lease 1 of 2; re-leasable after backoff, and a clean
        // completion then lands and resets the breaker.
        let (reply, _) = st.lease("w1", 500);
        assert!(matches!(reply, LeaseReply::Job { .. }));
        assert_eq!(
            complete_ok(&mut st, "f1", "w1", 10, 501),
            IngestReply::Accepted
        );
        assert_eq!(st.counts().done, 1);
    }

    #[test]
    fn permanent_failure_is_terminal_and_transient_failures_quarantine() {
        let mut st = QueueState::new(1000, 2);
        st.submit(&[spec("f1"), spec("f2")]);
        let _ = st.lease("w1", 0); // f1
        let (reply, recs) = st.fail("f1", 1, "exit:64", true, 1);
        assert!(!reply.requeued && !reply.quarantined);
        assert!(matches!(recs[0].event, JournalEvent::Failed { .. }));
        // f2 fails transiently twice → quarantined on the second burn.
        let _ = st.lease("w1", 2); // f2
        let (reply, _) = st.fail("f2", 1, "signal:9", false, 3);
        assert!(reply.requeued && !reply.quarantined);
        let (reply, _) = st.lease("w1", 500);
        assert!(matches!(reply, LeaseReply::Job { .. }));
        let (reply, recs) = st.fail("f2", 1, "signal:9", false, 501);
        assert!(!reply.requeued && reply.quarantined);
        assert!(matches!(recs[0].event, JournalEvent::Quarantined { .. }));
        let c = st.counts();
        assert_eq!((c.failed, c.quarantined, c.active()), (1, 1, 0));
    }

    #[test]
    fn late_completion_displaces_quarantine() {
        let mut st = QueueState::new(100, 1);
        st.submit(&[spec("f1")]);
        let _ = st.lease("w1", 0);
        let (_, exp) = st.tick(101);
        assert!(
            exp[0].quarantined,
            "max_leases=1 quarantines on first expiry"
        );
        // The SIGKILLed-looking worker was actually alive and delivers.
        assert_eq!(
            complete_ok(&mut st, "f1", "w1", 10, 200),
            IngestReply::Accepted
        );
        let c = st.counts();
        assert_eq!((c.done, c.quarantined), (1, 0));
    }

    #[test]
    fn replay_restores_state_and_poison_budget() {
        let mut st = QueueState::new(1000, 2);
        st.submit(&[spec("f1"), spec("f2"), spec("f3")]);
        let mut wal = Vec::new();
        let (_, recs) = st.lease("w1", 0); // f1
        wal.extend(recs);
        let (_, recs) = st.lease("w2", 0); // f2
        wal.extend(recs);
        let m = metrics(10);
        let d = metrics_digest(&m);
        let (_, recs) = st.complete("f1", "w1", 1, "ok", &d, None, m, 1);
        wal.extend(recs);
        // Rebuild from submit records + the WAL above.
        let mut records: Vec<JournalRecord> = st
            .compacted()
            .into_iter()
            .filter(|r| matches!(r.event, JournalEvent::Queued { .. }))
            .collect();
        records.extend(wal);
        let st2 = QueueState::replay(&records, 1000, 2);
        let c = st2.counts();
        // f1 done; f2's in-flight lease was reset to queued; f3 queued.
        assert_eq!((c.done, c.queued, c.leased), (1, 2, 0));
        // f2 already burned one of its two leases: one more failed
        // lease must quarantine it, not restart the budget.
        let mut st2 = st2;
        let (reply, _) = st2.lease("w3", 0);
        assert!(matches!(reply, LeaseReply::Job { ref fingerprint, .. } if fingerprint == "f2"));
        let (reply, _) = st2.fail("f2", 1, "signal:9", false, 1);
        assert!(reply.quarantined, "replayed lease counts toward poison");
    }

    #[test]
    fn corr_ids_flow_to_leases_but_never_into_journals() {
        let mut st = QueueState::new(1000, 3);
        let (_, _, recs) = st.submit(&[spec("f1")]);
        assert!(!recs[0].to_line().contains("cf1"), "corr leaked to journal");
        let (reply, recs) = st.lease("w1", 0);
        match reply {
            LeaseReply::Job { corr, .. } => assert_eq!(corr.as_deref(), Some("cf1")),
            other => panic!("expected job, got {other:?}"),
        }
        assert!(!recs[0].to_line().contains("cf1"), "corr leaked to journal");
        assert_eq!(st.corr_of("f1"), Some("cf1"));
        assert_eq!(st.corr_of("nope"), None);
        for r in st.compacted() {
            assert!(!r.to_line().contains("cf1"), "corr leaked to compaction");
        }
    }

    #[test]
    fn compaction_roundtrips_through_replay() {
        let mut st = QueueState::new(1000, 3);
        st.submit(&[spec("f1"), spec("f2"), spec("f3"), spec("f4")]);
        let _ = st.lease("w1", 0); // f1 leased
        assert_eq!(
            complete_ok(&mut st, "f1", "w1", 10, 1),
            IngestReply::Accepted
        );
        let _ = st.lease("w1", 2); // f2 leased, left in flight
        let _ = st.fail("f3", 1, "exit:64", true, 3);
        let compact = st.compacted();
        let st2 = QueueState::replay(&compact, 1000, 3);
        let (c1, c2) = (st.counts(), st2.counts());
        assert_eq!(c1.done, c2.done);
        assert_eq!(c1.failed, c2.failed);
        assert_eq!(c1.quarantined, c2.quarantined);
        // In-flight leases come back as queued work.
        assert_eq!(c2.leased, 0);
        assert_eq!(c2.queued, c1.queued + c1.leased);
        // Collect order and payload survive.
        let fps: Vec<String> = vec!["f1".into(), "f2".into(), "f3".into(), "f4".into()];
        let (r1, _, _) = st.collect(&fps);
        let (r2, _, _) = st2.collect(&fps);
        let l1: Vec<String> = r1.iter().map(JournalRecord::to_line).collect();
        let l2: Vec<String> = r2.iter().map(JournalRecord::to_line).collect();
        assert_eq!(l1, l2);
    }
}
