//! The lease-based shared job queue behind `barre queue`, `barre
//! worker`, and `barre sweep --dispatch`.
//!
//! Three roles, one wire protocol:
//!
//! * [`coordinator`] — `barre queue`: owns the jobs. Every transition
//!   (`queued → leased → done/failed/quarantined`) goes through the
//!   pure [`state::QueueState`] machine and is appended to a
//!   write-ahead journal before the reply leaves the socket, so a
//!   SIGKILLed coordinator restarts with no lost or duplicated work.
//! * [`worker`] — `barre worker`: pulls jobs under time-bounded leases,
//!   heartbeats to keep them, executes in crash-isolated children, and
//!   abandons attempts whose lease the coordinator re-dispatched.
//! * [`client`] — the dispatch side of `barre sweep --dispatch`:
//!   submits jobs idempotently, streams completion, and rebuilds the
//!   sweep's results (and journal) in job order so a distributed run's
//!   output is byte-identical to a serial one.
//!
//! Robustness properties: expired leases re-dispatch with the
//! supervisor's deterministic capped backoff; a job that burns its
//! lease budget is quarantined as poison (the serve circuit breaker is
//! the counter) and reported instead of retried forever; completions
//! are digest-verified on ingest and deduplicated first-wins with
//! conflict detection — the same contract `merge_journals` enforces
//! across shards.

pub mod client;
pub mod coordinator;
pub mod state;
pub mod wire;
pub mod worker;

pub use client::{dispatch_sweep, DispatchFailure, DispatchOutcome};
pub use coordinator::{run_queue, QueueOptions};
pub use state::JobSpec;
pub use worker::{run_worker, WorkerOptions};
