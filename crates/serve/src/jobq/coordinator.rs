//! `barre queue`: the lease-based job-queue coordinator daemon.
//!
//! Structurally a sibling of `barre serve` — same nonblocking accept
//! loop, thread-per-connection JSONL handling, HTTP health shim, and
//! drain discipline — but instead of executing jobs it *owns* them:
//! every state transition goes through [`QueueState`] under one lock
//! and is appended to a write-ahead journal before the reply leaves the
//! socket. A SIGKILLed coordinator restarts from that journal with no
//! lost or duplicated work; terminal records stand, in-flight leases
//! are re-queued, and burned lease budgets survive so a poison job
//! cannot launder its history through a coordinator crash.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use barre_sim::fault::NetFaultInjector;
use barre_system::{read_journal, JournalError, JournalRecord, JournalWriter, JOURNAL_FILE};

use super::state::{IngestReply, LeaseReply, QueueState};
use super::wire::{Reply, Request};
use crate::http;
use crate::signal::{install_drain_handlers, shutting_down};

/// How the coordinator runs.
#[derive(Debug, Clone)]
pub struct QueueOptions {
    /// Bind host (default `127.0.0.1`).
    pub host: String,
    /// Bind port; `0` picks an ephemeral port (printed on stdout).
    pub port: u16,
    /// Write-ahead journal path (a `.jsonl` file, or a directory that
    /// gets the standard journal file name).
    pub journal: PathBuf,
    /// Lease duration granted to workers.
    pub lease: Duration,
    /// Burned leases before a job is quarantined as poison (0 disables).
    pub max_leases: u32,
}

impl Default for QueueOptions {
    fn default() -> Self {
        QueueOptions {
            host: "127.0.0.1".to_string(),
            port: 7342,
            journal: PathBuf::from("queue-journal"),
            lease: Duration::from_secs(10),
            max_leases: 3,
        }
    }
}

fn journal_file_of(path: &Path) -> PathBuf {
    if path.extension().is_some_and(|e| e == "jsonl") {
        path.to_path_buf()
    } else {
        path.join(JOURNAL_FILE)
    }
}

/// The queue state and its write-ahead journal under one lock, so the
/// journal order always matches the transition order.
struct Core {
    state: QueueState,
    writer: JournalWriter,
}

impl Core {
    /// Appends the records a transition produced. An append failure is
    /// fatal by design: a coordinator that cannot journal must not keep
    /// accepting transitions, or a crash would forget them.
    fn journal_all(&self, records: &[JournalRecord]) -> Result<(), JournalError> {
        for rec in records {
            self.writer.append(rec)?;
        }
        Ok(())
    }
}

struct Shared {
    core: Mutex<Core>,
    journal_path: PathBuf,
    epoch: Instant,
    /// Fault injection for heartbeat drops (`BARRE_QUEUE_FAULTS`).
    faults: Option<Mutex<NetFaultInjector>>,
    journal_failures: AtomicU64,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn stats_body(&self) -> String {
        let core = self.core.lock().unwrap_or_else(PoisonError::into_inner);
        let c = core.state.counts();
        drop(core);
        format!(
            "{{\"queued\":{},\"leased\":{},\"done\":{},\"failed\":{},\"quarantined\":{},\"expired\":{},\"conflicts\":{},\"duplicates\":{},\"draining\":{}}}",
            c.queued,
            c.leased,
            c.done,
            c.failed,
            c.quarantined,
            c.expired,
            c.conflicts,
            c.duplicates,
            shutting_down(),
        )
    }

    /// True when the simulated network ate this heartbeat.
    fn drop_heartbeat(&self) -> bool {
        match &self.faults {
            Some(m) => m
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .drop_message(),
            None => false,
        }
    }
}

/// Handles one request line: transition under the core lock, journal the
/// records, reply. Returns `None` to drop the connection without a reply
/// (simulated network fault).
fn handle_request_line(sh: &Shared, line: &str) -> Option<String> {
    let req = match Request::from_line(line) {
        Ok(r) => r,
        Err(why) => return Some(Reply::Error { error: why }.to_line()),
    };
    if matches!(req, Request::Heartbeat { .. }) && sh.drop_heartbeat() {
        return None;
    }
    let now = sh.now_ms();
    let mut core = sh.core.lock().unwrap_or_else(PoisonError::into_inner);
    let (reply, records) = match req {
        Request::Submit { jobs } => {
            if shutting_down() {
                (Reply::Draining, Vec::new())
            } else {
                let (accepted, known, records) = core.state.submit(&jobs);
                let total = core.state.counts().total();
                (
                    Reply::Submitted {
                        accepted: accepted as u64,
                        known: known as u64,
                        total: total as u64,
                    },
                    records,
                )
            }
        }
        Request::Lease { worker } => {
            if shutting_down() {
                (Reply::Draining, Vec::new())
            } else {
                let (reply, records) = core.state.lease(&worker, now);
                let reply = match reply {
                    LeaseReply::Job {
                        fingerprint,
                        label,
                        args,
                        lease_ms,
                    } => Reply::Job {
                        fingerprint,
                        label,
                        args,
                        lease_ms,
                    },
                    LeaseReply::Empty {
                        retry_after_ms,
                        active,
                    } => Reply::Empty {
                        retry_after_ms,
                        active: active as u64,
                    },
                };
                (reply, records)
            }
        }
        Request::Heartbeat {
            worker,
            fingerprint,
        } => {
            let live = core.state.heartbeat(&fingerprint, &worker, now);
            (
                if live {
                    Reply::HeartbeatOk
                } else {
                    Reply::HeartbeatLost
                },
                Vec::new(),
            )
        }
        Request::Complete { worker, record } => {
            let (verdict, records) = match record.event {
                barre_system::JournalEvent::Done {
                    attempts,
                    exit,
                    digest,
                    hist_digest,
                    metrics,
                    ..
                } => {
                    let (reply, records) = core.state.complete(
                        &record.fingerprint,
                        &worker,
                        attempts,
                        &exit,
                        &digest,
                        hist_digest.as_deref(),
                        metrics,
                        now,
                    );
                    let verdict = match reply {
                        IngestReply::Accepted => "ok",
                        IngestReply::Duplicate => "duplicate",
                        IngestReply::Conflict => "conflict",
                        IngestReply::BadDigest => "requeued",
                        IngestReply::Unknown => "unknown",
                    };
                    (verdict, records)
                }
                _ => ("not-a-done-record", Vec::new()),
            };
            (
                Reply::Completed {
                    verdict: verdict.to_string(),
                },
                records,
            )
        }
        Request::Fail {
            worker,
            fingerprint,
            attempts,
            exit,
            permanent,
        } => {
            let (reply, records) = core
                .state
                .fail(&fingerprint, attempts, &exit, permanent, now);
            if reply.quarantined {
                // The tick path logs expiry-driven quarantines; reported
                // failures that burn the last lease are poison too.
                if let Some(rec) = records.last() {
                    eprintln!(
                        "queue: POISON {} quarantined after repeated failures (last worker {worker})",
                        rec.label
                    );
                }
            }
            (
                Reply::Failed {
                    requeued: reply.requeued,
                    quarantined: reply.quarantined,
                },
                records,
            )
        }
        Request::Collect { fingerprints } => {
            let (records, pending, unknown) = core.state.collect(&fingerprints);
            (
                Reply::Collected {
                    pending: pending as u64,
                    unknown: unknown as u64,
                    records,
                },
                Vec::new(),
            )
        }
    };
    if let Err(e) = core.journal_all(&records) {
        sh.journal_failures.fetch_add(1, Ordering::SeqCst);
        drop(core);
        eprintln!("error: journal append failed: {e}");
        return Some(
            Reply::Error {
                error: format!("journal append failed: {e}"),
            }
            .to_line(),
        );
    }
    drop(core);
    Some(reply.to_line())
}

/// Serves the HTTP shim for one already-read request line (same contract
/// as the serve daemon's).
fn handle_http(sh: &Shared, first_line: &str, reader: &mut impl BufRead, out: &mut TcpStream) {
    let mut line = String::new();
    for _ in 0..128 {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim().is_empty() => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
    let (code, reason, body) = match http::parse_request_line(first_line) {
        Some((method, path)) => http::route(method, path, shutting_down(), || sh.stats_body()),
        None => (
            400,
            "Bad Request",
            "{\"error\":\"bad request\"}".to_string(),
        ),
    };
    let _ = out.write_all(http::render_http(code, reason, &body).as_bytes());
    let _ = out.flush();
}

/// One connection: JSONL request/response until EOF, or one HTTP
/// exchange. Read timeouts keep the thread responsive to drain signals.
fn handle_conn(sh: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut out = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    line.clear();
                    continue;
                }
                if http::looks_like_http(trimmed) {
                    let first = trimmed.to_string();
                    handle_http(sh, &first, &mut reader, &mut out);
                    return;
                }
                let resp = match handle_request_line(sh, trimmed) {
                    Some(r) => r,
                    // Simulated partition: vanish without a reply.
                    None => return,
                };
                line.clear();
                if out.write_all(resp.as_bytes()).is_err()
                    || out.write_all(b"\n").is_err()
                    || out.flush().is_err()
                {
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutting_down() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Atomically replaces the journal with the compacted record sequence
/// (temp file + rename), then reopens an append writer on it.
fn compact_journal(path: &Path, state: &QueueState) -> Result<JournalWriter, JournalError> {
    let tmp = path.with_extension("jsonl.tmp");
    {
        let writer = JournalWriter::open(&tmp)?;
        for rec in state.compacted() {
            writer.append(&rec)?;
        }
    }
    std::fs::rename(&tmp, path)?;
    JournalWriter::open(path)
}

/// Binds, retrying briefly on address-in-use so a restarted coordinator
/// can reclaim its old port while the kernel finishes tearing the old
/// socket down.
fn bind_with_retry(host: &str, port: u16) -> std::io::Result<TcpListener> {
    let mut last = None;
    for _ in 0..5 {
        match TcpListener::bind((host, port)) {
            Ok(l) => return Ok(l),
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse && port != 0 => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(500));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("bind failed")))
}

/// Runs the coordinator until a drain signal, then compacts the journal
/// and exits. Returns the process exit code: 0 after a graceful drain,
/// 1 on a startup or flush failure.
pub fn run_queue(opts: &QueueOptions) -> i32 {
    install_drain_handlers();
    let journal_path = journal_file_of(&opts.journal);
    if let Some(dir) = journal_path.parent() {
        if !dir.as_os_str().is_empty() && std::fs::create_dir_all(dir).is_err() {
            eprintln!("error: cannot create journal directory {}", dir.display());
            return 1;
        }
    }
    let lease_ms = u64::try_from(opts.lease.as_millis()).unwrap_or(u64::MAX);
    // Restore: strict read (interior corruption of the WAL must surface,
    // not silently shrink the campaign), replay, compact.
    let restored = if journal_path.exists() {
        match read_journal(&journal_path) {
            Ok(records) => records,
            Err(e) => {
                eprintln!("error: cannot restore queue journal: {e}");
                return 1;
            }
        }
    } else {
        Vec::new()
    };
    let state = QueueState::replay(&restored, lease_ms, opts.max_leases);
    let counts = state.counts();
    if counts.total() > 0 {
        eprintln!(
            "queue: restored {} job(s) from journal ({} done, {} failed, {} quarantined, {} re-queued)",
            counts.total(),
            counts.done,
            counts.failed,
            counts.quarantined,
            counts.queued,
        );
    }
    let writer = match compact_journal(&journal_path, &state) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: cannot compact queue journal: {e}");
            return 1;
        }
    };
    let faults = match std::env::var("BARRE_QUEUE_FAULTS") {
        Ok(spec) => match NetFaultInjector::parse(&spec) {
            Ok(inj) => {
                eprintln!("queue: fault injection enabled ({spec})");
                Some(Mutex::new(inj))
            }
            Err(why) => {
                eprintln!("error: bad BARRE_QUEUE_FAULTS: {why}");
                return 1;
            }
        },
        Err(_) => None,
    };
    let listener = match bind_with_retry(&opts.host, opts.port) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {}:{}: {e}", opts.host, opts.port);
            return 1;
        }
    };
    let addr = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: cannot resolve bound address: {e}");
            return 1;
        }
    };
    if listener.set_nonblocking(true).is_err() {
        eprintln!("error: cannot set listener nonblocking");
        return 1;
    }
    let sh = Arc::new(Shared {
        core: Mutex::new(Core { state, writer }),
        journal_path: journal_path.clone(),
        epoch: Instant::now(),
        faults,
        journal_failures: AtomicU64::new(0),
    });

    // Lease-expiry ticker: burned leases re-queue (or quarantine) even
    // when no request traffic arrives to observe them.
    let tick_sh = Arc::clone(&sh);
    let ticker = std::thread::spawn(move || {
        while !shutting_down() {
            std::thread::sleep(Duration::from_millis(100));
            let now = tick_sh.now_ms();
            let mut core = tick_sh.core.lock().unwrap_or_else(PoisonError::into_inner);
            let (records, expiries) = core.state.tick(now);
            if let Err(e) = core.journal_all(&records) {
                tick_sh.journal_failures.fetch_add(1, Ordering::SeqCst);
                eprintln!("error: journal append failed: {e}");
            }
            drop(core);
            for x in expiries {
                if x.quarantined {
                    eprintln!(
                        "queue: POISON {} quarantined after lease expiry (last worker {})",
                        x.label, x.worker
                    );
                } else {
                    eprintln!(
                        "queue: lease on {} held by {} expired; re-queued with backoff",
                        x.label, x.worker
                    );
                }
            }
        }
    });

    // Same startup handshake as the serve daemon: the actual bound
    // address (which resolves `--port 0`), flushed before serving.
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();

    let mut conn_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let sh = Arc::clone(&sh);
                conn_handles.push(std::thread::spawn(move || handle_conn(&sh, stream)));
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
        conn_handles.retain(|h| !h.is_finished());
    }

    // Graceful drain: connection threads notice the flag via their read
    // timeouts; then compact the journal so a restart replays a file
    // proportional to the job count, not the churn.
    eprintln!("drain: signal received; finishing in-flight work");
    for h in conn_handles {
        let _ = h.join();
    }
    let _ = ticker.join();
    let mut core = sh.core.lock().unwrap_or_else(PoisonError::into_inner);
    match compact_journal(&sh.journal_path, &core.state) {
        Ok(w) => {
            core.writer = w;
            let c = core.state.counts();
            eprintln!(
                "drain: queue journal compacted ({} job(s): {} done, {} active)",
                c.total(),
                c.done,
                c.active(),
            );
            if c.active() > 0 {
                eprintln!(
                    "drain: {} job(s) unfinished; resume with `barre queue --journal {}`",
                    c.active(),
                    sh.journal_path.display(),
                );
            }
            if sh.journal_failures.load(Ordering::SeqCst) > 0 {
                eprintln!("error: some transitions could not be journaled");
                return 1;
            }
            0
        }
        Err(e) => {
            eprintln!("error: queue journal compaction failed: {e}");
            1
        }
    }
}
