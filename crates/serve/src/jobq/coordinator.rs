//! `barre queue`: the lease-based job-queue coordinator daemon.
//!
//! Structurally a sibling of `barre serve` — same nonblocking accept
//! loop, thread-per-connection JSONL handling, HTTP health shim, and
//! drain discipline — but instead of executing jobs it *owns* them:
//! every state transition goes through [`QueueState`] under one lock
//! and is appended to a write-ahead journal before the reply leaves the
//! socket. A SIGKILLed coordinator restarts from that journal with no
//! lost or duplicated work; terminal records stand, in-flight leases
//! are re-queued, and burned lease budgets survive so a poison job
//! cannot launder its history through a coordinator crash.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use barre_obs::log as olog;
use barre_obs::{Field, FleetTracer, PromText};
use barre_sim::fault::NetFaultInjector;
use barre_system::{read_journal, JournalError, JournalRecord, JournalWriter, JOURNAL_FILE};

use super::state::{IngestReply, LeaseReply, QueueState};
use super::wire::{Reply, Request};
use crate::http;
use crate::signal::{install_drain_handlers, shutting_down};

/// How the coordinator runs.
#[derive(Debug, Clone)]
pub struct QueueOptions {
    /// Bind host (default `127.0.0.1`).
    pub host: String,
    /// Bind port; `0` picks an ephemeral port (printed on stdout).
    pub port: u16,
    /// Write-ahead journal path (a `.jsonl` file, or a directory that
    /// gets the standard journal file name).
    pub journal: PathBuf,
    /// Lease duration granted to workers.
    pub lease: Duration,
    /// Burned leases before a job is quarantined as poison (0 disables).
    pub max_leases: u32,
    /// Redirect structured logs to this file instead of stderr.
    pub log_file: Option<PathBuf>,
}

impl Default for QueueOptions {
    fn default() -> Self {
        QueueOptions {
            host: "127.0.0.1".to_string(),
            port: 7342,
            journal: PathBuf::from("queue-journal"),
            lease: Duration::from_secs(10),
            max_leases: 3,
            log_file: None,
        }
    }
}

fn journal_file_of(path: &Path) -> PathBuf {
    if path.extension().is_some_and(|e| e == "jsonl") {
        path.to_path_buf()
    } else {
        path.join(JOURNAL_FILE)
    }
}

/// The queue state and its write-ahead journal under one lock, so the
/// journal order always matches the transition order.
struct Core {
    state: QueueState,
    writer: JournalWriter,
}

impl Core {
    /// Appends the records a transition produced. An append failure is
    /// fatal by design: a coordinator that cannot journal must not keep
    /// accepting transitions, or a crash would forget them.
    fn journal_all(&self, records: &[JournalRecord]) -> Result<(), JournalError> {
        for rec in records {
            self.writer.append(rec)?;
        }
        Ok(())
    }
}

struct Shared {
    core: Mutex<Core>,
    journal_path: PathBuf,
    epoch: Instant,
    /// Fault injection for heartbeat drops (`BARRE_QUEUE_FAULTS`).
    faults: Option<Mutex<NetFaultInjector>>,
    journal_failures: AtomicU64,
    /// Journal records read back at startup (0 on a fresh queue).
    replayed_records: u64,
    /// In-flight leases the startup replay re-queued.
    replayed_requeued: u64,
    /// Journal compactions performed (startup + drain).
    compactions: AtomicU64,
    /// Heartbeats answered with `lost` — the worker's lease was gone.
    heartbeats_lost: AtomicU64,
    /// Fleet-trace sink (`BARRE_FLEET_TRACE`), if enabled.
    tracer: Option<FleetTracer>,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn trace(&self, event: &str, corr: &str, fields: &[(&str, Field<'_>)]) {
        if let Some(t) = &self.tracer {
            t.event(event, corr, fields);
        }
    }

    fn stats_body(&self) -> String {
        let core = self.core.lock().unwrap_or_else(PoisonError::into_inner);
        let c = core.state.counts();
        drop(core);
        format!(
            "{{\"queued\":{},\"leased\":{},\"done\":{},\"failed\":{},\"quarantined\":{},\"expired\":{},\"conflicts\":{},\"duplicates\":{},\"replayed_records\":{},\"replayed_requeued\":{},\"compactions\":{},\"heartbeats_lost\":{},\"journal_failures\":{},\"draining\":{}}}",
            c.queued,
            c.leased,
            c.done,
            c.failed,
            c.quarantined,
            c.expired,
            c.conflicts,
            c.duplicates,
            self.replayed_records,
            self.replayed_requeued,
            self.compactions.load(Ordering::SeqCst),
            self.heartbeats_lost.load(Ordering::SeqCst),
            self.journal_failures.load(Ordering::SeqCst),
            shutting_down(),
        )
    }

    fn metrics_body(&self) -> String {
        let core = self.core.lock().unwrap_or_else(PoisonError::into_inner);
        let c = core.state.counts();
        drop(core);
        let mut p = PromText::new();
        p.gauge(
            "barre_queue_jobs_queued",
            "Jobs waiting for a worker (including backoff waits).",
            c.queued as u64,
        );
        p.gauge(
            "barre_queue_jobs_leased",
            "Jobs currently held under a worker lease.",
            c.leased as u64,
        );
        p.gauge(
            "barre_queue_jobs_done",
            "Jobs with a verified completion.",
            c.done as u64,
        );
        p.gauge(
            "barre_queue_jobs_failed",
            "Jobs failed permanently.",
            c.failed as u64,
        );
        p.gauge(
            "barre_queue_jobs_quarantined",
            "Jobs quarantined as poison.",
            c.quarantined as u64,
        );
        p.counter(
            "barre_queue_lease_expiries_total",
            "Leases that expired without a result.",
            c.expired,
        );
        p.counter(
            "barre_queue_ingest_conflicts_total",
            "Completions rejected because a different digest already won.",
            c.conflicts,
        );
        p.counter(
            "barre_queue_ingest_duplicates_total",
            "Identical duplicate completions dropped (first wins).",
            c.duplicates,
        );
        p.counter(
            "barre_queue_heartbeats_lost_total",
            "Heartbeats answered with lost: the worker's lease was gone.",
            self.heartbeats_lost.load(Ordering::SeqCst),
        );
        p.counter(
            "barre_queue_replayed_records_total",
            "Journal records replayed at startup.",
            self.replayed_records,
        );
        p.counter(
            "barre_queue_replayed_requeued_total",
            "In-flight leases the startup replay re-queued.",
            self.replayed_requeued,
        );
        p.counter(
            "barre_queue_journal_compactions_total",
            "Journal compactions performed (startup and drain).",
            self.compactions.load(Ordering::SeqCst),
        );
        p.counter(
            "barre_queue_journal_failures_total",
            "Journal appends that failed (fatal at drain).",
            self.journal_failures.load(Ordering::SeqCst),
        );
        p.gauge_bool(
            "barre_queue_draining",
            "Whether the coordinator is draining.",
            shutting_down(),
        );
        p.render()
    }

    /// True when the simulated network ate this heartbeat.
    fn drop_heartbeat(&self) -> bool {
        match &self.faults {
            Some(m) => m
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .drop_message(),
            None => false,
        }
    }
}

/// A fleet-trace event collected under the core lock and emitted after
/// it is released, so trace I/O never extends the critical section.
struct TraceEvent {
    event: &'static str,
    corr: String,
    fp: String,
    worker: String,
}

/// Handles one request line: transition under the core lock, journal the
/// records, reply. Returns `None` to drop the connection without a reply
/// (simulated network fault).
fn handle_request_line(sh: &Shared, line: &str) -> Option<String> {
    let req = match Request::from_line(line) {
        Ok(r) => r,
        Err(why) => return Some(Reply::Error { error: why }.to_line()),
    };
    if matches!(req, Request::Heartbeat { .. }) && sh.drop_heartbeat() {
        return None;
    }
    let now = sh.now_ms();
    let tracing = sh.tracer.is_some();
    let mut traces: Vec<TraceEvent> = Vec::new();
    let mut core = sh.core.lock().unwrap_or_else(PoisonError::into_inner);
    let (reply, records) = match req {
        Request::Submit { jobs } => {
            if shutting_down() {
                (Reply::Draining, Vec::new())
            } else {
                let (accepted, known, records) = core.state.submit(&jobs);
                if tracing {
                    // Only newly accepted jobs (the ones with a queued
                    // record) get a trace event; resubmits are no-ops.
                    for rec in &records {
                        let corr = jobs
                            .iter()
                            .find(|j| j.fingerprint == rec.fingerprint)
                            .and_then(|j| j.corr.clone())
                            .unwrap_or_default();
                        traces.push(TraceEvent {
                            event: "queued",
                            corr,
                            fp: rec.fingerprint.clone(),
                            worker: String::new(),
                        });
                    }
                }
                let total = core.state.counts().total();
                (
                    Reply::Submitted {
                        accepted: accepted as u64,
                        known: known as u64,
                        total: total as u64,
                    },
                    records,
                )
            }
        }
        Request::Lease { worker } => {
            if shutting_down() {
                (Reply::Draining, Vec::new())
            } else {
                let (reply, records) = core.state.lease(&worker, now);
                let reply = match reply {
                    LeaseReply::Job {
                        fingerprint,
                        label,
                        args,
                        lease_ms,
                        corr,
                    } => {
                        if tracing {
                            traces.push(TraceEvent {
                                event: "leased",
                                corr: corr.clone().unwrap_or_default(),
                                fp: fingerprint.clone(),
                                worker: worker.clone(),
                            });
                        }
                        Reply::Job {
                            fingerprint,
                            label,
                            args,
                            lease_ms,
                            corr,
                        }
                    }
                    LeaseReply::Empty {
                        retry_after_ms,
                        active,
                    } => Reply::Empty {
                        retry_after_ms,
                        active: active as u64,
                    },
                };
                (reply, records)
            }
        }
        Request::Heartbeat {
            worker,
            fingerprint,
        } => {
            let live = core.state.heartbeat(&fingerprint, &worker, now);
            if !live {
                sh.heartbeats_lost.fetch_add(1, Ordering::SeqCst);
                if tracing {
                    traces.push(TraceEvent {
                        event: "heartbeat_lost",
                        corr: core.state.corr_of(&fingerprint).unwrap_or("").to_string(),
                        fp: fingerprint.clone(),
                        worker: worker.clone(),
                    });
                }
            }
            (
                if live {
                    Reply::HeartbeatOk
                } else {
                    Reply::HeartbeatLost
                },
                Vec::new(),
            )
        }
        Request::Complete { worker, record } => {
            let (verdict, records) = match record.event {
                barre_system::JournalEvent::Done {
                    attempts,
                    exit,
                    digest,
                    hist_digest,
                    metrics,
                    ..
                } => {
                    let (reply, records) = core.state.complete(
                        &record.fingerprint,
                        &worker,
                        attempts,
                        &exit,
                        &digest,
                        hist_digest.as_deref(),
                        metrics,
                        now,
                    );
                    let verdict = match reply {
                        IngestReply::Accepted => "ok",
                        IngestReply::Duplicate => "duplicate",
                        IngestReply::Conflict => "conflict",
                        IngestReply::BadDigest => "requeued",
                        IngestReply::Unknown => "unknown",
                    };
                    if tracing && reply == IngestReply::Accepted {
                        traces.push(TraceEvent {
                            event: "done",
                            corr: core
                                .state
                                .corr_of(&record.fingerprint)
                                .unwrap_or("")
                                .to_string(),
                            fp: record.fingerprint.clone(),
                            worker: worker.clone(),
                        });
                    }
                    (verdict, records)
                }
                _ => ("not-a-done-record", Vec::new()),
            };
            (
                Reply::Completed {
                    verdict: verdict.to_string(),
                },
                records,
            )
        }
        Request::Fail {
            worker,
            fingerprint,
            attempts,
            exit,
            permanent,
        } => {
            let (reply, records) = core
                .state
                .fail(&fingerprint, attempts, &exit, permanent, now);
            if reply.quarantined {
                // The tick path logs expiry-driven quarantines; reported
                // failures that burn the last lease are poison too.
                if let Some(rec) = records.last() {
                    olog::warn(
                        "queue",
                        "job_quarantined",
                        &[
                            ("fp", Field::S(&rec.fingerprint)),
                            ("label", Field::S(&rec.label)),
                            ("worker", Field::S(&worker)),
                        ],
                        &format!(
                            "queue: POISON {} quarantined after repeated failures (last worker {worker})",
                            rec.label
                        ),
                    );
                }
            }
            if tracing {
                traces.push(TraceEvent {
                    event: if reply.quarantined {
                        "quarantined"
                    } else if reply.requeued {
                        "requeued"
                    } else {
                        "failed"
                    },
                    corr: core.state.corr_of(&fingerprint).unwrap_or("").to_string(),
                    fp: fingerprint.clone(),
                    worker: worker.clone(),
                });
            }
            (
                Reply::Failed {
                    requeued: reply.requeued,
                    quarantined: reply.quarantined,
                },
                records,
            )
        }
        Request::Collect { fingerprints } => {
            let (records, pending, unknown) = core.state.collect(&fingerprints);
            (
                Reply::Collected {
                    pending: pending as u64,
                    unknown: unknown as u64,
                    records,
                },
                Vec::new(),
            )
        }
    };
    if let Err(e) = core.journal_all(&records) {
        sh.journal_failures.fetch_add(1, Ordering::SeqCst);
        drop(core);
        olog::error(
            "queue",
            "journal_append_failed",
            &[],
            &format!("error: journal append failed: {e}"),
        );
        return Some(
            Reply::Error {
                error: format!("journal append failed: {e}"),
            }
            .to_line(),
        );
    }
    drop(core);
    for t in traces {
        let mut fields: Vec<(&str, Field<'_>)> = vec![("fp", Field::S(&t.fp))];
        if !t.worker.is_empty() {
            fields.push(("worker", Field::S(&t.worker)));
        }
        sh.trace(t.event, &t.corr, &fields);
    }
    Some(reply.to_line())
}

/// Serves the HTTP shim for one already-read request line (same contract
/// as the serve daemon's).
fn handle_http(sh: &Shared, first_line: &str, reader: &mut impl BufRead, out: &mut TcpStream) {
    let mut line = String::new();
    for _ in 0..128 {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim().is_empty() => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
    let (code, reason, content_type, body) = match http::parse_request_line(first_line) {
        Some((method, path)) => http::route(
            method,
            path,
            shutting_down(),
            || sh.stats_body(),
            || sh.metrics_body(),
        ),
        None => (
            400,
            "Bad Request",
            http::CT_JSON,
            "{\"error\":\"bad request\"}".to_string(),
        ),
    };
    let _ = out.write_all(http::render_http(code, reason, content_type, &body).as_bytes());
    let _ = out.flush();
}

/// One connection: JSONL request/response until EOF, or one HTTP
/// exchange. Read timeouts keep the thread responsive to drain signals.
fn handle_conn(sh: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut out = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    line.clear();
                    continue;
                }
                if http::looks_like_http(trimmed) {
                    let first = trimmed.to_string();
                    handle_http(sh, &first, &mut reader, &mut out);
                    return;
                }
                let resp = match handle_request_line(sh, trimmed) {
                    Some(r) => r,
                    // Simulated partition: vanish without a reply.
                    None => return,
                };
                line.clear();
                if out.write_all(resp.as_bytes()).is_err()
                    || out.write_all(b"\n").is_err()
                    || out.flush().is_err()
                {
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutting_down() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Atomically replaces the journal with the compacted record sequence
/// (temp file + rename), then reopens an append writer on it.
fn compact_journal(path: &Path, state: &QueueState) -> Result<JournalWriter, JournalError> {
    let tmp = path.with_extension("jsonl.tmp");
    {
        let writer = JournalWriter::open(&tmp)?;
        for rec in state.compacted() {
            writer.append(&rec)?;
        }
    }
    std::fs::rename(&tmp, path)?;
    JournalWriter::open(path)
}

/// Binds, retrying briefly on address-in-use so a restarted coordinator
/// can reclaim its old port while the kernel finishes tearing the old
/// socket down.
fn bind_with_retry(host: &str, port: u16) -> std::io::Result<TcpListener> {
    let mut last = None;
    for _ in 0..5 {
        match TcpListener::bind((host, port)) {
            Ok(l) => return Ok(l),
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse && port != 0 => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(500));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("bind failed")))
}

/// Runs the coordinator until a drain signal, then compacts the journal
/// and exits. Returns the process exit code: 0 after a graceful drain,
/// 1 on a startup or flush failure.
pub fn run_queue(opts: &QueueOptions) -> i32 {
    install_drain_handlers();
    if let Some(path) = &opts.log_file {
        if let Err(e) = olog::set_log_file(path) {
            olog::error("queue", "log_file_failed", &[], &format!("error: {e}"));
            return 1;
        }
    }
    let journal_path = journal_file_of(&opts.journal);
    if let Some(dir) = journal_path.parent() {
        if !dir.as_os_str().is_empty() && std::fs::create_dir_all(dir).is_err() {
            olog::error(
                "queue",
                "journal_dir_failed",
                &[],
                &format!("error: cannot create journal directory {}", dir.display()),
            );
            return 1;
        }
    }
    let lease_ms = u64::try_from(opts.lease.as_millis()).unwrap_or(u64::MAX);
    // Restore: strict read (interior corruption of the WAL must surface,
    // not silently shrink the campaign), replay, compact.
    let restored = if journal_path.exists() {
        match read_journal(&journal_path) {
            Ok(records) => records,
            Err(e) => {
                olog::error(
                    "queue",
                    "journal_restore_failed",
                    &[],
                    &format!("error: cannot restore queue journal: {e}"),
                );
                return 1;
            }
        }
    } else {
        Vec::new()
    };
    let replayed_records = restored.len() as u64;
    let state = QueueState::replay(&restored, lease_ms, opts.max_leases);
    let counts = state.counts();
    let replayed_requeued = counts.queued as u64;
    if counts.total() > 0 {
        olog::info(
            "queue",
            "restored",
            &[
                ("jobs", Field::U(counts.total() as u64)),
                ("records", Field::U(replayed_records)),
                ("requeued", Field::U(replayed_requeued)),
            ],
            &format!(
                "queue: restored {} job(s) from journal ({} done, {} failed, {} quarantined, {} re-queued)",
                counts.total(),
                counts.done,
                counts.failed,
                counts.quarantined,
                counts.queued,
            ),
        );
    }
    let writer = match compact_journal(&journal_path, &state) {
        Ok(w) => w,
        Err(e) => {
            olog::error(
                "queue",
                "journal_compact_failed",
                &[],
                &format!("error: cannot compact queue journal: {e}"),
            );
            return 1;
        }
    };
    let faults = match std::env::var("BARRE_QUEUE_FAULTS") {
        Ok(spec) => match NetFaultInjector::parse(&spec) {
            Ok(inj) => {
                olog::info(
                    "queue",
                    "fault_injection",
                    &[("spec", Field::S(&spec))],
                    &format!("queue: fault injection enabled ({spec})"),
                );
                Some(Mutex::new(inj))
            }
            Err(why) => {
                olog::error(
                    "queue",
                    "fault_spec_invalid",
                    &[],
                    &format!("error: bad BARRE_QUEUE_FAULTS: {why}"),
                );
                return 1;
            }
        },
        Err(_) => None,
    };
    let listener = match bind_with_retry(&opts.host, opts.port) {
        Ok(l) => l,
        Err(e) => {
            olog::error(
                "queue",
                "bind_failed",
                &[],
                &format!("error: cannot bind {}:{}: {e}", opts.host, opts.port),
            );
            return 1;
        }
    };
    let addr = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            olog::error(
                "queue",
                "startup_failed",
                &[],
                &format!("error: cannot resolve bound address: {e}"),
            );
            return 1;
        }
    };
    if listener.set_nonblocking(true).is_err() {
        olog::error(
            "queue",
            "startup_failed",
            &[],
            "error: cannot set listener nonblocking",
        );
        return 1;
    }
    let sh = Arc::new(Shared {
        core: Mutex::new(Core { state, writer }),
        journal_path: journal_path.clone(),
        epoch: Instant::now(),
        faults,
        journal_failures: AtomicU64::new(0),
        replayed_records,
        replayed_requeued,
        compactions: AtomicU64::new(1),
        heartbeats_lost: AtomicU64::new(0),
        tracer: FleetTracer::from_env("queue"),
    });

    // Lease-expiry ticker: burned leases re-queue (or quarantine) even
    // when no request traffic arrives to observe them.
    let tick_sh = Arc::clone(&sh);
    let ticker = std::thread::spawn(move || {
        while !shutting_down() {
            std::thread::sleep(Duration::from_millis(100));
            let now = tick_sh.now_ms();
            let mut core = tick_sh.core.lock().unwrap_or_else(PoisonError::into_inner);
            let (records, expiries) = core.state.tick(now);
            if let Err(e) = core.journal_all(&records) {
                tick_sh.journal_failures.fetch_add(1, Ordering::SeqCst);
                olog::error(
                    "queue",
                    "journal_append_failed",
                    &[],
                    &format!("error: journal append failed: {e}"),
                );
            }
            let corrs: Vec<String> = expiries
                .iter()
                .map(|x| core.state.corr_of(&x.fingerprint).unwrap_or("").to_string())
                .collect();
            drop(core);
            for (x, corr) in expiries.iter().zip(&corrs) {
                let fields = [
                    ("fp", Field::S(&x.fingerprint)),
                    ("label", Field::S(&x.label)),
                    ("worker", Field::S(&x.worker)),
                ];
                if x.quarantined {
                    olog::warn(
                        "queue",
                        "job_quarantined",
                        &fields,
                        &format!(
                            "queue: POISON {} quarantined after lease expiry (last worker {})",
                            x.label, x.worker
                        ),
                    );
                    tick_sh.trace("quarantined", corr, &fields);
                } else {
                    olog::warn(
                        "queue",
                        "lease_expired",
                        &fields,
                        &format!(
                            "queue: lease on {} held by {} expired; re-queued with backoff",
                            x.label, x.worker
                        ),
                    );
                    tick_sh.trace("lease_expired", corr, &fields);
                }
            }
        }
    });

    // Same startup handshake as the serve daemon: the actual bound
    // address (which resolves `--port 0`), flushed before serving.
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();

    let mut conn_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let sh = Arc::clone(&sh);
                conn_handles.push(std::thread::spawn(move || handle_conn(&sh, stream)));
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
        conn_handles.retain(|h| !h.is_finished());
    }

    // Graceful drain: connection threads notice the flag via their read
    // timeouts; then compact the journal so a restart replays a file
    // proportional to the job count, not the churn.
    olog::info(
        "queue",
        "drain_begin",
        &[],
        "drain: signal received; finishing in-flight work",
    );
    for h in conn_handles {
        let _ = h.join();
    }
    let _ = ticker.join();
    let mut core = sh.core.lock().unwrap_or_else(PoisonError::into_inner);
    match compact_journal(&sh.journal_path, &core.state) {
        Ok(w) => {
            core.writer = w;
            sh.compactions.fetch_add(1, Ordering::SeqCst);
            let c = core.state.counts();
            olog::info(
                "queue",
                "drain_compacted",
                &[
                    ("jobs", Field::U(c.total() as u64)),
                    ("done", Field::U(c.done as u64)),
                    ("active", Field::U(c.active() as u64)),
                ],
                &format!(
                    "drain: queue journal compacted ({} job(s): {} done, {} active)",
                    c.total(),
                    c.done,
                    c.active(),
                ),
            );
            if c.active() > 0 {
                olog::info(
                    "queue",
                    "drain_unfinished",
                    &[("active", Field::U(c.active() as u64))],
                    &format!(
                        "drain: {} job(s) unfinished; resume with `barre queue --journal {}`",
                        c.active(),
                        sh.journal_path.display(),
                    ),
                );
            }
            if sh.journal_failures.load(Ordering::SeqCst) > 0 {
                olog::error(
                    "queue",
                    "journal_failures",
                    &[],
                    "error: some transitions could not be journaled",
                );
                return 1;
            }
            0
        }
        Err(e) => {
            olog::error(
                "queue",
                "journal_compact_failed",
                &[],
                &format!("error: queue journal compaction failed: {e}"),
            );
            1
        }
    }
}
