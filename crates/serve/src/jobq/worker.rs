//! `barre worker`: pulls jobs from a queue coordinator under
//! time-bounded leases and executes them in crash-isolated children.
//!
//! Each slot thread loops lease → execute → report. While a child runs,
//! a heartbeat thread extends the lease; a `lost` heartbeat reply means
//! the coordinator already re-dispatched the job (the lease expired
//! behind a partition), so the child is killed and the attempt abandoned
//! — finishing it could only produce a duplicate. Result delivery
//! retries with the supervisor's capped backoff, so a coordinator crash
//! between completion and acknowledgement loses nothing: the worker
//! keeps re-offering the result and the restarted coordinator's dedup
//! absorbs it.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use barre_obs::log as olog;
use barre_obs::{Field, FleetTracer, CORR_ENV};
use barre_system::{
    metrics_digest, metrics_from_json, metrics_hist_digest, JournalEvent, JournalRecord,
};

use super::wire::{exchange, Reply, Request};
use crate::attempt::{backoff_delay, run_attempt_cancellable_env};
use crate::signal::{drain_exit_code, install_drain_handlers, shutting_down};

/// How a worker runs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Coordinator address (`host:port`).
    pub connect: String,
    /// Worker identity; defaults to `worker-<pid>`.
    pub name: Option<String>,
    /// Concurrent leases (slot threads).
    pub slots: usize,
    /// Per-attempt wall-clock budget; `None` = unlimited. A hanging
    /// child is killed at this deadline and reported as a transient
    /// failure, which burns one of the job's leases.
    pub timeout: Option<Duration>,
    /// Redirect structured logs to this file instead of stderr.
    pub log_file: Option<PathBuf>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            connect: "127.0.0.1:7342".to_string(),
            name: None,
            slots: 1,
            timeout: None,
            log_file: None,
        }
    }
}

/// Sleeps `d` in small slices, returning early on a drain signal.
fn sleep_interruptible(d: Duration) {
    let until = Instant::now() + d;
    while Instant::now() < until && !shutting_down() {
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Sends `req` until the coordinator acknowledges it, with capped
/// backoff — riding out coordinator restarts. Gives up only after
/// `tries` consecutive failures.
fn exchange_with_retry(addr: &str, req: &Request, tries: u32) -> Result<Reply, String> {
    let mut last = String::new();
    for attempt in 1..=tries.max(1) {
        match exchange(addr, req) {
            Ok(reply) => return Ok(reply),
            Err(why) => last = why,
        }
        if attempt < tries {
            sleep_interruptible(backoff_delay(attempt));
        }
    }
    Err(last)
}

/// Runs one leased job to a report (or a deliberate abandonment).
#[allow(clippy::too_many_arguments)]
fn run_leased_job(
    program: &Path,
    opts: &WorkerOptions,
    name: &str,
    fingerprint: &str,
    label: &str,
    args: &[String],
    lease_ms: u64,
    corr: &str,
    tracer: Option<&FleetTracer>,
) {
    let trace = |event: &str, extra: &[(&str, Field<'_>)]| {
        if let Some(t) = tracer {
            let mut fields: Vec<(&str, Field<'_>)> =
                vec![("fp", Field::S(fingerprint)), ("label", Field::S(label))];
            fields.extend_from_slice(extra);
            t.event(event, corr, &fields);
        }
    };
    let cancel = Arc::new(AtomicBool::new(false));
    let finished = Arc::new(AtomicBool::new(false));
    let hb = {
        let cancel = Arc::clone(&cancel);
        let finished = Arc::clone(&finished);
        let addr = opts.connect.clone();
        let (name, fp) = (name.to_string(), fingerprint.to_string());
        let interval = Duration::from_millis((lease_ms / 3).max(100));
        std::thread::spawn(move || {
            while !finished.load(Ordering::SeqCst) {
                let until = Instant::now() + interval;
                while Instant::now() < until && !finished.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(20));
                }
                if finished.load(Ordering::SeqCst) {
                    return;
                }
                let req = Request::Heartbeat {
                    worker: name.clone(),
                    fingerprint: fp.clone(),
                };
                // Any other reply — or a dropped/partitioned heartbeat —
                // means "keep going"; the next beat retries.
                if let Ok(Reply::HeartbeatLost) = exchange(&addr, &req) {
                    // The coordinator re-dispatched this job; kill
                    // the child rather than produce a duplicate.
                    cancel.store(true, Ordering::SeqCst);
                    return;
                }
            }
        })
    };
    trace("attempt_start", &[]);
    // The correlation id rides into the simulating child via the
    // environment — argv feeds the job fingerprint and must not change.
    let envs: Vec<(String, String)> = if corr.is_empty() {
        Vec::new()
    } else {
        vec![(CORR_ENV.to_string(), corr.to_string())]
    };
    let a = run_attempt_cancellable_env(program, args, &envs, opts.timeout, &cancel);
    finished.store(true, Ordering::SeqCst);
    let _ = hb.join();
    trace("attempt_end", &[("exit", Field::S(&a.exit))]);
    if a.exit == "cancelled" {
        olog::warn(
            "worker",
            "lease_lost",
            &[("fp", Field::S(fingerprint)), ("label", Field::S(label))],
            &format!("worker {name}: abandoned {label} (lease lost)"),
        );
        return;
    }
    let report = if a.exit == "ok" {
        let parsed = a
            .stdout
            .lines()
            .rev()
            .find(|l| !l.trim().is_empty())
            .ok_or_else(|| "empty child output".to_string())
            .and_then(metrics_from_json);
        match parsed {
            Ok(metrics) => {
                let metrics = Box::new(metrics);
                Request::Complete {
                    worker: name.to_string(),
                    record: Box::new(JournalRecord {
                        fingerprint: fingerprint.to_string(),
                        label: label.to_string(),
                        event: JournalEvent::Done {
                            attempts: 1,
                            exit: a.exit,
                            digest: metrics_digest(&metrics),
                            hist_digest: Some(metrics_hist_digest(&metrics)),
                            worker: None,
                            metrics,
                        },
                    }),
                }
            }
            Err(why) => Request::Fail {
                worker: name.to_string(),
                fingerprint: fingerprint.to_string(),
                attempts: 1,
                exit: format!("badoutput:{why}"),
                permanent: false,
            },
        }
    } else {
        Request::Fail {
            worker: name.to_string(),
            fingerprint: fingerprint.to_string(),
            attempts: 1,
            exit: a.exit.clone(),
            permanent: !a.transient,
        }
    };
    // Deliver the verdict, riding out coordinator restarts; dedup on the
    // other side makes redelivery safe.
    let fields = [("fp", Field::S(fingerprint)), ("label", Field::S(label))];
    match exchange_with_retry(&opts.connect, &report, 8) {
        Ok(Reply::Completed { verdict }) => {
            trace("reported", &[("verdict", Field::S(&verdict))]);
            olog::info(
                "worker",
                "job_done",
                &fields,
                &format!("worker {name}: {label} done ({verdict})"),
            );
        }
        Ok(Reply::Failed { quarantined, .. }) => {
            trace(
                "reported",
                &[(
                    "verdict",
                    Field::S(if quarantined {
                        "quarantined"
                    } else {
                        "requeued"
                    }),
                )],
            );
            if quarantined {
                olog::warn(
                    "worker",
                    "job_quarantined",
                    &fields,
                    &format!("worker {name}: {label} failed; coordinator quarantined it"),
                );
            } else {
                olog::warn(
                    "worker",
                    "job_requeued",
                    &fields,
                    &format!("worker {name}: {label} failed; re-queued"),
                );
            }
        }
        Ok(_) => olog::warn(
            "worker",
            "report_unexpected_reply",
            &fields,
            &format!("worker {name}: unexpected reply reporting {label}"),
        ),
        Err(why) => olog::error(
            "worker",
            "report_failed",
            &fields,
            &format!("worker {name}: could not report {label}: {why}"),
        ),
    }
}

/// One slot: lease → execute → report, until a drain signal.
fn slot_loop(program: &Path, opts: &WorkerOptions, name: &str, tracer: Option<&FleetTracer>) {
    while !shutting_down() {
        let req = Request::Lease {
            worker: name.to_string(),
        };
        match exchange(&opts.connect, &req) {
            Ok(Reply::Job {
                fingerprint,
                label,
                args,
                lease_ms,
                corr,
            }) => run_leased_job(
                program,
                opts,
                name,
                &fingerprint,
                &label,
                &args,
                lease_ms,
                corr.as_deref().unwrap_or(""),
                tracer,
            ),
            Ok(Reply::Empty { retry_after_ms, .. }) => {
                sleep_interruptible(Duration::from_millis(retry_after_ms.clamp(50, 2_000)));
            }
            Ok(Reply::Draining) | Ok(_) => sleep_interruptible(Duration::from_millis(500)),
            Err(_) => sleep_interruptible(Duration::from_millis(500)),
        }
    }
}

/// Runs the worker until a drain signal. Returns the process exit code
/// (128 + signal after a drain, matching the supervisor's convention).
pub fn run_worker(opts: &WorkerOptions) -> i32 {
    install_drain_handlers();
    if let Some(path) = &opts.log_file {
        if let Err(e) = olog::set_log_file(path) {
            olog::error("worker", "log_file_failed", &[], &format!("error: {e}"));
            return 1;
        }
    }
    let program = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            olog::error(
                "worker",
                "startup_failed",
                &[],
                &format!("error: cannot resolve own binary: {e}"),
            );
            return 1;
        }
    };
    let name = opts
        .name
        .clone()
        .unwrap_or_else(|| format!("worker-{}", std::process::id()));
    olog::info(
        "worker",
        "start",
        &[
            ("connect", Field::S(&opts.connect)),
            ("slots", Field::U(opts.slots.max(1) as u64)),
        ],
        &format!(
            "worker {name}: polling {} with {} slot(s)",
            opts.connect,
            opts.slots.max(1)
        ),
    );
    let tracer = Arc::new(FleetTracer::from_env("worker"));
    let mut handles = Vec::with_capacity(opts.slots.max(1));
    for _ in 0..opts.slots.max(1) {
        let program = program.clone();
        let opts = opts.clone();
        let name = name.clone();
        let tracer = Arc::clone(&tracer);
        handles.push(std::thread::spawn(move || {
            slot_loop(&program, &opts, &name, tracer.as_ref().as_ref())
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    olog::info(
        "worker",
        "drained",
        &[("connect", Field::S(&opts.connect))],
        &format!(
            "worker {name}: drained; in-flight leases will expire and re-dispatch \
             (resume with `barre worker --connect {}`)",
            opts.connect
        ),
    );
    drain_exit_code()
}
