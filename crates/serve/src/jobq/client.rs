//! The dispatch side of `barre sweep --dispatch`: enqueue the sweep's
//! jobs on a queue coordinator, stream completion, and come home with
//! results in job order plus a client-side journal of the terminal
//! records.
//!
//! Submission is idempotent (the coordinator dedups by fingerprint), so
//! the client resubmits freely: on startup, after its own restart, and
//! whenever a collect reply reports unknown fingerprints (a coordinator
//! that restarted without its journal). Polling survives coordinator
//! crashes — connection errors just mean "try again with backoff".

use std::path::Path;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use barre_obs::log as olog;
use barre_obs::{Field, FleetTracer};
use barre_system::{JournalEvent, JournalRecord, JournalWriter, RunMetrics};

use super::state::JobSpec;
use super::wire::{exchange, Reply, Request};
use crate::signal::SHUTDOWN;

/// One dispatched job's terminal failure, mirroring the supervisor's
/// `JobFailure` so the CLI reports both paths identically.
#[derive(Debug, Clone)]
pub struct DispatchFailure {
    /// Index into the sweep's job list.
    pub index: usize,
    /// Human label.
    pub label: String,
    /// Last exit classification.
    pub exit: String,
    /// Attempts (leases, for quarantined jobs) consumed.
    pub attempts: u32,
    /// Whether the coordinator quarantined the job as poison.
    pub quarantined: bool,
}

/// Outcome of a dispatched sweep.
#[derive(Debug)]
pub struct DispatchOutcome {
    /// Per-job metrics, input order. `None` for failed/quarantined jobs.
    pub results: Vec<Option<RunMetrics>>,
    /// Jobs that ended failed or quarantined, input order.
    pub failures: Vec<DispatchFailure>,
    /// Whether a drain signal cut the wait short (resubmit to resume).
    pub interrupted: bool,
}

fn sleep_interruptible(d: Duration) {
    let until = Instant::now() + d;
    while Instant::now() < until && !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Submits `jobs`, retrying until the coordinator acknowledges. Returns
/// false when interrupted first.
fn submit_all(addr: &str, jobs: &[JobSpec]) -> Result<bool, String> {
    let req = Request::Submit {
        jobs: jobs.to_vec(),
    };
    let mut reported = false;
    loop {
        if SHUTDOWN.load(Ordering::SeqCst) {
            return Ok(false);
        }
        match exchange(addr, &req) {
            Ok(Reply::Submitted {
                accepted, known, ..
            }) => {
                olog::info(
                    "dispatch",
                    "submitted",
                    &[
                        ("jobs", Field::U(jobs.len() as u64)),
                        ("accepted", Field::U(accepted)),
                        ("known", Field::U(known)),
                    ],
                    &format!(
                        "dispatch: submitted {} job(s) to {addr} ({accepted} new, {known} already known)",
                        jobs.len()
                    ),
                );
                return Ok(true);
            }
            Ok(Reply::Draining) => {
                if !reported {
                    olog::warn(
                        "dispatch",
                        "coordinator_draining",
                        &[],
                        "dispatch: coordinator draining; waiting for it to come back",
                    );
                    reported = true;
                }
                sleep_interruptible(Duration::from_millis(500));
            }
            Ok(Reply::Error { error }) => return Err(format!("submit rejected: {error}")),
            Ok(_) => return Err("unexpected reply to submit".to_string()),
            Err(why) => {
                if !reported {
                    olog::warn(
                        "dispatch",
                        "coordinator_unreachable",
                        &[],
                        &format!("dispatch: cannot reach {addr} yet ({why}); retrying"),
                    );
                    reported = true;
                }
                sleep_interruptible(Duration::from_millis(500));
            }
        }
    }
}

/// Enqueues the sweep on the coordinator at `addr`, polls to completion
/// (streaming progress to stderr), writes the terminal records to
/// `journal` in job order, and returns results aligned with `jobs`.
///
/// # Errors
///
/// Unrecoverable protocol or journal-write failures only; job failures
/// come back in [`DispatchOutcome::failures`] and coordinator outages
/// are ridden out with retries.
pub fn dispatch_sweep(
    addr: &str,
    jobs: &[JobSpec],
    journal: &Path,
) -> Result<DispatchOutcome, String> {
    let tracer = FleetTracer::from_env("client");
    if !submit_all(addr, jobs)? {
        return Ok(DispatchOutcome {
            results: vec![None; jobs.len()],
            failures: Vec::new(),
            interrupted: true,
        });
    }
    if let Some(t) = &tracer {
        for j in jobs {
            t.event(
                "submitted",
                j.corr.as_deref().unwrap_or(""),
                &[
                    ("fp", Field::S(&j.fingerprint)),
                    ("label", Field::S(&j.label)),
                ],
            );
        }
    }
    let fps: Vec<String> = jobs.iter().map(|j| j.fingerprint.clone()).collect();
    let collect = Request::Collect {
        fingerprints: fps.clone(),
    };
    let mut last_done = usize::MAX;
    let terminal: Vec<JournalRecord> = loop {
        if SHUTDOWN.load(Ordering::SeqCst) {
            olog::warn(
                "dispatch",
                "interrupted",
                &[],
                &format!(
                    "dispatch: interrupted; jobs stay queued — rerun with --dispatch {addr} to resume"
                ),
            );
            return Ok(DispatchOutcome {
                results: vec![None; jobs.len()],
                failures: Vec::new(),
                interrupted: true,
            });
        }
        match exchange(addr, &collect) {
            Ok(Reply::Collected {
                pending,
                unknown,
                records,
            }) => {
                if unknown > 0 {
                    // The coordinator lost its journal; re-seed it.
                    olog::warn(
                        "dispatch",
                        "resubmitting",
                        &[("unknown", Field::U(unknown))],
                        &format!("dispatch: coordinator is missing {unknown} job(s); resubmitting"),
                    );
                    if !submit_all(addr, jobs)? {
                        return Ok(DispatchOutcome {
                            results: vec![None; jobs.len()],
                            failures: Vec::new(),
                            interrupted: true,
                        });
                    }
                    continue;
                }
                if records.len() != last_done {
                    olog::info(
                        "dispatch",
                        "progress",
                        &[
                            ("done", Field::U(records.len() as u64)),
                            ("total", Field::U(jobs.len() as u64)),
                        ],
                        &format!("dispatch: {}/{} done", records.len(), jobs.len()),
                    );
                    last_done = records.len();
                }
                if pending == 0 {
                    break records;
                }
            }
            Ok(Reply::Error { error }) => return Err(format!("collect rejected: {error}")),
            Ok(_) => {}
            // Coordinator down or restarting: keep polling.
            Err(_) => {}
        }
        sleep_interruptible(Duration::from_millis(300));
    };
    if let Some(t) = &tracer {
        for (job, rec) in jobs.iter().zip(terminal.iter()) {
            let verdict = match &rec.event {
                JournalEvent::Done { .. } => "done",
                JournalEvent::Quarantined { .. } => "quarantined",
                _ => "failed",
            };
            t.event(
                "collected",
                job.corr.as_deref().unwrap_or(""),
                &[
                    ("fp", Field::S(&rec.fingerprint)),
                    ("verdict", Field::S(verdict)),
                ],
            );
        }
    }

    // Client-side journal: the terminal records, in job order — the
    // distributed twin of the supervisor's journal, built for
    // `barre merge` against other shards or the serial run.
    if let Some(dir) = journal.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("journal dir: {e}"))?;
        }
    }
    // Fresh file: this journal is a rendering of the coordinator's
    // authoritative state, not an append-only log of our own.
    std::fs::write(journal, b"").map_err(|e| format!("journal truncate: {e}"))?;
    let writer = JournalWriter::open(journal).map_err(|e| format!("journal open: {e}"))?;
    for rec in &terminal {
        writer
            .append(rec)
            .map_err(|e| format!("journal append: {e}"))?;
    }

    let mut results: Vec<Option<RunMetrics>> = Vec::with_capacity(jobs.len());
    let mut failures = Vec::new();
    for (index, (job, rec)) in jobs.iter().zip(terminal.iter()).enumerate() {
        if rec.fingerprint != job.fingerprint {
            return Err(format!(
                "coordinator returned records out of order (job {index}: expected {}, got {})",
                job.fingerprint, rec.fingerprint
            ));
        }
        match &rec.event {
            JournalEvent::Done { metrics, .. } => results.push(Some(metrics.as_ref().clone())),
            JournalEvent::Failed { attempts, exit, .. } => {
                results.push(None);
                failures.push(DispatchFailure {
                    index,
                    label: job.label.clone(),
                    exit: exit.clone(),
                    attempts: *attempts,
                    quarantined: false,
                });
            }
            JournalEvent::Quarantined { leases, exit } => {
                results.push(None);
                failures.push(DispatchFailure {
                    index,
                    label: job.label.clone(),
                    exit: exit.clone(),
                    attempts: *leases,
                    quarantined: true,
                });
            }
            other => {
                return Err(format!(
                    "coordinator returned a non-terminal record for {}: {other:?}",
                    job.label
                ))
            }
        }
    }
    Ok(DispatchOutcome {
        results,
        failures,
        interrupted: false,
    })
}
