//! One crash-isolated child attempt: spawn, drain pipes, wait with a
//! wall-clock deadline, classify the outcome as transient or permanent.
//!
//! Extracted from the sweep supervisor so the daemon's per-request
//! deadline path and `barre sweep --supervise` share one classification
//! and one deterministic backoff schedule.

use std::io::Read;
use std::path::Path;
use std::process::Stdio;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use barre_system::error::EXIT_PERMANENT;

/// Exit code a child reports when invoked with unusable arguments —
/// treated as permanent (retrying the same argv cannot help).
pub const EXIT_USAGE: i32 = 2;

/// Outcome of one child attempt.
pub struct Attempt {
    /// `"ok"`, `"exit:N"`, `"signal:N"`, `"timeout"`, or `"spawn:…"`.
    pub exit: String,
    /// Whether retrying could plausibly change the outcome.
    pub transient: bool,
    /// Everything the child wrote to stdout.
    pub stdout: String,
    /// Everything the child wrote to stderr.
    pub stderr: String,
}

fn drain_pipe<R: Read + Send + 'static>(r: Option<R>) -> std::thread::JoinHandle<String> {
    std::thread::spawn(move || {
        let mut buf = String::new();
        if let Some(mut r) = r {
            let _ = r.read_to_string(&mut buf);
        }
        buf
    })
}

#[cfg(unix)]
fn signal_of(status: std::process::ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt;
    status.signal()
}

#[cfg(not(unix))]
fn signal_of(_status: std::process::ExitStatus) -> Option<i32> {
    None
}

/// Spawns one child attempt and waits for exit or timeout. Pipes are
/// drained on dedicated threads so a chatty child can never dead-lock
/// against the poll loop; on timeout the child is SIGKILLed and whatever
/// it wrote is kept for diagnostics.
pub fn run_attempt(program: &Path, args: &[String], timeout: Option<Duration>) -> Attempt {
    run_attempt_cancellable(program, args, timeout, &AtomicBool::new(false))
}

/// [`run_attempt`] with an external cancellation flag: when `cancel`
/// flips true mid-attempt the child is SIGKILLed and the attempt comes
/// back with exit `"cancelled"`. Used by `barre worker` to abandon a
/// child whose lease the coordinator has already re-dispatched —
/// finishing it would only produce a duplicate result.
pub fn run_attempt_cancellable(
    program: &Path,
    args: &[String],
    timeout: Option<Duration>,
    cancel: &AtomicBool,
) -> Attempt {
    run_attempt_cancellable_env(program, args, &[], timeout, cancel)
}

/// [`run_attempt_cancellable`] with extra environment variables for the
/// child. Used by `barre worker` to hand the job's fleet-trace
/// correlation id (`BARRE_CORR_ID`) to the simulating child without
/// touching its argv — argv feeds the job fingerprint, env does not.
pub fn run_attempt_cancellable_env(
    program: &Path,
    args: &[String],
    envs: &[(String, String)],
    timeout: Option<Duration>,
    cancel: &AtomicBool,
) -> Attempt {
    let spawned = std::process::Command::new(program)
        .args(args)
        .envs(envs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn();
    let mut child = match spawned {
        Ok(c) => c,
        Err(e) => {
            return Attempt {
                exit: format!("spawn:{e}"),
                transient: true,
                stdout: String::new(),
                stderr: String::new(),
            }
        }
    };
    let out = drain_pipe(child.stdout.take());
    let err = drain_pipe(child.stderr.take());
    let deadline = timeout.map(|t| Instant::now() + t);
    let mut cancelled = false;
    let (status, timed_out) = loop {
        match child.try_wait() {
            Ok(Some(status)) => break (Some(status), false),
            Ok(None) => {}
            Err(_) => break (None, false),
        }
        if cancel.load(Ordering::SeqCst) {
            cancelled = true;
            let _ = child.kill();
            let _ = child.wait();
            break (None, false);
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            let _ = child.kill();
            let _ = child.wait();
            break (None, true);
        }
        std::thread::sleep(Duration::from_millis(15));
    };
    let stdout = out.join().unwrap_or_default();
    let stderr = err.join().unwrap_or_default();
    let (exit, transient) = match (status, timed_out) {
        _ if cancelled => ("cancelled".to_string(), true),
        (_, true) => ("timeout".to_string(), true),
        (Some(s), _) if s.success() => ("ok".to_string(), true),
        (Some(s), _) => match (s.code(), signal_of(s)) {
            (Some(c), _) => (format!("exit:{c}"), c != EXIT_PERMANENT && c != EXIT_USAGE),
            (None, Some(sig)) => (format!("signal:{sig}"), true),
            (None, None) => ("exit:?".to_string(), true),
        },
        (None, false) => ("wait-failed".to_string(), true),
    };
    Attempt {
        exit,
        transient,
        stdout,
        stderr,
    }
}

/// Capped exponential backoff before retry `attempt` (1-based): 100 ms
/// doubling to a 6.4 s ceiling. Deterministic — no jitter — so test runs
/// are reproducible.
pub fn backoff_delay(attempt: u32) -> Duration {
    Duration::from_millis(100u64 << attempt.min(6))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(backoff_delay(1), Duration::from_millis(200));
        assert_eq!(backoff_delay(2), Duration::from_millis(400));
        assert_eq!(backoff_delay(6), Duration::from_millis(6400));
        assert_eq!(backoff_delay(60), Duration::from_millis(6400));
    }

    #[test]
    fn spawn_failure_is_transient() {
        let a = run_attempt(Path::new("/nonexistent/barre-no-such-binary"), &[], None);
        assert!(a.exit.starts_with("spawn:"), "{}", a.exit);
        assert!(a.transient);
    }

    #[cfg(unix)]
    #[test]
    fn pre_set_cancel_kills_the_child_as_cancelled() {
        let cancel = AtomicBool::new(true);
        let a = run_attempt_cancellable(Path::new("/bin/sleep"), &["5".to_string()], None, &cancel);
        assert_eq!(a.exit, "cancelled");
        assert!(a.transient);
    }
}
