//! The daemon itself: accept loop, connection handlers, worker pool,
//! and the graceful-drain sequence.
//!
//! One thread per connection reads JSONL requests (or answers the HTTP
//! health shim); validated requests pass through cache → breaker →
//! admission queue to a fixed pool of worker threads, each of which
//! executes jobs in crash-isolated children (`barre run --metrics-json`)
//! under the per-request deadline with supervisor-style retry
//! classification. See the crate docs for the full request path.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::attempt::{backoff_delay, run_attempt};
use crate::breaker::CircuitBreaker;
use crate::cache::ResultCache;
use crate::http;
use crate::queue::{BoundedQueue, PushError};
use crate::request::{parse_request, render_ok, render_reject, render_shed, ValidRequest};
use crate::signal::{install_drain_handlers, shutting_down};
use crate::stats::{bump, Gauges, ServeStats};
use barre_obs::log as olog;
use barre_obs::Field;
use barre_system::{metrics_from_json, JournalEvent};

/// How the daemon runs: bind address, worker pool size, queue bound,
/// cache location, default deadline, retry budget, breaker threshold.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind host (default `127.0.0.1`).
    pub host: String,
    /// Bind port; `0` picks an ephemeral port (printed on stdout).
    pub port: u16,
    /// Worker threads; `None` resolves like the sweep pool
    /// (`BARRE_JOBS`, then all cores).
    pub workers: Option<usize>,
    /// Admission-queue capacity (requests beyond it are shed).
    pub queue_cap: usize,
    /// Directory holding the cache index journal.
    pub cache_dir: PathBuf,
    /// Default per-request wall-clock deadline (queue wait + attempts);
    /// requests may override with `timeout_ms`.
    pub timeout: Duration,
    /// Transient-failure retries per request (attempts = retries + 1).
    pub retries: u32,
    /// Circuit-breaker threshold: consecutive terminal failures before a
    /// fingerprint is quarantined (0 disables).
    pub breaker_threshold: u32,
    /// Structured-log sink (`--log-file`); `None` keeps stderr.
    pub log_file: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            host: "127.0.0.1".to_string(),
            port: 7341,
            workers: None,
            queue_cap: 64,
            cache_dir: PathBuf::from("serve-cache"),
            timeout: Duration::from_secs(60),
            retries: 1,
            breaker_threshold: 3,
            log_file: None,
        }
    }
}

/// One admitted request awaiting a worker.
struct Job {
    req: ValidRequest,
    enqueued: Instant,
    reply: mpsc::Sender<String>,
}

/// Everything the accept loop, connection threads, and workers share.
struct Shared {
    opts: ServeOptions,
    program: PathBuf,
    cache: ResultCache,
    breaker: CircuitBreaker,
    stats: ServeStats,
    queue: BoundedQueue<Job>,
    workers: usize,
}

impl Shared {
    fn stats_body(&self) -> String {
        self.stats.render(&Gauges {
            queue_depth: self.queue.depth(),
            queue_cap: self.queue.cap(),
            workers: self.workers,
            cache_entries: self.cache.len(),
            cache_evictions: self.cache.evictions(),
            breaker_open: self.breaker.open_count(),
            draining: shutting_down(),
        })
    }

    /// Deterministic-enough shed hint: queue residence estimate from the
    /// observed mean service time, capped at a minute.
    fn retry_after_ms(&self) -> u64 {
        let depth = self.queue.depth() as u64;
        let workers = self.workers.max(1) as u64;
        ((depth / workers) + 1)
            .saturating_mul(self.stats.mean_service_ms())
            .min(60_000)
    }

    fn metrics_body(&self) -> String {
        self.stats.render_prometheus(&Gauges {
            queue_depth: self.queue.depth(),
            queue_cap: self.queue.cap(),
            workers: self.workers,
            cache_entries: self.cache.len(),
            cache_evictions: self.cache.evictions(),
            breaker_open: self.breaker.open_count(),
            draining: shutting_down(),
        })
    }

    fn render_cached(&self, rec: &barre_system::JournalRecord, id: Option<&str>) -> String {
        match &rec.event {
            JournalEvent::Done {
                digest,
                hist_digest,
                metrics,
                ..
            } => render_ok(
                id,
                &rec.fingerprint,
                &rec.label,
                digest,
                hist_digest.as_deref().unwrap_or(""),
                &barre_system::metrics_to_json(metrics),
            ),
            // Unreachable for cache records; answer something sane.
            _ => render_reject(id, "error", 500, "cache record shape"),
        }
    }
}

/// Runs one admitted job to a terminal response: cache re-check, breaker
/// re-check, then child attempts under the request deadline with
/// supervisor retry classification.
fn execute_job(sh: &Shared, job: &Job) -> String {
    let req = &job.req;
    let id = req.id.as_deref();
    let fp = &req.fingerprint;
    // Duplicate requests admitted before the first finished: serve the
    // cached result the moment it exists.
    if let Some(rec) = sh.cache.get(fp) {
        bump(&sh.stats.cache_hits);
        return sh.render_cached(&rec, id);
    }
    if sh.breaker.is_open(fp) {
        bump(&sh.stats.quarantined);
        return render_reject(
            id,
            "quarantined",
            503,
            "fingerprint quarantined by circuit breaker",
        );
    }
    let budget = req
        .timeout_ms
        .map(Duration::from_millis)
        .unwrap_or(sh.opts.timeout);
    let deadline = job.enqueued + budget;
    let max_attempts = sh.opts.retries.saturating_add(1);
    let mut attempt = 1u32;
    loop {
        let now = Instant::now();
        if now >= deadline {
            bump(&sh.stats.timeouts);
            sh.breaker.record_failure(fp);
            return render_reject(id, "timeout", 504, "deadline exceeded");
        }
        let remaining = deadline - now;
        let a = run_attempt(&sh.program, &req.child_args, Some(remaining));
        if a.exit == "ok" {
            let parsed = a
                .stdout
                .lines()
                .rev()
                .find(|l| !l.trim().is_empty())
                .ok_or_else(|| "empty child output".to_string())
                .and_then(metrics_from_json);
            match parsed {
                Ok(metrics) => {
                    sh.breaker.record_success(fp);
                    bump(&sh.stats.ok_cold);
                    let rec = sh.cache.insert(fp, &req.label, metrics);
                    return sh.render_cached(&rec, id);
                }
                Err(why) => {
                    // Zero exit, unreadable metrics: protocol failure,
                    // retried like any transient fault.
                    if attempt < max_attempts {
                        bump(&sh.stats.retries);
                        let now = Instant::now();
                        if now < deadline {
                            std::thread::sleep(backoff_delay(attempt).min(deadline - now));
                        }
                        attempt += 1;
                        continue;
                    }
                    bump(&sh.stats.failed_transient);
                    sh.breaker.record_failure(fp);
                    return render_reject(id, "failed", 500, &format!("badoutput:{why}"));
                }
            }
        }
        if a.exit == "timeout" {
            bump(&sh.stats.timeouts);
            sh.breaker.record_failure(fp);
            return render_reject(id, "timeout", 504, "deadline exceeded");
        }
        let detail = a
            .stderr
            .lines()
            .find_map(|l| l.strip_prefix("error: "))
            .unwrap_or(&a.exit)
            .to_string();
        if !a.transient {
            bump(&sh.stats.failed_permanent);
            sh.breaker.record_failure(fp);
            return render_reject(id, "failed", 422, &format!("{} ({})", detail, a.exit));
        }
        if attempt < max_attempts {
            bump(&sh.stats.retries);
            let now = Instant::now();
            if now < deadline {
                std::thread::sleep(backoff_delay(attempt).min(deadline - now));
            }
            attempt += 1;
            continue;
        }
        bump(&sh.stats.failed_transient);
        sh.breaker.record_failure(fp);
        return render_reject(id, "failed", 500, &format!("{} ({})", detail, a.exit));
    }
}

fn worker_loop(sh: &Shared) {
    while let Some(job) = sh.queue.pop() {
        let resp = execute_job(sh, &job);
        // A vanished requester (dropped connection) is not an error.
        let _ = job.reply.send(resp);
    }
}

/// Handles one JSONL request line end-to-end, returning the response.
fn handle_request_line(sh: &Shared, line: &str) -> String {
    bump(&sh.stats.received);
    let req = match parse_request(line) {
        Ok(r) => r,
        Err(why) => {
            bump(&sh.stats.invalid);
            return render_reject(None, "error", 400, &why);
        }
    };
    let id = req.id.clone();
    let id = id.as_deref();
    if sh.breaker.is_open(&req.fingerprint) {
        bump(&sh.stats.quarantined);
        return render_reject(
            id,
            "quarantined",
            503,
            "fingerprint quarantined by circuit breaker",
        );
    }
    if let Some(rec) = sh.cache.get(&req.fingerprint) {
        bump(&sh.stats.cache_hits);
        return sh.render_cached(&rec, id);
    }
    if shutting_down() {
        bump(&sh.stats.rejected_draining);
        return render_reject(id, "draining", 503, "daemon is draining");
    }
    let (tx, rx) = mpsc::channel();
    let job = Job {
        req,
        enqueued: Instant::now(),
        reply: tx,
    };
    match sh.queue.push(job) {
        Ok(depth) => sh.stats.record_depth(depth as u64),
        Err(PushError::Full(job)) => {
            bump(&sh.stats.shed);
            return render_shed(job.req.id.as_deref(), sh.retry_after_ms());
        }
        Err(PushError::Closed(job)) => {
            bump(&sh.stats.rejected_draining);
            return render_reject(job.req.id.as_deref(), "draining", 503, "daemon is draining");
        }
    }
    // The worker always sends exactly one response per admitted job; a
    // recv error means the worker pool died, which only happens when the
    // process is being torn down anyway.
    rx.recv()
        .unwrap_or_else(|_| render_reject(id, "error", 500, "worker pool unavailable"))
}

/// Serves the HTTP shim for one already-read request line, discarding
/// headers, writing the response, and closing.
fn handle_http(sh: &Shared, first_line: &str, reader: &mut impl BufRead, out: &mut TcpStream) {
    // Drain headers until the blank line (bounded; clients are trusted
    // probes, not adversaries, but don't loop forever).
    let mut line = String::new();
    for _ in 0..128 {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim().is_empty() => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
    let (code, reason, content_type, body) = match http::parse_request_line(first_line) {
        Some((method, path)) => http::route(
            method,
            path,
            shutting_down(),
            || sh.stats_body(),
            || sh.metrics_body(),
        ),
        None => (
            400,
            "Bad Request",
            http::CT_JSON,
            "{\"error\":\"bad request\"}".to_string(),
        ),
    };
    let _ = out.write_all(http::render_http(code, reason, content_type, &body).as_bytes());
    let _ = out.flush();
}

/// Streams one completed request's trace summary as a debug-level
/// structured log event — the fields a fleet dashboard tails: status,
/// fingerprint, and wall-clock latency. The response line is already
/// canonical JSON, so the fields are read back out of it rather than
/// threaded through every return path of [`handle_request_line`].
fn log_request_summary(resp: &str, ms: u64) {
    if !olog::enabled(olog::Level::Debug) {
        return;
    }
    let parsed = barre_system::Json::parse(resp);
    let field = |k: &str| {
        parsed
            .as_ref()
            .ok()
            .and_then(|v| v.get(k))
            .and_then(barre_system::Json::as_str)
            .unwrap_or("")
            .to_string()
    };
    let (status, fp) = (field("status"), field("fingerprint"));
    olog::debug(
        "serve",
        "request",
        &[
            ("fp", Field::S(&fp)),
            ("status", Field::S(&status)),
            ("ms", Field::U(ms)),
        ],
        &format!("request {status} in {ms}ms"),
    );
}

/// One connection: JSONL request/response until EOF (or an HTTP exchange,
/// which closes after one response). Read timeouts keep the thread
/// responsive to drain signals.
fn handle_conn(sh: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut out = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    line.clear();
                    continue;
                }
                if http::looks_like_http(trimmed) {
                    let first = trimmed.to_string();
                    handle_http(sh, &first, &mut reader, &mut out);
                    return;
                }
                let started = Instant::now();
                let resp = handle_request_line(sh, trimmed);
                line.clear();
                let ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
                sh.stats.record_latency_ms(ms);
                log_request_summary(&resp, ms);
                if out.write_all(resp.as_bytes()).is_err()
                    || out.write_all(b"\n").is_err()
                    || out.flush().is_err()
                {
                    return;
                }
            }
            // Timeout with a partial line still buffered in `line`: keep
            // accumulating on the next pass.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutting_down() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Runs the daemon until a drain signal, then drains and exits.
/// Returns the process exit code: 0 after a graceful drain, 1 on a
/// startup or flush failure.
pub fn run_serve(opts: &ServeOptions) -> i32 {
    install_drain_handlers();
    if let Some(path) = &opts.log_file {
        if let Err(why) = olog::set_log_file(path) {
            olog::error("serve", "log_file_failed", &[], &format!("error: {why}"));
            return 1;
        }
    }
    let (cache, warm) = match ResultCache::open(&opts.cache_dir) {
        Ok(c) => c,
        Err(e) => {
            olog::error(
                "serve",
                "cache_open_failed",
                &[],
                &format!(
                    "error: cannot open cache at {}: {e}",
                    opts.cache_dir.display()
                ),
            );
            return 1;
        }
    };
    if warm.loaded > 0 || warm.skipped_lines > 0 || warm.evicted > 0 {
        olog::info(
            "serve",
            "cache_warm_loaded",
            &[
                ("loaded", Field::U(warm.loaded as u64)),
                ("skipped", Field::U(warm.skipped_lines as u64)),
                ("evicted", Field::U(warm.evicted as u64)),
            ],
            &format!(
                "cache: warm-loaded {} entr{} ({} line(s) skipped, {} evicted by digest)",
                warm.loaded,
                if warm.loaded == 1 { "y" } else { "ies" },
                warm.skipped_lines,
                warm.evicted
            ),
        );
    }
    let program = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            olog::error(
                "serve",
                "startup_failed",
                &[],
                &format!("error: cannot resolve own binary: {e}"),
            );
            return 1;
        }
    };
    let listener = match TcpListener::bind((opts.host.as_str(), opts.port)) {
        Ok(l) => l,
        Err(e) => {
            olog::error(
                "serve",
                "bind_failed",
                &[],
                &format!("error: cannot bind {}:{}: {e}", opts.host, opts.port),
            );
            return 1;
        }
    };
    let addr = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            olog::error(
                "serve",
                "startup_failed",
                &[],
                &format!("error: cannot resolve bound address: {e}"),
            );
            return 1;
        }
    };
    if listener.set_nonblocking(true).is_err() {
        olog::error(
            "serve",
            "startup_failed",
            &[],
            "error: cannot set listener nonblocking",
        );
        return 1;
    }
    let workers = barre_sim::pool::resolve_jobs(opts.workers);
    let sh = Arc::new(Shared {
        opts: opts.clone(),
        program,
        cache,
        breaker: CircuitBreaker::new(opts.breaker_threshold),
        stats: ServeStats::new(),
        queue: BoundedQueue::new(opts.queue_cap),
        workers,
    });
    let mut worker_handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let sh = Arc::clone(&sh);
        worker_handles.push(std::thread::spawn(move || worker_loop(&sh)));
    }
    // The startup handshake scripts and tests key on: the actual bound
    // address (which resolves `--port 0`), flushed before serving.
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();

    let mut conn_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let sh = Arc::clone(&sh);
                conn_handles.push(std::thread::spawn(move || handle_conn(&sh, stream)));
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
        // Reap finished connection threads so a long-lived daemon's
        // handle list stays proportional to live connections.
        conn_handles.retain(|h| !h.is_finished());
    }

    // Graceful drain: stop admitting (queue.close), let workers finish
    // what was admitted, let connection threads flush their responses,
    // then persist the compacted cache index.
    olog::info(
        "serve",
        "drain_begin",
        &[],
        "drain: signal received; finishing in-flight work",
    );
    sh.queue.close();
    for h in worker_handles {
        let _ = h.join();
    }
    for h in conn_handles {
        let _ = h.join();
    }
    match sh.cache.flush_compacted() {
        Ok(n) => {
            olog::info(
                "serve",
                "drain_cache_flushed",
                &[("entries", Field::U(n as u64))],
                &format!(
                    "drain: cache index flushed ({n} entr{})",
                    if n == 1 { "y" } else { "ies" }
                ),
            );
            0
        }
        Err(e) => {
            olog::error(
                "serve",
                "cache_flush_failed",
                &[],
                &format!("error: cache flush failed: {e}"),
            );
            1
        }
    }
}
