//! The bounded admission queue between connection handlers and workers.
//!
//! Admission control is the daemon's memory bound: a full queue rejects
//! immediately (the caller sheds the request with a `429`-style
//! response) instead of queueing unboundedly. `close` ends the stream —
//! workers drain what was already admitted, then see `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; the rejected item is handed back.
    Full(T),
    /// The queue was closed (drain in progress); item handed back.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A `Mutex + Condvar` MPMC queue with a hard capacity.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `cap` items at once (`cap` is
    /// clamped to at least 1).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// The capacity passed to [`BoundedQueue::new`].
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Current number of admitted-but-unclaimed items.
    pub fn depth(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .items
            .len()
    }

    /// Admits `item`, returning the queue depth after the push.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when at capacity, [`PushError::Closed`] when
    /// draining — both hand the item back untouched.
    pub fn push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        g.items.push_back(item);
        let depth = g.items.len();
        drop(g);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// empty (drain complete), in which case `None`.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops admission. Already-admitted items are still drained by
    /// `pop`; blocked workers wake and exit once the queue empties.
    pub fn close(&self) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_sheds_at_cap() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(1).ok(), Some(1));
        assert_eq!(q.push(2).ok(), Some(2));
        match q.push(3) {
            Err(PushError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3).ok(), Some(2));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(1).ok();
        q.push(2).ok();
        q.close();
        match q.push(3) {
            Err(PushError::Closed(v)) => assert_eq!(v, 3),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_workers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.push(7).ok();
        q.close();
        let mut got = Vec::new();
        for h in handles {
            got.push(h.join().unwrap_or(None));
        }
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }
}
