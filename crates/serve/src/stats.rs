//! Daemon counters and `barre-trace` histograms behind `GET /stats`.
//!
//! Counters are relaxed atomics (monotonic, saturating); the
//! per-request latency and admission-queue-depth distributions use the
//! fixed-bucket [`LatencyHistogram`], so `/stats` percentiles are
//! deterministic functions of the samples, byte-stable across hosts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use barre_trace::LatencyHistogram;

/// Saturating relaxed increment — the one way counters move.
pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// Point-in-time gauges sampled by the caller at render time — state
/// that lives outside [`ServeStats`] (queue, cache, breaker, drain flag).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Current admission-queue depth.
    pub queue_depth: usize,
    /// Admission-queue capacity.
    pub queue_cap: usize,
    /// Worker-pool size.
    pub workers: usize,
    /// Entries in the result cache.
    pub cache_entries: usize,
    /// Cache evictions from digest verification failures.
    pub cache_evictions: u64,
    /// Quarantined fingerprints (open breaker circuits).
    pub breaker_open: usize,
    /// Whether a drain is in progress.
    pub draining: bool,
}

/// Every counter the daemon exposes, plus the two histograms.
#[derive(Default)]
pub struct ServeStats {
    /// Request lines received (any outcome).
    pub received: AtomicU64,
    /// Cold successes (simulation actually ran).
    pub ok_cold: AtomicU64,
    /// Requests answered from the verified result cache.
    pub cache_hits: AtomicU64,
    /// Requests rejected by validation (`400`).
    pub invalid: AtomicU64,
    /// Requests shed by the full admission queue (`429`).
    pub shed: AtomicU64,
    /// Requests that hit their wall-clock deadline (`504`).
    pub timeouts: AtomicU64,
    /// Permanent simulation failures (`422`).
    pub failed_permanent: AtomicU64,
    /// Transient failures that exhausted their retries (`500`).
    pub failed_transient: AtomicU64,
    /// Requests refused because their fingerprint is quarantined (`503`).
    pub quarantined: AtomicU64,
    /// Requests refused because a drain was in progress (`503`).
    pub rejected_draining: AtomicU64,
    /// Child retry attempts (beyond each request's first attempt).
    pub retries: AtomicU64,
    /// Largest queue depth observed at admission.
    pub max_depth: AtomicU64,
    latency_ms: Mutex<LatencyHistogram>,
    depth_hist: Mutex<LatencyHistogram>,
}

impl ServeStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request's wall-clock latency (ms).
    pub fn record_latency_ms(&self, ms: u64) {
        self.latency_ms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(ms);
    }

    /// Records the queue depth observed after an admission.
    pub fn record_depth(&self, depth: u64) {
        self.depth_hist
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(depth);
        self.max_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Mean observed service latency in ms (≥ 1), defaulting to 1000
    /// before any sample exists — the basis of the `retry_after_ms`
    /// load-shed hint.
    pub fn mean_service_ms(&self) -> u64 {
        let g = self
            .latency_ms
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if g.count() == 0 {
            return 1000;
        }
        let mean = g.mean();
        if mean < 1.0 {
            1
        } else if mean >= 3_600_000.0 {
            3_600_000
        } else {
            mean.round() as u64
        }
    }

    /// Renders the `/stats` JSON body (one line).
    pub fn render(&self, g: &Gauges) -> String {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let lat = self
            .latency_ms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let dep = self
            .depth_hist
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        format!(
            concat!(
                "{{\"draining\":{drain},",
                "\"requests\":{{\"received\":{rx},\"ok\":{ok},\"cache_hits\":{hits},",
                "\"invalid\":{inv},\"shed\":{shed},\"timeouts\":{to},",
                "\"failed_permanent\":{fp},\"failed_transient\":{ft},",
                "\"quarantined\":{q},\"rejected_draining\":{rd},\"retries\":{rt}}},",
                "\"queue\":{{\"depth\":{qd},\"cap\":{qc},\"workers\":{w},\"max_depth\":{md},",
                "\"depth_p50\":{dp50},\"depth_p95\":{dp95},\"depth_p99\":{dp99}}},",
                "\"cache\":{{\"entries\":{ce},\"evictions\":{ev}}},",
                "\"breaker\":{{\"open\":{bo}}},",
                "\"latency_ms\":{{\"count\":{lc},\"mean\":{lm:.3},\"p50\":{lp50},",
                "\"p95\":{lp95},\"p99\":{lp99},\"max\":{lmax}}}}}"
            ),
            drain = g.draining,
            rx = c(&self.received),
            ok = c(&self.ok_cold),
            hits = c(&self.cache_hits),
            inv = c(&self.invalid),
            shed = c(&self.shed),
            to = c(&self.timeouts),
            fp = c(&self.failed_permanent),
            ft = c(&self.failed_transient),
            q = c(&self.quarantined),
            rd = c(&self.rejected_draining),
            rt = c(&self.retries),
            qd = g.queue_depth,
            qc = g.queue_cap,
            w = g.workers,
            md = c(&self.max_depth),
            dp50 = dep.p50(),
            dp95 = dep.p95(),
            dp99 = dep.p99(),
            ce = g.cache_entries,
            ev = g.cache_evictions,
            bo = g.breaker_open,
            lc = lat.count(),
            lm = lat.mean(),
            lp50 = lat.p50(),
            lp95 = lat.p95(),
            lp99 = lat.p99(),
            lmax = lat.max(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_valid_json_and_counts_flow() {
        let s = ServeStats::new();
        bump(&s.received);
        bump(&s.received);
        bump(&s.cache_hits);
        s.record_latency_ms(12);
        s.record_latency_ms(40);
        s.record_depth(3);
        let body = s.render(&Gauges {
            queue_depth: 1,
            queue_cap: 64,
            workers: 2,
            cache_entries: 5,
            ..Gauges::default()
        });
        let v = barre_system::Json::parse(&body).expect("valid JSON");
        assert_eq!(
            v.get("requests")
                .and_then(|r| r.get("received"))
                .and_then(barre_system::Json::as_u64),
            Some(2)
        );
        assert_eq!(
            v.get("queue")
                .and_then(|q| q.get("max_depth"))
                .and_then(barre_system::Json::as_u64),
            Some(3)
        );
        assert_eq!(
            v.get("latency_ms")
                .and_then(|l| l.get("count"))
                .and_then(barre_system::Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn mean_service_defaults_then_tracks() {
        let s = ServeStats::new();
        assert_eq!(s.mean_service_ms(), 1000);
        s.record_latency_ms(10);
        s.record_latency_ms(30);
        assert_eq!(s.mean_service_ms(), 20);
    }
}
