//! Daemon counters and `barre-trace` histograms behind `GET /stats`.
//!
//! Counters are relaxed atomics (monotonic, saturating); the
//! per-request latency and admission-queue-depth distributions use the
//! fixed-bucket [`LatencyHistogram`], so `/stats` percentiles are
//! deterministic functions of the samples, byte-stable across hosts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use barre_trace::LatencyHistogram;

/// Saturating relaxed increment — the one way counters move.
pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// Point-in-time gauges sampled by the caller at render time — state
/// that lives outside [`ServeStats`] (queue, cache, breaker, drain flag).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Current admission-queue depth.
    pub queue_depth: usize,
    /// Admission-queue capacity.
    pub queue_cap: usize,
    /// Worker-pool size.
    pub workers: usize,
    /// Entries in the result cache.
    pub cache_entries: usize,
    /// Cache evictions from digest verification failures.
    pub cache_evictions: u64,
    /// Quarantined fingerprints (open breaker circuits).
    pub breaker_open: usize,
    /// Whether a drain is in progress.
    pub draining: bool,
}

/// Every counter the daemon exposes, plus the two histograms.
#[derive(Default)]
pub struct ServeStats {
    /// Request lines received (any outcome).
    pub received: AtomicU64,
    /// Cold successes (simulation actually ran).
    pub ok_cold: AtomicU64,
    /// Requests answered from the verified result cache.
    pub cache_hits: AtomicU64,
    /// Requests rejected by validation (`400`).
    pub invalid: AtomicU64,
    /// Requests shed by the full admission queue (`429`).
    pub shed: AtomicU64,
    /// Requests that hit their wall-clock deadline (`504`).
    pub timeouts: AtomicU64,
    /// Permanent simulation failures (`422`).
    pub failed_permanent: AtomicU64,
    /// Transient failures that exhausted their retries (`500`).
    pub failed_transient: AtomicU64,
    /// Requests refused because their fingerprint is quarantined (`503`).
    pub quarantined: AtomicU64,
    /// Requests refused because a drain was in progress (`503`).
    pub rejected_draining: AtomicU64,
    /// Child retry attempts (beyond each request's first attempt).
    pub retries: AtomicU64,
    /// Largest queue depth observed at admission.
    pub max_depth: AtomicU64,
    latency_ms: Mutex<LatencyHistogram>,
    depth_hist: Mutex<LatencyHistogram>,
}

impl ServeStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request's wall-clock latency (ms).
    pub fn record_latency_ms(&self, ms: u64) {
        self.latency_ms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(ms);
    }

    /// Records the queue depth observed after an admission.
    pub fn record_depth(&self, depth: u64) {
        self.depth_hist
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(depth);
        self.max_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Mean observed service latency in ms (≥ 1), defaulting to 1000
    /// before any sample exists — the basis of the `retry_after_ms`
    /// load-shed hint.
    pub fn mean_service_ms(&self) -> u64 {
        let g = self
            .latency_ms
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if g.count() == 0 {
            return 1000;
        }
        let mean = g.mean();
        if mean < 1.0 {
            1
        } else if mean >= 3_600_000.0 {
            3_600_000
        } else {
            mean.round() as u64
        }
    }

    /// Renders the `/stats` JSON body (one line).
    pub fn render(&self, g: &Gauges) -> String {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let lat = self
            .latency_ms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let dep = self
            .depth_hist
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        format!(
            concat!(
                "{{\"draining\":{drain},",
                "\"requests\":{{\"received\":{rx},\"ok\":{ok},\"cache_hits\":{hits},",
                "\"invalid\":{inv},\"shed\":{shed},\"timeouts\":{to},",
                "\"failed_permanent\":{fp},\"failed_transient\":{ft},",
                "\"quarantined\":{q},\"rejected_draining\":{rd},\"retries\":{rt}}},",
                "\"queue\":{{\"depth\":{qd},\"cap\":{qc},\"workers\":{w},\"max_depth\":{md},",
                "\"depth_p50\":{dp50},\"depth_p95\":{dp95},\"depth_p99\":{dp99}}},",
                "\"cache\":{{\"entries\":{ce},\"evictions\":{ev}}},",
                "\"breaker\":{{\"open\":{bo}}},",
                "\"latency_ms\":{{\"count\":{lc},\"mean\":{lm:.3},\"p50\":{lp50},",
                "\"p95\":{lp95},\"p99\":{lp99},\"max\":{lmax}}}}}"
            ),
            drain = g.draining,
            rx = c(&self.received),
            ok = c(&self.ok_cold),
            hits = c(&self.cache_hits),
            inv = c(&self.invalid),
            shed = c(&self.shed),
            to = c(&self.timeouts),
            fp = c(&self.failed_permanent),
            ft = c(&self.failed_transient),
            q = c(&self.quarantined),
            rd = c(&self.rejected_draining),
            rt = c(&self.retries),
            qd = g.queue_depth,
            qc = g.queue_cap,
            w = g.workers,
            md = c(&self.max_depth),
            dp50 = dep.p50(),
            dp95 = dep.p95(),
            dp99 = dep.p99(),
            ce = g.cache_entries,
            ev = g.cache_evictions,
            bo = g.breaker_open,
            lc = lat.count(),
            lm = lat.mean(),
            lp50 = lat.p50(),
            lp95 = lat.p95(),
            lp99 = lat.p99(),
            lmax = lat.max(),
        )
    }

    /// Renders the `GET /metrics` Prometheus text exposition — the same
    /// counters as [`render`](ServeStats::render), one snapshot, names
    /// under the `barre_serve_` prefix.
    pub fn render_prometheus(&self, g: &Gauges) -> String {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let lat = self
            .latency_ms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let dep = self
            .depth_hist
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut p = barre_obs::PromText::new();
        p.counter(
            "barre_serve_requests_received_total",
            "Request lines received (any outcome).",
            c(&self.received),
        );
        p.counter(
            "barre_serve_requests_ok_cold_total",
            "Cold successes (simulation actually ran).",
            c(&self.ok_cold),
        );
        p.counter(
            "barre_serve_cache_hits_total",
            "Requests answered from the verified result cache.",
            c(&self.cache_hits),
        );
        p.counter(
            "barre_serve_requests_invalid_total",
            "Requests rejected by validation (400).",
            c(&self.invalid),
        );
        p.counter(
            "barre_serve_requests_shed_total",
            "Requests shed by the full admission queue (429).",
            c(&self.shed),
        );
        p.counter(
            "barre_serve_requests_timeout_total",
            "Requests that hit their wall-clock deadline (504).",
            c(&self.timeouts),
        );
        p.counter(
            "barre_serve_requests_failed_permanent_total",
            "Permanent simulation failures (422).",
            c(&self.failed_permanent),
        );
        p.counter(
            "barre_serve_requests_failed_transient_total",
            "Transient failures that exhausted their retries (500).",
            c(&self.failed_transient),
        );
        p.counter(
            "barre_serve_requests_quarantined_total",
            "Requests refused by the circuit breaker (503).",
            c(&self.quarantined),
        );
        p.counter(
            "barre_serve_requests_rejected_draining_total",
            "Requests refused because a drain was in progress (503).",
            c(&self.rejected_draining),
        );
        p.counter(
            "barre_serve_child_retries_total",
            "Child retry attempts beyond each request's first attempt.",
            c(&self.retries),
        );
        p.counter(
            "barre_serve_cache_evictions_total",
            "Cache evictions from digest verification failures.",
            g.cache_evictions,
        );
        p.gauge(
            "barre_serve_queue_depth",
            "Current admission-queue depth.",
            g.queue_depth as u64,
        );
        p.gauge(
            "barre_serve_queue_cap",
            "Admission-queue capacity.",
            g.queue_cap as u64,
        );
        p.gauge(
            "barre_serve_queue_max_depth",
            "Largest queue depth observed at admission.",
            c(&self.max_depth),
        );
        p.gauge(
            "barre_serve_workers",
            "Simulation worker-pool size.",
            g.workers as u64,
        );
        p.gauge(
            "barre_serve_cache_entries",
            "Entries in the verified result cache.",
            g.cache_entries as u64,
        );
        p.gauge(
            "barre_serve_breaker_open",
            "Quarantined fingerprints (open breaker circuits).",
            g.breaker_open as u64,
        );
        p.gauge_bool(
            "barre_serve_draining",
            "Whether a drain is in progress.",
            g.draining,
        );
        p.histogram(
            "barre_serve_request_latency_ms",
            "Completed-request wall-clock latency in milliseconds.",
            &lat,
        );
        p.histogram(
            "barre_serve_queue_depth_observed",
            "Admission-queue depth observed at each admission.",
            &dep,
        );
        p.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_valid_json_and_counts_flow() {
        let s = ServeStats::new();
        bump(&s.received);
        bump(&s.received);
        bump(&s.cache_hits);
        s.record_latency_ms(12);
        s.record_latency_ms(40);
        s.record_depth(3);
        let body = s.render(&Gauges {
            queue_depth: 1,
            queue_cap: 64,
            workers: 2,
            cache_entries: 5,
            ..Gauges::default()
        });
        let v = barre_system::Json::parse(&body).expect("valid JSON");
        assert_eq!(
            v.get("requests")
                .and_then(|r| r.get("received"))
                .and_then(barre_system::Json::as_u64),
            Some(2)
        );
        assert_eq!(
            v.get("queue")
                .and_then(|q| q.get("max_depth"))
                .and_then(barre_system::Json::as_u64),
            Some(3)
        );
        assert_eq!(
            v.get("latency_ms")
                .and_then(|l| l.get("count"))
                .and_then(barre_system::Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn prometheus_snapshot_matches_counters() {
        let s = ServeStats::new();
        bump(&s.received);
        bump(&s.shed);
        s.record_latency_ms(12);
        s.record_depth(3);
        let body = s.render_prometheus(&Gauges {
            queue_depth: 2,
            queue_cap: 64,
            workers: 4,
            cache_entries: 9,
            breaker_open: 1,
            draining: true,
            ..Gauges::default()
        });
        assert!(
            body.contains("barre_serve_requests_received_total 1\n"),
            "{body}"
        );
        assert!(
            body.contains("barre_serve_requests_shed_total 1\n"),
            "{body}"
        );
        assert!(body.contains("barre_serve_queue_depth 2\n"), "{body}");
        assert!(body.contains("barre_serve_breaker_open 1\n"), "{body}");
        assert!(body.contains("barre_serve_draining 1\n"), "{body}");
        assert!(
            body.contains("barre_serve_request_latency_ms_count 1\n"),
            "{body}"
        );
        assert!(
            body.contains("barre_serve_request_latency_ms_bucket{le=\"+Inf\"} 1\n"),
            "{body}"
        );
        assert!(
            body.contains("# TYPE barre_serve_request_latency_ms histogram"),
            "{body}"
        );
    }

    #[test]
    fn mean_service_defaults_then_tracks() {
        let s = ServeStats::new();
        assert_eq!(s.mean_service_ms(), 1000);
        s.record_latency_ms(10);
        s.record_latency_ms(30);
        assert_eq!(s.mean_service_ms(), 20);
    }
}
