//! A minimal hand-rolled HTTP/1.1 shim for the health endpoints.
//!
//! Just enough of the protocol for `curl`/load-balancer probes:
//! `GET /healthz` (always 200 while the process lives), `GET /readyz`
//! (503 once a drain starts), `GET /stats` (the counters JSON), and
//! `GET /metrics` (Prometheus text exposition, format 0.0.4). Every
//! response closes the connection; request headers are read and
//! discarded. Anything fancier belongs behind a real proxy.

/// `Content-Type` for the JSON endpoints.
pub const CT_JSON: &str = "application/json";

/// `Content-Type` for `/metrics` (Prometheus text exposition).
pub const CT_METRICS: &str = barre_obs::metrics::CONTENT_TYPE;

/// Splits an HTTP request line (`"GET /stats HTTP/1.1"`) into method and
/// path; `None` when it isn't one.
pub fn parse_request_line(line: &str) -> Option<(&str, &str)> {
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/") {
        return None;
    }
    Some((method, path))
}

/// Whether a protocol line opens an HTTP exchange (vs a JSONL request).
pub fn looks_like_http(line: &str) -> bool {
    line.starts_with("GET ") || line.starts_with("HEAD ") || line.starts_with("POST ")
}

/// Renders a complete HTTP/1.1 response with the given `Content-Type`.
pub fn render_http(code: u16, reason: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Routes a health-endpoint path to `(code, reason, content_type,
/// body)`. `stats_body` and `metrics_body` are rendered lazily — only
/// the endpoint asked for pays for its snapshot.
pub fn route(
    method: &str,
    path: &str,
    draining: bool,
    stats_body: impl FnOnce() -> String,
    metrics_body: impl FnOnce() -> String,
) -> (u16, &'static str, &'static str, String) {
    if method != "GET" && method != "HEAD" {
        return (
            405,
            "Method Not Allowed",
            CT_JSON,
            "{\"error\":\"method not allowed\"}".to_string(),
        );
    }
    match path {
        "/healthz" => (200, "OK", CT_JSON, "{\"status\":\"ok\"}".to_string()),
        "/readyz" => {
            if draining {
                (
                    503,
                    "Service Unavailable",
                    CT_JSON,
                    "{\"ready\":false,\"reason\":\"draining\"}".to_string(),
                )
            } else {
                (200, "OK", CT_JSON, "{\"ready\":true}".to_string())
            }
        }
        "/stats" => (200, "OK", CT_JSON, stats_body()),
        "/metrics" => (200, "OK", CT_METRICS, metrics_body()),
        _ => (
            404,
            "Not Found",
            CT_JSON,
            "{\"error\":\"not found\"}".to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse() {
        assert_eq!(
            parse_request_line("GET /healthz HTTP/1.1"),
            Some(("GET", "/healthz"))
        );
        assert_eq!(parse_request_line("{\"app\":\"gups\"}"), None);
        assert!(looks_like_http("GET /stats HTTP/1.1"));
        assert!(!looks_like_http("{\"app\":\"gups\"}"));
    }

    #[test]
    fn routes_cover_health_ready_stats_metrics() {
        let none = String::new;
        let (code, _, ct, body) = route("GET", "/healthz", true, none, none);
        assert_eq!((code, ct, body.contains("ok")), (200, CT_JSON, true));
        let (code, _, _, _) = route("GET", "/readyz", false, none, none);
        assert_eq!(code, 200);
        let (code, _, _, body) = route("GET", "/readyz", true, none, none);
        assert_eq!((code, body.contains("draining")), (503, true));
        let (code, _, ct, body) = route("GET", "/stats", false, || "{\"x\":1}".to_string(), none);
        assert_eq!((code, ct, body.as_str()), (200, CT_JSON, "{\"x\":1}"));
        let (code, _, ct, body) = route("GET", "/metrics", false, none, || {
            "# HELP x y\n".to_string()
        });
        assert_eq!(
            (code, ct, body.as_str()),
            (200, "text/plain; version=0.0.4", "# HELP x y\n")
        );
        let (code, _, _, _) = route("GET", "/nope", false, none, none);
        assert_eq!(code, 404);
        let (code, _, _, _) = route("PUT", "/healthz", false, none, none);
        assert_eq!(code, 405);
    }

    #[test]
    fn responses_carry_content_length_and_type() {
        let r = render_http(200, "OK", CT_JSON, "{\"a\":1}");
        assert!(r.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(r.contains("Content-Type: application/json\r\n"));
        assert!(r.contains("Content-Length: 7\r\n"));
        assert!(r.ends_with("{\"a\":1}"));
        let m = render_http(200, "OK", CT_METRICS, "x 1\n");
        assert!(m.contains("Content-Type: text/plain; version=0.0.4\r\n"));
    }
}
