//! A minimal hand-rolled HTTP/1.1 shim for the health endpoints.
//!
//! Just enough of the protocol for `curl`/load-balancer probes:
//! `GET /healthz` (always 200 while the process lives), `GET /readyz`
//! (503 once a drain starts), `GET /stats` (the counters JSON). Every
//! response closes the connection; request headers are read and
//! discarded. Anything fancier belongs behind a real proxy.

/// Splits an HTTP request line (`"GET /stats HTTP/1.1"`) into method and
/// path; `None` when it isn't one.
pub fn parse_request_line(line: &str) -> Option<(&str, &str)> {
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/") {
        return None;
    }
    Some((method, path))
}

/// Whether a protocol line opens an HTTP exchange (vs a JSONL request).
pub fn looks_like_http(line: &str) -> bool {
    line.starts_with("GET ") || line.starts_with("HEAD ") || line.starts_with("POST ")
}

/// Renders a complete HTTP/1.1 response with a JSON body.
pub fn render_http(code: u16, reason: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Routes a health-endpoint path to `(code, reason, body)`. `stats_body`
/// is rendered lazily — only `/stats` pays for it.
pub fn route(
    method: &str,
    path: &str,
    draining: bool,
    stats_body: impl FnOnce() -> String,
) -> (u16, &'static str, String) {
    if method != "GET" && method != "HEAD" {
        return (
            405,
            "Method Not Allowed",
            "{\"error\":\"method not allowed\"}".to_string(),
        );
    }
    match path {
        "/healthz" => (200, "OK", "{\"status\":\"ok\"}".to_string()),
        "/readyz" => {
            if draining {
                (
                    503,
                    "Service Unavailable",
                    "{\"ready\":false,\"reason\":\"draining\"}".to_string(),
                )
            } else {
                (200, "OK", "{\"ready\":true}".to_string())
            }
        }
        "/stats" => (200, "OK", stats_body()),
        _ => (404, "Not Found", "{\"error\":\"not found\"}".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse() {
        assert_eq!(
            parse_request_line("GET /healthz HTTP/1.1"),
            Some(("GET", "/healthz"))
        );
        assert_eq!(parse_request_line("{\"app\":\"gups\"}"), None);
        assert!(looks_like_http("GET /stats HTTP/1.1"));
        assert!(!looks_like_http("{\"app\":\"gups\"}"));
    }

    #[test]
    fn routes_cover_health_ready_stats() {
        let (code, _, body) = route("GET", "/healthz", true, String::new);
        assert_eq!((code, body.contains("ok")), (200, true));
        let (code, _, _) = route("GET", "/readyz", false, String::new);
        assert_eq!(code, 200);
        let (code, _, body) = route("GET", "/readyz", true, String::new);
        assert_eq!((code, body.contains("draining")), (503, true));
        let (code, _, body) = route("GET", "/stats", false, || "{\"x\":1}".to_string());
        assert_eq!((code, body.as_str()), (200, "{\"x\":1}"));
        let (code, _, _) = route("GET", "/nope", false, String::new);
        assert_eq!(code, 404);
        let (code, _, _) = route("PUT", "/healthz", false, String::new);
        assert_eq!(code, 405);
    }

    #[test]
    fn responses_carry_content_length() {
        let r = render_http(200, "OK", "{\"a\":1}");
        assert!(r.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(r.contains("Content-Length: 7\r\n"));
        assert!(r.ends_with("{\"a\":1}"));
    }
}
