//! The content-addressed result cache behind `barre serve`.
//!
//! Completed runs are indexed by the journal fingerprint of their
//! canonical argv and persisted as `done` records in a JSONL journal
//! file (`serve-cache.jsonl`), reusing the sweep journal's line format —
//! so `barre report <cache-file>` summarizes a cache like any journal,
//! and the torn-tail discipline carries over.
//!
//! Trust model: a cache entry is only ever served after its stored
//! `digest`/`hist_digest` verify against its own metrics. Verification
//! happens twice — once at warm-load (via
//! [`barre_system::verified_done_index`]) and again on every hit — and a
//! mismatch is treated as corruption: evict, log to stderr, recompute.
//! Never serve a record whose digest fails.
//!
//! During runtime, inserts append to the journal (so a crash loses at
//! most the torn tail); a graceful drain rewrites a compacted index
//! (one record per fingerprint) through a temp-file rename.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use barre_obs::log as olog;
use barre_obs::Field;
use barre_system::{
    metrics_digest, metrics_hist_digest, read_journal_lenient, verified_done_index, JournalError,
    JournalEvent, JournalRecord, JournalWriter, RunMetrics,
};

/// File name of the cache index inside the cache directory.
pub const CACHE_FILE: &str = "serve-cache.jsonl";

/// What warm-loading found on disk.
#[derive(Debug, Default, Clone, Copy)]
pub struct WarmLoad {
    /// Entries that verified and were loaded.
    pub loaded: usize,
    /// Unparseable lines skipped by the lenient reader.
    pub skipped_lines: usize,
    /// Parseable `done` records evicted because a digest failed.
    pub evicted: usize,
}

/// The in-memory index plus its append-only backing journal.
pub struct ResultCache {
    path: PathBuf,
    entries: Mutex<BTreeMap<String, JournalRecord>>,
    writer: Mutex<Option<JournalWriter>>,
    evictions: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) the cache under `dir`, warm-loading
    /// and digest-verifying any existing index.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the directory or index file cannot be
    /// created/read. A *corrupt* index is not an error — bad lines and
    /// bad records are dropped and reported in [`WarmLoad`].
    pub fn open(dir: &Path) -> Result<(ResultCache, WarmLoad), JournalError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(CACHE_FILE);
        let mut warm = WarmLoad::default();
        let mut entries = BTreeMap::new();
        if path.exists() {
            let (records, skipped) = read_journal_lenient(&path)?;
            let (index, evicted) = verified_done_index(&records);
            warm.skipped_lines = skipped;
            warm.evicted = evicted;
            warm.loaded = index.len();
            entries = index;
        }
        let writer = JournalWriter::open(&path)?;
        let cache = ResultCache {
            path,
            entries: Mutex::new(entries),
            writer: Mutex::new(Some(writer)),
            evictions: AtomicU64::new(warm.evicted as u64),
        };
        Ok((cache, warm))
    }

    /// Number of cached fingerprints.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries evicted by digest verification (warm-load + reads).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Looks up `fp`, re-verifying digests before serving. A mismatch is
    /// corruption: the entry is evicted and logged, and `None` comes
    /// back so the caller recomputes.
    pub fn get(&self, fp: &str) -> Option<JournalRecord> {
        let mut g = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let rec = g.get(fp)?.clone();
        let verified = match &rec.event {
            JournalEvent::Done {
                digest,
                hist_digest,
                metrics,
                ..
            } => {
                *digest == metrics_digest(metrics)
                    && match hist_digest {
                        Some(h) => *h == metrics_hist_digest(metrics),
                        None => true,
                    }
            }
            _ => false,
        };
        if verified {
            return Some(rec);
        }
        g.remove(fp);
        drop(g);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        olog::warn(
            "cache",
            "digest_mismatch",
            &[("fp", Field::S(fp)), ("label", Field::S(&rec.label))],
            &format!(
                "cache: digest mismatch on {fp} ({}): evicted, recomputing",
                rec.label
            ),
        );
        None
    }

    /// Inserts a completed run, appending it to the backing journal.
    /// Returns the stored record (digests freshly computed).
    pub fn insert(&self, fp: &str, label: &str, metrics: RunMetrics) -> JournalRecord {
        let metrics = Box::new(metrics);
        let rec = JournalRecord {
            fingerprint: fp.to_string(),
            label: label.to_string(),
            event: JournalEvent::Done {
                attempts: 1,
                exit: "ok".to_string(),
                digest: metrics_digest(&metrics),
                hist_digest: Some(metrics_hist_digest(&metrics)),
                worker: None,
                metrics,
            },
        };
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(fp.to_string(), rec.clone());
        let g = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(w) = g.as_ref() {
            if let Err(e) = w.append(&rec) {
                // The in-memory entry still serves; only persistence of
                // this one record is lost.
                olog::error(
                    "cache",
                    "append_failed",
                    &[("fp", Field::S(fp))],
                    &format!("cache: append failed for {fp}: {e}"),
                );
            }
        }
        rec
    }

    /// Rewrites the index compacted (one record per fingerprint, sorted)
    /// through a temp file + rename, called during graceful drain. The
    /// append writer is dropped first so the rename wins.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the temp file cannot be written or
    /// renamed — the previous (append-form) index stays in place.
    pub fn flush_compacted(&self) -> Result<usize, JournalError> {
        *self.writer.lock().unwrap_or_else(PoisonError::into_inner) = None;
        let g = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let mut doc = String::with_capacity(g.len() * 1024);
        for rec in g.values() {
            doc.push_str(&rec.to_line());
            doc.push('\n');
        }
        let n = g.len();
        drop(g);
        let tmp = self.path.with_extension("jsonl.tmp");
        std::fs::write(&tmp, doc)?;
        std::fs::rename(&tmp, &self.path)?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("barre-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn metrics(cycles: u64) -> RunMetrics {
        let mut m = RunMetrics {
            total_cycles: cycles,
            walks: 3,
            ..Default::default()
        };
        m.ats_latency.record(cycles);
        m.vpn_gap.record(1);
        m
    }

    #[test]
    fn insert_get_roundtrip_and_warm_reload() {
        let dir = tmpdir("roundtrip");
        let (cache, warm) = ResultCache::open(&dir).expect("open");
        assert_eq!(warm.loaded, 0);
        cache.insert("fp1", "gups/barre", metrics(100));
        cache.insert("fp2", "gemv/barre", metrics(200));
        let hit = cache.get("fp1").expect("hit");
        assert_eq!(hit.label, "gups/barre");
        assert!(cache.get("fp3").is_none());
        assert_eq!(cache.flush_compacted().expect("flush"), 2);
        // Reload sees both entries, byte-identical records.
        let (cache2, warm2) = ResultCache::open(&dir).expect("reopen");
        assert_eq!(warm2.loaded, 2);
        assert_eq!(warm2.evicted, 0);
        assert_eq!(
            cache2.get("fp1").expect("warm hit").to_line(),
            hit.to_line()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_entry_is_evicted_on_load_never_served() {
        let dir = tmpdir("corrupt");
        let (cache, _) = ResultCache::open(&dir).expect("open");
        cache.insert("fpA", "gups/barre", metrics(100));
        cache.insert("fpB", "gemv/barre", metrics(200));
        cache.flush_compacted().expect("flush");
        // Bit-flip one digit of fpA's recorded total_cycles so the line
        // still parses but the digest no longer matches.
        let path = dir.join(CACHE_FILE);
        let text = std::fs::read_to_string(&path).expect("read");
        let corrupted = text.replace("\"total_cycles\":100,", "\"total_cycles\":101,");
        assert_ne!(text, corrupted, "corruption must land");
        std::fs::write(&path, corrupted).expect("write");
        let (cache2, warm) = ResultCache::open(&dir).expect("reopen");
        assert_eq!(warm.evicted, 1);
        assert_eq!(warm.loaded, 1);
        assert!(cache2.get("fpA").is_none(), "corrupt entry must not serve");
        assert!(cache2.get("fpB").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_and_garbage_lines_are_skipped() {
        let dir = tmpdir("torn");
        let (cache, _) = ResultCache::open(&dir).expect("open");
        cache.insert("fp1", "gups/barre", metrics(100));
        drop(cache);
        let path = dir.join(CACHE_FILE);
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("open raw");
            writeln!(f, "not json at all").expect("garbage");
            write!(f, "{{\"event\":\"done\",\"finger").expect("torn");
        }
        let (cache2, warm) = ResultCache::open(&dir).expect("reopen");
        assert_eq!(warm.loaded, 1);
        assert_eq!(warm.skipped_lines, 2);
        assert!(cache2.get("fp1").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
