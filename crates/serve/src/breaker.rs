//! The crash circuit breaker: quarantine configs that keep failing.
//!
//! A config fingerprint whose children fail terminally N times in a row
//! (retries exhausted, permanent `SimError`, or deadline kill) trips
//! into a quarantined state: further requests for that fingerprint get
//! a `503`-style response without spawning anything. One success resets
//! the streak. Quarantine lasts for the daemon's lifetime — a restart
//! (or a fixed binary) clears it, and that is exactly when retrying is
//! worth it again.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

/// Per-fingerprint consecutive-terminal-failure counter with a trip
/// threshold.
pub struct CircuitBreaker {
    trip_after: u32,
    streaks: Mutex<BTreeMap<String, u32>>,
}

impl CircuitBreaker {
    /// Trips a fingerprint after `trip_after` consecutive terminal
    /// failures; `0` disables the breaker entirely.
    pub fn new(trip_after: u32) -> Self {
        CircuitBreaker {
            trip_after,
            streaks: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether `fp` is quarantined.
    pub fn is_open(&self, fp: &str) -> bool {
        if self.trip_after == 0 {
            return false;
        }
        self.streaks
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(fp)
            .is_some_and(|&n| n >= self.trip_after)
    }

    /// Records a terminal failure for `fp`; returns `true` when this
    /// failure tripped the breaker open.
    pub fn record_failure(&self, fp: &str) -> bool {
        if self.trip_after == 0 {
            return false;
        }
        let mut g = self.streaks.lock().unwrap_or_else(PoisonError::into_inner);
        let n = g.entry(fp.to_string()).or_insert(0);
        *n = n.saturating_add(1);
        *n == self.trip_after
    }

    /// Records a success for `fp`, resetting its streak.
    pub fn record_success(&self, fp: &str) {
        self.streaks
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(fp);
    }

    /// Number of currently quarantined fingerprints.
    pub fn open_count(&self) -> usize {
        if self.trip_after == 0 {
            return 0;
        }
        self.streaks
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .filter(|&&n| n >= self.trip_after)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_n_consecutive_failures() {
        let b = CircuitBreaker::new(3);
        assert!(!b.record_failure("f1"));
        assert!(!b.record_failure("f1"));
        assert!(!b.is_open("f1"));
        assert!(b.record_failure("f1"));
        assert!(b.is_open("f1"));
        assert_eq!(b.open_count(), 1);
        // Further failures don't re-report the trip.
        assert!(!b.record_failure("f1"));
        assert!(b.is_open("f1"));
    }

    #[test]
    fn success_resets_the_streak() {
        let b = CircuitBreaker::new(2);
        b.record_failure("f1");
        b.record_success("f1");
        assert!(!b.record_failure("f1"));
        assert!(!b.is_open("f1"));
        assert!(b.record_failure("f1"));
        assert!(b.is_open("f1"));
    }

    #[test]
    fn zero_threshold_disables() {
        let b = CircuitBreaker::new(0);
        for _ in 0..10 {
            b.record_failure("f1");
        }
        assert!(!b.is_open("f1"));
        assert_eq!(b.open_count(), 0);
    }

    #[test]
    fn fingerprints_are_independent() {
        let b = CircuitBreaker::new(1);
        b.record_failure("f1");
        assert!(b.is_open("f1"));
        assert!(!b.is_open("f2"));
    }
}
