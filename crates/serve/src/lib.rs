//! `barre serve` — a hardened simulation-as-a-service daemon.
//!
//! A long-running process that accepts simulation requests as JSONL over
//! TCP (one JSON object per line, one JSON response line per request, in
//! order) plus a minimal hand-rolled HTTP/1.1 shim for `GET /healthz`,
//! `GET /readyz`, `GET /stats` (JSON), and `GET /metrics` (Prometheus
//! text exposition). Every request is validated into the
//! same canonical job the CLI would run, executed in a crash-isolated
//! child process (a self-exec of `barre run --metrics-json …`), and
//! cached content-addressed by the journal fingerprint of its canonical
//! argument vector.
//!
//! Robustness machinery, in the order a request meets it:
//!
//! * **Validation** — unknown fields, unknown apps/modes, and
//!   out-of-range values are rejected immediately (`400`-style).
//! * **Circuit breaker** — a fingerprint that keeps producing terminal
//!   failures is quarantined ([`breaker`]) and answered `503` without
//!   spawning anything.
//! * **Result cache** — completed runs are served from a digest-verified
//!   in-memory index backed by a torn-tail-tolerant journal file
//!   ([`cache`]); hits are byte-identical to the first computation.
//! * **Admission queue** — a bounded queue ([`queue`]); when full the
//!   request is shed with a `429`-style response and a deterministic
//!   `retry_after_ms` hint instead of queuing unboundedly.
//! * **Deadline** — each request carries a wall-clock budget spanning
//!   queue wait and all attempts; expiry kills the child (`504`).
//!   Transient child failures retry with the supervisor's deterministic
//!   capped backoff ([`attempt`]); permanent `SimError`s (exit 64)
//!   return structured errors and never retry.
//! * **Graceful drain** — SIGINT/SIGTERM ([`signal`]) stops accepting,
//!   lets queued and in-flight jobs finish (or hit their deadlines),
//!   flushes a compacted cache index, and exits 0; a restart warm-loads
//!   the cache.
//!
//! Per-request latency and queue depth are recorded in `barre-trace`
//! fixed-bucket histograms and exposed via `/stats` (percentiles) and
//! `/metrics` (cumulative buckets) ([`stats`]). Diagnostics are leveled
//! JSONL structured log events (`barre-obs`; `BARRE_LOG`, `--log-file`),
//! including a per-request debug-level trace summary, and the daemon
//! participates in fleet tracing (`BARRE_FLEET_TRACE`, `BARRE_CORR_ID`)
//! stitched by `barre report --fleet`.
//!
//! The crate also hosts the serve-adjacent distributed dispatch stack
//! ([`jobq`]): the `barre queue` lease-based job-queue coordinator, the
//! `barre worker` executor, and the `barre sweep --dispatch` client —
//! built on the same TCP/JSONL framing, HTTP shim, drain signals, and
//! crash-isolated attempt machinery as the daemon.

pub mod attempt;
pub mod breaker;
pub mod cache;
pub mod http;
pub mod jobq;
pub mod queue;
pub mod request;
pub mod server;
pub mod signal;
pub mod stats;

pub use server::{run_serve, ServeOptions};
