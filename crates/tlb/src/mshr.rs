//! Miss-status holding registers.
//!
//! An MSHR file tracks outstanding misses and merges duplicate requests for
//! the same key, so one in-flight translation serves every waiting warp.
//! The L2 TLB's 16 MSHRs (Table II) bound how many distinct translations a
//! chiplet can have outstanding — Fig 4 shows that scaling this number
//! barely helps, which is the paper's argument that the bottleneck is
//! translation *processing*, not miss *tracking*.

/// Result of trying to allocate an MSHR for a missing key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// First miss for this key: caller must issue the downstream request.
    Primary,
    /// Another miss for an already-pending key: merged, no new request.
    Merged,
    /// No MSHR available: the requester must stall and retry.
    Full,
}

/// An MSHR file keyed by `K` with waiter records `T`.
///
/// # Example
///
/// ```
/// use barre_tlb::{MshrFile, MshrOutcome};
///
/// let mut m: MshrFile<u64, &str> = MshrFile::new(2);
/// assert_eq!(m.allocate(7, "warp-a"), MshrOutcome::Primary);
/// assert_eq!(m.allocate(7, "warp-b"), MshrOutcome::Merged);
/// assert_eq!(m.complete(7), vec!["warp-a", "warp-b"]);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile<K, T> {
    entries: Vec<(K, Vec<T>)>,
    capacity: usize,
    merges: u64,
    stalls: u64,
    peak: usize,
}

impl<K: PartialEq + Copy, T> MshrFile<K, T> {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one register");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            merges: 0,
            stalls: 0,
            peak: 0,
        }
    }

    /// Registers a miss on `key` with waiter `waiter`.
    pub fn allocate(&mut self, key: K, waiter: T) -> MshrOutcome {
        if let Some((_, waiters)) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            waiters.push(waiter);
            self.merges += 1;
            return MshrOutcome::Merged;
        }
        if self.entries.len() == self.capacity {
            self.stalls += 1;
            return MshrOutcome::Full;
        }
        self.entries.push((key, vec![waiter]));
        self.peak = self.peak.max(self.entries.len());
        MshrOutcome::Primary
    }

    /// Whether `key` has an in-flight miss.
    pub fn is_pending(&self, key: K) -> bool {
        self.entries.iter().any(|(k, _)| *k == key)
    }

    /// Completes the miss on `key`, returning all merged waiters
    /// (empty if the key was not pending).
    pub fn complete(&mut self, key: K) -> Vec<T> {
        match self.entries.iter().position(|(k, _)| *k == key) {
            Some(i) => self.entries.swap_remove(i).1,
            None => Vec::new(),
        }
    }

    /// Registers currently in use.
    pub fn in_use(&self) -> usize {
        self.entries.len()
    }

    /// Whether every register is occupied.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Misses merged into an existing register.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Allocation attempts rejected because the file was full.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Peak simultaneous occupancy.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Drops all pending entries (shootdown), returning their waiters.
    pub fn drain(&mut self) -> Vec<(K, Vec<T>)> {
        std::mem::take(&mut self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_merge() {
        let mut m: MshrFile<u32, u32> = MshrFile::new(4);
        assert_eq!(m.allocate(1, 100), MshrOutcome::Primary);
        assert_eq!(m.allocate(1, 101), MshrOutcome::Merged);
        assert_eq!(m.allocate(2, 200), MshrOutcome::Primary);
        assert!(m.is_pending(1));
        assert_eq!(m.merges(), 1);
        assert_eq!(m.complete(1), vec![100, 101]);
        assert!(!m.is_pending(1));
        assert_eq!(m.in_use(), 1);
    }

    #[test]
    fn full_rejects_new_keys_but_merges_existing() {
        let mut m: MshrFile<u32, u32> = MshrFile::new(1);
        assert_eq!(m.allocate(1, 0), MshrOutcome::Primary);
        assert_eq!(m.allocate(2, 0), MshrOutcome::Full);
        assert_eq!(m.allocate(1, 1), MshrOutcome::Merged);
        assert_eq!(m.stalls(), 1);
        assert!(m.is_full());
    }

    #[test]
    fn complete_unknown_is_empty() {
        let mut m: MshrFile<u32, u32> = MshrFile::new(2);
        assert!(m.complete(9).is_empty());
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut m: MshrFile<u32, ()> = MshrFile::new(8);
        for k in 0..5 {
            m.allocate(k, ());
        }
        m.complete(0);
        m.complete(1);
        assert_eq!(m.peak(), 5);
        assert_eq!(m.in_use(), 3);
    }

    #[test]
    fn drain_returns_everything() {
        let mut m: MshrFile<u32, u8> = MshrFile::new(4);
        m.allocate(1, 10);
        m.allocate(1, 11);
        m.allocate(2, 20);
        let drained = m.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(m.in_use(), 0);
    }
}
