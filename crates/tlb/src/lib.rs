//! TLB structures for the MCM-GPU model.
//!
//! * [`Tlb`] — a generic set-associative, LRU translation cache with an
//!   arbitrary per-entry payload. The GPU model instantiates it as the
//!   per-CU L1 TLB (64 entries, fully associative) and the chiplet-shared
//!   L2 TLB (512 entries, 16-way). The payload carries the PFN plus, under
//!   F-Barre, the coalescing information returned in the ATS response.
//! * [`MshrFile`] — miss-status holding registers with same-key merging;
//!   Fig 4's MSHR sensitivity study scales its capacity.

pub mod mshr;
pub mod tlb;

pub use mshr::{MshrFile, MshrOutcome};
pub use tlb::{Tlb, TlbKey};
