//! Set-associative translation cache.

use barre_mem::Vpn;
use barre_sim::RatioStat;

/// Key of a TLB entry: address-space id plus virtual page number.
/// Barre Chord "considers the process ID associated to each page" (§VII-I),
/// so entries are ASID-tagged rather than flushed between applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TlbKey {
    /// Address-space (process) id.
    pub asid: u16,
    /// Virtual page number.
    pub vpn: Vpn,
}

#[derive(Debug, Clone)]
struct Slot<P> {
    key: TlbKey,
    payload: P,
    last_use: u64,
}

/// A set-associative, LRU TLB with payload `P`.
///
/// `entries` must be divisible by `ways`; a fully-associative TLB is
/// `ways == entries`.
///
/// # Example
///
/// ```
/// use barre_tlb::{Tlb, TlbKey};
/// use barre_mem::Vpn;
///
/// let mut tlb: Tlb<u64> = Tlb::new(64, 64); // fully associative L1
/// let k = TlbKey { asid: 0, vpn: Vpn(0xA1) };
/// assert!(tlb.lookup(k).is_none());
/// tlb.insert(k, 0x75);
/// assert_eq!(tlb.lookup(k), Some(&0x75));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb<P> {
    sets: Vec<Vec<Slot<P>>>,
    ways: usize,
    clock: u64,
    stats: RatioStat,
    evictions: u64,
}

impl<P> Tlb<P> {
    /// Creates a TLB with `entries` total slots and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`, or the set
    /// count is not a power of two.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0 && entries > 0, "empty TLB");
        assert!(
            entries.is_multiple_of(ways),
            "entries must be a multiple of ways"
        );
        let nsets = entries / ways;
        assert!(nsets.is_power_of_two(), "set count must be a power of two");
        Self {
            sets: (0..nsets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            clock: 0,
            stats: RatioStat::new(),
            evictions: 0,
        }
    }

    fn set_of(&self, key: TlbKey) -> usize {
        // Mix the ASID into the index so co-running apps spread over sets.
        ((key.vpn.0 ^ ((key.asid as u64) << 17)) as usize) & (self.sets.len() - 1)
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Demand lookup: updates recency and hit/miss statistics.
    pub fn lookup(&mut self, key: TlbKey) -> Option<&P> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(key);
        let slot = self.sets[set].iter_mut().find(|s| s.key == key);
        let hit = slot.is_some();
        self.stats.record(hit);
        slot.map(|s| {
            s.last_use = clock;
            &s.payload
        })
    }

    /// Side-channel probe (coalescing-VPN search, peer probes): does not
    /// touch recency or demand statistics.
    pub fn probe(&self, key: TlbKey) -> Option<&P> {
        let set = self.set_of(key);
        self.sets[set]
            .iter()
            .find(|s| s.key == key)
            .map(|s| &s.payload)
    }

    /// Inserts a translation, evicting the set's LRU entry if full.
    /// Returns the evicted `(key, payload)` if any.
    pub fn insert(&mut self, key: TlbKey, payload: P) -> Option<(TlbKey, P)> {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.ways;
        let set = self.set_of(key);
        let slots = &mut self.sets[set];
        if let Some(s) = slots.iter_mut().find(|s| s.key == key) {
            s.payload = payload;
            s.last_use = clock;
            return None;
        }
        let mut evicted = None;
        if slots.len() == ways {
            // `slots.len() == ways > 0` here, so the min always exists;
            // fall back to slot 0 rather than panicking.
            let lru = slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_use)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let victim = slots.swap_remove(lru);
            self.evictions += 1;
            evicted = Some((victim.key, victim.payload));
        }
        slots.push(Slot {
            key,
            payload,
            last_use: clock,
        });
        evicted
    }

    /// Removes a specific entry (single-page shootdown, migration).
    pub fn invalidate(&mut self, key: TlbKey) -> Option<P> {
        let set = self.set_of(key);
        let slots = &mut self.sets[set];
        let idx = slots.iter().position(|s| s.key == key)?;
        Some(slots.swap_remove(idx).payload)
    }

    /// Drops every entry (full shootdown). Returns the evicted keys so
    /// attached filters can be synchronized.
    pub fn shootdown(&mut self) -> Vec<TlbKey> {
        let mut keys = Vec::with_capacity(self.len());
        for set in &mut self.sets {
            keys.extend(set.drain(..).map(|s| s.key));
        }
        keys
    }

    /// Iterates over resident `(key, payload)` pairs (set order).
    pub fn iter(&self) -> impl Iterator<Item = (TlbKey, &P)> {
        self.sets
            .iter()
            .flat_map(|set| set.iter().map(|s| (s.key, &s.payload)))
    }

    /// Demand hit/miss statistics.
    pub fn stats(&self) -> RatioStat {
        self.stats
    }

    /// Demand `(hits, misses)` snapshot. The tracer's time-series
    /// sampler reads this on its event-cadence without touching recency
    /// or statistics state.
    pub fn hits_misses(&self) -> (u64, u64) {
        let h = self.stats.hits();
        (h, self.stats.total().saturating_sub(h))
    }

    /// Number of capacity/conflict evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(vpn: u64) -> TlbKey {
        TlbKey {
            asid: 0,
            vpn: Vpn(vpn),
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut t: Tlb<u32> = Tlb::new(8, 2);
        t.insert(k(1), 10);
        assert_eq!(t.lookup(k(1)), Some(&10));
        assert_eq!(t.lookup(k(2)), None);
        assert_eq!(t.stats().hits(), 1);
        assert_eq!(t.stats().total(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // Fully associative with 2 ways.
        let mut t: Tlb<u32> = Tlb::new(2, 2);
        t.insert(k(1), 1);
        t.insert(k(2), 2);
        t.lookup(k(1)); // make 2 the LRU
        let ev = t.insert(k(3), 3).unwrap();
        assert_eq!(ev.0, k(2));
        assert!(t.probe(k(1)).is_some());
        assert!(t.probe(k(3)).is_some());
        assert_eq!(t.evictions(), 1);
    }

    #[test]
    fn probe_does_not_disturb_lru_or_stats() {
        let mut t: Tlb<u32> = Tlb::new(2, 2);
        t.insert(k(1), 1);
        t.insert(k(2), 2);
        t.probe(k(1)); // not a use
        let ev = t.insert(k(3), 3).unwrap();
        assert_eq!(ev.0, k(1)); // 1 is still LRU despite the probe
        assert_eq!(t.stats().total(), 0);
    }

    #[test]
    fn reinsert_updates_payload() {
        let mut t: Tlb<u32> = Tlb::new(4, 4);
        t.insert(k(1), 1);
        assert!(t.insert(k(1), 42).is_none());
        assert_eq!(t.lookup(k(1)), Some(&42));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn asid_isolation() {
        let mut t: Tlb<u32> = Tlb::new(16, 4);
        let a = TlbKey {
            asid: 1,
            vpn: Vpn(9),
        };
        let b = TlbKey {
            asid: 2,
            vpn: Vpn(9),
        };
        t.insert(a, 100);
        assert!(t.probe(b).is_none());
        t.insert(b, 200);
        assert_eq!(t.probe(a), Some(&100));
        assert_eq!(t.probe(b), Some(&200));
    }

    #[test]
    fn invalidate_and_shootdown() {
        let mut t: Tlb<u32> = Tlb::new(8, 4);
        t.insert(k(1), 1);
        t.insert(k(2), 2);
        assert_eq!(t.invalidate(k(1)), Some(1));
        assert_eq!(t.invalidate(k(1)), None);
        let keys = t.shootdown();
        assert_eq!(keys, vec![k(2)]);
        assert!(t.is_empty());
    }

    #[test]
    fn set_mapping_respects_associativity() {
        // 8 entries, 2-way => 4 sets. VPNs congruent mod 4 conflict.
        let mut t: Tlb<u32> = Tlb::new(8, 2);
        t.insert(k(0), 0);
        t.insert(k(4), 4);
        t.insert(k(8), 8); // evicts one of the set-0 residents
        let resident = [k(0), k(4), k(8)]
            .iter()
            .filter(|&&key| t.probe(key).is_some())
            .count();
        assert_eq!(resident, 2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_panics() {
        let _: Tlb<u8> = Tlb::new(10, 4);
    }
}
