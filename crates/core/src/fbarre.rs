//! F-Barre per-chiplet filter banks (§V-A).
//!
//! Each chiplet carries one *local coalescing-group filter* (LCF) shadowing
//! its own L2 TLB contents, and one *remote coalescing-group filter*
//! (RCF<sub>p</sub>) per peer `p` shadowing the coalescing VPNs reachable
//! through `p`'s TLB. On an L2 TLB miss the chiplet probes TLB, LCF and all
//! RCFs in parallel; an RCF hit names the peer to ask, an LCF hit (on a
//! *coalescing* VPN) means the translation is calculable locally.
//!
//! Filters are updated by best-effort 43-bit messages; the timing (and the
//! drops that produce Fig 17a's ~75% remote hit rate) belongs to the system
//! model — this module owns the state and the key scheme.

use barre_filters::{CuckooFilter, Filter};
use barre_mem::{ChipletId, Vpn};

/// Bits of one filter-update message (§V-A2: 1-bit command, 3-bit sender
/// chiplet id, 40-bit coalescing VPN).
pub const FILTER_UPDATE_BITS: u64 = 44;

/// Displacement budget of the bank's cuckoo filters. Hardware filter
/// pipelines complete an insert in a fixed number of swap stages; a small
/// budget also bounds the simulation cost of the advertisement stream,
/// which can run the RCFs to saturation (hundreds of futile kicks per
/// insert under the unbounded walk) on irregular workloads.
pub const FILTER_KICK_BUDGET: usize = 8;

/// Slots in the direct-mapped negative-probe cache (power of two).
const NEG_CACHE_SLOTS: usize = 512;

/// Direct-mapped cache of keys whose last [`FilterBank::rcf_hit`] probe
/// came back empty. Any RCF mutation bumps `gen`, invalidating every
/// cached entry at once — exact and O(1), so cached answers can never
/// diverge from a fresh probe.
#[derive(Debug)]
struct NegCache {
    /// `(key, gen)` pairs; a slot is live only if its gen matches.
    slots: Box<[(u64, u64)]>,
    /// Current generation. Starts at 1 so zeroed slots are never live.
    gen: u64,
    hits: u64,
}

impl NegCache {
    fn new() -> Self {
        Self {
            slots: vec![(0, 0); NEG_CACHE_SLOTS].into_boxed_slice(),
            gen: 1,
            hits: 0,
        }
    }

    #[inline]
    fn slot(key: u64) -> usize {
        // Fibonacci hashing: the top bits of key * golden-ratio spread
        // well even for sequential VPNs.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 55) as usize & (NEG_CACHE_SLOTS - 1)
    }

    #[inline]
    fn check(&mut self, key: u64) -> bool {
        // `slot()` masks to `NEG_CACHE_SLOTS`; checked access keeps
        // the public probe path provably panic-free.
        let hit = self.slots.get(Self::slot(key)) == Some(&(key, self.gen));
        self.hits += u64::from(hit);
        hit
    }

    #[inline]
    fn record(&mut self, key: u64) {
        if let Some(s) = self.slots.get_mut(Self::slot(key)) {
            *s = (key, self.gen);
        }
    }

    #[inline]
    fn invalidate_all(&mut self) {
        self.gen += 1;
    }
}

/// Filter-update command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterCmd {
    /// Insert the VPN into the receiver's RCF for the sender.
    Add,
    /// Delete the VPN from the receiver's RCF for the sender.
    Delete,
}

/// One best-effort filter-update message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterUpdate {
    /// Add or delete.
    pub cmd: FilterCmd,
    /// Chiplet whose TLB changed.
    pub sender: ChipletId,
    /// Address space of the entry.
    pub asid: u16,
    /// Exact or coalescing VPN being advertised.
    pub vpn: Vpn,
}

/// Folds `(asid, vpn)` into the 64-bit filter key space.
pub fn filter_key(asid: u16, vpn: Vpn) -> u64 {
    ((asid as u64) << 40) ^ vpn.0
}

/// The filter bank of one chiplet.
#[derive(Debug)]
pub struct FilterBank {
    chiplet: ChipletId,
    lcf: CuckooFilter,
    rcfs: Vec<Option<CuckooFilter>>,
    neg: NegCache,
}

impl FilterBank {
    /// Creates the bank for `chiplet` in an `n_chiplets` MCM, with cuckoo
    /// filters of `rows` rows (4-way, 9-bit fingerprints as in Table II)
    /// and a [`FILTER_KICK_BUDGET`]-swap insert pipeline.
    ///
    /// Every RCF of a bank shares one hash seed, so a single
    /// [`CuckooFilter::key_hash`] serves the whole per-peer probe fan-out;
    /// the RCFs are still independent tables (one per peer), they merely
    /// alias identically. The LCF keeps its own seed.
    ///
    /// # Panics
    ///
    /// Panics if `chiplet` is outside `n_chiplets` or `rows` is not a
    /// power of two.
    pub fn new(chiplet: ChipletId, n_chiplets: usize, rows: usize, seed: u64) -> Self {
        assert!(chiplet.index() < n_chiplets, "chiplet outside the MCM");
        let mk =
            |salt: u64| CuckooFilter::with_max_kicks(rows, 4, 9, seed ^ salt, FILTER_KICK_BUDGET);
        let rcfs = (0..n_chiplets)
            .map(|p| (p != chiplet.index()).then(|| mk(0x2CF_0000)))
            .collect();
        Self {
            chiplet,
            lcf: mk(0x10CA1),
            rcfs,
            neg: NegCache::new(),
        }
    }

    /// This bank's chiplet.
    pub fn chiplet(&self) -> ChipletId {
        self.chiplet
    }

    /// Records a local L2 TLB insertion in the LCF (exact VPN only,
    /// §V-A2: "LCFs are updated with the newly inserted entry's VPN only").
    pub fn lcf_insert(&mut self, asid: u16, vpn: Vpn) {
        self.lcf.insert(filter_key(asid, vpn));
    }

    /// Records a local L2 TLB eviction in the LCF.
    pub fn lcf_remove(&mut self, asid: u16, vpn: Vpn) {
        self.lcf.remove(filter_key(asid, vpn));
    }

    /// Whether the local TLB may hold `vpn` (subject to false positives).
    pub fn lcf_contains(&self, asid: u16, vpn: Vpn) -> bool {
        self.lcf.contains(filter_key(asid, vpn))
    }

    /// Applies a peer's filter-update message to the matching RCF.
    /// Messages from unknown peers (or from this chiplet itself) are
    /// ignored, as a best-effort receiver would.
    pub fn apply_update(&mut self, upd: FilterUpdate) {
        let Some(Some(rcf)) = self.rcfs.get_mut(upd.sender.index()) else {
            return;
        };
        let key = filter_key(upd.asid, upd.vpn);
        match upd.cmd {
            FilterCmd::Add => {
                rcf.insert(key);
            }
            FilterCmd::Delete => {
                rcf.remove(key);
            }
        }
        // Either command may change a future probe's answer (a delete can
        // un-shadow an aliasing fingerprint), so both drop the cache.
        self.neg.invalidate_all();
    }

    /// Probes every RCF with `vpn`; returns the first peer whose filter
    /// hits (the predicted sharer). One key hash serves all RCFs (they
    /// share a seed — see [`new`](Self::new)).
    pub fn rcf_hit(&self, asid: u16, vpn: Vpn) -> Option<ChipletId> {
        let key = filter_key(asid, vpn);
        let mut hash = None;
        self.rcfs.iter().enumerate().find_map(|(p, rcf)| {
            let rcf = rcf.as_ref()?;
            let h = *hash.get_or_insert_with(|| rcf.key_hash(key));
            rcf.contains_hashed(h).then_some(ChipletId(p as u8))
        })
    }

    /// [`rcf_hit`](Self::rcf_hit) through the negative-probe cache: a key
    /// whose last probe found no peer is answered without touching the
    /// RCFs until the next RCF mutation. Only negative results are
    /// cached — a positive answer depends on which peer hit first, and
    /// negatives dominate the miss stream that makes this path hot.
    pub fn rcf_hit_cached(&mut self, asid: u16, vpn: Vpn) -> Option<ChipletId> {
        let key = filter_key(asid, vpn);
        if self.neg.check(key) {
            return None;
        }
        let hit = self.rcf_hit(asid, vpn);
        if hit.is_none() {
            self.neg.record(key);
        }
        hit
    }

    /// Negative-cache hits served so far (diagnostics only; not part of
    /// `RunMetrics`).
    pub fn neg_cache_hits(&self) -> u64 {
        self.neg.hits
    }

    /// All peers whose RCF hits (for multi-candidate probing studies).
    pub fn rcf_hits(&self, asid: u16, vpn: Vpn) -> Vec<ChipletId> {
        let key = filter_key(asid, vpn);
        let mut hash = None;
        self.rcfs
            .iter()
            .enumerate()
            .filter_map(|(p, rcf)| {
                let rcf = rcf.as_ref()?;
                let h = *hash.get_or_insert_with(|| rcf.key_hash(key));
                rcf.contains_hashed(h).then_some(ChipletId(p as u8))
            })
            .collect()
    }

    /// Resets every filter — the TLB-shootdown path of §VI ("we reset all
    /// LCFs and RCFs such that any residue values do not lead to
    /// mispredictions").
    pub fn shootdown(&mut self) {
        self.lcf.clear();
        for rcf in self.rcfs.iter_mut().flatten() {
            rcf.clear();
        }
        self.neg.invalidate_all();
    }

    /// Total fingerprints across LCF and RCFs (occupancy diagnostics).
    pub fn total_entries(&self) -> usize {
        self.lcf.len() + self.rcfs.iter().flatten().map(Filter::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(c: u8) -> FilterBank {
        FilterBank::new(ChipletId(c), 4, 256, 99)
    }

    #[test]
    fn fig12_walkthrough_filters() {
        // GPU0 translates 0xA1; 0xA1/0xA2 are a coalescing group shared
        // with GPU1. Step 1-2: GPU0 updates its LCF and GPU1's RCF0 with
        // both VPNs.
        let mut gpu0 = bank(0);
        let mut gpu1 = bank(1);
        gpu0.lcf_insert(0, Vpn(0xA1));
        for vpn in [0xA1u64, 0xA2] {
            gpu1.apply_update(FilterUpdate {
                cmd: FilterCmd::Add,
                sender: ChipletId(0),
                asid: 0,
                vpn: Vpn(vpn),
            });
        }
        // Step 3: GPU1 misses 0xA2 in TLB/LCF but hits RCF0.
        assert!(!gpu1.lcf_contains(0, Vpn(0xA2)));
        assert_eq!(gpu1.rcf_hit(0, Vpn(0xA2)), Some(ChipletId(0)));
        // Step 5: GPU0 finds the coalescing VPN 0xA1 in its LCF.
        assert!(gpu0.lcf_contains(0, Vpn(0xA1)));
    }

    #[test]
    fn eviction_removes_advertisements() {
        let mut gpu1 = bank(1);
        let add = |vpn| FilterUpdate {
            cmd: FilterCmd::Add,
            sender: ChipletId(0),
            asid: 0,
            vpn: Vpn(vpn),
        };
        let del = |vpn| FilterUpdate {
            cmd: FilterCmd::Delete,
            sender: ChipletId(0),
            asid: 0,
            vpn: Vpn(vpn),
        };
        gpu1.apply_update(add(0xA1));
        gpu1.apply_update(add(0xA2));
        gpu1.apply_update(del(0xA1));
        gpu1.apply_update(del(0xA2));
        assert_eq!(gpu1.rcf_hit(0, Vpn(0xA1)), None);
        assert_eq!(gpu1.rcf_hit(0, Vpn(0xA2)), None);
    }

    #[test]
    fn rcf_identifies_the_right_peer() {
        let mut gpu0 = bank(0);
        for (peer, vpn) in [(1u8, 0x10u64), (2, 0x20), (3, 0x30)] {
            gpu0.apply_update(FilterUpdate {
                cmd: FilterCmd::Add,
                sender: ChipletId(peer),
                asid: 0,
                vpn: Vpn(vpn),
            });
        }
        assert_eq!(gpu0.rcf_hit(0, Vpn(0x20)), Some(ChipletId(2)));
        assert_eq!(gpu0.rcf_hits(0, Vpn(0x30)), vec![ChipletId(3)]);
    }

    #[test]
    fn self_updates_are_ignored() {
        let mut gpu0 = bank(0);
        gpu0.apply_update(FilterUpdate {
            cmd: FilterCmd::Add,
            sender: ChipletId(0),
            asid: 0,
            vpn: Vpn(0x99),
        });
        assert_eq!(gpu0.rcf_hit(0, Vpn(0x99)), None);
    }

    #[test]
    fn shootdown_clears_everything() {
        let mut gpu0 = bank(0);
        gpu0.lcf_insert(0, Vpn(1));
        gpu0.apply_update(FilterUpdate {
            cmd: FilterCmd::Add,
            sender: ChipletId(1),
            asid: 0,
            vpn: Vpn(2),
        });
        assert!(gpu0.total_entries() > 0);
        gpu0.shootdown();
        assert_eq!(gpu0.total_entries(), 0);
        assert!(!gpu0.lcf_contains(0, Vpn(1)));
    }

    #[test]
    fn asid_separates_key_space() {
        let mut gpu0 = bank(0);
        gpu0.lcf_insert(7, Vpn(0xA1));
        assert!(gpu0.lcf_contains(7, Vpn(0xA1)));
        assert!(!gpu0.lcf_contains(8, Vpn(0xA1)));
    }

    #[test]
    fn neg_cache_serves_repeated_misses() {
        let mut gpu0 = bank(0);
        assert_eq!(gpu0.rcf_hit_cached(0, Vpn(0x77)), None);
        assert_eq!(gpu0.neg_cache_hits(), 0, "first probe is a cache miss");
        assert_eq!(gpu0.rcf_hit_cached(0, Vpn(0x77)), None);
        assert_eq!(gpu0.rcf_hit_cached(0, Vpn(0x77)), None);
        assert_eq!(gpu0.neg_cache_hits(), 2, "repeats served from the cache");
    }

    #[test]
    fn neg_cache_invalidated_by_insert() {
        let mut gpu0 = bank(0);
        assert_eq!(gpu0.rcf_hit_cached(0, Vpn(0x42)), None);
        gpu0.apply_update(FilterUpdate {
            cmd: FilterCmd::Add,
            sender: ChipletId(1),
            asid: 0,
            vpn: Vpn(0x42),
        });
        // The cached negative must not mask the freshly advertised VPN.
        assert_eq!(gpu0.rcf_hit_cached(0, Vpn(0x42)), Some(ChipletId(1)));
    }

    #[test]
    fn neg_cache_invalidated_by_remove() {
        let mut gpu0 = bank(0);
        let upd = |cmd| FilterUpdate {
            cmd,
            sender: ChipletId(2),
            asid: 0,
            vpn: Vpn(0x55),
        };
        gpu0.apply_update(upd(FilterCmd::Add));
        assert_eq!(gpu0.rcf_hit_cached(0, Vpn(0x55)), Some(ChipletId(2)));
        gpu0.apply_update(upd(FilterCmd::Delete));
        assert_eq!(gpu0.rcf_hit_cached(0, Vpn(0x55)), None);
        let hits_before = gpu0.neg_cache_hits();
        assert_eq!(gpu0.rcf_hit_cached(0, Vpn(0x55)), None);
        assert_eq!(gpu0.neg_cache_hits(), hits_before + 1);
    }

    #[test]
    fn neg_cache_invalidated_by_shootdown() {
        let mut gpu0 = bank(0);
        assert_eq!(gpu0.rcf_hit_cached(0, Vpn(0x99)), None);
        gpu0.rcf_hit_cached(0, Vpn(0x99));
        let hits = gpu0.neg_cache_hits();
        assert!(hits > 0);
        gpu0.shootdown();
        // Post-shootdown the first probe must consult the RCFs again.
        assert_eq!(gpu0.rcf_hit_cached(0, Vpn(0x99)), None);
        assert_eq!(gpu0.neg_cache_hits(), hits, "cache was flushed");
    }

    #[test]
    fn cached_and_uncached_probes_agree() {
        let mut gpu0 = bank(0);
        for vpn in 0..64u64 {
            gpu0.apply_update(FilterUpdate {
                cmd: FilterCmd::Add,
                sender: ChipletId((vpn % 3) as u8 + 1),
                asid: 0,
                vpn: Vpn(vpn * 17),
            });
        }
        for vpn in 0..128u64 {
            let fresh = gpu0.rcf_hit(0, Vpn(vpn * 13));
            assert_eq!(gpu0.rcf_hit_cached(0, Vpn(vpn * 13)), fresh);
            assert_eq!(gpu0.rcf_hit_cached(0, Vpn(vpn * 13)), fresh);
        }
    }

    #[test]
    fn update_message_is_43_bits_plus_asid() {
        // 1 (cmd) + 3 (sender) + 40 (VPN) = 44 bits on the wire; the paper
        // rounds to 43 by folding the command into packet framing.
        const { assert!(FILTER_UPDATE_BITS <= 48) };
    }
}
