//! F-Barre per-chiplet filter banks (§V-A).
//!
//! Each chiplet carries one *local coalescing-group filter* (LCF) shadowing
//! its own L2 TLB contents, and one *remote coalescing-group filter*
//! (RCF<sub>p</sub>) per peer `p` shadowing the coalescing VPNs reachable
//! through `p`'s TLB. On an L2 TLB miss the chiplet probes TLB, LCF and all
//! RCFs in parallel; an RCF hit names the peer to ask, an LCF hit (on a
//! *coalescing* VPN) means the translation is calculable locally.
//!
//! Filters are updated by best-effort 43-bit messages; the timing (and the
//! drops that produce Fig 17a's ~75% remote hit rate) belongs to the system
//! model — this module owns the state and the key scheme.

use barre_filters::{CuckooFilter, Filter};
use barre_mem::{ChipletId, Vpn};

/// Bits of one filter-update message (§V-A2: 1-bit command, 3-bit sender
/// chiplet id, 40-bit coalescing VPN).
pub const FILTER_UPDATE_BITS: u64 = 44;

/// Filter-update command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterCmd {
    /// Insert the VPN into the receiver's RCF for the sender.
    Add,
    /// Delete the VPN from the receiver's RCF for the sender.
    Delete,
}

/// One best-effort filter-update message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterUpdate {
    /// Add or delete.
    pub cmd: FilterCmd,
    /// Chiplet whose TLB changed.
    pub sender: ChipletId,
    /// Address space of the entry.
    pub asid: u16,
    /// Exact or coalescing VPN being advertised.
    pub vpn: Vpn,
}

/// Folds `(asid, vpn)` into the 64-bit filter key space.
pub fn filter_key(asid: u16, vpn: Vpn) -> u64 {
    ((asid as u64) << 40) ^ vpn.0
}

/// The filter bank of one chiplet.
#[derive(Debug)]
pub struct FilterBank {
    chiplet: ChipletId,
    lcf: CuckooFilter,
    rcfs: Vec<Option<CuckooFilter>>,
}

impl FilterBank {
    /// Creates the bank for `chiplet` in an `n_chiplets` MCM, with cuckoo
    /// filters of `rows` rows (4-way, 9-bit fingerprints as in Table II).
    ///
    /// # Panics
    ///
    /// Panics if `chiplet` is outside `n_chiplets` or `rows` is not a
    /// power of two.
    pub fn new(chiplet: ChipletId, n_chiplets: usize, rows: usize, seed: u64) -> Self {
        assert!(chiplet.index() < n_chiplets, "chiplet outside the MCM");
        let mk = |salt: u64| CuckooFilter::new(rows, 4, 9, seed ^ salt);
        let rcfs = (0..n_chiplets)
            .map(|p| (p != chiplet.index()).then(|| mk(0x1000 + p as u64)))
            .collect();
        Self {
            chiplet,
            lcf: mk(0x10CA1),
            rcfs,
        }
    }

    /// This bank's chiplet.
    pub fn chiplet(&self) -> ChipletId {
        self.chiplet
    }

    /// Records a local L2 TLB insertion in the LCF (exact VPN only,
    /// §V-A2: "LCFs are updated with the newly inserted entry's VPN only").
    pub fn lcf_insert(&mut self, asid: u16, vpn: Vpn) {
        self.lcf.insert(filter_key(asid, vpn));
    }

    /// Records a local L2 TLB eviction in the LCF.
    pub fn lcf_remove(&mut self, asid: u16, vpn: Vpn) {
        self.lcf.remove(filter_key(asid, vpn));
    }

    /// Whether the local TLB may hold `vpn` (subject to false positives).
    pub fn lcf_contains(&self, asid: u16, vpn: Vpn) -> bool {
        self.lcf.contains(filter_key(asid, vpn))
    }

    /// Applies a peer's filter-update message to the matching RCF.
    /// Messages from unknown peers (or from this chiplet itself) are
    /// ignored, as a best-effort receiver would.
    pub fn apply_update(&mut self, upd: FilterUpdate) {
        let Some(Some(rcf)) = self.rcfs.get_mut(upd.sender.index()) else {
            return;
        };
        let key = filter_key(upd.asid, upd.vpn);
        match upd.cmd {
            FilterCmd::Add => {
                rcf.insert(key);
            }
            FilterCmd::Delete => {
                rcf.remove(key);
            }
        }
    }

    /// Probes every RCF with `vpn`; returns the first peer whose filter
    /// hits (the predicted sharer).
    pub fn rcf_hit(&self, asid: u16, vpn: Vpn) -> Option<ChipletId> {
        let key = filter_key(asid, vpn);
        self.rcfs.iter().enumerate().find_map(|(p, rcf)| {
            rcf.as_ref()
                .filter(|f| f.contains(key))
                .map(|_| ChipletId(p as u8))
        })
    }

    /// All peers whose RCF hits (for multi-candidate probing studies).
    pub fn rcf_hits(&self, asid: u16, vpn: Vpn) -> Vec<ChipletId> {
        let key = filter_key(asid, vpn);
        self.rcfs
            .iter()
            .enumerate()
            .filter_map(|(p, rcf)| {
                rcf.as_ref()
                    .filter(|f| f.contains(key))
                    .map(|_| ChipletId(p as u8))
            })
            .collect()
    }

    /// Resets every filter — the TLB-shootdown path of §VI ("we reset all
    /// LCFs and RCFs such that any residue values do not lead to
    /// mispredictions").
    pub fn shootdown(&mut self) {
        self.lcf.clear();
        for rcf in self.rcfs.iter_mut().flatten() {
            rcf.clear();
        }
    }

    /// Total fingerprints across LCF and RCFs (occupancy diagnostics).
    pub fn total_entries(&self) -> usize {
        self.lcf.len() + self.rcfs.iter().flatten().map(Filter::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(c: u8) -> FilterBank {
        FilterBank::new(ChipletId(c), 4, 256, 99)
    }

    #[test]
    fn fig12_walkthrough_filters() {
        // GPU0 translates 0xA1; 0xA1/0xA2 are a coalescing group shared
        // with GPU1. Step 1-2: GPU0 updates its LCF and GPU1's RCF0 with
        // both VPNs.
        let mut gpu0 = bank(0);
        let mut gpu1 = bank(1);
        gpu0.lcf_insert(0, Vpn(0xA1));
        for vpn in [0xA1u64, 0xA2] {
            gpu1.apply_update(FilterUpdate {
                cmd: FilterCmd::Add,
                sender: ChipletId(0),
                asid: 0,
                vpn: Vpn(vpn),
            });
        }
        // Step 3: GPU1 misses 0xA2 in TLB/LCF but hits RCF0.
        assert!(!gpu1.lcf_contains(0, Vpn(0xA2)));
        assert_eq!(gpu1.rcf_hit(0, Vpn(0xA2)), Some(ChipletId(0)));
        // Step 5: GPU0 finds the coalescing VPN 0xA1 in its LCF.
        assert!(gpu0.lcf_contains(0, Vpn(0xA1)));
    }

    #[test]
    fn eviction_removes_advertisements() {
        let mut gpu1 = bank(1);
        let add = |vpn| FilterUpdate {
            cmd: FilterCmd::Add,
            sender: ChipletId(0),
            asid: 0,
            vpn: Vpn(vpn),
        };
        let del = |vpn| FilterUpdate {
            cmd: FilterCmd::Delete,
            sender: ChipletId(0),
            asid: 0,
            vpn: Vpn(vpn),
        };
        gpu1.apply_update(add(0xA1));
        gpu1.apply_update(add(0xA2));
        gpu1.apply_update(del(0xA1));
        gpu1.apply_update(del(0xA2));
        assert_eq!(gpu1.rcf_hit(0, Vpn(0xA1)), None);
        assert_eq!(gpu1.rcf_hit(0, Vpn(0xA2)), None);
    }

    #[test]
    fn rcf_identifies_the_right_peer() {
        let mut gpu0 = bank(0);
        for (peer, vpn) in [(1u8, 0x10u64), (2, 0x20), (3, 0x30)] {
            gpu0.apply_update(FilterUpdate {
                cmd: FilterCmd::Add,
                sender: ChipletId(peer),
                asid: 0,
                vpn: Vpn(vpn),
            });
        }
        assert_eq!(gpu0.rcf_hit(0, Vpn(0x20)), Some(ChipletId(2)));
        assert_eq!(gpu0.rcf_hits(0, Vpn(0x30)), vec![ChipletId(3)]);
    }

    #[test]
    fn self_updates_are_ignored() {
        let mut gpu0 = bank(0);
        gpu0.apply_update(FilterUpdate {
            cmd: FilterCmd::Add,
            sender: ChipletId(0),
            asid: 0,
            vpn: Vpn(0x99),
        });
        assert_eq!(gpu0.rcf_hit(0, Vpn(0x99)), None);
    }

    #[test]
    fn shootdown_clears_everything() {
        let mut gpu0 = bank(0);
        gpu0.lcf_insert(0, Vpn(1));
        gpu0.apply_update(FilterUpdate {
            cmd: FilterCmd::Add,
            sender: ChipletId(1),
            asid: 0,
            vpn: Vpn(2),
        });
        assert!(gpu0.total_entries() > 0);
        gpu0.shootdown();
        assert_eq!(gpu0.total_entries(), 0);
        assert!(!gpu0.lcf_contains(0, Vpn(1)));
    }

    #[test]
    fn asid_separates_key_space() {
        let mut gpu0 = bank(0);
        gpu0.lcf_insert(7, Vpn(0xA1));
        assert!(gpu0.lcf_contains(7, Vpn(0xA1)));
        assert!(!gpu0.lcf_contains(8, Vpn(0xA1)));
    }

    #[test]
    fn update_message_is_43_bits_plus_asid() {
        // 1 (cmd) + 3 (sender) + 40 (VPN) = 44 bits on the wire; the paper
        // rounds to 43 by folding the command into packet framing.
        const { assert!(FILTER_UPDATE_BITS <= 48) };
    }
}
