//! The Barre driver modification (§IV-G).
//!
//! The page-mapping policy (LASP & friends, in `barre-mapping`) decides
//! *which chiplet* each virtual page belongs to; this module decides *which
//! local frame*, enforcing the Barre invariant: pages at the same chunk
//! offset across sharer chiplets get the **same local PFN** ("we iterate
//! the available PFNs of one GPU chiplet and check if the PFN is also
//! available in the sharer chiplets").
//!
//! Under group expansion ([`CoalMode::Expanded`]) the search prefers runs
//! of up to `max_merged` *contiguous* commonly-free frames, falling back to
//! shorter runs and finally to single frames; when not even a single
//! common frame exists, pages are mapped individually with the driver's
//! default allocator ("we fall back to the driver's default memory
//! allocation") and carry no coalescing bits.

use barre_mem::virt_alloc::VpnRange;
use barre_mem::{ChipletId, FrameAllocator, GlobalPfn, LocalPfn, Pte, PteFlags, Vpn};

use crate::encoding::{CoalInfo, CoalMode};
use crate::group::{GpuMap, PecEntry};

/// A page-mapping policy's plan for one data object: `gran` consecutive
/// VPNs per chiplet, chunks distributed over `cycle` (repeating).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingPlan {
    /// Address space of the data.
    pub asid: u16,
    /// The data's VPN range.
    pub range: VpnRange,
    /// Consecutive VPNs per chiplet (`interlv_gran`).
    pub gran: u64,
    /// Chiplet order; chunk `c` goes to `cycle[c % cycle.len()]`.
    pub cycle: Vec<ChipletId>,
}

impl MappingPlan {
    /// Convenience constructor for an interleaved plan.
    ///
    /// # Panics
    ///
    /// Panics if `gran` is zero or `cycle` is empty/duplicated.
    pub fn interleaved(range: VpnRange, gran: u64, cycle: &[ChipletId]) -> Self {
        assert!(gran > 0, "interleave granularity must be nonzero");
        let plan = Self {
            asid: 0,
            range,
            gran,
            cycle: cycle.to_vec(),
        };
        plan.gpu_map(); // validates the cycle
        plan
    }

    /// Same plan under a different address space.
    pub fn with_asid(mut self, asid: u16) -> Self {
        self.asid = asid;
        self
    }

    /// Number of `gran`-page chunks (the last may be partial).
    pub fn chunks(&self) -> u64 {
        self.range.pages.div_ceil(self.gran)
    }

    /// Number of pages in chunk `c`.
    pub fn chunk_len(&self, c: u64) -> u64 {
        let start = c * self.gran;
        self.range.pages.saturating_sub(start).min(self.gran)
    }

    /// The chiplet a VPN is planned onto.
    pub fn chiplet_of(&self, vpn: Vpn) -> Option<ChipletId> {
        let idx = self.range.index_of(vpn)?;
        let chunk = idx / self.gran;
        Some(self.cycle[(chunk % self.cycle.len() as u64) as usize])
    }

    /// The VPN-order → chiplet map shared by all groups of this data.
    pub fn gpu_map(&self) -> GpuMap {
        GpuMap::new(self.cycle.clone())
    }

    /// The PEC-buffer record describing this data.
    pub fn pec_entry(&self) -> PecEntry {
        PecEntry::new(self.asid, self.range, self.gran, self.gpu_map())
    }
}

/// Outcome of allocating one data object.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Page table entries, one per page of the data, in VPN order.
    pub ptes: Vec<(Vpn, Pte)>,
    /// The PEC-buffer record to register.
    pub pec: PecEntry,
    /// Allocation statistics.
    pub stats: AllocStats,
}

/// Counters describing how a data object was mapped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Pages mapped under the coalescing invariant.
    pub coalesced_pages: u64,
    /// Pages that fell back to default (uncoalesced) allocation.
    pub fallback_pages: u64,
    /// Coalescing groups created.
    pub groups: u64,
    /// Groups whose run length exceeded one page (expansion hits).
    pub merged_groups: u64,
}

/// Errors from [`BarreAllocator::allocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// A chiplet ran out of frames entirely.
    OutOfMemory(ChipletId),
    /// A VPN was inside a plan's range but the plan could not name its
    /// chiplet — an internally inconsistent [`MappingPlan`].
    VpnOutsidePlan {
        /// Address space of the offending plan.
        asid: u16,
        /// The page that could not be placed.
        vpn: Vpn,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory(c) => write!(f, "chiplet {c} is out of physical frames"),
            AllocError::VpnOutsidePlan { asid, vpn } => {
                write!(f, "plan for asid {asid} cannot place vpn {vpn:?}")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// The Barre-modified GPU memory allocator.
#[derive(Debug, Clone)]
pub struct BarreAllocator {
    mode: CoalMode,
    max_merged: u8,
}

impl BarreAllocator {
    /// Creates an allocator for the platform's PTE layout; `max_merged` is
    /// the group-expansion limit (1 = no merging; the paper evaluates 2
    /// and 4, and only `CoalMode::Expanded` can express more than 1).
    ///
    /// # Panics
    ///
    /// Panics if `max_merged` is 0, exceeds 4, or exceeds 1 outside the
    /// expanded layout.
    pub fn new(mode: CoalMode, max_merged: u8) -> Self {
        assert!((1..=4).contains(&max_merged), "max_merged must be 1..=4");
        assert!(
            max_merged == 1 || mode == CoalMode::Expanded,
            "group expansion requires the expanded PTE layout"
        );
        Self { mode, max_merged }
    }

    /// The PTE layout in force.
    pub fn mode(&self) -> CoalMode {
        self.mode
    }

    /// The expansion limit.
    pub fn max_merged(&self) -> u8 {
        self.max_merged
    }

    /// Maps one data object onto `frames` (one allocator per chiplet)
    /// according to `plan`, enforcing the same-local-PFN invariant
    /// wherever commonly-free frames exist.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfMemory`] when even the fallback path
    /// cannot find a frame on the planned chiplet.
    pub fn allocate(
        &mut self,
        plan: &MappingPlan,
        frames: &mut [FrameAllocator],
    ) -> Result<Allocation, AllocError> {
        let mut ptes: Vec<(Vpn, Pte)> = Vec::with_capacity(plan.range.pages as usize);
        let mut stats = AllocStats::default();
        let sharers = plan.cycle.len() as u64;
        let rounds = plan.chunks().div_ceil(sharers);
        // Search hint: commonly-free frames tend to advance monotonically
        // within one allocation call.
        let mut hint = LocalPfn(0);

        for round in 0..rounds {
            let first_chunk = round * sharers;
            let chunks_in_round = (plan.chunks() - first_chunk).min(sharers);
            // Positions 0..gran, grouped into runs of up to max_merged.
            let max_pos = (0..chunks_in_round)
                .map(|k| plan.chunk_len(first_chunk + k))
                .max()
                .unwrap_or(0);
            let mut pos = 0u64;
            while pos < max_pos {
                // Chunks that have a page at this position.
                let holders: Vec<u64> = (0..chunks_in_round)
                    .filter(|&k| plan.chunk_len(first_chunk + k) > pos)
                    .collect();
                if holders.len() < 2 {
                    // Nothing to coalesce: default allocation.
                    for &k in &holders {
                        let chiplet = plan.cycle[k as usize];
                        self.fallback_page(plan, frames, first_chunk + k, pos, chiplet, &mut ptes)?;
                        stats.fallback_pages += 1;
                    }
                    pos += 1;
                    continue;
                }
                // Desired run length: bounded by the merge limit, the
                // chunk tail, and every holder still having those pages.
                let mut run = (self.max_merged as u64).min(plan.gran - pos);
                run = run.min(
                    holders
                        .iter()
                        .map(|&k| plan.chunk_len(first_chunk + k) - pos)
                        .min()
                        .unwrap_or(1),
                );
                // Find the longest commonly-free run, preferring `run`.
                let mut found: Option<(LocalPfn, u64)> = None;
                let mut len = run;
                while len >= 1 {
                    if let Some(l) =
                        common_free_run(frames, &plan.cycle, &holders, hint, len as usize)
                    {
                        found = Some((l, len));
                        break;
                    }
                    len -= 1;
                }
                match found {
                    Some((base, len)) => {
                        hint = base;
                        for &k in &holders {
                            let chiplet = plan.cycle[k as usize];
                            for j in 0..len {
                                let claimed =
                                    frames[chiplet.index()].alloc_specific(LocalPfn(base.0 + j));
                                debug_assert!(claimed, "common-free run raced");
                            }
                        }
                        let info_bitmap: u8 = holders
                            .iter()
                            .map(|&k| plan.cycle[k as usize])
                            .filter(|c| c.0 < 8)
                            .fold(0u8, |b, c| b | (1 << c.0));
                        for &k in &holders {
                            let chiplet = plan.cycle[k as usize];
                            for j in 0..len {
                                let vpn =
                                    plan.range.vpn_at((first_chunk + k) * plan.gran + pos + j);
                                let pfn = GlobalPfn::compose(chiplet, LocalPfn(base.0 + j));
                                let info = self.make_info(
                                    info_bitmap,
                                    holders.len() as u8,
                                    k as u8,
                                    j as u8,
                                    len as u8,
                                );
                                let pte = Pte::new(pfn, PteFlags::default())
                                    .with_coal_bits(info.map_or(0, |i| i.encode()));
                                ptes.push((vpn, pte));
                                stats.coalesced_pages += 1;
                            }
                        }
                        stats.groups += 1;
                        if len > 1 {
                            stats.merged_groups += 1;
                        }
                        pos += len;
                    }
                    None => {
                        // No commonly-free frame at all: fall back for
                        // this position on every holder.
                        for &k in &holders {
                            let chiplet = plan.cycle[k as usize];
                            self.fallback_page(
                                plan,
                                frames,
                                first_chunk + k,
                                pos,
                                chiplet,
                                &mut ptes,
                            )?;
                            stats.fallback_pages += 1;
                        }
                        pos += 1;
                    }
                }
            }
        }
        ptes.sort_by_key(|(v, _)| v.0);
        Ok(Allocation {
            ptes,
            pec: plan.pec_entry(),
            stats,
        })
    }

    fn make_info(
        &self,
        bitmap: u8,
        holders: u8,
        inter: u8,
        intra: u8,
        run_len: u8,
    ) -> Option<CoalInfo> {
        let info = match self.mode {
            CoalMode::Base => CoalInfo::Base {
                bitmap,
                inter_order: inter.min(7),
            },
            CoalMode::Expanded => CoalInfo::Expanded {
                bitmap: bitmap & 0xF,
                inter_order: inter.min(3),
                intra_order: intra,
                merged: run_len - 1,
            },
            CoalMode::Wide => CoalInfo::Wide {
                count: holders,
                inter_order: inter,
            },
        };
        // Out-of-field positions (e.g. a 5th chiplet under the expanded
        // layout) cannot be encoded; such pages stay uncoalesced.
        match self.mode {
            CoalMode::Base if inter > 7 => return None,
            CoalMode::Expanded if inter > 3 => return None,
            CoalMode::Wide if inter > 15 => return None,
            _ => {}
        }
        info.is_coalesced().then_some(info)
    }

    /// On-demand variant (§VI "Support for on-demand paging &
    /// migration"): maps only the coalescing group containing `vpn` —
    /// "pages will be fetched/evicted in the unit of coalescing groups".
    /// With `group_fetch == false` only the faulting page is mapped
    /// (conventional demand paging).
    ///
    /// Returns the newly created PTEs (empty if `vpn` is outside the
    /// plan). Previously mapped members must not be re-passed; the caller
    /// (the fault handler) checks the page table first.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfMemory`] when no frame can be found.
    pub fn allocate_on_fault(
        &mut self,
        plan: &MappingPlan,
        vpn: Vpn,
        frames: &mut [FrameAllocator],
        group_fetch: bool,
    ) -> Result<Vec<(Vpn, Pte)>, AllocError> {
        let Some(idx) = plan.range.index_of(vpn) else {
            return Ok(Vec::new());
        };
        let sharers = plan.cycle.len() as u64;
        let chunk = idx / plan.gran;
        let pos = idx % plan.gran;
        let round = chunk / sharers;
        let first_chunk = round * sharers;
        let chunks_in_round = (plan.chunks() - first_chunk).min(sharers);
        let holders: Vec<u64> = (0..chunks_in_round)
            .filter(|&k| plan.chunk_len(first_chunk + k) > pos)
            .collect();
        // Group fetch maps one page per holder; the single-page path
        // maps exactly one.
        let mut ptes = Vec::with_capacity(holders.len().max(1));
        if group_fetch && holders.len() >= 2 {
            if let Some(base) = common_free_run(frames, &plan.cycle, &holders, LocalPfn(0), 1) {
                let info_bitmap: u8 = holders
                    .iter()
                    .map(|&k| plan.cycle[k as usize])
                    .filter(|c| c.0 < 8)
                    .fold(0u8, |b, c| b | (1 << c.0));
                for &k in &holders {
                    let chiplet = plan.cycle[k as usize];
                    let claimed = frames[chiplet.index()].alloc_specific(base);
                    debug_assert!(claimed, "common-free frame raced");
                    let member = plan.range.vpn_at((first_chunk + k) * plan.gran + pos);
                    let info = self.make_info(info_bitmap, holders.len() as u8, k as u8, 0, 1);
                    let pte = Pte::new(GlobalPfn::compose(chiplet, base), PteFlags::default())
                        .with_coal_bits(info.map_or(0, |i| i.encode()));
                    ptes.push((member, pte));
                }
                return Ok(ptes);
            }
        }
        // Single-page fault (or no common frame available).
        let chiplet = plan.chiplet_of(vpn).ok_or(AllocError::VpnOutsidePlan {
            asid: plan.asid,
            vpn,
        })?;
        let local = frames[chiplet.index()]
            .alloc_any()
            .ok_or(AllocError::OutOfMemory(chiplet))?;
        ptes.push((
            vpn,
            Pte::new(GlobalPfn::compose(chiplet, local), PteFlags::default()),
        ));
        Ok(ptes)
    }

    fn fallback_page(
        &self,
        plan: &MappingPlan,
        frames: &mut [FrameAllocator],
        chunk: u64,
        pos: u64,
        chiplet: ChipletId,
        ptes: &mut Vec<(Vpn, Pte)>,
    ) -> Result<(), AllocError> {
        let local = frames[chiplet.index()]
            .alloc_any()
            .ok_or(AllocError::OutOfMemory(chiplet))?;
        let vpn = plan.range.vpn_at(chunk * plan.gran + pos);
        let pfn = GlobalPfn::compose(chiplet, local);
        ptes.push((vpn, Pte::new(pfn, PteFlags::default())));
        Ok(())
    }
}

/// Lowest local frame `L ≥ hint` (wrapping to 0 if needed) such that
/// `L..L+len` is free on **every** holder chiplet.
fn common_free_run(
    frames: &[FrameAllocator],
    cycle: &[ChipletId],
    holders: &[u64],
    hint: LocalPfn,
    len: usize,
) -> Option<LocalPfn> {
    let cap = holders
        .iter()
        .map(|&k| frames[cycle[k as usize].index()].capacity())
        .min()?;
    let check = |l: u64| -> bool {
        holders.iter().all(|&k| {
            let a = &frames[cycle[k as usize].index()];
            (0..len as u64).all(|j| a.is_free(LocalPfn(l + j)))
        })
    };
    let start = (hint.0 as usize).min(cap);
    for l in start..cap.saturating_sub(len - 1) {
        if check(l as u64) {
            return Some(LocalPfn(l as u64));
        }
    }
    for l in 0..start.min(cap.saturating_sub(len - 1)) {
        if check(l as u64) {
            return Some(LocalPfn(l as u64));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use barre_sim::Rng;

    fn chiplets(n: u8) -> Vec<ChipletId> {
        (0..n).map(ChipletId).collect()
    }

    fn fresh_frames(n: usize, cap: usize) -> Vec<FrameAllocator> {
        (0..n).map(|_| FrameAllocator::new(cap)).collect()
    }

    fn pte_of(alloc: &Allocation, vpn: u64) -> Pte {
        alloc
            .ptes
            .iter()
            .find(|(v, _)| v.0 == vpn)
            .map(|(_, p)| *p)
            .unwrap_or_else(|| panic!("vpn {vpn:#x} not mapped"))
    }

    #[test]
    fn example1_fig7a_mapping() {
        // Data 1: 12 pages from 0x1, gran 3, four chiplets. Paper's
        // Example 1: VPNs 0x1..0x3 on GPU0 and 0x4..0x6 on GPU1 land on
        // identical local frames.
        let mut frames = fresh_frames(4, 1024);
        let mut d = BarreAllocator::new(CoalMode::Base, 1);
        let plan = MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x1),
                pages: 12,
            },
            3,
            &chiplets(4),
        );
        let out = d.allocate(&plan, &mut frames).unwrap();
        assert_eq!(out.ptes.len(), 12);
        assert_eq!(out.stats.coalesced_pages, 12);
        assert_eq!(out.stats.groups, 3);
        for g in 0..3u64 {
            let locals: Vec<LocalPfn> = (0..4u64)
                .map(|k| pte_of(&out, 0x1 + k * 3 + g).pfn().local())
                .collect();
            assert!(
                locals.windows(2).all(|w| w[0] == w[1]),
                "group {g}: {locals:?}"
            );
            let chips: Vec<ChipletId> = (0..4u64)
                .map(|k| pte_of(&out, 0x1 + k * 3 + g).pfn().chiplet())
                .collect();
            assert_eq!(chips, chiplets(4));
        }
        // Distinct groups use distinct local frames.
        let l0 = pte_of(&out, 0x1).pfn().local();
        let l1 = pte_of(&out, 0x2).pfn().local();
        assert_ne!(l0, l1);
    }

    #[test]
    fn coal_bits_encode_group_structure() {
        let mut frames = fresh_frames(4, 256);
        let mut d = BarreAllocator::new(CoalMode::Base, 1);
        let plan = MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x1),
                pages: 12,
            },
            3,
            &chiplets(4),
        );
        let out = d.allocate(&plan, &mut frames).unwrap();
        let info = CoalInfo::decode(pte_of(&out, 0x4).coal_bits(), CoalMode::Base).unwrap();
        assert_eq!(info.bitmap(), 0b1111);
        assert_eq!(info.inter_order(), 1);
        let info = CoalInfo::decode(pte_of(&out, 0xB).coal_bits(), CoalMode::Base).unwrap();
        assert_eq!(info.inter_order(), 3);
    }

    #[test]
    fn expansion_merges_contiguous_groups() {
        let mut frames = fresh_frames(4, 256);
        let mut d = BarreAllocator::new(CoalMode::Expanded, 2);
        let plan = MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x1),
                pages: 12,
            },
            3,
            &chiplets(4),
        );
        let out = d.allocate(&plan, &mut frames).unwrap();
        // Fresh memory: positions 0,1 merge into one run, position 2 is a
        // second (single) group => 2 groups total, 1 merged.
        assert_eq!(out.stats.groups, 2);
        assert_eq!(out.stats.merged_groups, 1);
        // Contiguity on every chiplet: local(0x2) == local(0x1)+1.
        let a = pte_of(&out, 0x1).pfn();
        let b = pte_of(&out, 0x2).pfn();
        assert_eq!(b.local().0, a.local().0 + 1);
        let info = CoalInfo::decode(pte_of(&out, 0x2).coal_bits(), CoalMode::Expanded).unwrap();
        assert_eq!(info.intra_order(), 1);
        assert_eq!(info.merged_groups(), 2);
    }

    #[test]
    fn fragmentation_fig14_partial_runs() {
        // Fig 14: a 3-page-per-chiplet data under fragmentation maps as a
        // two-page merged group plus a one-page group, where super pages
        // would fail entirely.
        let mut frames = fresh_frames(2, 64);
        // Make contiguous triples unavailable on chiplet 1: occupy every
        // third frame.
        for f in (2..64).step_by(3) {
            frames[1].alloc_specific(LocalPfn(f));
        }
        let mut d = BarreAllocator::new(CoalMode::Expanded, 4);
        let plan = MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x10),
                pages: 6,
            },
            3,
            &chiplets(2),
        );
        let out = d.allocate(&plan, &mut frames).unwrap();
        assert_eq!(out.stats.coalesced_pages, 6);
        assert_eq!(out.stats.fallback_pages, 0);
        assert_eq!(out.stats.groups, 2);
        assert_eq!(out.stats.merged_groups, 1);
    }

    #[test]
    fn fallback_when_no_common_frame() {
        // Chiplet 0 free only in [0,8); chiplet 1 free only in [8,16):
        // no common frame exists, every page falls back.
        let mut frames = fresh_frames(2, 16);
        for f in 8..16 {
            frames[0].alloc_specific(LocalPfn(f));
        }
        for f in 0..8 {
            frames[1].alloc_specific(LocalPfn(f));
        }
        let mut d = BarreAllocator::new(CoalMode::Base, 1);
        let plan = MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x1),
                pages: 4,
            },
            2,
            &chiplets(2),
        );
        let out = d.allocate(&plan, &mut frames).unwrap();
        assert_eq!(out.stats.fallback_pages, 4);
        assert_eq!(out.stats.coalesced_pages, 0);
        for (_, pte) in &out.ptes {
            assert_eq!(pte.coal_bits(), 0);
        }
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut frames = fresh_frames(2, 2);
        let mut d = BarreAllocator::new(CoalMode::Base, 1);
        let plan = MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x1),
                pages: 12,
            },
            3,
            &chiplets(2),
        );
        let err = d.allocate(&plan, &mut frames).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory(_)));
    }

    #[test]
    fn tail_chunk_forms_smaller_groups() {
        // 7 pages, gran 2, 2 chiplets: chunks [2,2,2,1]; round 1 has
        // chunks of length 2 and 1 — position 1 of round 1 has a single
        // holder and must not coalesce.
        let mut frames = fresh_frames(2, 64);
        let mut d = BarreAllocator::new(CoalMode::Base, 1);
        let plan = MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x1),
                pages: 7,
            },
            2,
            &chiplets(2),
        );
        let out = d.allocate(&plan, &mut frames).unwrap();
        assert_eq!(out.ptes.len(), 7);
        // Round 1 position 1 exists only in chunk 2 (VPN 0x6): alone at
        // its position, so uncoalesced; the tail chunk's single page
        // (VPN 0x7, position 0) still pairs with chunk 2's VPN 0x5.
        assert_eq!(pte_of(&out, 0x6).coal_bits(), 0);
        assert_ne!(pte_of(&out, 0x7).coal_bits(), 0);
        assert_eq!(
            pte_of(&out, 0x7).pfn().local(),
            pte_of(&out, 0x5).pfn().local()
        );
        assert_eq!(out.stats.fallback_pages, 1);
        assert_eq!(out.stats.coalesced_pages, 6);
    }

    #[test]
    fn multi_round_groups_use_fresh_frames() {
        // 2 chiplets, gran 1, 8 pages => 4 rounds; every round's group
        // gets its own common local frame.
        let mut frames = fresh_frames(2, 64);
        let mut d = BarreAllocator::new(CoalMode::Base, 1);
        let plan = MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x1),
                pages: 8,
            },
            1,
            &chiplets(2),
        );
        let out = d.allocate(&plan, &mut frames).unwrap();
        assert_eq!(out.stats.groups, 4);
        let locals: std::collections::BTreeSet<u64> =
            out.ptes.iter().map(|(_, p)| p.pfn().local().0).collect();
        assert_eq!(locals.len(), 4);
    }

    #[test]
    fn fragmented_memory_still_coalesces_mostly() {
        let mut frames = fresh_frames(4, 4096);
        let mut rng = Rng::new(42);
        for f in frames.iter_mut() {
            f.fragment(&mut rng, 0.5);
        }
        let mut d = BarreAllocator::new(CoalMode::Base, 1);
        let plan = MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x1),
                pages: 64,
            },
            4,
            &chiplets(4),
        );
        let out = d.allocate(&plan, &mut frames).unwrap();
        // (1-0.5)^4 ≈ 6% of frames are commonly free; 4096 frames leave
        // plenty, so everything should still coalesce.
        assert_eq!(out.stats.coalesced_pages, 64);
    }

    #[test]
    fn plan_accessors() {
        let plan = MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x10),
                pages: 10,
            },
            3,
            &chiplets(2),
        );
        assert_eq!(plan.chunks(), 4);
        assert_eq!(plan.chunk_len(3), 1);
        assert_eq!(plan.chiplet_of(Vpn(0x10)), Some(ChipletId(0)));
        assert_eq!(plan.chiplet_of(Vpn(0x13)), Some(ChipletId(1)));
        assert_eq!(plan.chiplet_of(Vpn(0x16)), Some(ChipletId(0)));
        assert_eq!(plan.chiplet_of(Vpn(0x30)), None);
        let pec = plan.pec_entry();
        assert_eq!(pec.gran, 3);
    }
}

#[cfg(test)]
mod wide_tests {
    use super::*;
    use crate::encoding::{CoalInfo, CoalMode};
    use crate::pec::PecLogic;
    use barre_mem::PageTable;

    /// The §VI wide layout: a 16-chiplet MCM coalesces full-width groups
    /// and the PFN calculator agrees with the page table for every
    /// member.
    #[test]
    fn wide_sixteen_chiplet_groups() {
        let n = 16u8;
        let mut frames: Vec<FrameAllocator> =
            (0..n as usize).map(|_| FrameAllocator::new(1024)).collect();
        let mut d = BarreAllocator::new(CoalMode::Wide, 1);
        let cycle: Vec<ChipletId> = (0..n).map(ChipletId).collect();
        let plan = MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x100),
                pages: 64,
            },
            2,
            &cycle,
        );
        let out = d.allocate(&plan, &mut frames).unwrap();
        assert_eq!(out.stats.coalesced_pages, 64);
        assert_eq!(out.stats.groups, 4); // 2 rounds × 2 positions
        let mut pt = PageTable::new(0);
        for (v, p) in &out.ptes {
            pt.map(*v, *p);
        }
        let logic = PecLogic::new(CoalMode::Wide);
        let (v0, p0) = out.ptes[0];
        let info = CoalInfo::decode(p0.coal_bits(), CoalMode::Wide).unwrap();
        assert_eq!(info.participants(), 16);
        let members = logic.members(v0, &info, &out.pec);
        assert_eq!(members.len(), 16);
        for m in &members {
            let calc = logic
                .calc_pfn(v0, p0.pfn(), &info, &out.pec, m.vpn)
                .expect("member calculable");
            assert_eq!(calc, pt.lookup(m.vpn).unwrap().pfn(), "{}", m.vpn);
        }
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::encoding::{CoalInfo, CoalMode};

    fn plan4() -> MappingPlan {
        MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x1),
                pages: 12,
            },
            3,
            &[ChipletId(0), ChipletId(1), ChipletId(2), ChipletId(3)],
        )
    }

    #[test]
    fn group_fetch_maps_whole_group() {
        let mut frames: Vec<FrameAllocator> = (0..4).map(|_| FrameAllocator::new(64)).collect();
        let mut d = BarreAllocator::new(CoalMode::Base, 1);
        let ptes = d
            .allocate_on_fault(&plan4(), Vpn(0x4), &mut frames, true)
            .unwrap();
        // Fault on 0x4 pulls in its whole group {0x1, 0x4, 0x7, 0xA}.
        let vpns: Vec<u64> = ptes.iter().map(|(v, _)| v.0).collect();
        assert_eq!(vpns, vec![0x1, 0x4, 0x7, 0xA]);
        // Same local frame, distinct chiplets, coalescing bits set.
        let locals: Vec<_> = ptes.iter().map(|(_, p)| p.pfn().local()).collect();
        assert!(locals.windows(2).all(|w| w[0] == w[1]));
        for (i, (_, p)) in ptes.iter().enumerate() {
            let info = CoalInfo::decode(p.coal_bits(), CoalMode::Base).unwrap();
            assert_eq!(info.inter_order() as usize, i);
        }
    }

    #[test]
    fn single_page_fault_maps_one() {
        let mut frames: Vec<FrameAllocator> = (0..4).map(|_| FrameAllocator::new(64)).collect();
        let mut d = BarreAllocator::new(CoalMode::Base, 1);
        let ptes = d
            .allocate_on_fault(&plan4(), Vpn(0x4), &mut frames, false)
            .unwrap();
        assert_eq!(ptes.len(), 1);
        assert_eq!(ptes[0].0, Vpn(0x4));
        assert_eq!(ptes[0].1.coal_bits(), 0);
        assert_eq!(ptes[0].1.pfn().chiplet(), ChipletId(1));
    }

    #[test]
    fn fault_outside_plan_is_empty() {
        let mut frames: Vec<FrameAllocator> = (0..4).map(|_| FrameAllocator::new(64)).collect();
        let mut d = BarreAllocator::new(CoalMode::Base, 1);
        let ptes = d
            .allocate_on_fault(&plan4(), Vpn(0x99), &mut frames, true)
            .unwrap();
        assert!(ptes.is_empty());
    }

    #[test]
    fn fault_group_fetch_falls_back_without_common_frames() {
        let mut frames: Vec<FrameAllocator> = (0..2).map(|_| FrameAllocator::new(8)).collect();
        for f in 0..8 {
            if f % 2 == 0 {
                frames[0].alloc_specific(LocalPfn(f));
            } else {
                frames[1].alloc_specific(LocalPfn(f));
            }
        }
        let plan = MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x1),
                pages: 4,
            },
            2,
            &[ChipletId(0), ChipletId(1)],
        );
        let mut d = BarreAllocator::new(CoalMode::Base, 1);
        let ptes = d
            .allocate_on_fault(&plan, Vpn(0x1), &mut frames, true)
            .unwrap();
        assert_eq!(ptes.len(), 1, "no common frame -> single page");
        assert_eq!(ptes[0].1.coal_bits(), 0);
    }
}
