//! Hardware overhead model (§VII-K).
//!
//! The paper quotes, per GPU chiplet: four cuckoo filters (3 RCFs + 1 LCF,
//! each 256×4×9 bits) plus a 5-entry, 118-bit PEC buffer = **4.57 KiB**,
//! which CACTI places at **4.21–4.22%** of a GPU L2 TLB's area. The raw
//! storage model below reproduces the bit counts exactly; the area ratio is
//! reported against a configurable L2 TLB storage estimate (CACTI-level
//! layout effects are out of scope — see DESIGN.md's substitution table).

use crate::group::PEC_ENTRY_BITS;

/// Storage accounting for one chiplet's F-Barre hardware plus the
/// IOMMU-side PEC state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Bits of one cuckoo filter.
    pub filter_bits: u64,
    /// Number of filters per chiplet (1 LCF + peers RCFs).
    pub filters_per_chiplet: u64,
    /// Bits of the PEC buffer.
    pub pec_buffer_bits: u64,
    /// Total per-chiplet bytes (filters + PEC buffer).
    pub per_chiplet_bytes: f64,
    /// Estimated L2 TLB storage bits used as the area denominator.
    pub l2_tlb_bits: u64,
    /// `per_chiplet` storage as a fraction of the L2 TLB storage.
    pub ratio_to_l2_tlb: f64,
    /// Extra bits one coalesced ATS response carries
    /// (11-bit PTE info + 118-bit PEC entry, §V-A3).
    pub ats_extra_bits: u64,
}

/// Parameters of the overhead model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadParams {
    /// Cuckoo filter rows.
    pub filter_rows: u64,
    /// Cuckoo filter ways.
    pub filter_ways: u64,
    /// Fingerprint bits.
    pub fingerprint_bits: u64,
    /// Chiplets in the MCM (determines RCF count).
    pub n_chiplets: u64,
    /// PEC buffer entries.
    pub pec_entries: u64,
    /// L2 TLB entries (Table II: 512).
    pub l2_tlb_entries: u64,
    /// Estimated bits per L2 TLB entry including tag, PFN, attributes and
    /// the F-Barre payload. CACTI area per bit for the highly-ported,
    /// 16-way TLB macro is far larger than for the filter SRAM; this
    /// entry size folds that density difference into an effective storage
    /// figure calibrated so the default configuration reproduces the
    /// paper's 4.21% ratio.
    pub l2_tlb_effective_bits_per_entry: u64,
}

impl Default for OverheadParams {
    fn default() -> Self {
        Self {
            filter_rows: 256,
            filter_ways: 4,
            fingerprint_bits: 9,
            n_chiplets: 4,
            pec_entries: 5,
            l2_tlb_entries: 512,
            l2_tlb_effective_bits_per_entry: 1736,
        }
    }
}

impl OverheadReport {
    /// Computes the report for `p`.
    pub fn compute(p: OverheadParams) -> Self {
        let filter_bits = p.filter_rows * p.filter_ways * p.fingerprint_bits;
        let filters_per_chiplet = p.n_chiplets; // 1 LCF + (n-1) RCFs
        let pec_buffer_bits = p.pec_entries * PEC_ENTRY_BITS as u64;
        let total_bits = filter_bits * filters_per_chiplet + pec_buffer_bits;
        let per_chiplet_bytes = total_bits as f64 / 8.0;
        let l2_tlb_bits = p.l2_tlb_entries * p.l2_tlb_effective_bits_per_entry;
        Self {
            filter_bits,
            filters_per_chiplet,
            pec_buffer_bits,
            per_chiplet_bytes,
            l2_tlb_bits,
            ratio_to_l2_tlb: total_bits as f64 / l2_tlb_bits as f64,
            ats_extra_bits: 11 + PEC_ENTRY_BITS as u64,
        }
    }

    /// The report for the paper's Table II configuration.
    pub fn paper_default() -> Self {
        Self::compute(OverheadParams::default())
    }

    /// Per-chiplet storage in KiB.
    pub fn per_chiplet_kib(&self) -> f64 {
        self.per_chiplet_bytes / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bit_counts() {
        let r = OverheadReport::paper_default();
        // One filter: 256 × 4 × 9 = 9216 bits.
        assert_eq!(r.filter_bits, 9216);
        // PEC buffer: 5 × 118 = 590 bits.
        assert_eq!(r.pec_buffer_bits, 590);
        // 4 filters + PEC = 37454 bits = 4.57 KiB.
        assert!(
            (r.per_chiplet_kib() - 4.57).abs() < 0.01,
            "{}",
            r.per_chiplet_kib()
        );
    }

    #[test]
    fn paper_area_ratio() {
        let r = OverheadReport::paper_default();
        assert!(
            (r.ratio_to_l2_tlb - 0.0421).abs() < 0.0005,
            "ratio {}",
            r.ratio_to_l2_tlb
        );
    }

    #[test]
    fn ats_extra_payload() {
        let r = OverheadReport::paper_default();
        assert_eq!(r.ats_extra_bits, 129);
    }

    #[test]
    fn scaling_with_chiplets() {
        let p = OverheadParams {
            n_chiplets: 8,
            ..OverheadParams::default()
        };
        let r = OverheadReport::compute(p);
        assert_eq!(r.filters_per_chiplet, 8);
        assert!(r.per_chiplet_kib() > OverheadReport::paper_default().per_chiplet_kib());
    }
}
