//! PTE coalescing-information encodings.
//!
//! Both layouts fit the 11 ignored bits (52–62) of an x86-64 PTE. Which
//! layout is in force is a system-wide design choice (§V-B limits the
//! expanded format to 4 chiplets precisely because there is no spare mode
//! bit):
//!
//! * **Base** (Fig 8): `coal_bitmap[7:0]` + `inter-GPU_coal_order[2:0]` —
//!   up to 8 chiplets, one page per chiplet per group.
//! * **Expanded** (Fig 13): `coal_bitmap[3:0]`, `inter-GPU_coal_order[1:0]`,
//!   `intra-GPU_coal_order[2:0]`, `#_merged_coal_groups[1:0]` — up to 4
//!   chiplets and 4 merged groups; the intra/inter orders are the (x, y)
//!   coordinates of the page within the merged group.

use barre_mem::ChipletId;

/// Which PTE layout the platform uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoalMode {
    /// Fig 8: 8-chiplet bitmap, no merging.
    #[default]
    Base,
    /// Fig 13: 4-chiplet bitmap with contiguity-aware group expansion.
    Expanded,
    /// The §VI *Scalability* adjustment for MCM-GPUs beyond 8 chiplets:
    /// the bitmap field holds a binary participant count ("consecutive
    /// GPU chiplets in a coalescing group") instead of a bit map, freeing
    /// enough bits for a 4-bit `inter-GPU_coal_order`. Supports 16
    /// chiplets; individual-page exclusion is unavailable.
    Wide,
}

/// Decoded coalescing information of one PTE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoalInfo {
    /// Base-format group membership.
    Base {
        /// Bit `i` set ⇔ chiplet `i` participates in the group.
        bitmap: u8,
        /// This page's position in the group (indexes the GPU map).
        inter_order: u8,
    },
    /// Expanded-format membership in a (possibly merged) group.
    Expanded {
        /// Bit `i` set ⇔ chiplet `i` (0–3) participates.
        bitmap: u8,
        /// Chunk position in the group (0–3).
        inter_order: u8,
        /// Page position within the merged run on its chiplet (0–7).
        intra_order: u8,
        /// `#_merged_coal_groups − 1` (0–3): run length minus one.
        merged: u8,
    },
    /// Wide-format (≥8-chiplet) membership: the first `count` group
    /// positions all participate.
    Wide {
        /// Number of participating consecutive group positions (0–16).
        count: u8,
        /// Chunk position in the group (0–15).
        inter_order: u8,
    },
}

impl CoalInfo {
    /// The participation bitmap.
    ///
    /// # Panics
    ///
    /// Panics for the wide format, which stores a participant count rather
    /// than a bitmap; use [`participates_position`](Self::participates_position).
    pub fn bitmap(&self) -> u8 {
        match *self {
            CoalInfo::Base { bitmap, .. } | CoalInfo::Expanded { bitmap, .. } => bitmap,
            // barre:allow(P001) documented-panic API (see # Panics above)
            CoalInfo::Wide { .. } => panic!("wide format has no bitmap"),
        }
    }

    /// This page's `inter-GPU_coal_order`.
    pub fn inter_order(&self) -> u8 {
        match *self {
            CoalInfo::Base { inter_order, .. }
            | CoalInfo::Expanded { inter_order, .. }
            | CoalInfo::Wide { inter_order, .. } => inter_order,
        }
    }

    /// This page's `intra-GPU_coal_order` (0 outside the expanded format).
    pub fn intra_order(&self) -> u8 {
        match *self {
            CoalInfo::Expanded { intra_order, .. } => intra_order,
            _ => 0,
        }
    }

    /// Number of merged base groups (1 outside the expanded format).
    pub fn merged_groups(&self) -> u8 {
        match *self {
            CoalInfo::Expanded { merged, .. } => merged + 1,
            _ => 1,
        }
    }

    /// Number of participating chiplets.
    pub fn participants(&self) -> u32 {
        match *self {
            CoalInfo::Base { bitmap, .. } | CoalInfo::Expanded { bitmap, .. } => {
                bitmap.count_ones()
            }
            CoalInfo::Wide { count, .. } => count as u32,
        }
    }

    /// Whether the group member at position `pos` (on `chiplet`)
    /// participates. Base/expanded formats key on the chiplet id bit;
    /// the wide format keys on the position.
    pub fn participates_position(&self, pos: u8, chiplet: ChipletId) -> bool {
        match *self {
            CoalInfo::Base { bitmap, .. } | CoalInfo::Expanded { bitmap, .. } => {
                chiplet.0 < 8 && bitmap & (1u8 << chiplet.0) != 0
            }
            CoalInfo::Wide { count, .. } => pos < count,
        }
    }

    /// Whether `chiplet` participates in the group (wide format cannot
    /// track per-chiplet exclusion and reports `true`).
    pub fn participates(&self, chiplet: ChipletId) -> bool {
        match *self {
            CoalInfo::Base { bitmap, .. } | CoalInfo::Expanded { bitmap, .. } => {
                chiplet.0 < 8 && bitmap & (1u8 << chiplet.0) != 0
            }
            CoalInfo::Wide { .. } => true,
        }
    }

    /// Returns a copy with `chiplet` removed from the group — the
    /// migration path of §VI/§VII-G: "we reset coal_bitmap to exclude the
    /// page from coalescing". The wide format cannot exclude a single
    /// chiplet, so the whole group is conservatively de-coalesced.
    pub fn exclude(&self, chiplet: ChipletId) -> CoalInfo {
        let clear = if chiplet.0 < 8 {
            !(1u8 << chiplet.0)
        } else {
            0xFF
        };
        match *self {
            CoalInfo::Base {
                bitmap,
                inter_order,
            } => CoalInfo::Base {
                bitmap: bitmap & clear,
                inter_order,
            },
            CoalInfo::Expanded {
                bitmap,
                inter_order,
                intra_order,
                merged,
            } => CoalInfo::Expanded {
                bitmap: bitmap & clear,
                inter_order,
                intra_order,
                merged,
            },
            CoalInfo::Wide { inter_order, .. } => CoalInfo::Wide {
                count: 1,
                inter_order,
            },
        }
    }

    /// Whether calculation-based translation is usable (at least two
    /// participants — the PEC logic's trigger condition in §IV-F).
    pub fn is_coalesced(&self) -> bool {
        self.participants() > 1
    }

    /// Packs into the 11-bit PTE field.
    ///
    /// # Panics
    ///
    /// Panics if any component exceeds its field width (base:
    /// `inter_order ≤ 7`; expanded: `bitmap ≤ 0xF`, `inter_order ≤ 3`,
    /// `intra_order ≤ 7`, `merged ≤ 3`, and `intra_order ≤ merged`).
    pub fn encode(&self) -> u16 {
        match *self {
            CoalInfo::Base {
                bitmap,
                inter_order,
            } => {
                assert!(inter_order < 8, "inter_order exceeds 3 bits");
                (bitmap as u16) | ((inter_order as u16) << 8)
            }
            CoalInfo::Expanded {
                bitmap,
                inter_order,
                intra_order,
                merged,
            } => {
                assert!(bitmap < 16, "expanded bitmap exceeds 4 bits");
                assert!(inter_order < 4, "inter_order exceeds 2 bits");
                assert!(intra_order < 8, "intra_order exceeds 3 bits");
                assert!(merged < 4, "merged exceeds 2 bits");
                assert!(
                    intra_order <= merged,
                    "intra_order {intra_order} outside merged run of {} pages",
                    merged + 1
                );
                (bitmap as u16)
                    | ((inter_order as u16) << 4)
                    | ((intra_order as u16) << 6)
                    | ((merged as u16) << 9)
            }
            CoalInfo::Wide { count, inter_order } => {
                assert!(count <= 16, "count exceeds 16 chiplets");
                assert!(inter_order < 16, "inter_order exceeds 4 bits");
                (count as u16) | ((inter_order as u16) << 5)
            }
        }
    }

    /// Unpacks the 11-bit PTE field under `mode`; `None` when the bits do
    /// not denote a coalesced page (fewer than two participants —
    /// including the all-zero field of an ordinary mapping).
    pub fn decode(bits: u16, mode: CoalMode) -> Option<CoalInfo> {
        let info = match mode {
            CoalMode::Base => CoalInfo::Base {
                bitmap: (bits & 0xFF) as u8,
                inter_order: ((bits >> 8) & 0x7) as u8,
            },
            CoalMode::Expanded => {
                let intra_order = ((bits >> 6) & 0x7) as u8;
                let merged = ((bits >> 9) & 0x3) as u8;
                if intra_order > merged {
                    // Invalid state: a page cannot sit outside its own
                    // merged run.
                    return None;
                }
                CoalInfo::Expanded {
                    bitmap: (bits & 0xF) as u8,
                    inter_order: ((bits >> 4) & 0x3) as u8,
                    intra_order,
                    merged,
                }
            }
            CoalMode::Wide => {
                let count = (bits & 0x1F) as u8;
                if count > 16 {
                    // Not a valid wide encoding (the field is 5 bits but
                    // only 0..=16 are defined).
                    return None;
                }
                CoalInfo::Wide {
                    count,
                    inter_order: ((bits >> 5) & 0xF) as u8,
                }
            }
        };
        info.is_coalesced().then_some(info)
    }

    /// Bits of PTE-side coalescing metadata shipped in an ATS response
    /// (§V-A3 quotes "the 10-bit coalescing group information"; with the
    /// participation bitmap this implementation rounds to the full field).
    pub const ATS_INFO_BITS: usize = 11;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example2_gray_group_encoding() {
        // Paper Example 2: gray group involves the first three GPUs
        // (coal_bitmap 11100000 reading GPU0 as the MSB in the figure;
        // bit-per-GPU-id here: GPUs 0,1,2 => 0b0000_0111), and 0xB6 is
        // the 2nd VPN (inter order 2).
        let info = CoalInfo::Base {
            bitmap: 0b0000_0111,
            inter_order: 2,
        };
        let bits = info.encode();
        assert_eq!(CoalInfo::decode(bits, CoalMode::Base), Some(info));
        assert_eq!(info.participants(), 3);
        assert!(info.participates(ChipletId(1)));
        assert!(!info.participates(ChipletId(3)));
    }

    #[test]
    fn zero_bits_decode_to_none() {
        assert_eq!(CoalInfo::decode(0, CoalMode::Base), None);
        assert_eq!(CoalInfo::decode(0, CoalMode::Expanded), None);
    }

    #[test]
    fn single_participant_is_not_coalesced() {
        let solo = CoalInfo::Base {
            bitmap: 0b0100,
            inter_order: 0,
        };
        assert!(!solo.is_coalesced());
        assert_eq!(CoalInfo::decode(solo.encode(), CoalMode::Base), None);
    }

    #[test]
    fn base_roundtrip_all_fields() {
        for bitmap in [0b11u8, 0b1010, 0xFF, 0b1100_0001] {
            for inter in 0..8u8 {
                let i = CoalInfo::Base {
                    bitmap,
                    inter_order: inter,
                };
                assert_eq!(CoalInfo::decode(i.encode(), CoalMode::Base), Some(i));
            }
        }
    }

    #[test]
    fn expanded_roundtrip_all_fields() {
        for bitmap in [0b11u8, 0b1111, 0b1010] {
            for inter in 0..4u8 {
                for merged in 0..4u8 {
                    for intra in 0..=merged {
                        let i = CoalInfo::Expanded {
                            bitmap,
                            inter_order: inter,
                            intra_order: intra,
                            merged,
                        };
                        assert_eq!(CoalInfo::decode(i.encode(), CoalMode::Expanded), Some(i));
                    }
                }
            }
        }
    }

    #[test]
    fn encodings_fit_eleven_bits() {
        let base = CoalInfo::Base {
            bitmap: 0xFF,
            inter_order: 7,
        };
        assert!(base.encode() < (1 << 11));
        let exp = CoalInfo::Expanded {
            bitmap: 0xF,
            inter_order: 3,
            intra_order: 3,
            merged: 3,
        };
        assert!(exp.encode() < (1 << 11));
    }

    #[test]
    fn exclude_clears_participation() {
        let info = CoalInfo::Base {
            bitmap: 0b1111,
            inter_order: 1,
        };
        let after = info.exclude(ChipletId(2));
        assert_eq!(after.bitmap(), 0b1011);
        assert!(after.is_coalesced());
        // Excluding down to one sharer disables coalescing.
        let solo = after.exclude(ChipletId(0)).exclude(ChipletId(1));
        assert!(!solo.is_coalesced());
    }

    #[test]
    #[should_panic(expected = "outside merged run")]
    fn expanded_intra_bounded_by_merged() {
        CoalInfo::Expanded {
            bitmap: 0b11,
            inter_order: 0,
            intra_order: 2,
            merged: 1,
        }
        .encode();
    }

    #[test]
    fn wide_roundtrip_and_semantics() {
        for count in 2..=16u8 {
            for inter in 0..count.min(16) {
                let i = CoalInfo::Wide {
                    count,
                    inter_order: inter,
                };
                assert_eq!(CoalInfo::decode(i.encode(), CoalMode::Wide), Some(i));
                assert!(i.encode() < (1 << 11));
            }
        }
        let i = CoalInfo::Wide {
            count: 16,
            inter_order: 15,
        };
        assert_eq!(i.participants(), 16);
        assert!(i.participates_position(15, ChipletId(15)));
        assert!(!i.participates_position(16, ChipletId(0)));
        // Exclusion de-coalesces the whole wide group.
        assert!(!i.exclude(ChipletId(3)).is_coalesced());
        // count <= 1 is not coalesced.
        assert_eq!(
            CoalInfo::decode(
                CoalInfo::Wide {
                    count: 1,
                    inter_order: 0
                }
                .encode(),
                CoalMode::Wide
            ),
            None
        );
    }

    #[test]
    fn accessors_cover_both_variants() {
        let b = CoalInfo::Base {
            bitmap: 0b11,
            inter_order: 1,
        };
        assert_eq!(b.intra_order(), 0);
        assert_eq!(b.merged_groups(), 1);
        let e = CoalInfo::Expanded {
            bitmap: 0b1111,
            inter_order: 2,
            intra_order: 1,
            merged: 3,
        };
        assert_eq!(e.inter_order(), 2);
        assert_eq!(e.intra_order(), 1);
        assert_eq!(e.merged_groups(), 4);
    }
}
