//! The Barre Chord mechanism — the paper's primary contribution.
//!
//! Barre Chord translates virtual addresses in units of *coalescing
//! groups*: pages of one data object that the driver deliberately maps to
//! the **same local physical frame number** on every participating GPU
//! chiplet. Once any one page of a group is translated, every other page's
//! physical frame is *calculable* — same local frame, different chiplet
//! base — so its page table walk (Barre, §IV) and even its IOMMU access
//! (F-Barre, §V) can be skipped.
//!
//! This crate contains the complete mechanism, independent of any
//! simulator timing:
//!
//! * [`group`] — coalescing-group vocabulary: [`GpuMap`],
//!   [`PecEntry`] (the 118-bit PEC-buffer record), group membership.
//! * [`encoding`] — the two PTE bit-layouts that fit the 11 ignored bits:
//!   the base format of Fig 8 (`coal_bitmap` + `inter-GPU_coal_order`) and
//!   the expanded format of Fig 13 (adds `intra-GPU_coal_order` and
//!   `#_merged_coal_groups`).
//! * [`pec`] — the PEC buffer (5 entries, smallest-data eviction) and PEC
//!   logic: coalescing-VPN enumeration, membership tests, and the PFN
//!   calculator implementing §IV-F and the §V-B equations.
//! * [`driver`] — the driver modification of §IV-G: search for commonly
//!   free local PFNs across sharer chiplets (with contiguity-aware
//!   run search for group expansion) and PTE/PEC construction, falling
//!   back to default allocation when no common frame exists.
//! * [`fbarre`] — per-chiplet LCF/RCF filter banks and the 43-bit
//!   best-effort filter-update protocol for intra-MCM translation.
//! * [`overhead`] — the hardware cost model of §VII-K.
//!
//! # Example: the paper's Fig 7a mapping
//!
//! ```
//! use barre_core::driver::{BarreAllocator, MappingPlan};
//! use barre_core::encoding::CoalMode;
//! use barre_mem::{ChipletId, FrameAllocator, Vpn};
//! use barre_mem::virt_alloc::VpnRange;
//!
//! // Four chiplets with 1 KiB-page memories.
//! let mut frames: Vec<FrameAllocator> = (0..4).map(|_| FrameAllocator::new(1024)).collect();
//! let mut driver = BarreAllocator::new(CoalMode::Base, 1);
//!
//! // Data 1: 12 pages, LASP interleaves 3 consecutive VPNs per chiplet.
//! let range = VpnRange { start: Vpn(0x1), pages: 12 };
//! let plan = MappingPlan::interleaved(range, 3, &[ChipletId(0), ChipletId(1), ChipletId(2), ChipletId(3)]);
//! let out = driver.allocate(&plan, &mut frames).unwrap();
//!
//! // VPNs 0x1 and 0x4 are in the same coalescing group: same local PFN.
//! let p1 = out.ptes.iter().find(|(v, _)| *v == Vpn(0x1)).unwrap().1;
//! let p4 = out.ptes.iter().find(|(v, _)| *v == Vpn(0x4)).unwrap().1;
//! assert_eq!(p1.pfn().local(), p4.pfn().local());
//! assert_eq!(p1.pfn().chiplet(), ChipletId(0));
//! assert_eq!(p4.pfn().chiplet(), ChipletId(1));
//! ```

/// The Barre driver modification: mapping plans to coalesced PTEs (§IV-G).
pub mod driver;
/// PTE coalescing-information encodings (`CoalInfo`, `CoalMode`).
pub mod encoding;
/// F-Barre per-chiplet filter banks (§V-A).
pub mod fbarre;
/// Coalescing-group vocabulary shared by driver, PEC, and filters.
pub mod group;
/// Hardware storage-overhead model (§VII-K).
pub mod overhead;
/// Page Entry Coalescing (PEC) logic and buffer (§IV-E, §IV-F).
pub mod pec;

pub use driver::{BarreAllocator, MappingPlan};
pub use encoding::{CoalInfo, CoalMode};
pub use group::{GpuMap, GroupMember, PecEntry};
pub use pec::{PecBuffer, PecLogic};
