//! Coalescing-group vocabulary.
//!
//! A *coalescing group* is a batch of pages of one data object mapped to
//! the same local PFN across 2..=N chiplets (§IV-A). The group itself is
//! never materialized in hardware; it is implied by three pieces of state:
//!
//! 1. the PTE's coalescing bits ([`crate::encoding::CoalInfo`]),
//! 2. the data object's PEC-buffer record ([`PecEntry`]), and
//! 3. the MCM-wide invariant that group members share a local PFN.

use barre_mem::virt_alloc::VpnRange;
use barre_mem::{ChipletId, Vpn};

/// VPN-order → chiplet mapping of one data object (§IV-E, Fig 10).
///
/// Entry `k` is the chiplet that holds the `k`-th VPN of every coalescing
/// group of the data. LASP guarantees all groups of a data object share one
/// order, so a single map per data suffices. At most 8 chiplets (3-bit
/// entries × 8 in the 24-bit PEC field); the wide scalability mode
/// (`CoalMode::Wide`, §VI) raises the limit to 16 at the cost of a larger
/// PEC record, which [`encode`](Self::encode) does not cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuMap {
    order: Vec<ChipletId>,
}

impl GpuMap {
    /// Builds a map from a chiplet order.
    ///
    /// # Panics
    ///
    /// Panics if the order is empty, longer than 8, or contains duplicate
    /// chiplets (group members must live on distinct chiplets).
    pub fn new(order: Vec<ChipletId>) -> Self {
        assert!(!order.is_empty(), "GPU map cannot be empty");
        assert!(order.len() <= 16, "GPU map supports at most 16 chiplets");
        for (i, a) in order.iter().enumerate() {
            assert!(!order[..i].contains(a), "duplicate chiplet {a} in GPU map");
        }
        Self { order }
    }

    /// The linear order `GPU0, GPU1, …, GPUn-1`.
    pub fn linear(n: usize) -> Self {
        Self::new((0..n).map(|i| ChipletId(i as u8)).collect())
    }

    /// Number of sharer chiplets.
    pub fn sharers(&self) -> usize {
        self.order.len()
    }

    /// Chiplet at group position `k` (the `inter-GPU_coal_order`).
    pub fn chiplet_at(&self, k: usize) -> Option<ChipletId> {
        self.order.get(k).copied()
    }

    /// Group position of `chiplet`, if it participates.
    pub fn position_of(&self, chiplet: ChipletId) -> Option<usize> {
        self.order.iter().position(|&c| c == chiplet)
    }

    /// The raw order.
    pub fn order(&self) -> &[ChipletId] {
        &self.order
    }

    /// Packs the map into the PEC-buffer wire format (3 bits per entry,
    /// up to 24 bits).
    ///
    /// # Panics
    ///
    /// Panics when the map exceeds the 8-chiplet wire format (wide-mode
    /// maps are modeled but have no 118-bit PEC encoding).
    pub fn encode(&self) -> u32 {
        assert!(
            self.order.len() <= 8 && self.order.iter().all(|c| c.0 < 8),
            "wire format covers at most 8 chiplets"
        );
        let mut w = 0u32;
        for (k, c) in self.order.iter().enumerate() {
            w |= (c.0 as u32 & 0x7) << (3 * k);
        }
        w
    }

    /// Unpacks a wire-format map of `sharers` entries.
    pub fn decode(w: u32, sharers: usize) -> Self {
        let order = (0..sharers)
            .map(|k| ChipletId(((w >> (3 * k)) & 0x7) as u8))
            .collect();
        Self::new(order)
    }
}

/// One PEC-buffer record: the per-data information needed to enumerate
/// coalescing VPNs and calculate PFNs (§IV-E).
///
/// The hardware encoding is 118 bits: 40 (start VPN) + 40 (end VPN) +
/// 14 (`interlv_gran`) + 24 (GPU map).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PecEntry {
    /// Address-space the data belongs to.
    pub asid: u16,
    /// The data object's VPN range.
    pub range: VpnRange,
    /// Pages per chiplet per round (`interlv_gran`).
    pub gran: u64,
    /// VPN-order → chiplet mapping.
    pub gpu_map: GpuMap,
}

/// Size of one PEC buffer entry in bits (§V-A3).
pub const PEC_ENTRY_BITS: usize = 40 + 40 + 14 + 24;

impl PecEntry {
    /// Creates a record.
    ///
    /// # Panics
    ///
    /// Panics if `gran` is zero.
    pub fn new(asid: u16, range: VpnRange, gran: u64, gpu_map: GpuMap) -> Self {
        assert!(gran > 0, "interleave granularity must be nonzero");
        Self {
            asid,
            range,
            gran,
            gpu_map,
        }
    }

    /// Whether `vpn` lies inside this data object.
    pub fn contains(&self, asid: u16, vpn: Vpn) -> bool {
        self.asid == asid && self.range.contains(vpn)
    }

    /// Data size in pages (the eviction priority of the PEC buffer).
    pub fn pages(&self) -> u64 {
        self.range.pages
    }

    /// Decomposes a VPN of this data into
    /// `(round, inter_position, intra_position)`:
    ///
    /// * `intra` — offset within the chiplet's `gran`-page chunk,
    /// * `inter` — chunk position within the round (the group position),
    /// * `round` — which repetition of the full chiplet cycle.
    pub fn coords(&self, vpn: Vpn) -> Option<GroupCoords> {
        let idx = self.range.index_of(vpn)?;
        let chunk = idx / self.gran;
        let intra = idx % self.gran;
        let sharers = self.gpu_map.sharers() as u64;
        Some(GroupCoords {
            round: chunk / sharers,
            inter: (chunk % sharers) as u8,
            intra,
        })
    }

    /// Inverse of [`coords`](Self::coords): the VPN at the given position.
    /// Returns `None` if that position is past the end of the data.
    pub fn vpn_at(&self, c: GroupCoords) -> Option<Vpn> {
        let sharers = self.gpu_map.sharers() as u64;
        let idx = (c.round * sharers + c.inter as u64) * self.gran + c.intra;
        (idx < self.range.pages).then(|| self.range.vpn_at(idx))
    }

    /// Chiplet holding the VPN at group position `inter`.
    pub fn chiplet_of(&self, inter: u8) -> Option<ChipletId> {
        self.gpu_map.chiplet_at(inter as usize)
    }
}

/// Position of a page within its data's interleaving structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCoords {
    /// Repetition of the full chiplet cycle.
    pub round: u64,
    /// Chunk position within the round = `inter-GPU_coal_order`.
    pub inter: u8,
    /// Offset within the chiplet's chunk; its low bits are the
    /// `intra-GPU_coal_order` under group expansion.
    pub intra: u64,
}

/// A resolved member of a coalescing group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupMember {
    /// The member's VPN.
    pub vpn: Vpn,
    /// Its `inter-GPU_coal_order`.
    pub inter_order: u8,
    /// Its `intra-GPU_coal_order` (0 in base Barre).
    pub intra_order: u8,
    /// The chiplet it is mapped on.
    pub chiplet: ChipletId,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> PecEntry {
        // The paper's data 1 (Fig 7a / Example 3): VPNs 0x1..=0xC,
        // gran 3, linear GPU map over 4 chiplets.
        PecEntry::new(
            0,
            VpnRange {
                start: Vpn(0x1),
                pages: 12,
            },
            3,
            GpuMap::linear(4),
        )
    }

    #[test]
    fn example3_pec_entry() {
        let e = entry();
        assert!(e.contains(0, Vpn(0x1)));
        assert!(e.contains(0, Vpn(0xC)));
        assert!(!e.contains(0, Vpn(0xD)));
        assert!(!e.contains(1, Vpn(0x1)));
        assert_eq!(e.pages(), 12);
    }

    #[test]
    fn coords_match_paper_layout() {
        let e = entry();
        // 0x1..0x3 -> GPU0 chunk, 0x4..0x6 -> GPU1 chunk, ...
        let c = e.coords(Vpn(0x4)).unwrap();
        assert_eq!((c.round, c.inter, c.intra), (0, 1, 0));
        let c = e.coords(Vpn(0xB)).unwrap();
        // 0xB is index 10: chunk 3 (GPU3), intra 1.
        assert_eq!((c.round, c.inter, c.intra), (0, 3, 1));
        assert_eq!(e.coords(Vpn(0xD)), None);
    }

    #[test]
    fn coords_roundtrip() {
        let e = entry();
        for v in e.range.iter() {
            let c = e.coords(v).unwrap();
            assert_eq!(e.vpn_at(c), Some(v));
        }
        // Past-the-end position.
        assert_eq!(
            e.vpn_at(GroupCoords {
                round: 1,
                inter: 0,
                intra: 0
            }),
            None
        );
    }

    #[test]
    fn multi_round_coords() {
        // 2 chiplets, gran 2, 12 pages => 3 rounds.
        let e = PecEntry::new(
            0,
            VpnRange {
                start: Vpn(0x100),
                pages: 12,
            },
            2,
            GpuMap::linear(2),
        );
        let c = e.coords(Vpn(0x100 + 9)).unwrap();
        // idx 9: chunk 4 (round 2, inter 0), intra 1.
        assert_eq!((c.round, c.inter, c.intra), (2, 0, 1));
    }

    #[test]
    fn gpu_map_arbitrary_order() {
        // Fig 10 right: 0th VPN on GPU1.
        let m = GpuMap::new(vec![ChipletId(1), ChipletId(0), ChipletId(3), ChipletId(2)]);
        assert_eq!(m.chiplet_at(0), Some(ChipletId(1)));
        assert_eq!(m.position_of(ChipletId(3)), Some(2));
        assert_eq!(m.position_of(ChipletId(4)), None);
        assert_eq!(m.chiplet_at(4), None);
    }

    #[test]
    fn gpu_map_encode_roundtrip() {
        let m = GpuMap::new(vec![ChipletId(2), ChipletId(7), ChipletId(0), ChipletId(5)]);
        let w = m.encode();
        assert_eq!(GpuMap::decode(w, 4), m);
        // Example 3's linear map: 000 001 010 011 packed little-endian
        // per position: k=0 -> 0, k=1 -> 1, ...
        let lin = GpuMap::linear(4);
        assert_eq!(lin.encode(), 0b011_010_001_000);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn gpu_map_rejects_duplicates() {
        GpuMap::new(vec![ChipletId(1), ChipletId(1)]);
    }

    #[test]
    fn pec_entry_is_118_bits() {
        assert_eq!(PEC_ENTRY_BITS, 118);
    }
}
