//! Page Entry Coalescing (PEC) logic and buffer (§IV-E, §IV-F, §V-B).
//!
//! A PEC logic sits next to each PTW (Barre) and inside each chiplet
//! (F-Barre). Given one translated PTE and the owning data's PEC-buffer
//! record, it enumerates the *coalescing VPNs* — the other pages of the
//! group — and calculates their physical frames without page table walks.

use std::ops::ControlFlow;

use barre_mem::{GlobalPfn, LocalPfn, Vpn};
use barre_sim::RatioStat;

use crate::encoding::{CoalInfo, CoalMode};
use crate::group::{GroupMember, PecEntry};

/// The shared PEC buffer: per-data records, smallest-data eviction
/// (§IV-E: "a new data overwrites an entry having smaller data's
/// information").
#[derive(Debug, Clone)]
pub struct PecBuffer {
    entries: Vec<PecEntry>,
    capacity: usize,
    lookups: RatioStat,
    evictions: u64,
}

impl PecBuffer {
    /// Creates a buffer with `capacity` entries (the paper uses 5).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "PEC buffer needs at least one entry");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            lookups: RatioStat::new(),
            evictions: 0,
        }
    }

    /// The paper's 5-entry configuration.
    pub fn paper_default() -> Self {
        Self::new(5)
    }

    /// Registers a data object's record. If a record for the same range
    /// exists it is replaced in place; if the buffer is full, the entry
    /// describing the smallest data is overwritten (and only if the new
    /// data is at least as large — otherwise the new record is dropped).
    /// Returns whether the record was retained.
    pub fn insert(&mut self, entry: PecEntry) -> bool {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.asid == entry.asid && e.range.start == entry.range.start)
        {
            *e = entry;
            return true;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
            return true;
        }
        // The buffer is at capacity here, and capacity is nonzero, so a
        // smallest entry exists; treat an empty buffer as room to push.
        let Some((idx, smallest)) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.pages())
            .map(|(i, e)| (i, e.pages()))
        else {
            self.entries.push(entry);
            return true;
        };
        if entry.pages() >= smallest {
            self.entries[idx] = entry;
            self.evictions += 1;
            true
        } else {
            false
        }
    }

    /// The record covering `(asid, vpn)`, if resident.
    pub fn lookup(&mut self, asid: u16, vpn: Vpn) -> Option<&PecEntry> {
        let found = self.entries.iter().position(|e| e.contains(asid, vpn));
        self.lookups.record(found.is_some());
        found.map(|i| &self.entries[i])
    }

    /// Like [`lookup`](Self::lookup) but without touching statistics.
    pub fn peek(&self, asid: u16, vpn: Vpn) -> Option<&PecEntry> {
        self.entries.iter().find(|e| e.contains(asid, vpn))
    }

    /// Resident record count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no records are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup hit/miss statistics.
    pub fn stats(&self) -> RatioStat {
        self.lookups
    }

    /// Records overwritten by larger data.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Forcibly discards the resident record at `index % len`, returning
    /// it. Fault injection uses this to model PEC-buffer corruption —
    /// affected pages fall back to conventional walks until the record
    /// is re-learned. Returns `None` on an empty buffer.
    pub fn evict_at(&mut self, index: usize) -> Option<PecEntry> {
        if self.entries.is_empty() {
            return None;
        }
        let i = index % self.entries.len();
        self.evictions += 1;
        Some(self.entries.remove(i))
    }
}

/// The PEC calculation unit: two comparators and a small ALU in hardware;
/// here, the group-membership and PFN arithmetic of §IV-F and §V-B.
#[derive(Debug, Clone, Copy)]
pub struct PecLogic {
    mode: CoalMode,
}

impl PecLogic {
    /// Creates a logic for the platform's PTE layout.
    pub fn new(mode: CoalMode) -> Self {
        Self { mode }
    }

    /// The PTE layout in force.
    pub fn mode(&self) -> CoalMode {
        self.mode
    }

    /// Enumerates every member of the coalescing group of a translated
    /// PTE (`pte_vpn`, `info`), including the PTE's own page. Returns an
    /// empty vector if the PTE's position is inconsistent with `entry`
    /// (stale PEC record for a different layout — calculation must then
    /// be declined rather than produce a wrong frame).
    pub fn members(&self, pte_vpn: Vpn, info: &CoalInfo, entry: &PecEntry) -> Vec<GroupMember> {
        let mut out = Vec::new();
        self.for_each_member(pte_vpn, info, entry, |m| {
            out.push(m);
            ControlFlow::Continue(())
        });
        out
    }

    /// Visitor form of [`members`](Self::members): enumerates the group
    /// members in the same order without allocating, stopping early when
    /// the visitor breaks. This is the hot-path entry point — the
    /// simulator's per-miss probe must not heap-allocate.
    pub fn for_each_member<F>(&self, pte_vpn: Vpn, info: &CoalInfo, entry: &PecEntry, mut f: F)
    where
        F: FnMut(GroupMember) -> ControlFlow<()>,
    {
        let Some(coords) = entry.coords(pte_vpn) else {
            return;
        };
        if coords.inter != info.inter_order() {
            return;
        }
        let run_len = info.merged_groups() as u64;
        let intra_pte = info.intra_order() as u64;
        if intra_pte > coords.intra {
            return;
        }
        // A merged run never crosses a chiplet chunk boundary; a PTE that
        // claims otherwise is inconsistent with this PEC record.
        let run_start = coords.intra - intra_pte;
        if run_start + run_len > entry.gran {
            return;
        }
        // First VPN of the (merged) group: VPN_PTE − intra_order −
        // interlv_gran × inter_order (§V-B), generalized to any round.
        let Some(first) =
            pte_vpn.offset(-((intra_pte + entry.gran * info.inter_order() as u64) as i64))
        else {
            return;
        };
        for k in 0..entry.gpu_map.sharers() as u8 {
            let Some(chiplet) = entry.gpu_map.chiplet_at(k as usize) else {
                continue;
            };
            if !info.participates_position(k, chiplet) {
                continue;
            }
            for j in 0..run_len {
                let vpn = Vpn(first.0 + entry.gran * k as u64 + j);
                if !entry.range.contains(vpn) {
                    continue;
                }
                let m = GroupMember {
                    vpn,
                    inter_order: k,
                    intra_order: j as u8,
                    chiplet,
                };
                if f(m).is_break() {
                    return;
                }
            }
        }
    }

    /// The group member corresponding to `pending`, if `pending` is in the
    /// same coalescing group as the translated PTE.
    pub fn member_for(
        &self,
        pte_vpn: Vpn,
        info: &CoalInfo,
        entry: &PecEntry,
        pending: Vpn,
    ) -> Option<GroupMember> {
        let mut found = None;
        self.for_each_member(pte_vpn, info, entry, |m| {
            if m.vpn == pending {
                found = Some(m);
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        found
    }

    /// The PFN calculator: computes `pending`'s physical frame from one
    /// translated `(pte_vpn, pte_pfn, info)` of the same group.
    ///
    /// Implements the §V-B equation `PFN_pending = PFN_PTE −
    /// base_PFN_PTE − intra_PTE + base_PFN_pending + intra_pending`,
    /// which for the base format degenerates to "same local PFN, pending
    /// chiplet's base".
    pub fn calc_pfn(
        &self,
        pte_vpn: Vpn,
        pte_pfn: GlobalPfn,
        info: &CoalInfo,
        entry: &PecEntry,
        pending: Vpn,
    ) -> Option<GlobalPfn> {
        let member = self.member_for(pte_vpn, info, entry, pending)?;
        let run_base = pte_pfn.local().0.checked_sub(info.intra_order() as u64)?;
        let local = LocalPfn(run_base + member.intra_order as u64);
        Some(GlobalPfn::compose(member.chiplet, local))
    }

    /// The coalescing VPNs to advertise in peer RCFs when a TLB entry for
    /// `pte_vpn` is inserted (§V-A2: "updates RCFs with the exact VPN as
    /// well as the coalescing VPNs").
    pub fn advertised_vpns(&self, pte_vpn: Vpn, info: &CoalInfo, entry: &PecEntry) -> Vec<Vpn> {
        self.members(pte_vpn, info, entry)
            .into_iter()
            .map(|m| m.vpn)
            .collect()
    }

    /// All VPNs that *could* share a coalescing group with `vpn`, derived
    /// from the data's PEC record alone (no translated PTE) — the
    /// candidate set a chiplet probes its LCF with on an L2 TLB miss
    /// (§V-A3: "coalescing VPNs can be calculated by decrementing or
    /// incrementing the requested VPN by interlv_gran"). Conservative
    /// under group expansion: run alignment is unknown until a PTE is
    /// seen, so every offset below the merge limit is a candidate.
    /// `vpn` itself is excluded.
    pub fn coalescing_candidates(&self, entry: &PecEntry, vpn: Vpn, max_merged: u8) -> Vec<Vpn> {
        let mut out = Vec::new();
        self.for_each_candidate(entry, vpn, max_merged, |w| {
            out.push(w);
            ControlFlow::Continue(())
        });
        out
    }

    /// Visitor form of [`coalescing_candidates`](Self::coalescing_candidates):
    /// same candidates, same order, no allocation, early exit when the
    /// visitor breaks (the LCF probe stops at the first confirmed hit).
    pub fn for_each_candidate<F>(&self, entry: &PecEntry, vpn: Vpn, max_merged: u8, mut f: F)
    where
        F: FnMut(Vpn) -> ControlFlow<()>,
    {
        let Some(c) = entry.coords(vpn) else {
            return;
        };
        let sharers = entry.gpu_map.sharers() as i64;
        let merge = match self.mode {
            CoalMode::Expanded => max_merged.max(1) as i64,
            _ => 1,
        };
        for dk in -(sharers - 1)..sharers {
            for dj in -(merge - 1)..merge {
                if dk == 0 && dj == 0 {
                    continue;
                }
                let inter = c.inter as i64 + dk;
                let intra = c.intra as i64 + dj;
                if inter < 0 || inter >= sharers || intra < 0 || intra >= entry.gran as i64 {
                    continue;
                }
                if let Some(w) = entry.vpn_at(crate::group::GroupCoords {
                    round: c.round,
                    inter: inter as u8,
                    intra: intra as u64,
                }) {
                    if f(w).is_break() {
                        return;
                    }
                }
            }
        }
    }

    /// Scheduler-side coalescibility estimate **without** a translated PTE
    /// (§V-C): would `a` and `b` land in the same coalescing group, given
    /// only the data's PEC record and the platform's merge limit? Used by
    /// coalescing-aware PTW scheduling to de-prioritize requests that an
    /// in-flight walk will cover.
    pub fn likely_same_group(&self, entry: &PecEntry, a: Vpn, b: Vpn, max_merged: u8) -> bool {
        let (Some(ca), Some(cb)) = (entry.coords(a), entry.coords(b)) else {
            return false;
        };
        if ca.round != cb.round {
            return false;
        }
        match self.mode {
            CoalMode::Base | CoalMode::Wide => ca.intra == cb.intra && ca.inter != cb.inter,
            CoalMode::Expanded => {
                let d = ca.intra.abs_diff(cb.intra);
                d < max_merged.max(1) as u64 && (ca.inter, ca.intra) != (cb.inter, cb.intra)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use barre_mem::virt_alloc::VpnRange;
    use barre_mem::ChipletId;

    use crate::group::GpuMap;

    fn data1() -> PecEntry {
        // Fig 7a / Example 3: VPNs 0x1..=0xC, gran 3, linear over 4 GPUs.
        PecEntry::new(
            0,
            VpnRange {
                start: Vpn(0x1),
                pages: 12,
            },
            3,
            GpuMap::linear(4),
        )
    }

    fn logic() -> PecLogic {
        PecLogic::new(CoalMode::Base)
    }

    #[test]
    fn example4_pfn_calculation() {
        // Paper Example 4: a PTW translates VPN 0x4 -> GPU1 local 0x75.
        // Pending 0xA is in the same group; its PFN must be GPU3 + 0x75.
        let entry = data1();
        let info = CoalInfo::Base {
            bitmap: 0b1111,
            inter_order: 1,
        };
        let pte_pfn = GlobalPfn::compose(ChipletId(1), LocalPfn(0x75));
        let pfn = logic()
            .calc_pfn(Vpn(0x4), pte_pfn, &info, &entry, Vpn(0xA))
            .unwrap();
        assert_eq!(pfn, GlobalPfn::compose(ChipletId(3), LocalPfn(0x75)));
    }

    #[test]
    fn example4_membership_enumeration() {
        let entry = data1();
        let info = CoalInfo::Base {
            bitmap: 0b1111,
            inter_order: 1,
        };
        let members = logic().members(Vpn(0x4), &info, &entry);
        let vpns: Vec<u64> = members.iter().map(|m| m.vpn.0).collect();
        // Group of 0x4 (chunk offset 0): 0x1, 0x4, 0x7, 0xA.
        assert_eq!(vpns, vec![0x1, 0x4, 0x7, 0xA]);
        assert_eq!(members[3].chiplet, ChipletId(3));
        assert_eq!(members[3].inter_order, 3);
    }

    #[test]
    fn non_member_is_rejected() {
        let entry = data1();
        let info = CoalInfo::Base {
            bitmap: 0b1111,
            inter_order: 1,
        };
        let pte_pfn = GlobalPfn::compose(ChipletId(1), LocalPfn(0x75));
        // 0x5 is in the data but a different group (chunk offset 1).
        assert!(logic()
            .calc_pfn(Vpn(0x4), pte_pfn, &info, &entry, Vpn(0x5))
            .is_none());
        // 0x20 is outside the data range entirely.
        assert!(logic()
            .calc_pfn(Vpn(0x4), pte_pfn, &info, &entry, Vpn(0x20))
            .is_none());
    }

    #[test]
    fn excluded_chiplet_is_not_calculated() {
        let entry = data1();
        // GPU3 migrated its page away: bit 3 cleared.
        let info = CoalInfo::Base {
            bitmap: 0b0111,
            inter_order: 1,
        };
        let pte_pfn = GlobalPfn::compose(ChipletId(1), LocalPfn(0x75));
        assert!(logic()
            .calc_pfn(Vpn(0x4), pte_pfn, &info, &entry, Vpn(0xA))
            .is_none());
        // Remaining members still work.
        assert!(logic()
            .calc_pfn(Vpn(0x4), pte_pfn, &info, &entry, Vpn(0x7))
            .is_some());
    }

    #[test]
    fn stale_entry_declines_calculation() {
        let entry = data1();
        // inter_order disagrees with the VPN's actual position.
        let info = CoalInfo::Base {
            bitmap: 0b1111,
            inter_order: 2,
        };
        assert!(logic().members(Vpn(0x4), &info, &entry).is_empty());
    }

    #[test]
    fn expanded_walkthrough_fig13() {
        // 2 merged groups, gran 3, 4 chiplets: each chiplet holds VPN runs
        // of length 2 at local frames L, L+1.
        let entry = data1();
        let logic = PecLogic::new(CoalMode::Expanded);
        // PTE for VPN 0x5 = chunk offset 1 on GPU1, i.e. run j=1,
        // inter 1, at local 0x31 (run base 0x30).
        let info = CoalInfo::Expanded {
            bitmap: 0b1111,
            inter_order: 1,
            intra_order: 1,
            merged: 1,
        };
        let pte_pfn = GlobalPfn::compose(ChipletId(1), LocalPfn(0x31));
        let members = logic.members(Vpn(0x5), &info, &entry);
        // Every chiplet contributes 2 pages: 8 members.
        assert_eq!(members.len(), 8);
        // Pending 0xA (GPU3, j=0) -> GPU3 local 0x30.
        let pfn = logic
            .calc_pfn(Vpn(0x5), pte_pfn, &info, &entry, Vpn(0xA))
            .unwrap();
        assert_eq!(pfn, GlobalPfn::compose(ChipletId(3), LocalPfn(0x30)));
        // Pending 0xB (GPU3, j=1) -> GPU3 local 0x31.
        let pfn = logic
            .calc_pfn(Vpn(0x5), pte_pfn, &info, &entry, Vpn(0xB))
            .unwrap();
        assert_eq!(pfn, GlobalPfn::compose(ChipletId(3), LocalPfn(0x31)));
        // Same-chiplet sibling 0x4 (GPU1, j=0) -> GPU1 local 0x30.
        let pfn = logic
            .calc_pfn(Vpn(0x5), pte_pfn, &info, &entry, Vpn(0x4))
            .unwrap();
        assert_eq!(pfn, GlobalPfn::compose(ChipletId(1), LocalPfn(0x30)));
    }

    #[test]
    fn expanded_respects_data_tail() {
        // 2 chiplets, gran 2, but only 3 pages: GPU1's chunk has 1 page.
        let entry = PecEntry::new(
            0,
            VpnRange {
                start: Vpn(0x10),
                pages: 3,
            },
            2,
            GpuMap::linear(2),
        );
        let logic = PecLogic::new(CoalMode::Expanded);
        let info = CoalInfo::Expanded {
            bitmap: 0b11,
            inter_order: 0,
            intra_order: 0,
            merged: 1,
        };
        let members = logic.members(Vpn(0x10), &info, &entry);
        let vpns: Vec<u64> = members.iter().map(|m| m.vpn.0).collect();
        // GPU0 run: 0x10, 0x11; GPU1 run truncated to 0x12.
        assert_eq!(vpns, vec![0x10, 0x11, 0x12]);
    }

    #[test]
    fn multi_round_groups_do_not_cross_rounds() {
        // 2 chiplets, gran 1, 4 pages => rounds 0 and 1.
        let entry = PecEntry::new(
            0,
            VpnRange {
                start: Vpn(0x20),
                pages: 4,
            },
            1,
            GpuMap::linear(2),
        );
        let info = CoalInfo::Base {
            bitmap: 0b11,
            inter_order: 0,
        };
        // PTE for 0x20 (round 0): group is {0x20, 0x21} only — 0x22/0x23
        // are round 1 and must not be claimed.
        let members = logic().members(Vpn(0x20), &info, &entry);
        let vpns: Vec<u64> = members.iter().map(|m| m.vpn.0).collect();
        assert_eq!(vpns, vec![0x20, 0x21]);
    }

    #[test]
    fn likely_same_group_heuristic() {
        let entry = data1();
        let l = logic();
        // 0x4 and 0xA: same chunk offset, different chunks — coalescible.
        assert!(l.likely_same_group(&entry, Vpn(0x4), Vpn(0xA), 1));
        // 0x4 and 0x5: same chiplet chunk — not coalescible in base mode.
        assert!(!l.likely_same_group(&entry, Vpn(0x4), Vpn(0x5), 1));
        // Same VPN: not "another" request.
        assert!(!l.likely_same_group(&entry, Vpn(0x4), Vpn(0x4), 1));
        // Expanded mode tolerates intra deltas below the merge limit.
        let le = PecLogic::new(CoalMode::Expanded);
        assert!(le.likely_same_group(&entry, Vpn(0x4), Vpn(0x5), 2));
        assert!(!le.likely_same_group(&entry, Vpn(0x4), Vpn(0x6), 2));
    }

    #[test]
    fn candidates_base_mode_are_group_peers() {
        let entry = data1();
        let cands = logic().coalescing_candidates(&entry, Vpn(0x4), 1);
        let mut v: Vec<u64> = cands.iter().map(|x| x.0).collect();
        v.sort();
        assert_eq!(v, vec![0x1, 0x7, 0xA]);
    }

    #[test]
    fn candidates_expanded_include_run_neighbors() {
        let entry = data1();
        let le = PecLogic::new(CoalMode::Expanded);
        let cands = le.coalescing_candidates(&entry, Vpn(0x4), 2);
        let mut v: Vec<u64> = cands.iter().map(|x| x.0).collect();
        v.sort();
        // Positions ±1 intra around each group peer plus the local
        // sibling 0x5 (0x4 is chunk start: intra-1 is out of range).
        assert_eq!(v, vec![0x1, 0x2, 0x5, 0x7, 0x8, 0xA, 0xB]);
    }

    #[test]
    fn candidates_outside_data_are_empty() {
        let entry = data1();
        assert!(logic()
            .coalescing_candidates(&entry, Vpn(0x40), 1)
            .is_empty());
    }

    #[test]
    fn buffer_insert_lookup_evict() {
        let mut buf = PecBuffer::new(2);
        let small = PecEntry::new(
            0,
            VpnRange {
                start: Vpn(0x100),
                pages: 2,
            },
            1,
            GpuMap::linear(2),
        );
        let mid = PecEntry::new(
            0,
            VpnRange {
                start: Vpn(0x200),
                pages: 8,
            },
            2,
            GpuMap::linear(2),
        );
        let big = PecEntry::new(
            0,
            VpnRange {
                start: Vpn(0x300),
                pages: 64,
            },
            8,
            GpuMap::linear(2),
        );
        assert!(buf.insert(small.clone()));
        assert!(buf.insert(mid));
        // Full: the big data overwrites the smallest record.
        assert!(buf.insert(big));
        assert_eq!(buf.evictions(), 1);
        assert!(buf.lookup(0, Vpn(0x100)).is_none());
        assert!(buf.lookup(0, Vpn(0x300)).is_some());
        // A tiny data cannot displace anything now.
        assert!(!buf.insert(small));
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn buffer_replaces_same_range_in_place() {
        let mut buf = PecBuffer::paper_default();
        let a = PecEntry::new(
            0,
            VpnRange {
                start: Vpn(0x1),
                pages: 12,
            },
            3,
            GpuMap::linear(4),
        );
        let a2 = PecEntry::new(
            0,
            VpnRange {
                start: Vpn(0x1),
                pages: 12,
            },
            3,
            GpuMap::linear(2),
        );
        buf.insert(a);
        buf.insert(a2.clone());
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.peek(0, Vpn(0x1)), Some(&a2));
    }

    #[test]
    fn buffer_respects_asid() {
        let mut buf = PecBuffer::paper_default();
        let a = PecEntry::new(
            7,
            VpnRange {
                start: Vpn(0x1),
                pages: 4,
            },
            1,
            GpuMap::linear(4),
        );
        buf.insert(a);
        assert!(buf.lookup(0, Vpn(0x1)).is_none());
        assert!(buf.lookup(7, Vpn(0x1)).is_some());
        assert_eq!(buf.stats().hits(), 1);
        assert_eq!(buf.stats().total(), 2);
    }
}
