//! Address Translation Service packets.

use barre_core::PecEntry;
use barre_mem::{ChipletId, GlobalPfn, Vpn};
use barre_sim::Cycle;

/// Wire size of an ATS translation request (PCIe TLP header + address),
/// used for PCIe serialization accounting.
pub const ATS_REQUEST_BYTES: u64 = 16;

/// Wire size of an ATS translation response. A coalesced response carries
/// the 11 coalescing bits plus the 118-bit PEC record (§V-A3) — still
/// under one additional DWORD-aligned unit, so the model charges a flat
/// 32 bytes.
pub const ATS_RESPONSE_BYTES: u64 = 32;

/// One translation request as seen by the IOMMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtsRequest {
    /// System-wide unique id (assigned by the requesting chiplet).
    pub id: u64,
    /// Address space of the faulting access.
    pub asid: u16,
    /// Virtual page to translate.
    pub vpn: Vpn,
    /// Requesting chiplet.
    pub chiplet: ChipletId,
    /// Cycle the L2 TLB miss was issued (ATS latency accounting).
    pub issued_at: Cycle,
}

/// A translation response returned to a chiplet.
#[derive(Debug, Clone, PartialEq)]
pub struct AtsResponse {
    /// The request being answered.
    pub req: AtsRequest,
    /// The translated frame; `None` signals a translation fault.
    pub pfn: Option<GlobalPfn>,
    /// Raw 11-bit coalescing field of the translated PTE (0 when
    /// uncoalesced or when Barre is disabled).
    pub coal_bits: u16,
    /// The data's PEC record, piggybacked when the page is coalesced and
    /// the platform runs F-Barre.
    pub pec_entry: Option<PecEntry>,
    /// Whether this response was produced by PEC calculation rather than
    /// a page table walk.
    pub coalesced: bool,
    /// Whether the producing walk hit the IOMMU TLB.
    pub iommu_tlb_hit: bool,
    /// Cycle the serving walk occupied its walker slot (PTW-stage
    /// tracing seam). Calculated and multicast responses carry the
    /// primary walk's start, since that walk served them.
    pub walk_started_at: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_is_copy_and_comparable() {
        let r = AtsRequest {
            id: 1,
            asid: 0,
            vpn: Vpn(0xA1),
            chiplet: ChipletId(2),
            issued_at: 100,
        };
        let r2 = r;
        assert_eq!(r, r2);
    }

    #[test]
    fn packet_sizes_are_pcie_plausible() {
        const { assert!(ATS_REQUEST_BYTES >= 12) };
        const { assert!(ATS_RESPONSE_BYTES > ATS_REQUEST_BYTES) };
    }
}
