//! The IOMMU model.
//!
//! The host-side translation agent of the MCM-GPU (Fig 3): address
//! translation service (ATS) requests arrive over PCIe, wait in a 48-entry
//! page-walk queue, and are served by 16 page table walkers with a
//! 500-cycle walk latency (Table II). This crate models the IOMMU as a
//! passive state machine — the system event loop drives it with
//! `enqueue` / `dispatch` / `complete_walk` calls and schedules the
//! completion times it returns — so the same component serves every
//! translation mode:
//!
//! * plain walks (baseline, Valkyrie, Least),
//! * **Barre**: a PEC logic per PTW scans the PW-queue on walk completion
//!   and serves same-group pending requests by calculation,
//! * **F-Barre**: additionally ships the PEC-buffer record and coalescing
//!   bits in the ATS response, and applies coalescing-aware PTW
//!   scheduling (§V-C),
//! * an optional 2048-entry / 200-cycle IOMMU TLB (§VII-J).

pub mod ats;
pub mod iommu;

pub use ats::{AtsRequest, AtsResponse, ATS_REQUEST_BYTES, ATS_RESPONSE_BYTES};
pub use iommu::{Iommu, IommuConfig, IommuStats};
