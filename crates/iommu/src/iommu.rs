//! The IOMMU state machine.

use std::collections::VecDeque;

use barre_core::{CoalInfo, CoalMode, PecBuffer, PecEntry, PecLogic};
use barre_mem::{Pte, Vpn};
use barre_sim::{Counter, Cycle, Histogram, RatioStat};
use barre_tlb::{Tlb, TlbKey};

use crate::ats::{AtsRequest, AtsResponse};

/// Static IOMMU configuration.
#[derive(Debug, Clone)]
pub struct IommuConfig {
    /// Page-walk queue capacity (Table II: 48).
    pub pw_queue_entries: usize,
    /// Number of page table walkers; `None` models the *infinite PTWs*
    /// limit study of Fig 1.
    pub ptws: Option<usize>,
    /// End-to-end page table walk latency in cycles (Table II: 500).
    pub walk_latency: Cycle,
    /// Whether Barre's PEC calculation is active.
    pub barre: bool,
    /// PTE layout in force (decides how coalescing bits decode).
    pub coal_mode: CoalMode,
    /// Whether responses carry the PEC record (F-Barre).
    pub ship_pec_entry: bool,
    /// Coalescing-aware PTW scheduling (§V-C).
    pub coalescing_sched: bool,
    /// Merge limit used by the scheduler's coalescibility estimate.
    pub max_merged: u8,
    /// Per-calculated-response PEC latency in cycles.
    pub pec_calc_latency: Cycle,
    /// Speculatively multicast every group member's calculated PFN to its
    /// owning chiplet on each walk (§IV-B evaluates and rejects this:
    /// the IOMMU's outbound bandwidth becomes the bottleneck).
    pub multicast: bool,
    /// Optional IOMMU TLB: `(entries, ways, access_latency)` (§VII-J uses
    /// 2048 entries at 200 cycles).
    pub iommu_tlb: Option<(usize, usize, Cycle)>,
    /// PEC buffer entries (Table II: 5).
    pub pec_buffer_entries: usize,
}

impl Default for IommuConfig {
    fn default() -> Self {
        Self {
            pw_queue_entries: 48,
            ptws: Some(16),
            walk_latency: 500,
            barre: false,
            coal_mode: CoalMode::Base,
            ship_pec_entry: false,
            coalescing_sched: false,
            max_merged: 1,
            pec_calc_latency: 2,
            multicast: false,
            iommu_tlb: None,
            pec_buffer_entries: 5,
        }
    }
}

/// Dynamic IOMMU statistics.
#[derive(Debug, Clone, Default)]
pub struct IommuStats {
    /// ATS requests accepted into the PW-queue.
    pub ats_received: Counter,
    /// Requests rejected because the PW-queue was full.
    pub queue_rejections: Counter,
    /// Page table walks performed.
    pub walks: Counter,
    /// Responses produced by PEC calculation.
    pub coalesced: Counter,
    /// IOMMU TLB hit rate (when configured).
    pub iommu_tlb: RatioStat,
    /// Head-of-queue rotations by the coalescing-aware scheduler.
    pub sched_rotations: Counter,
    /// ATS turnaround (enqueue → response ready), in cycles.
    pub ats_latency: Histogram,
    /// Gap between consecutive VPNs received (Fig 5's distribution).
    pub vpn_gap: Histogram,
    /// Total PTW-occupied cycles (utilization = busy / (ptws × span)).
    pub ptw_busy: Counter,
}

#[derive(Debug, Clone)]
struct Walk {
    req: AtsRequest,
    started_at: Cycle,
    done_at: Cycle,
    tlb_hit: bool,
}

/// The IOMMU.
///
/// Drive it with [`enqueue`](Self::enqueue) on ATS arrival, then
/// [`dispatch`](Self::dispatch) to start walks (schedule a completion
/// event per returned `(ptw, done_at)`), then
/// [`complete_walk`](Self::complete_walk) when each fires.
#[derive(Debug)]
pub struct Iommu {
    cfg: IommuConfig,
    queue: VecDeque<AtsRequest>,
    walks: Vec<Option<Walk>>,
    pec_logic: PecLogic,
    pec_buffer: PecBuffer,
    iommu_tlb: Option<Tlb<Pte>>,
    stats: IommuStats,
    last_vpn: Option<Vpn>,
    multicast_seq: u64,
}

impl Iommu {
    /// Creates an IOMMU from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the PW-queue capacity or a finite PTW count is zero.
    pub fn new(cfg: IommuConfig) -> Self {
        assert!(cfg.pw_queue_entries > 0, "PW-queue needs capacity");
        if let Some(n) = cfg.ptws {
            assert!(n > 0, "finite PTW pool must be nonempty");
        }
        let walks = match cfg.ptws {
            Some(n) => vec![None; n],
            None => Vec::new(),
        };
        Self {
            pec_logic: PecLogic::new(cfg.coal_mode),
            pec_buffer: PecBuffer::new(cfg.pec_buffer_entries),
            iommu_tlb: cfg
                .iommu_tlb
                .map(|(entries, ways, _)| Tlb::new(entries, ways)),
            cfg,
            queue: VecDeque::new(),
            walks,
            stats: IommuStats::default(),
            last_vpn: None,
            multicast_seq: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &IommuConfig {
        &self.cfg
    }

    /// Registers a data object's PEC record (done by the driver at
    /// allocation time, §IV-G).
    pub fn register_pec(&mut self, entry: PecEntry) {
        self.pec_buffer.insert(entry);
    }

    /// Accepts an ATS request into the PW-queue; `false` means the queue
    /// is full and the packet must wait in the PCIe buffer (the caller
    /// retries after the next completion).
    pub fn enqueue(&mut self, req: AtsRequest) -> bool {
        if self.queue.len() >= self.cfg.pw_queue_entries {
            self.stats.queue_rejections.inc();
            return false;
        }
        if let Some(prev) = self.last_vpn {
            self.stats.vpn_gap.record(prev.0.abs_diff(req.vpn.0));
        }
        self.last_vpn = Some(req.vpn);
        self.stats.ats_received.inc();
        self.queue.push_back(req);
        true
    }

    /// Whether the PW-queue has space.
    pub fn has_queue_space(&self) -> bool {
        self.queue.len() < self.cfg.pw_queue_entries
    }

    /// Current PW-queue occupancy.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Assigns queued requests to idle PTWs. Returns `(ptw, done_at)` for
    /// every started walk; the caller schedules a completion event each.
    pub fn dispatch(&mut self, now: Cycle) -> Vec<(usize, Cycle)> {
        let mut started = Vec::new();
        loop {
            if self.queue.is_empty() {
                break;
            }
            let ptw = match self.idle_ptw() {
                Some(p) => p,
                None => break,
            };
            let req = match self.next_request() {
                Some(r) => r,
                None => break,
            };
            // IOMMU TLB: a hit answers after the TLB latency; a miss adds
            // it in front of the walk.
            let (latency, tlb_hit) = match (&mut self.iommu_tlb, self.cfg.iommu_tlb) {
                (Some(tlb), Some((_, _, tlat))) => {
                    let key = TlbKey {
                        asid: req.asid,
                        vpn: req.vpn,
                    };
                    if tlb.lookup(key).is_some() {
                        self.stats.iommu_tlb.record(true);
                        (tlat, true)
                    } else {
                        self.stats.iommu_tlb.record(false);
                        (tlat + self.cfg.walk_latency, false)
                    }
                }
                _ => (self.cfg.walk_latency, false),
            };
            let done_at = now + latency;
            self.walks[ptw] = Some(Walk {
                req,
                started_at: now,
                done_at,
                tlb_hit,
            });
            started.push((ptw, done_at));
        }
        started
    }

    fn idle_ptw(&mut self) -> Option<usize> {
        match self.cfg.ptws {
            Some(_) => self.walks.iter().position(Option::is_none),
            None => {
                // Infinite pool: reuse a free slot or grow.
                if let Some(i) = self.walks.iter().position(Option::is_none) {
                    Some(i)
                } else {
                    self.walks.push(None);
                    Some(self.walks.len() - 1)
                }
            }
        }
    }

    /// Pops the next request to walk, applying coalescing-aware
    /// scheduling: a head request that an in-flight walk will cover is
    /// rotated to the tail (§V-C).
    fn next_request(&mut self) -> Option<AtsRequest> {
        if !self.cfg.coalescing_sched {
            return self.queue.pop_front();
        }
        let mut rotations = 0;
        let max_rot = self.queue.len();
        while rotations < max_rot {
            let head = *self.queue.front()?;
            let covered = self.walks.iter().flatten().any(|w| {
                w.req.asid == head.asid
                    && self
                        .pec_buffer
                        .peek(head.asid, head.vpn)
                        .is_some_and(|entry| {
                            self.pec_logic.likely_same_group(
                                entry,
                                w.req.vpn,
                                head.vpn,
                                self.cfg.max_merged,
                            )
                        })
            });
            if covered {
                // The front was just peeked, so the pop cannot miss; the
                // if-let keeps this path panic-free regardless.
                if let Some(r) = self.queue.pop_front() {
                    self.queue.push_back(r);
                }
                self.stats.sched_rotations.inc();
                rotations += 1;
            } else {
                return self.queue.pop_front();
            }
        }
        // Everything at the head is coalescible with in-flight walks;
        // serve FIFO to guarantee progress.
        self.queue.pop_front()
    }

    /// Completes the walk on `ptw` at `now`. `lookup` resolves
    /// `(asid, vpn)` to the leaf PTE (the actual radix-table access).
    ///
    /// Returns the primary response plus, under Barre, one calculated
    /// response per coalescible pending request. The `Cycle` attached to
    /// each response is when it is ready to leave the IOMMU (PEC
    /// calculation adds a small serial delay per extra response).
    pub fn complete_walk(
        &mut self,
        ptw: usize,
        now: Cycle,
        lookup: impl Fn(u16, Vpn) -> Option<Pte>,
    ) -> Vec<(Cycle, AtsResponse)> {
        // A completion event for an idle or out-of-range PTW is a
        // scheduling bug upstream; respond with no translations instead
        // of tearing the simulation down.
        let Some(walk) = self.walks.get_mut(ptw).and_then(Option::take) else {
            return Vec::new();
        };
        debug_assert!(now >= walk.done_at, "completion fired early");
        self.stats.ptw_busy.add(now - walk.started_at);
        if !walk.tlb_hit {
            self.stats.walks.inc();
        }
        let pte = lookup(walk.req.asid, walk.req.vpn);
        // Fill the IOMMU TLB on a walked translation.
        if let (Some(tlb), Some(p)) = (&mut self.iommu_tlb, pte) {
            if !walk.tlb_hit {
                tlb.insert(
                    TlbKey {
                        asid: walk.req.asid,
                        vpn: walk.req.vpn,
                    },
                    p,
                );
            }
        }
        let mut out = Vec::new();
        let coal_bits = pte.map_or(0, Pte::coal_bits);
        let info = if self.cfg.barre {
            CoalInfo::decode(coal_bits, self.cfg.coal_mode)
        } else {
            None
        };
        let pec_entry = info
            .as_ref()
            .and_then(|_| self.pec_buffer.lookup(walk.req.asid, walk.req.vpn).cloned());
        self.stats.ats_latency.record(now - walk.req.issued_at);
        out.push((
            now,
            AtsResponse {
                req: walk.req,
                pfn: pte.map(Pte::pfn),
                coal_bits: if self.cfg.barre { coal_bits } else { 0 },
                pec_entry: if self.cfg.ship_pec_entry {
                    pec_entry.clone()
                } else {
                    None
                },
                coalesced: false,
                iommu_tlb_hit: walk.tlb_hit,
                walk_started_at: walk.started_at,
            },
        ));
        // PEC calculation over the pending queue (§IV-F).
        if let (Some(info), Some(entry), Some(pte)) = (info, pec_entry, pte) {
            let mut kept = VecDeque::with_capacity(self.queue.len());
            let mut extra = 0u64;
            while let Some(pending) = self.queue.pop_front() {
                let calculated = (pending.asid == walk.req.asid)
                    .then(|| {
                        self.pec_logic
                            .calc_pfn(walk.req.vpn, pte.pfn(), &info, &entry, pending.vpn)
                    })
                    .flatten();
                match calculated {
                    Some(pfn) => {
                        extra += 1;
                        let ready = now + extra * self.cfg.pec_calc_latency;
                        self.stats.coalesced.inc();
                        self.stats.ats_latency.record(ready - pending.issued_at);
                        // The calculated page's own coalescing bits mirror
                        // the member position.
                        out.push((
                            ready,
                            AtsResponse {
                                req: pending,
                                pfn: Some(pfn),
                                coal_bits: self
                                    .member_bits(&info, &entry, walk.req.vpn, pending.vpn)
                                    .unwrap_or(coal_bits),
                                pec_entry: if self.cfg.ship_pec_entry {
                                    Some(entry.clone())
                                } else {
                                    None
                                },
                                coalesced: true,
                                iommu_tlb_hit: false,
                                walk_started_at: walk.started_at,
                            },
                        ));
                    }
                    None => kept.push_back(pending),
                }
            }
            self.queue = kept;
            // Speculative multicast (§IV-B): push every remaining group
            // member's calculated frame to its owning chiplet. Each
            // response consumes outbound bandwidth whether or not anyone
            // wanted it — the reason the paper rejects this design.
            if self.cfg.multicast {
                for m in self.pec_logic.members(walk.req.vpn, &info, &entry) {
                    if m.vpn == walk.req.vpn || out.iter().any(|(_, r)| r.req.vpn == m.vpn) {
                        continue;
                    }
                    let Some(pfn) =
                        self.pec_logic
                            .calc_pfn(walk.req.vpn, pte.pfn(), &info, &entry, m.vpn)
                    else {
                        continue;
                    };
                    extra += 1;
                    self.multicast_seq += 1;
                    out.push((
                        now + extra * self.cfg.pec_calc_latency,
                        AtsResponse {
                            req: AtsRequest {
                                id: u64::MAX - self.multicast_seq,
                                asid: walk.req.asid,
                                vpn: m.vpn,
                                chiplet: m.chiplet,
                                issued_at: now,
                            },
                            pfn: Some(pfn),
                            coal_bits: self
                                .member_bits(&info, &entry, walk.req.vpn, m.vpn)
                                .unwrap_or(coal_bits),
                            pec_entry: if self.cfg.ship_pec_entry {
                                Some(entry.clone())
                            } else {
                                None
                            },
                            coalesced: true,
                            iommu_tlb_hit: false,
                            walk_started_at: walk.started_at,
                        },
                    ));
                }
            }
        }
        out
    }

    /// The coalescing bits a *calculated* member's TLB entry should carry
    /// (its own inter/intra orders, same participation).
    fn member_bits(
        &self,
        info: &CoalInfo,
        entry: &PecEntry,
        pte_vpn: Vpn,
        member_vpn: Vpn,
    ) -> Option<u16> {
        let m = self
            .pec_logic
            .member_for(pte_vpn, info, entry, member_vpn)?;
        let rebuilt = match *info {
            CoalInfo::Base { bitmap, .. } => CoalInfo::Base {
                bitmap,
                inter_order: m.inter_order,
            },
            CoalInfo::Expanded { bitmap, merged, .. } => CoalInfo::Expanded {
                bitmap,
                inter_order: m.inter_order,
                intra_order: m.intra_order,
                merged,
            },
            CoalInfo::Wide { count, .. } => CoalInfo::Wide {
                count,
                inter_order: m.inter_order,
            },
        };
        Some(rebuilt.encode())
    }

    /// Invalidates an IOMMU TLB entry (page migration / shootdown).
    pub fn invalidate(&mut self, asid: u16, vpn: Vpn) {
        if let Some(tlb) = &mut self.iommu_tlb {
            tlb.invalidate(TlbKey { asid, vpn });
        }
    }

    /// Number of in-flight walks.
    pub fn active_walks(&self) -> usize {
        self.walks.iter().flatten().count()
    }

    /// Whether the IOMMU is completely idle.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active_walks() == 0
    }

    /// Statistics.
    pub fn stats(&self) -> &IommuStats {
        &self.stats
    }

    /// Read-only access to the PEC buffer (diagnostics).
    pub fn pec_buffer(&self) -> &PecBuffer {
        &self.pec_buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use barre_core::driver::{BarreAllocator, MappingPlan};
    use barre_mem::virt_alloc::VpnRange;
    use barre_mem::{ChipletId, FrameAllocator, PageTable};

    fn req(id: u64, vpn: u64, at: Cycle) -> AtsRequest {
        AtsRequest {
            id,
            asid: 0,
            vpn: Vpn(vpn),
            chiplet: ChipletId((id % 4) as u8),
            issued_at: at,
        }
    }

    /// Builds a Barre-mapped page table for the Fig 7a data-1 layout and
    /// returns (page table, PEC entry).
    fn fig7a_table(mode: CoalMode, max_merged: u8) -> (PageTable, PecEntry) {
        let mut frames: Vec<FrameAllocator> = (0..4).map(|_| FrameAllocator::new(1024)).collect();
        let mut d = BarreAllocator::new(mode, max_merged);
        let plan = MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x1),
                pages: 12,
            },
            3,
            &[ChipletId(0), ChipletId(1), ChipletId(2), ChipletId(3)],
        );
        let out = d.allocate(&plan, &mut frames).unwrap();
        let mut pt = PageTable::new(0);
        for (v, p) in out.ptes {
            pt.map(v, p);
        }
        (pt, out.pec)
    }

    #[test]
    fn baseline_walk_latency() {
        let mut io = Iommu::new(IommuConfig::default());
        let (pt, _) = fig7a_table(CoalMode::Base, 1);
        assert!(io.enqueue(req(1, 0x1, 0)));
        let started = io.dispatch(0);
        assert_eq!(started.len(), 1);
        let (ptw, done) = started[0];
        assert_eq!(done, 500);
        let rsp = io.complete_walk(ptw, done, |a, v| pt.lookup(v).filter(|_| a == 0));
        assert_eq!(rsp.len(), 1);
        assert!(rsp[0].1.pfn.is_some());
        assert!(!rsp[0].1.coalesced);
        assert_eq!(io.stats().walks.get(), 1);
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut io = Iommu::new(IommuConfig {
            pw_queue_entries: 2,
            ..IommuConfig::default()
        });
        assert!(io.enqueue(req(1, 0x1, 0)));
        assert!(io.enqueue(req(2, 0x2, 0)));
        assert!(!io.enqueue(req(3, 0x3, 0)));
        assert_eq!(io.stats().queue_rejections.get(), 1);
    }

    #[test]
    fn finite_ptws_limit_parallelism() {
        let mut io = Iommu::new(IommuConfig {
            ptws: Some(2),
            ..IommuConfig::default()
        });
        for i in 0..5 {
            io.enqueue(req(i, 0x10 + i, 0));
        }
        assert_eq!(io.dispatch(0).len(), 2);
        assert_eq!(io.active_walks(), 2);
        assert_eq!(io.queue_len(), 3);
    }

    #[test]
    fn infinite_ptws_start_everything() {
        let mut io = Iommu::new(IommuConfig {
            ptws: None,
            ..IommuConfig::default()
        });
        for i in 0..40 {
            io.enqueue(req(i, 0x10 + i, 0));
        }
        assert_eq!(io.dispatch(0).len(), 40);
    }

    #[test]
    fn barre_coalesces_pending_requests() {
        let (pt, pec) = fig7a_table(CoalMode::Base, 1);
        let mut io = Iommu::new(IommuConfig {
            barre: true,
            ..IommuConfig::default()
        });
        io.register_pec(pec);
        // 0x1, 0x4, 0x7, 0xA are one group: walk 0x1, the rest pend.
        io.enqueue(req(1, 0x1, 0));
        let started = io.dispatch(0);
        assert_eq!(started.len(), 1);
        // These arrive while the walk is in flight (16 PTWs idle, but we
        // hold dispatch to model them still queued).
        io.enqueue(req(2, 0x4, 10));
        io.enqueue(req(3, 0xA, 10));
        io.enqueue(req(4, 0x2, 10)); // different group
        let rsp = io.complete_walk(started[0].0, 500, |_, v| pt.lookup(v));
        let coalesced: Vec<u64> = rsp
            .iter()
            .filter(|(_, r)| r.coalesced)
            .map(|(_, r)| r.req.vpn.0)
            .collect();
        assert_eq!(coalesced, vec![0x4, 0xA]);
        // The different-group request stays queued.
        assert_eq!(io.queue_len(), 1);
        // Calculated PFNs match the table.
        for (_, r) in &rsp {
            assert_eq!(r.pfn.unwrap(), pt.lookup(r.req.vpn).unwrap().pfn());
        }
        // Calculated responses carry their own inter order.
        let r4 = rsp.iter().find(|(_, r)| r.req.vpn == Vpn(0x4)).unwrap();
        let i4 = CoalInfo::decode(r4.1.coal_bits, CoalMode::Base).unwrap();
        assert_eq!(i4.inter_order(), 1);
        assert_eq!(io.stats().coalesced.get(), 2);
    }

    #[test]
    fn pec_entry_shipped_only_when_configured() {
        let (pt, pec) = fig7a_table(CoalMode::Base, 1);
        for ship in [false, true] {
            let mut io = Iommu::new(IommuConfig {
                barre: true,
                ship_pec_entry: ship,
                ..IommuConfig::default()
            });
            io.register_pec(pec.clone());
            io.enqueue(req(1, 0x1, 0));
            let s = io.dispatch(0);
            let rsp = io.complete_walk(s[0].0, 500, |_, v| pt.lookup(v));
            assert_eq!(rsp[0].1.pec_entry.is_some(), ship);
        }
    }

    #[test]
    fn coalescing_sched_rotates_coalescible_head() {
        let (pt, pec) = fig7a_table(CoalMode::Base, 1);
        let mut io = Iommu::new(IommuConfig {
            barre: true,
            coalescing_sched: true,
            ptws: Some(1),
            ..IommuConfig::default()
        });
        io.register_pec(pec);
        io.enqueue(req(1, 0x1, 0));
        let s1 = io.dispatch(0);
        assert_eq!(s1.len(), 1);
        // 0x4 (same group as in-flight 0x1) sits at the head; 0x2 behind.
        io.enqueue(req(2, 0x4, 1));
        io.enqueue(req(3, 0x2, 1));
        // The single PTW frees at 500; the scheduler should skip 0x4 and
        // walk 0x2 instead.
        let rsp = io.complete_walk(s1[0].0, 500, |_, v| pt.lookup(v));
        // 0x4 got coalesced already by the completing walk...
        assert!(rsp
            .iter()
            .any(|(_, r)| r.req.vpn == Vpn(0x4) && r.coalesced));
        let s2 = io.dispatch(500);
        assert_eq!(s2.len(), 1);
        // ...so the next walk is 0x2 regardless; but the rotation stat
        // only moves when a coalescible head is skipped while its walk is
        // still active. Exercise that path directly:
        io.enqueue(req(4, 0x5, 501)); // same group as in-flight 0x2
        io.enqueue(req(5, 0xA1, 501)); // unrelated
                                       // no free PTWs -> nothing started
        assert!(io.dispatch(501).is_empty());
        let rsp2 = io.complete_walk(s2[0].0, 1000, |_, v| pt.lookup(v));
        assert!(rsp2
            .iter()
            .any(|(_, r)| r.req.vpn == Vpn(0x5) && r.coalesced));
    }

    #[test]
    fn iommu_tlb_hits_skip_walks() {
        let (pt, _) = fig7a_table(CoalMode::Base, 1);
        let mut io = Iommu::new(IommuConfig {
            iommu_tlb: Some((64, 4, 200)),
            ..IommuConfig::default()
        });
        // First translation: TLB miss, 200 + 500 cycles.
        io.enqueue(req(1, 0x1, 0));
        let s = io.dispatch(0);
        assert_eq!(s[0].1, 700);
        io.complete_walk(s[0].0, 700, |_, v| pt.lookup(v));
        // Second translation of the same page: 200-cycle TLB hit.
        io.enqueue(req(2, 0x1, 1000));
        let s = io.dispatch(1000);
        assert_eq!(s[0].1, 1200);
        let rsp = io.complete_walk(s[0].0, 1200, |_, v| pt.lookup(v));
        assert!(rsp[0].1.iommu_tlb_hit);
        assert_eq!(io.stats().walks.get(), 1);
        assert_eq!(io.stats().iommu_tlb.hits(), 1);
        // Invalidation forces a fresh walk.
        io.invalidate(0, Vpn(0x1));
        io.enqueue(req(3, 0x1, 2000));
        let s = io.dispatch(2000);
        assert_eq!(s[0].1, 2700);
    }

    #[test]
    fn unmapped_vpn_faults() {
        let mut io = Iommu::new(IommuConfig::default());
        let pt = PageTable::new(0);
        io.enqueue(req(1, 0x1, 0));
        let s = io.dispatch(0);
        let rsp = io.complete_walk(s[0].0, 500, |_, v| pt.lookup(v));
        assert!(rsp[0].1.pfn.is_none());
    }

    #[test]
    fn vpn_gap_histogram_records() {
        let mut io = Iommu::new(IommuConfig::default());
        io.enqueue(req(1, 0x100, 0));
        io.enqueue(req(2, 0x104, 0));
        io.enqueue(req(3, 0x100, 0));
        assert_eq!(io.stats().vpn_gap.count(), 2);
        assert_eq!(io.stats().vpn_gap.max(), 4);
    }

    #[test]
    fn expanded_mode_coalesces_merged_runs() {
        let (pt, pec) = fig7a_table(CoalMode::Expanded, 2);
        let mut io = Iommu::new(IommuConfig {
            barre: true,
            coal_mode: CoalMode::Expanded,
            max_merged: 2,
            ..IommuConfig::default()
        });
        io.register_pec(pec);
        io.enqueue(req(1, 0x1, 0));
        let s = io.dispatch(0);
        // Pending: same-chiplet sibling 0x2 (merged run) and remote 0xB.
        io.enqueue(req(2, 0x2, 1));
        io.enqueue(req(3, 0xB, 1));
        let rsp = io.complete_walk(s[0].0, 500, |_, v| pt.lookup(v));
        let coalesced: Vec<u64> = rsp
            .iter()
            .filter(|(_, r)| r.coalesced)
            .map(|(_, r)| r.req.vpn.0)
            .collect();
        assert_eq!(coalesced, vec![0x2, 0xB]);
        for (_, r) in &rsp {
            assert_eq!(r.pfn.unwrap(), pt.lookup(r.req.vpn).unwrap().pfn());
        }
    }
}
