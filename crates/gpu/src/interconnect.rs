//! The inter-chiplet mesh.
//!
//! Table II: 768 GB/s aggregate mesh bandwidth, 32-cycle hop latency. Each
//! chiplet owns an outbound port with its share of the aggregate
//! bandwidth; a transfer occupies the sender's port (serialization +
//! queueing) and arrives a hop latency later. Intra-chiplet transfers are
//! free (they never leave the chiplet).

use barre_mem::ChipletId;
use barre_sim::{Cycle, Link};

/// The mesh interconnect.
///
/// # Example
///
/// ```
/// use barre_gpu::Mesh;
/// use barre_mem::ChipletId;
///
/// let mut m = Mesh::paper_default(4);
/// let t = m.send(0, ChipletId(0), ChipletId(1), 64);
/// assert_eq!(t, 0 + 1 + 32);
/// assert_eq!(m.send(10, ChipletId(2), ChipletId(2), 64), 10); // local
/// ```
#[derive(Debug, Clone)]
pub struct Mesh {
    ports: Vec<Link>,
    latency: Cycle,
}

impl Mesh {
    /// Creates a mesh of `n_chiplets` ports, each with `latency` and
    /// `bytes_per_cycle` outbound bandwidth.
    pub fn new(n_chiplets: usize, latency: Cycle, bytes_per_cycle: u64) -> Self {
        Self {
            ports: (0..n_chiplets)
                .map(|_| Link::new(latency, bytes_per_cycle))
                .collect(),
            latency,
        }
    }

    /// Table II parameters: 32-cycle hops, 768 GB/s aggregate shared
    /// across the chiplets' outbound ports.
    pub fn paper_default(n_chiplets: usize) -> Self {
        let per_port = (768 / n_chiplets.max(1) as u64).max(1);
        Self::new(n_chiplets, 32, per_port)
    }

    /// Sends `bytes` from `from` to `to` at `now`; returns arrival time.
    /// Local transfers return immediately.
    pub fn send(&mut self, now: Cycle, from: ChipletId, to: ChipletId, bytes: u64) -> Cycle {
        if from == to {
            return now;
        }
        self.ports[from.index()].send(now, bytes)
    }

    /// Outbound backlog of `from`'s port — the congestion signal used for
    /// best-effort filter-update drops.
    pub fn backlog(&self, now: Cycle, from: ChipletId) -> Cycle {
        self.ports[from.index()].backlog(now)
    }

    /// Hop latency.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Total bytes ever sent from `from`.
    pub fn bytes_from(&self, from: ChipletId) -> u64 {
        self.ports[from.index()].total_bytes()
    }

    /// Total bytes across all ports.
    pub fn total_bytes(&self) -> u64 {
        self.ports.iter().map(Link::total_bytes).sum()
    }

    /// Total messages across all ports.
    pub fn total_msgs(&self) -> u64 {
        self.ports.iter().map(Link::total_msgs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_costs_latency_local_is_free() {
        let mut m = Mesh::new(2, 32, 64);
        assert_eq!(m.send(0, ChipletId(0), ChipletId(1), 64), 33);
        assert_eq!(m.send(0, ChipletId(0), ChipletId(0), 64), 0);
    }

    #[test]
    fn ports_are_independent() {
        let mut m = Mesh::new(3, 10, 1);
        let a = m.send(0, ChipletId(0), ChipletId(1), 50);
        let b = m.send(0, ChipletId(1), ChipletId(2), 50);
        assert_eq!(a, b); // no cross-port contention
                          // Same port queues.
        let c = m.send(0, ChipletId(0), ChipletId(2), 50);
        assert!(c > a);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = Mesh::paper_default(4);
        m.send(0, ChipletId(0), ChipletId(1), 100);
        m.send(0, ChipletId(1), ChipletId(0), 100);
        assert_eq!(m.total_bytes(), 200);
        assert_eq!(m.bytes_from(ChipletId(0)), 100);
        assert_eq!(m.total_msgs(), 2);
    }
}
