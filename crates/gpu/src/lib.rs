//! The MCM-GPU substrate: everything on the GPU side of the PCIe link.
//!
//! * [`topology`] — chiplet / shader-array / CU structure (Table II:
//!   4 chiplets × 4 SAs × 16 CUs).
//! * [`pattern`] — the access-stream abstraction CTAs execute; workload
//!   kernels implement it in `barre-workloads`.
//! * [`cta`] — cooperative thread arrays and the policy-driven CTA
//!   scheduler that co-locates CTAs with their data.
//! * [`cache`] — physically-indexed, physically-tagged tag-array caches
//!   (per-CU L1, per-chiplet L2).
//! * [`interconnect`] — the inter-chiplet mesh (768 GB/s, 32-cycle hops).
//! * [`gmmu`] — per-chiplet GPU MMUs walking a distributed page table,
//!   the MGvm substrate of §VII-F.

pub mod cache;
pub mod cta;
pub mod gmmu;
pub mod interconnect;
pub mod pattern;
pub mod topology;

pub use cache::TagCache;
pub use cta::{Cta, CtaId, CtaScheduler};
pub use gmmu::{GmmuConfig, GmmuUnit};
pub use interconnect::Mesh;
pub use pattern::AccessPattern;
pub use topology::{CuId, Topology};
