//! Physically-indexed, physically-tagged data caches.
//!
//! Tag-array-only models: the simulator needs hit/miss decisions and
//! occupancy, never the data. Used for the per-CU L1 vector cache (16 KiB,
//! 4-way) and the per-chiplet L2 (2 MiB, 16-way) of Table II.

use barre_mem::PhysAddr;
use barre_sim::RatioStat;

/// A set-associative tag cache over physical byte addresses.
///
/// # Example
///
/// ```
/// use barre_gpu::TagCache;
/// use barre_mem::PhysAddr;
///
/// let mut c = TagCache::new(16 * 1024, 4, 64);
/// assert!(!c.access(PhysAddr(0x1000)));
/// assert!(c.access(PhysAddr(0x1004))); // same line
/// ```
#[derive(Debug, Clone)]
pub struct TagCache {
    sets: Vec<Vec<(u64, u64)>>, // (line_tag, last_use)
    ways: usize,
    line_shift: u32,
    clock: u64,
    stats: RatioStat,
}

impl TagCache {
    /// Creates a cache of `bytes` capacity, `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics unless the geometry divides evenly into a power-of-two set
    /// count.
    pub fn new(bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = bytes / line_bytes;
        assert!(
            (lines as usize).is_multiple_of(ways),
            "capacity must divide into ways"
        );
        let nsets = lines as usize / ways;
        assert!(nsets.is_power_of_two(), "set count must be a power of two");
        Self {
            sets: (0..nsets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            line_shift: line_bytes.trailing_zeros(),
            clock: 0,
            stats: RatioStat::new(),
        }
    }

    fn line_of(&self, addr: PhysAddr) -> u64 {
        addr.0 >> self.line_shift
    }

    /// Accesses `addr`: returns `true` on hit; on miss the line is filled
    /// (allocate-on-miss, LRU victim).
    pub fn access(&mut self, addr: PhysAddr) -> bool {
        self.clock += 1;
        let line = self.line_of(addr);
        let nsets = self.sets.len();
        let set = &mut self.sets[(line as usize) & (nsets - 1)];
        if let Some(e) = set.iter_mut().find(|(t, _)| *t == line) {
            e.1 = self.clock;
            self.stats.record(true);
            return true;
        }
        self.stats.record(false);
        if set.len() == self.ways {
            // `set.len() == ways > 0`, so the min always exists; fall
            // back to slot 0 rather than panicking.
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, u))| *u)
                .map(|(i, _)| i)
                .unwrap_or(0);
            set.swap_remove(lru);
        }
        set.push((line, self.clock));
        false
    }

    /// Drops every line whose address falls in `[start, end)` — page
    /// migration invalidates the page's cached lines.
    pub fn invalidate_range(&mut self, start: PhysAddr, end: PhysAddr) {
        let lo = start.0 >> self.line_shift;
        let hi = end.0 >> self.line_shift;
        for set in &mut self.sets {
            set.retain(|(t, _)| !(lo..hi).contains(t));
        }
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> RatioStat {
        self.stats
    }

    /// Resident line count.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = TagCache::new(1024, 2, 64);
        assert!(!c.access(PhysAddr(0)));
        assert!(c.access(PhysAddr(63)));
        assert!(!c.access(PhysAddr(64)));
        assert_eq!(c.stats().hits(), 1);
    }

    #[test]
    fn lru_within_set() {
        // 2 sets × 2 ways, 64 B lines: lines 0,2,4 share set 0.
        let mut c = TagCache::new(256, 2, 64);
        c.access(PhysAddr(0)); // line 0
        c.access(PhysAddr(128)); // line 2
        c.access(PhysAddr(0)); // refresh line 0
        c.access(PhysAddr(256)); // line 4 evicts line 2
        assert!(c.access(PhysAddr(0)));
        assert!(!c.access(PhysAddr(128)));
    }

    #[test]
    fn invalidate_range_drops_page_lines() {
        let mut c = TagCache::new(4096, 4, 64);
        c.access(PhysAddr(0x1000));
        c.access(PhysAddr(0x1040));
        c.access(PhysAddr(0x3000));
        c.invalidate_range(PhysAddr(0x1000), PhysAddr(0x2000));
        assert!(!c.access(PhysAddr(0x1000)));
        assert!(c.access(PhysAddr(0x3000)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        TagCache::new(1024, 2, 48);
    }
}
