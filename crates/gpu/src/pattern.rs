//! The access-stream abstraction.
//!
//! A CTA's execution, for translation purposes, is its sequence of
//! *warp-level memory instructions*. Each instruction carries up to 32
//! lane addresses: a coalesced stream touches one or two pages per
//! instruction, while an uncoalesced gather (SpMV columns, GUPS updates)
//! touches up to 32 distinct pages — which is how Table I reaches
//! thousands of L2 TLB misses *per kilo warp instruction*.
//!
//! Workload kernels implement [`AccessPattern`]; the system model pulls
//! one warp instruction at a time as warp slots free up.

use barre_mem::VirtAddr;

/// Lanes per warp (GCN3 wavefront size is 64; the translation behaviour
/// the paper models uses 32-lane warp instructions, which we follow).
pub const WARP_LANES: usize = 32;

/// One warp-level memory instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpAccess {
    /// Lane byte addresses (1..=32; coalesced patterns may carry fewer
    /// representative addresses when all lanes share a page run).
    pub addrs: Vec<VirtAddr>,
    /// Whether the instruction writes.
    pub write: bool,
}

impl WarpAccess {
    /// A fully-coalesced read: `lanes` consecutive `elem_bytes` elements
    /// from `base`.
    pub fn coalesced(base: VirtAddr, lanes: usize, elem_bytes: u64) -> Self {
        // A coalesced warp touches a contiguous block; representative
        // addresses at the block's first and last byte cover every page
        // the hardware would translate.
        let last = base.0 + (lanes.max(1) as u64 * elem_bytes).saturating_sub(1);
        let mut addrs = vec![base];
        if last != base.0 {
            addrs.push(VirtAddr(last));
        }
        Self {
            addrs,
            write: false,
        }
    }

    /// Marks the instruction as a store.
    pub fn as_write(mut self) -> Self {
        self.write = true;
        self
    }
}

/// A finite stream of warp-level memory instructions.
///
/// Implementations must be deterministic: the same constructed pattern
/// yields the same stream.
pub trait AccessPattern {
    /// The next warp instruction, or `None` when the CTA has finished.
    fn next_warp(&mut self) -> Option<WarpAccess>;

    /// Warp-level instructions executed per memory instruction (including
    /// the access itself) — the MPKI denominator. Default 10.
    fn insns_per_access(&self) -> u64 {
        10
    }
}

/// A simple coalesced linear sweep over a byte range — used by tests and
/// the quickstart example.
#[derive(Debug, Clone)]
pub struct LinearSweep {
    next: u64,
    end: u64,
    warp_bytes: u64,
    insns: u64,
}

impl LinearSweep {
    /// Sweeps `[start, end)`, one 32-lane × 8-byte (256 B) coalesced warp
    /// access at a time.
    pub fn new(start: VirtAddr, end: VirtAddr) -> Self {
        Self {
            next: start.0,
            end: end.0,
            warp_bytes: (WARP_LANES * 8) as u64,
            insns: 10,
        }
    }

    /// Overrides the instructions-per-access ratio.
    pub fn with_insns_per_access(mut self, insns: u64) -> Self {
        self.insns = insns.max(1);
        self
    }
}

impl AccessPattern for LinearSweep {
    fn next_warp(&mut self) -> Option<WarpAccess> {
        if self.next >= self.end {
            return None;
        }
        let bytes = self.warp_bytes.min(self.end - self.next);
        let a = WarpAccess::coalesced(VirtAddr(self.next), WARP_LANES, bytes / WARP_LANES as u64);
        self.next += self.warp_bytes;
        Some(a)
    }

    fn insns_per_access(&self) -> u64 {
        self.insns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_access_spans_block() {
        let a = WarpAccess::coalesced(VirtAddr(0x1000), 32, 8);
        assert_eq!(a.addrs[0], VirtAddr(0x1000));
        assert_eq!(a.addrs[1], VirtAddr(0x10FF));
        assert!(!a.write);
        assert!(WarpAccess::coalesced(VirtAddr(0), 32, 8).as_write().write);
    }

    #[test]
    fn linear_sweep_covers_range() {
        let mut p = LinearSweep::new(VirtAddr(0), VirtAddr(512));
        let firsts: Vec<u64> = std::iter::from_fn(|| p.next_warp())
            .map(|a| a.addrs[0].0)
            .collect();
        assert_eq!(firsts, vec![0, 256]);
    }

    #[test]
    fn insns_override() {
        let p = LinearSweep::new(VirtAddr(0), VirtAddr(64)).with_insns_per_access(3);
        assert_eq!(p.insns_per_access(), 3);
    }

    #[test]
    fn single_lane_access() {
        let a = WarpAccess::coalesced(VirtAddr(8), 1, 8);
        assert_eq!(a.addrs.len(), 2);
        assert_eq!(a.addrs[1], VirtAddr(15));
    }
}
