//! MCM-GPU topology.

use barre_mem::ChipletId;

/// Identifier of one compute unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CuId {
    /// Owning chiplet.
    pub chiplet: ChipletId,
    /// Shader array within the chiplet.
    pub sa: u8,
    /// CU within the shader array.
    pub cu: u8,
}

/// The MCM package structure.
///
/// # Example
///
/// ```
/// use barre_gpu::Topology;
/// let t = Topology::paper_default();
/// assert_eq!(t.total_cus(), 256);
/// assert_eq!(t.cus_per_chiplet(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// GPU chiplets in the package.
    pub n_chiplets: usize,
    /// Shader arrays per chiplet.
    pub sas_per_chiplet: usize,
    /// CUs per shader array.
    pub cus_per_sa: usize,
}

impl Topology {
    /// Table II: 4 chiplets × 4 SAs × 16 CUs = 256 CUs.
    pub fn paper_default() -> Self {
        Self {
            n_chiplets: 4,
            sas_per_chiplet: 4,
            cus_per_sa: 16,
        }
    }

    /// A scaled-down topology for fast experiment sweeps
    /// (4 chiplets × 2 SAs × 4 CUs = 32 CUs).
    pub fn scaled() -> Self {
        Self {
            n_chiplets: 4,
            sas_per_chiplet: 2,
            cus_per_sa: 4,
        }
    }

    /// Same shape with a different chiplet count (Fig 20 sweeps 2–16).
    pub fn with_chiplets(mut self, n: usize) -> Self {
        self.n_chiplets = n;
        self
    }

    /// CUs per chiplet.
    pub fn cus_per_chiplet(&self) -> usize {
        self.sas_per_chiplet * self.cus_per_sa
    }

    /// Total CUs in the package.
    pub fn total_cus(&self) -> usize {
        self.n_chiplets * self.cus_per_chiplet()
    }

    /// All chiplet ids.
    pub fn chiplets(&self) -> impl Iterator<Item = ChipletId> {
        (0..self.n_chiplets).map(|i| ChipletId(i as u8))
    }

    /// All CU ids of one chiplet, SA-major.
    pub fn cus_of(&self, chiplet: ChipletId) -> impl Iterator<Item = CuId> + '_ {
        let sas = self.sas_per_chiplet as u8;
        let cus = self.cus_per_sa as u8;
        (0..sas).flat_map(move |sa| (0..cus).map(move |cu| CuId { chiplet, sa, cu }))
    }

    /// Flat index of a CU within its chiplet.
    pub fn cu_index(&self, cu: CuId) -> usize {
        cu.sa as usize * self.cus_per_sa + cu.cu as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let t = Topology::paper_default();
        assert_eq!(t.total_cus(), 256);
        assert_eq!(t.chiplets().count(), 4);
        assert_eq!(t.cus_of(ChipletId(0)).count(), 64);
    }

    #[test]
    fn cu_index_is_dense_and_unique() {
        let t = Topology::scaled();
        let mut seen = std::collections::BTreeSet::new();
        for cu in t.cus_of(ChipletId(1)) {
            assert!(seen.insert(t.cu_index(cu)));
        }
        assert_eq!(seen.len(), t.cus_per_chiplet());
        assert_eq!(*seen.iter().max().unwrap(), t.cus_per_chiplet() - 1);
    }

    #[test]
    fn with_chiplets_rescales() {
        let t = Topology::paper_default().with_chiplets(8);
        assert_eq!(t.total_cus(), 512);
    }
}
