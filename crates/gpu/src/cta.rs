//! Cooperative thread arrays and their scheduler.
//!
//! The mapping policy assigns every CTA a *home chiplet* (co-located with
//! its data under LASP/CODA/chunking); within a chiplet, CTAs are handed
//! to CUs in order as slots free up, matching the paper's §II-B ("within
//! each GPU chiplet, the assigned CTAs are mapped across CUs as the
//! execution progresses").

use std::collections::VecDeque;

use barre_mem::ChipletId;

use crate::pattern::AccessPattern;

/// CTA identifier (kernel-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtaId(pub u32);

/// One schedulable CTA: a home chiplet plus its access stream.
pub struct Cta {
    /// Kernel-wide id.
    pub id: CtaId,
    /// Address space it runs in.
    pub asid: u16,
    /// Home chiplet chosen by the mapping policy.
    pub home: ChipletId,
    /// The access stream it will execute.
    pub pattern: Box<dyn AccessPattern>,
}

impl std::fmt::Debug for Cta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cta")
            .field("id", &self.id)
            .field("asid", &self.asid)
            .field("home", &self.home)
            .finish()
    }
}

/// Per-chiplet CTA dispenser.
///
/// # Example
///
/// ```
/// use barre_gpu::{Cta, CtaId, CtaScheduler};
/// use barre_gpu::pattern::LinearSweep;
/// use barre_mem::{ChipletId, VirtAddr};
///
/// let ctas = vec![Cta {
///     id: CtaId(0),
///     asid: 0,
///     home: ChipletId(1),
///     pattern: Box::new(LinearSweep::new(VirtAddr(0), VirtAddr(64))),
/// }];
/// let mut sched = CtaScheduler::new(4, ctas);
/// assert!(sched.next_for(ChipletId(0)).is_none());
/// assert!(sched.next_for(ChipletId(1)).is_some());
/// assert!(sched.is_drained());
/// ```
#[derive(Debug)]
pub struct CtaScheduler {
    queues: Vec<VecDeque<Cta>>,
    total: usize,
    dispensed: usize,
}

impl CtaScheduler {
    /// Creates a scheduler distributing `ctas` to their home queues.
    ///
    /// # Panics
    ///
    /// Panics if any CTA's home chiplet is outside `n_chiplets`.
    pub fn new(n_chiplets: usize, ctas: Vec<Cta>) -> Self {
        let mut queues: Vec<VecDeque<Cta>> = (0..n_chiplets).map(|_| VecDeque::new()).collect();
        let total = ctas.len();
        for cta in ctas {
            assert!(
                cta.home.index() < n_chiplets,
                "CTA {:?} homed outside the MCM",
                cta.id
            );
            queues[cta.home.index()].push_back(cta);
        }
        Self {
            queues,
            total,
            dispensed: 0,
        }
    }

    /// Hands the next CTA homed on `chiplet` to a free CU, if any remain.
    pub fn next_for(&mut self, chiplet: ChipletId) -> Option<Cta> {
        let cta = self.queues[chiplet.index()].pop_front();
        if cta.is_some() {
            self.dispensed += 1;
        }
        cta
    }

    /// CTAs not yet dispensed for `chiplet`.
    pub fn pending(&self, chiplet: ChipletId) -> usize {
        self.queues[chiplet.index()].len()
    }

    /// Whether every CTA has been handed out.
    pub fn is_drained(&self) -> bool {
        self.dispensed == self.total
    }

    /// Total CTA count.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::LinearSweep;
    use barre_mem::VirtAddr;

    fn cta(id: u32, home: u8) -> Cta {
        Cta {
            id: CtaId(id),
            asid: 0,
            home: ChipletId(home),
            pattern: Box::new(LinearSweep::new(VirtAddr(0), VirtAddr(64))),
        }
    }

    #[test]
    fn queues_are_per_chiplet_fifo() {
        let mut s = CtaScheduler::new(2, vec![cta(0, 0), cta(1, 1), cta(2, 0)]);
        assert_eq!(s.pending(ChipletId(0)), 2);
        assert_eq!(s.next_for(ChipletId(0)).unwrap().id, CtaId(0));
        assert_eq!(s.next_for(ChipletId(0)).unwrap().id, CtaId(2));
        assert!(s.next_for(ChipletId(0)).is_none());
        assert!(!s.is_drained());
        s.next_for(ChipletId(1));
        assert!(s.is_drained());
        assert_eq!(s.total(), 3);
    }

    #[test]
    #[should_panic(expected = "homed outside")]
    fn out_of_range_home_panics() {
        CtaScheduler::new(2, vec![cta(0, 5)]);
    }
}
