//! Per-chiplet GPU MMUs over a distributed page table (the MGvm substrate,
//! Pratheek et al. MICRO'22, used by §VII-F).
//!
//! Under MGvm there is no IOMMU on the translation path: each chiplet has
//! a private GMMU whose walkers access the page table in GPU memory. MGvm
//! distributes page-table pages next to the data they map, so a walk is
//! *local* when the leaf PTE lives in the walking chiplet's memory and
//! *remote* (mesh round-trip per walk) otherwise. Barre Chord integrates
//! by attaching a PEC logic to each GMMU: one walk then serves the whole
//! coalescing group, removing both local and remote walks (the red line of
//! Fig 21).

use std::collections::VecDeque;

use barre_core::{CoalInfo, CoalMode, PecBuffer, PecEntry, PecLogic};
use barre_iommu::{AtsRequest, AtsResponse};
use barre_mem::{ChipletId, Pte, Vpn};
use barre_sim::{Counter, Cycle};

/// GMMU configuration (per chiplet).
#[derive(Debug, Clone)]
pub struct GmmuConfig {
    /// Walkers per chiplet GMMU (MGvm splits the IOMMU's 16 across
    /// chiplets: 4 per chiplet in the 4-chiplet baseline).
    pub walkers: usize,
    /// Walk-queue entries per GMMU.
    pub queue_entries: usize,
    /// Walk latency when the leaf PTE is in local memory.
    pub local_walk_latency: Cycle,
    /// Extra latency when the leaf PTE is homed on another chiplet.
    pub remote_walk_penalty: Cycle,
    /// Whether Barre's PEC calculation is attached.
    pub barre: bool,
    /// PTE layout in force.
    pub coal_mode: CoalMode,
    /// Per-calculated-response PEC latency.
    pub pec_calc_latency: Cycle,
    /// PEC buffer entries.
    pub pec_buffer_entries: usize,
}

impl Default for GmmuConfig {
    fn default() -> Self {
        Self {
            walkers: 4,
            queue_entries: 16,
            local_walk_latency: 300,
            remote_walk_penalty: 200,
            barre: false,
            coal_mode: CoalMode::Base,
            pec_calc_latency: 2,
            pec_buffer_entries: 5,
        }
    }
}

#[derive(Debug, Clone)]
struct GmmuWalk {
    req: AtsRequest,
    started_at: Cycle,
    done_at: Cycle,
    remote: bool,
}

/// One chiplet's GMMU.
#[derive(Debug)]
pub struct GmmuUnit {
    chiplet: ChipletId,
    cfg: GmmuConfig,
    queue: VecDeque<AtsRequest>,
    walks: Vec<Option<GmmuWalk>>,
    pec_logic: PecLogic,
    pec_buffer: PecBuffer,
    /// Walks whose leaf PTE was local.
    pub local_walks: Counter,
    /// Walks that crossed the mesh for their PTE.
    pub remote_walks: Counter,
    /// Translations served by PEC calculation.
    pub coalesced: Counter,
    /// Requests rejected on a full queue.
    pub rejections: Counter,
}

impl GmmuUnit {
    /// Creates the GMMU of `chiplet`.
    ///
    /// # Panics
    ///
    /// Panics if walkers or queue entries are zero.
    pub fn new(chiplet: ChipletId, cfg: GmmuConfig) -> Self {
        assert!(cfg.walkers > 0, "GMMU needs walkers");
        assert!(cfg.queue_entries > 0, "GMMU needs a queue");
        Self {
            chiplet,
            pec_logic: PecLogic::new(cfg.coal_mode),
            pec_buffer: PecBuffer::new(cfg.pec_buffer_entries),
            walks: vec![None; cfg.walkers],
            queue: VecDeque::new(),
            cfg,
            local_walks: Counter::new(),
            remote_walks: Counter::new(),
            coalesced: Counter::new(),
            rejections: Counter::new(),
        }
    }

    /// The owning chiplet.
    pub fn chiplet(&self) -> ChipletId {
        self.chiplet
    }

    /// Registers a data object's PEC record.
    pub fn register_pec(&mut self, entry: PecEntry) {
        self.pec_buffer.insert(entry);
    }

    /// Accepts a walk request; `false` when the queue is full.
    pub fn enqueue(&mut self, req: AtsRequest) -> bool {
        if self.queue.len() >= self.cfg.queue_entries {
            self.rejections.inc();
            return false;
        }
        self.queue.push_back(req);
        true
    }

    /// Starts walks on idle walkers. `pte_home` locates the chiplet whose
    /// memory holds the leaf PTE (MGvm co-locates it with the data).
    pub fn dispatch(
        &mut self,
        now: Cycle,
        pte_home: impl Fn(u16, Vpn) -> Option<ChipletId>,
    ) -> Vec<(usize, Cycle)> {
        let mut started = Vec::new();
        while let Some(slot) = self.walks.iter().position(Option::is_none) {
            let Some(req) = self.queue.pop_front() else {
                break;
            };
            let remote = pte_home(req.asid, req.vpn)
                .map(|h| h != self.chiplet)
                .unwrap_or(false);
            let latency = self.cfg.local_walk_latency
                + if remote {
                    self.cfg.remote_walk_penalty
                } else {
                    0
                };
            let done_at = now + latency;
            self.walks[slot] = Some(GmmuWalk {
                req,
                started_at: now,
                done_at,
                remote,
            });
            started.push((slot, done_at));
        }
        started
    }

    /// Completes the walk on `walker`, with Barre coalescing over the
    /// local queue when configured. Semantics mirror
    /// [`barre_iommu::Iommu::complete_walk`].
    pub fn complete_walk(
        &mut self,
        walker: usize,
        now: Cycle,
        lookup: impl Fn(u16, Vpn) -> Option<Pte>,
    ) -> Vec<(Cycle, AtsResponse)> {
        // A completion event for an idle or out-of-range walker is a
        // scheduling bug upstream; respond with no translations instead
        // of tearing the simulation down.
        let Some(walk) = self.walks.get_mut(walker).and_then(Option::take) else {
            return Vec::new();
        };
        debug_assert!(now >= walk.done_at);
        if walk.remote {
            self.remote_walks.inc();
        } else {
            self.local_walks.inc();
        }
        let pte = lookup(walk.req.asid, walk.req.vpn);
        let coal_bits = pte.map_or(0, Pte::coal_bits);
        let info = if self.cfg.barre {
            CoalInfo::decode(coal_bits, self.cfg.coal_mode)
        } else {
            None
        };
        let pec_entry = info
            .as_ref()
            .and_then(|_| self.pec_buffer.lookup(walk.req.asid, walk.req.vpn).cloned());
        let mut out = vec![(
            now,
            AtsResponse {
                req: walk.req,
                pfn: pte.map(Pte::pfn),
                coal_bits: if self.cfg.barre { coal_bits } else { 0 },
                pec_entry: pec_entry.clone(),
                coalesced: false,
                iommu_tlb_hit: false,
                walk_started_at: walk.started_at,
            },
        )];
        if let (Some(info), Some(entry), Some(pte)) = (info, pec_entry, pte) {
            let mut kept = VecDeque::with_capacity(self.queue.len());
            let mut extra = 0u64;
            while let Some(pending) = self.queue.pop_front() {
                let calculated = (pending.asid == walk.req.asid)
                    .then(|| {
                        self.pec_logic
                            .calc_pfn(walk.req.vpn, pte.pfn(), &info, &entry, pending.vpn)
                    })
                    .flatten();
                match calculated {
                    Some(pfn) => {
                        extra += 1;
                        self.coalesced.inc();
                        out.push((
                            now + extra * self.cfg.pec_calc_latency,
                            AtsResponse {
                                req: pending,
                                pfn: Some(pfn),
                                coal_bits,
                                pec_entry: Some(entry.clone()),
                                coalesced: true,
                                iommu_tlb_hit: false,
                                walk_started_at: walk.started_at,
                            },
                        ));
                    }
                    None => kept.push_back(pending),
                }
            }
            self.queue = kept;
        }
        out
    }

    /// Whether the unit has no queued or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.walks.iter().all(Option::is_none)
    }

    /// Queue occupancy.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use barre_core::driver::{BarreAllocator, MappingPlan};
    use barre_mem::virt_alloc::VpnRange;
    use barre_mem::{FrameAllocator, PageTable};

    fn fig7a() -> (PageTable, PecEntry) {
        let mut frames: Vec<FrameAllocator> = (0..4).map(|_| FrameAllocator::new(256)).collect();
        let mut d = BarreAllocator::new(CoalMode::Base, 1);
        let plan = MappingPlan::interleaved(
            VpnRange {
                start: Vpn(0x1),
                pages: 12,
            },
            3,
            &[ChipletId(0), ChipletId(1), ChipletId(2), ChipletId(3)],
        );
        let out = d.allocate(&plan, &mut frames).unwrap();
        let mut pt = PageTable::new(0);
        for (v, p) in out.ptes {
            pt.map(v, p);
        }
        (pt, out.pec)
    }

    fn req(id: u64, vpn: u64) -> AtsRequest {
        AtsRequest {
            id,
            asid: 0,
            vpn: Vpn(vpn),
            chiplet: ChipletId(0),
            issued_at: 0,
        }
    }

    #[test]
    fn local_vs_remote_walk_latency() {
        let (pt, _) = fig7a();
        let mut g = GmmuUnit::new(ChipletId(0), GmmuConfig::default());
        // 0x1 is mapped on chiplet 0 (local); 0x4 on chiplet 1 (remote).
        g.enqueue(req(1, 0x1));
        g.enqueue(req(2, 0x4));
        let home = |_: u16, v: Vpn| pt.lookup(v).map(|p| p.pfn().chiplet());
        let started = g.dispatch(0, home);
        assert_eq!(started[0].1, 300);
        assert_eq!(started[1].1, 500);
        g.complete_walk(started[0].0, 300, |_, v| pt.lookup(v));
        g.complete_walk(started[1].0, 500, |_, v| pt.lookup(v));
        assert_eq!(g.local_walks.get(), 1);
        assert_eq!(g.remote_walks.get(), 1);
    }

    #[test]
    fn barre_gmmu_coalesces_and_removes_remote_walks() {
        let (pt, pec) = fig7a();
        let mut g = GmmuUnit::new(
            ChipletId(0),
            GmmuConfig {
                barre: true,
                walkers: 1,
                ..GmmuConfig::default()
            },
        );
        g.register_pec(pec);
        g.enqueue(req(1, 0x1)); // local walk
        let home = |_: u16, v: Vpn| pt.lookup(v).map(|p| p.pfn().chiplet());
        let started = g.dispatch(0, home);
        // 0x4 and 0xA would both be remote walks; they pend instead.
        g.enqueue(req(2, 0x4));
        g.enqueue(req(3, 0xA));
        let rsp = g.complete_walk(started[0].0, 300, |_, v| pt.lookup(v));
        assert_eq!(rsp.len(), 3);
        assert_eq!(g.coalesced.get(), 2);
        assert_eq!(g.remote_walks.get(), 0);
        for (_, r) in &rsp {
            assert_eq!(r.pfn.unwrap(), pt.lookup(r.req.vpn).unwrap().pfn());
        }
    }

    #[test]
    fn queue_capacity() {
        let mut g = GmmuUnit::new(
            ChipletId(0),
            GmmuConfig {
                queue_entries: 1,
                ..GmmuConfig::default()
            },
        );
        assert!(g.enqueue(req(1, 1)));
        assert!(!g.enqueue(req(2, 2)));
        assert_eq!(g.rejections.get(), 1);
    }

    #[test]
    fn idle_tracking() {
        let (pt, _) = fig7a();
        let mut g = GmmuUnit::new(ChipletId(0), GmmuConfig::default());
        assert!(g.is_idle());
        g.enqueue(req(1, 0x1));
        assert!(!g.is_idle());
        let s = g.dispatch(0, |_, _| Some(ChipletId(0)));
        g.complete_walk(s[0].0, 300, |_, v| pt.lookup(v));
        assert!(g.is_idle());
    }
}
