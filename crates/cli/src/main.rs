//! The `barre` binary: see [`barre_cli::USAGE`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match barre_cli::parse(&args) {
        Ok(cmd) => std::process::exit(barre_cli::execute(cmd)),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", barre_cli::USAGE);
            std::process::exit(2);
        }
    }
}
