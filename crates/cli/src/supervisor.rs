//! The crash-isolated sweep supervisor behind `barre sweep --supervise`.
//!
//! Each sweep job runs in a child process — a self-exec of the `barre`
//! binary with the original command line plus `--job-index <i>` — so a
//! panicking, hanging, or killed configuration takes down only its own
//! attempt, never the campaign. The supervisor enforces a per-job
//! wall-clock timeout, retries transient failures (timeout, nonzero
//! exit, signal, watchdog fire) with capped exponential backoff, drains
//! in-flight children on SIGINT *or* SIGTERM, and records every
//! transition in the append-only write-ahead journal
//! (`sweep.journal.jsonl`) so `--resume` skips finished configs and
//! reproduces the uninterrupted output byte for byte. Permanent
//! failures (invalid configuration, deterministic translation faults —
//! child exit `EXIT_PERMANENT`) are reported immediately without
//! burning retries.
//!
//! The attempt machinery (child spawn/kill/classify, deterministic
//! backoff) and the drain-signal handler are shared with the `barre
//! serve` daemon and live in [`barre_serve::attempt`] and
//! [`barre_serve::signal`]; this module re-exports them under their
//! historical names.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use barre_serve::attempt::{run_attempt, Attempt};
use barre_system::journal::{
    completed_index, fingerprint, metrics_digest, metrics_from_json, metrics_hist_digest,
    read_journal, JournalError, JournalEvent, JournalRecord, JournalWriter, JOURNAL_FILE,
};
use barre_system::{LabeledJob, RunMetrics};

/// Set once a drain signal (SIGINT or SIGTERM) lands; checked between
/// job dispatches and during backoff sleeps. Once set, no new children
/// are spawned — in-flight jobs finish and their results are journaled
/// before the supervisor exits with [`interrupt_exit_code`].
pub use barre_serve::signal::SHUTDOWN as INTERRUPTED;

/// Installs the SIGINT/SIGTERM drain handlers (the first signal drains;
/// the default disposition is not restored, so the journal always stays
/// consistent).
pub use barre_serve::signal::install_drain_handlers;

/// The supervisor's retry backoff and child usage exit code, shared with
/// the daemon.
pub use barre_serve::attempt::{backoff_delay, EXIT_USAGE};

/// Process exit code after a graceful SIGINT drain (128 + SIGINT). Kept
/// for callers that pinned the historical constant; prefer
/// [`interrupt_exit_code`], which reports 143 after a SIGTERM drain.
pub const EXIT_INTERRUPTED: i32 = 130;

/// Exit code for the drain that just happened: 128 + the signal number
/// (130 for SIGINT, 143 for SIGTERM), following shell convention so
/// callers can tell which signal ended the campaign.
pub fn interrupt_exit_code() -> i32 {
    barre_serve::signal::drain_exit_code()
}

/// Raises SIGKILL on the current process — the crash hook the
/// kill-and-resume integration test uses to simulate a hard child death.
#[cfg(unix)]
pub fn kill_self() -> ! {
    extern "C" {
        fn raise(sig: i32) -> i32;
    }
    const SIGKILL: i32 = 9;
    // SAFETY: raise(SIGKILL) terminates this process; nothing after it
    // executes.
    unsafe {
        let _ = raise(SIGKILL);
    }
    std::process::exit(137)
}

/// Off unix, approximate a SIGKILL death with the conventional code.
#[cfg(not(unix))]
pub fn kill_self() -> ! {
    std::process::exit(137)
}

/// How a supervised sweep runs: journal location, resume mode, per-job
/// timeout, retry budget, and the argument list children are re-executed
/// with (the original command line minus supervisor-only flags).
#[derive(Debug, Clone)]
pub struct SuperviseOpts {
    /// Journal directory or `.jsonl` file path (see [`journal_file_of`]).
    pub journal: PathBuf,
    /// Whether to skip jobs already recorded as done in the journal.
    pub resume: bool,
    /// Per-job wall-clock budget; `None` = unlimited.
    pub timeout: Option<Duration>,
    /// Transient-failure retries per job (attempts = retries + 1).
    pub retries: u32,
    /// Base argument list for children; `--job-index <i>` is appended.
    pub child_args: Vec<String>,
}

/// One job's labeled failure, reported after the rest of the sweep has
/// still run to completion.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Index into the sweep's job list.
    pub index: usize,
    /// Human label (`"gups/fbarre"`).
    pub label: String,
    /// Last attempt's exit status (`"exit:65"`, `"signal:9"`, `"timeout"`).
    pub exit: String,
    /// Attempts consumed.
    pub attempts: u32,
    /// Per-job state-dump file under the journal directory, when written.
    pub dump: Option<PathBuf>,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FAILED {} after {} attempt(s): {}",
            self.label, self.attempts, self.exit
        )?;
        if let Some(d) = &self.dump {
            write!(f, " (state dump: {})", d.display())?;
        }
        Ok(())
    }
}

/// The supervisor's verdict on a whole sweep.
#[derive(Debug)]
pub struct SupervisedRun {
    /// Per-job metrics, input order. `None` for failed or skipped jobs.
    pub results: Vec<Option<RunMetrics>>,
    /// Jobs that exhausted their retries (or failed permanently).
    pub failures: Vec<JobFailure>,
    /// Jobs taken from the journal rather than re-run.
    pub resumed: usize,
    /// Whether a SIGINT drain cut the campaign short.
    pub interrupted: bool,
}

/// Resolves a `--journal`/`--resume` path to the journal file: a path
/// ending in `.jsonl` is used as-is, anything else is treated as the
/// journal directory and gets [`JOURNAL_FILE`] appended.
pub fn journal_file_of(path: &Path) -> PathBuf {
    if path.extension().is_some_and(|e| e == "jsonl") {
        path.to_path_buf()
    } else {
        path.join(JOURNAL_FILE)
    }
}

/// The fingerprint identifying job `index` of a sweep launched with
/// `child_args`: stable across supervisor and resume invocations, and
/// across shards launched with the same command line.
pub fn job_fingerprint(child_args: &[String], index: usize, label: &str) -> String {
    let joined = child_args.join("\u{1f}");
    let idx = index.to_string();
    fingerprint(&[&joined, &idx, label])
}

/// The worker identity stamped onto supervised `done` journal records:
/// `$BARRE_WORKER_ID` when set and non-empty (e.g. one value per host in
/// a hand-sharded campaign), otherwise `None` — so merged multi-host
/// journals are attributable without perturbing single-host output.
pub fn worker_identity() -> Option<String> {
    std::env::var("BARRE_WORKER_ID")
        .ok()
        .filter(|s| !s.is_empty())
}

/// Sleeps `d` in small slices, returning early once a drain signal is
/// seen.
fn sleep_interruptible(d: Duration) {
    let until = Instant::now() + d;
    while Instant::now() < until && !INTERRUPTED.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(20));
    }
}

enum JobOutcome {
    Done(Box<RunMetrics>),
    Failed(JobFailure),
    /// A drain signal arrived before the job reached a terminal state;
    /// the journal holds no terminal record, so `--resume` reruns it.
    Skipped,
}

/// Writes the per-job state dump (captured child output) under the
/// journal directory, returning its path. Called on terminal failures —
/// watchdog fires and timeouts land here with the machine-state summary
/// the child printed to stderr.
fn write_dump(
    dir: &Path,
    index: usize,
    fp: &str,
    label: &str,
    exit: &str,
    attempts: u32,
    a: &Attempt,
) -> Option<PathBuf> {
    let path = dir.join(format!("job-{index:03}-{fp}.dump.txt"));
    let body = format!(
        "job: {label}\nfingerprint: {fp}\nexit: {exit}\nattempts: {attempts}\n\
         --- stdout ---\n{}\n--- stderr ---\n{}\n",
        a.stdout, a.stderr
    );
    std::fs::write(&path, body).ok().map(|()| path)
}

/// Runs one job to a terminal state: attempt, classify, retry transient
/// failures with backoff, journal every transition.
fn supervise_job(
    program: &Path,
    opts: &SuperviseOpts,
    writer: &JournalWriter,
    dump_dir: &Path,
    index: usize,
    label: &str,
    fp: &str,
) -> Result<JobOutcome, JournalError> {
    let mut args = opts.child_args.clone();
    args.push("--job-index".to_string());
    args.push(index.to_string());
    let max_attempts = opts.retries.saturating_add(1);
    let mut attempt = 1u32;
    loop {
        if INTERRUPTED.load(Ordering::SeqCst) {
            return Ok(JobOutcome::Skipped);
        }
        // Write-ahead: the attempt is journaled before it runs.
        writer.append(&JournalRecord {
            fingerprint: fp.to_string(),
            label: label.to_string(),
            event: JournalEvent::Start { attempt },
        })?;
        let a = run_attempt(program, &args, opts.timeout);
        if a.exit == "ok" {
            let parsed = a
                .stdout
                .lines()
                .rev()
                .find(|l| !l.trim().is_empty())
                .ok_or_else(|| "empty child output".to_string())
                .and_then(metrics_from_json);
            match parsed {
                Ok(metrics) => {
                    let metrics = Box::new(metrics);
                    writer.append(&JournalRecord {
                        fingerprint: fp.to_string(),
                        label: label.to_string(),
                        event: JournalEvent::Done {
                            attempts: attempt,
                            exit: a.exit,
                            digest: metrics_digest(&metrics),
                            hist_digest: Some(metrics_hist_digest(&metrics)),
                            worker: worker_identity(),
                            metrics: metrics.clone(),
                        },
                    })?;
                    return Ok(JobOutcome::Done(metrics));
                }
                Err(why) => {
                    // A zero exit with unreadable metrics is a protocol
                    // failure; retry it like any other transient fault.
                    let exit = format!("badoutput:{why}");
                    if attempt < max_attempts && !INTERRUPTED.load(Ordering::SeqCst) {
                        sleep_interruptible(backoff_delay(attempt));
                        attempt += 1;
                        continue;
                    }
                    let dump = write_dump(dump_dir, index, fp, label, &exit, attempt, &a);
                    writer.append(&JournalRecord {
                        fingerprint: fp.to_string(),
                        label: label.to_string(),
                        event: JournalEvent::Failed {
                            attempts: attempt,
                            exit: exit.clone(),
                            dump: dump.as_ref().map(|p| p.display().to_string()),
                        },
                    })?;
                    return Ok(JobOutcome::Failed(JobFailure {
                        index,
                        label: label.to_string(),
                        exit,
                        attempts: attempt,
                        dump,
                    }));
                }
            }
        }
        if a.transient && attempt < max_attempts && !INTERRUPTED.load(Ordering::SeqCst) {
            sleep_interruptible(backoff_delay(attempt));
            attempt += 1;
            continue;
        }
        let dump = write_dump(dump_dir, index, fp, label, &a.exit, attempt, &a);
        writer.append(&JournalRecord {
            fingerprint: fp.to_string(),
            label: label.to_string(),
            event: JournalEvent::Failed {
                attempts: attempt,
                exit: a.exit.clone(),
                dump: dump.as_ref().map(|p| p.display().to_string()),
            },
        })?;
        return Ok(JobOutcome::Failed(JobFailure {
            index,
            label: label.to_string(),
            exit: a.exit,
            attempts: attempt,
            dump,
        }));
    }
}

/// Runs the sweep's jobs under supervision, fanning children across
/// `threads` pool workers. Jobs already `done` in the journal (when
/// `opts.resume`) are replayed from their recorded metrics without
/// spawning anything.
///
/// # Errors
///
/// [`JournalError`] when the journal cannot be read or written (a
/// per-job failure is NOT an error — it comes back in
/// [`SupervisedRun::failures`] while the other jobs keep running).
pub fn run_supervised(
    jobs: &[LabeledJob],
    threads: usize,
    opts: &SuperviseOpts,
) -> Result<SupervisedRun, JournalError> {
    install_drain_handlers();
    let journal_path = journal_file_of(&opts.journal);
    let dump_dir = journal_path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
    std::fs::create_dir_all(&dump_dir)?;
    let prior = if opts.resume {
        completed_index(&read_journal(&journal_path)?)
    } else {
        Default::default()
    };
    let writer = JournalWriter::open(&journal_path)?;
    let program = std::env::current_exe()?;

    let fps: Vec<String> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| job_fingerprint(&opts.child_args, i, &j.label))
        .collect();

    let mut results: Vec<Option<RunMetrics>> = vec![None; jobs.len()];
    let mut failures = Vec::new();
    let mut resumed = 0usize;
    let mut pending: Vec<usize> = Vec::new();
    for (i, fp) in fps.iter().enumerate() {
        match prior.get(fp) {
            Some(JournalRecord {
                event: JournalEvent::Done { metrics, .. },
                ..
            }) => {
                results[i] = Some(metrics.as_ref().clone());
                resumed += 1;
            }
            _ => pending.push(i),
        }
    }

    let closures: Vec<_> = pending
        .iter()
        .map(|&i| {
            let (program, opts, writer, dump_dir) = (&program, opts, &writer, &dump_dir);
            let (label, fp) = (&jobs[i].label, &fps[i]);
            move || supervise_job(program, opts, writer, dump_dir, i, label, fp)
        })
        .collect();
    let outcomes = barre_sim::pool::run_cancellable(closures, threads, &INTERRUPTED)
        .map_err(|e| JournalError::Io(e.to_string()))?;
    for (&i, outcome) in pending.iter().zip(outcomes) {
        match outcome {
            Some(Ok(JobOutcome::Done(metrics))) => results[i] = Some(*metrics),
            Some(Ok(JobOutcome::Failed(f))) => failures.push(f),
            Some(Ok(JobOutcome::Skipped)) | None => {}
            Some(Err(e)) => return Err(e),
        }
    }
    Ok(SupervisedRun {
        results,
        failures,
        resumed,
        interrupted: INTERRUPTED.load(Ordering::SeqCst),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_path_resolution() {
        assert_eq!(
            journal_file_of(Path::new("shards/a")),
            PathBuf::from("shards/a").join(JOURNAL_FILE)
        );
        assert_eq!(
            journal_file_of(Path::new("shards/a/custom.jsonl")),
            PathBuf::from("shards/a/custom.jsonl")
        );
    }

    #[test]
    fn fingerprints_distinguish_jobs_and_command_lines() {
        let args_a = vec![
            "sweep".to_string(),
            "--apps".to_string(),
            "gemv".to_string(),
        ];
        let args_b = vec![
            "sweep".to_string(),
            "--apps".to_string(),
            "gups".to_string(),
        ];
        assert_ne!(
            job_fingerprint(&args_a, 0, "gemv/baseline"),
            job_fingerprint(&args_a, 1, "gemv/barre")
        );
        assert_ne!(
            job_fingerprint(&args_a, 0, "gemv/baseline"),
            job_fingerprint(&args_b, 0, "gemv/baseline")
        );
        assert_eq!(
            job_fingerprint(&args_a, 0, "gemv/baseline"),
            job_fingerprint(&args_a, 0, "gemv/baseline")
        );
    }
}
