//! Argument parsing and command dispatch for the `barre` CLI.
//!
//! The binary front end for the Barre Chord model: list the workloads,
//! run one experiment, or sweep every application under a translation
//! mode — without writing any Rust. Kept dependency-free (hand-rolled
//! parsing) so the workspace stays within its offline crate budget.
//!
//! ```text
//! barre list
//! barre table2 [--paper]
//! barre run   --app gups --mode fbarre [--seed 7] [--ptws 8] [--paper]
//! barre sweep --mode barre [--apps gups,spmv] [--policy coda]
//! barre pair  --a gemv --b gups --mode fbarre
//! barre chaos --app gups --mode barre [--rates 0.001,0.01,0.05]
//! barre bench [--json] [--quick] [--jobs 8] [--out BENCH_sweep.json]
//! ```
//!
//! Sweep-shaped commands (`sweep`, `chaos`, `bench`) fan their
//! independent runs across the `barre_sim::pool` worker pool; `--jobs 1`
//! (or `BARRE_JOBS=1`) forces the serial path and produces identical
//! output.

use barre_mapping::PolicyKind;
use barre_mem::PageSize;
use barre_sim::FaultPlan;
use barre_system::{
    run_app, run_batch, run_pair, speedup, summary_line, BatchJob, FBarreConfig, MmuKind,
    RunMetrics, SimError, SystemConfig, TranslationMode,
};
use barre_workloads::{AppId, AppPair};

/// A parsed CLI invocation.
#[derive(Debug, Clone)]
pub enum Command {
    /// `barre list` — print the workload table.
    List,
    /// `barre table2` — print the active configuration.
    Table2 { cfg: Box<SystemConfig> },
    /// `barre run` — run one app under one mode, print a summary line.
    Run {
        app: AppId,
        cfg: Box<SystemConfig>,
        seed: u64,
        baseline: bool,
    },
    /// `barre sweep` — run a set of apps, print speedups vs baseline.
    Sweep {
        apps: Vec<AppId>,
        cfg: Box<SystemConfig>,
        seed: u64,
        jobs: Option<usize>,
    },
    /// `barre pair` — co-run two apps (§VII-I).
    Pair {
        pair: AppPair,
        cfg: Box<SystemConfig>,
        seed: u64,
    },
    /// `barre chaos` — sweep ATS fault-injection rates for one app.
    Chaos {
        app: AppId,
        cfg: Box<SystemConfig>,
        seed: u64,
        rates: Vec<f64>,
        jobs: Option<usize>,
    },
    /// `barre bench` — timed smoke sweep with serial/parallel cross-check.
    Bench {
        quick: bool,
        json: bool,
        jobs: Option<usize>,
        out: std::path::PathBuf,
    },
    /// `barre lint` — run the determinism & panic-safety linter.
    Lint {
        root: std::path::PathBuf,
        json: bool,
    },
    /// `barre help`.
    Help,
}

/// Errors produced while parsing arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// Resolves an application by its Table I abbreviation.
pub fn app_by_name(name: &str) -> Option<AppId> {
    AppId::all().into_iter().find(|a| a.name() == name)
}

/// Resolves a translation mode label.
pub fn mode_by_name(name: &str) -> Option<TranslationMode> {
    Some(match name {
        "baseline" => TranslationMode::Baseline,
        "valkyrie" => TranslationMode::Valkyrie,
        "least" => TranslationMode::Least,
        "shared-l2" => TranslationMode::SharedL2Ideal,
        "barre" => TranslationMode::Barre,
        "fbarre" | "fbarre2" => TranslationMode::FBarre(FBarreConfig::default()),
        "fbarre1" | "fbarre-nomerge" => TranslationMode::FBarre(FBarreConfig {
            max_merged: 1,
            ..FBarreConfig::default()
        }),
        "fbarre4" => TranslationMode::FBarre(FBarreConfig {
            max_merged: 4,
            ..FBarreConfig::default()
        }),
        _ => return None,
    })
}

/// Resolves a mapping policy label.
pub fn policy_by_name(name: &str) -> Option<PolicyKind> {
    Some(match name {
        "lasp" => PolicyKind::Lasp,
        "coda" => PolicyKind::Coda,
        "rr" | "round-robin" => PolicyKind::RoundRobin,
        "chunking" => PolicyKind::Chunking,
        _ => return None,
    })
}

/// Resolves a page-size label.
pub fn page_size_by_name(name: &str) -> Option<PageSize> {
    Some(match name {
        "4k" | "4kb" => PageSize::Size4K,
        "64k" | "64kb" => PageSize::Size64K,
        "2m" | "2mb" => PageSize::Size2M,
        _ => return None,
    })
}

/// Parses the full argument list (without the program name).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first unknown command, flag or
/// value.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let mut cfg = SystemConfig::scaled();
    let mut seed = 0x15CA_2024u64;
    let mut app = None;
    let mut apps: Option<Vec<AppId>> = None;
    let mut pair_a = None;
    let mut pair_b = None;
    let mut baseline = false;
    let mut rates: Option<Vec<f64>> = None;
    let mut json = false;
    let mut root: Option<std::path::PathBuf> = None;
    let mut jobs: Option<usize> = None;
    let mut quick = false;
    let mut out: Option<std::path::PathBuf> = None;

    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, ParseError> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| err(format!("flag {flag} needs a value")))
        };
        match flag {
            "--paper" => cfg = SystemConfig::paper().with_mode(cfg.mode),
            "--baseline" => baseline = true,
            "--json" => json = true,
            "--quick" => quick = true,
            "--root" => root = Some(std::path::PathBuf::from(value(&mut i)?)),
            "--out" => out = Some(std::path::PathBuf::from(value(&mut i)?)),
            "--jobs" => {
                let v = value(&mut i)?;
                let n: usize = v.parse().map_err(|_| err(format!("bad job count {v}")))?;
                if n == 0 {
                    return Err(err("--jobs must be at least 1"));
                }
                jobs = Some(n);
            }
            "--gmmu" => cfg.mmu = MmuKind::Gmmu,
            "--migration" => cfg.migration = Some(Default::default()),
            "--app" => {
                let v = value(&mut i)?;
                app = Some(app_by_name(&v).ok_or_else(|| err(format!("unknown app {v}")))?);
            }
            "--a" => {
                let v = value(&mut i)?;
                pair_a = Some(app_by_name(&v).ok_or_else(|| err(format!("unknown app {v}")))?);
            }
            "--b" => {
                let v = value(&mut i)?;
                pair_b = Some(app_by_name(&v).ok_or_else(|| err(format!("unknown app {v}")))?);
            }
            "--apps" => {
                let v = value(&mut i)?;
                if v == "all" {
                    apps = Some(AppId::all().to_vec());
                } else {
                    let mut list = Vec::new();
                    for part in v.split(',') {
                        list.push(
                            app_by_name(part).ok_or_else(|| err(format!("unknown app {part}")))?,
                        );
                    }
                    apps = Some(list);
                }
            }
            "--mode" => {
                let v = value(&mut i)?;
                cfg.mode = mode_by_name(&v).ok_or_else(|| err(format!("unknown mode {v}")))?;
            }
            "--policy" => {
                let v = value(&mut i)?;
                cfg.policy =
                    policy_by_name(&v).ok_or_else(|| err(format!("unknown policy {v}")))?;
            }
            "--page-size" => {
                let v = value(&mut i)?;
                cfg.page_size =
                    page_size_by_name(&v).ok_or_else(|| err(format!("unknown page size {v}")))?;
            }
            "--ptws" => {
                let v = value(&mut i)?;
                cfg.ptws = if v == "inf" {
                    None
                } else {
                    Some(v.parse().map_err(|_| err(format!("bad PTW count {v}")))?)
                };
            }
            "--chiplets" => {
                let v = value(&mut i)?;
                let n: usize = v
                    .parse()
                    .map_err(|_| err(format!("bad chiplet count {v}")))?;
                cfg.topology = cfg.topology.with_chiplets(n);
            }
            "--seed" => {
                let v = value(&mut i)?;
                seed = v.parse().map_err(|_| err(format!("bad seed {v}")))?;
            }
            "--rates" => {
                let v = value(&mut i)?;
                let mut list = Vec::new();
                for part in v.split(',') {
                    let r: f64 = part
                        .parse()
                        .map_err(|_| err(format!("bad fault rate {part}")))?;
                    if !(0.0..=1.0).contains(&r) {
                        return Err(err(format!("fault rate {part} outside [0, 1]")));
                    }
                    list.push(r);
                }
                rates = Some(list);
            }
            other => return Err(err(format!("unknown flag {other}"))),
        }
        i += 1;
    }

    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List),
        "table2" => Ok(Command::Table2 { cfg: Box::new(cfg) }),
        "run" => Ok(Command::Run {
            app: app.ok_or_else(|| err("run needs --app <name>"))?,
            cfg: Box::new(cfg),
            seed,
            baseline,
        }),
        "sweep" => Ok(Command::Sweep {
            apps: apps.unwrap_or_else(|| AppId::all().to_vec()),
            cfg: Box::new(cfg),
            seed,
            jobs,
        }),
        "pair" => Ok(Command::Pair {
            pair: AppPair {
                a: pair_a.ok_or_else(|| err("pair needs --a <name>"))?,
                b: pair_b.ok_or_else(|| err("pair needs --b <name>"))?,
            },
            cfg: Box::new(cfg),
            seed,
        }),
        "chaos" => Ok(Command::Chaos {
            app: app.ok_or_else(|| err("chaos needs --app <name>"))?,
            cfg: Box::new(cfg),
            seed,
            rates: rates.unwrap_or_else(|| vec![0.0, 0.001, 0.01, 0.05]),
            jobs,
        }),
        "bench" => Ok(Command::Bench {
            quick,
            json,
            jobs,
            out: out.unwrap_or_else(|| std::path::PathBuf::from("BENCH_sweep.json")),
        }),
        "lint" => Ok(Command::Lint {
            root: root.unwrap_or_else(|| std::path::PathBuf::from(".")),
            json,
        }),
        other => Err(err(format!("unknown command {other}"))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
barre — Barre Chord MCM-GPU translation model

USAGE:
  barre list                              list the 19 workloads
  barre table2 [--paper]                  print the configuration
  barre run   --app <name> [flags]        run one app (baseline compare with --baseline)
  barre sweep [--apps a,b,c|all] [flags]  speedups vs baseline per app
  barre pair  --a <name> --b <name>       co-run two apps (multi-programming)
  barre chaos --app <name> [flags]        sweep ATS drop rates (fault injection)
  barre bench [--json] [--quick] [flags]  timed smoke sweep + serial/parallel cross-check
  barre lint  [--json] [--root <dir>]     determinism & panic-safety lint (exit 1 on violations)

FLAGS:
  --mode <baseline|valkyrie|least|shared-l2|barre|fbarre|fbarre1|fbarre4>
  --policy <lasp|coda|rr|chunking>     --page-size <4k|64k|2m>
  --ptws <n|inf>                       --chiplets <n>
  --gmmu                               --migration
  --paper                              --seed <n>
  --rates <r1,r2,...>                  chaos drop-rate sweep (default 0,0.001,0.01,0.05)
  --jobs <n>                           worker threads for sweep/chaos/bench
                                       (default: BARRE_JOBS env, then all cores; 1 = serial)
  --quick                              bench: 3-app subset instead of the balanced 9
  --out <path>                         bench: report path (default BENCH_sweep.json)
";

/// Reports a simulation failure on stderr and yields the error exit code.
fn report(err: &SimError) -> i32 {
    eprintln!("error: {err}");
    1
}

/// Executes a parsed command, printing to stdout. Returns the process
/// exit code (0 on success, 1 when the simulation reports a
/// [`SimError`]).
pub fn execute(cmd: Command) -> i32 {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            0
        }
        Command::List => {
            println!(
                "{:<8} {:<20} {:>12} {:>6}",
                "abbr", "name", "paper MPKI", "class"
            );
            for a in AppId::all() {
                println!(
                    "{:<8} {:<20} {:>12.3} {:>6}",
                    a.name(),
                    a.full_name(),
                    a.paper_mpki(),
                    a.category()
                );
            }
            0
        }
        Command::Table2 { cfg } => {
            print!("{}", cfg.table2());
            0
        }
        Command::Run {
            app,
            cfg,
            seed,
            baseline,
        } => {
            let m = match run_app(app, &cfg, seed) {
                Ok(m) => m,
                Err(e) => return report(&e),
            };
            println!(
                "{}",
                summary_line(&format!("{app}/{}", cfg.mode.label()), &m)
            );
            if baseline {
                let base_cfg = (*cfg.clone()).with_mode(TranslationMode::Baseline);
                let b = match run_app(app, &base_cfg, seed) {
                    Ok(b) => b,
                    Err(e) => return report(&e),
                };
                println!("{}", summary_line(&format!("{app}/baseline"), &b));
                println!("speedup: {:.3}x", speedup(&b, &m));
            }
            0
        }
        Command::Sweep {
            apps,
            cfg,
            seed,
            jobs,
        } => {
            let base_cfg = (*cfg.clone()).with_mode(TranslationMode::Baseline);
            println!(
                "{:<8} {:>12} {:>12} {:>9}",
                "app",
                "base cy",
                format!("{} cy", cfg.mode.label()),
                "speedup"
            );
            // Two independent runs per app (baseline + mode), fanned
            // across the pool; results come back in input order.
            let batch: Vec<BatchJob> = apps
                .iter()
                .flat_map(|app| {
                    [
                        (app.spec(), base_cfg.clone(), seed),
                        (app.spec(), (*cfg).clone(), seed),
                    ]
                })
                .collect();
            let threads = barre_sim::pool::resolve_jobs(jobs);
            let results = match run_batch(batch, threads) {
                Ok(r) => r,
                Err(e) => return report(&e),
            };
            let mut ratios = Vec::new();
            for (app, pair) in apps.iter().zip(results.chunks_exact(2)) {
                let (b, m) = match (&pair[0], &pair[1]) {
                    (Ok(b), Ok(m)) => (b, m),
                    (Err(e), _) | (_, Err(e)) => return report(e),
                };
                let sp = speedup(b, m);
                ratios.push(sp);
                println!(
                    "{:<8} {:>12} {:>12} {:>8.3}x",
                    app.name(),
                    b.total_cycles,
                    m.total_cycles,
                    sp
                );
            }
            println!(
                "geomean: {:.3}x",
                barre_system::geomean(ratios.iter().copied())
            );
            0
        }
        Command::Pair { pair, cfg, seed } => {
            let m: RunMetrics = match run_pair(pair, &cfg, seed) {
                Ok(m) => m,
                Err(e) => return report(&e),
            };
            println!("{}", summary_line(&pair.label(), &m));
            0
        }
        Command::Lint { root, json } => {
            let report = match barre_analysis::lint_workspace(&root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: lint walk failed under {}: {e}", root.display());
                    return 2;
                }
            };
            if json {
                print!("{}", barre_analysis::render_json(&report));
            } else {
                print!("{}", barre_analysis::render_human(&report));
            }
            i32::from(!report.is_clean())
        }
        Command::Chaos {
            app,
            cfg,
            seed,
            rates,
            jobs,
        } => {
            println!(
                "{:<8} {:>10} {:>8} {:>8} {:>9} {:>10} {:>12}",
                "drop", "cycles", "faults", "retries", "timeouts", "fallbacks", "ATS"
            );
            // One independent run per rate; fan them across the pool.
            let batch: Vec<BatchJob> = rates
                .iter()
                .map(|&rate| {
                    let plan = FaultPlan {
                        ats_request_drop: rate,
                        ..FaultPlan::none()
                    };
                    (app.spec(), (*cfg.clone()).with_fault_plan(plan), seed)
                })
                .collect();
            let threads = barre_sim::pool::resolve_jobs(jobs);
            let results = match run_batch(batch, threads) {
                Ok(r) => r,
                Err(e) => return report(&e),
            };
            for (rate, res) in rates.iter().zip(results) {
                match res {
                    Ok(m) => println!(
                        "{:<8} {:>10} {:>8} {:>8} {:>9} {:>10} {:>12}",
                        format!("{rate}"),
                        m.total_cycles,
                        m.faults_injected,
                        m.ats_retries,
                        m.ats_timeouts,
                        m.fallback_translations,
                        m.ats_requests
                    ),
                    Err(e) => return report(&e),
                }
            }
            0
        }
        Command::Bench {
            quick,
            json,
            jobs,
            out,
        } => {
            let threads = barre_sim::pool::resolve_jobs(jobs);
            let r = match barre_bench::wallclock::run_bench(quick, threads) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            let doc = r.to_json();
            if let Err(e) = std::fs::write(&out, &doc) {
                eprintln!("error: cannot write {}: {e}", out.display());
                return 1;
            }
            if json {
                print!("{doc}");
            } else {
                print!("{}", r.summary());
                println!("report written to {}", out.display());
            }
            // Serial/parallel divergence is a determinism bug — fail.
            i32::from(!r.divergent.is_empty())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Command, ParseError> {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_run() {
        let cmd = p(&["run", "--app", "gups", "--mode", "fbarre", "--seed", "7"]).unwrap();
        match cmd {
            Command::Run { app, cfg, seed, .. } => {
                assert_eq!(app, AppId::Gups);
                assert_eq!(seed, 7);
                assert!(matches!(cfg.mode, TranslationMode::FBarre(_)));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_sweep_subset() {
        let cmd = p(&["sweep", "--apps", "gemv,gups", "--mode", "barre"]).unwrap();
        match cmd {
            Command::Sweep { apps, cfg, .. } => {
                assert_eq!(apps, vec![AppId::Gemv, AppId::Gups]);
                assert_eq!(cfg.mode, TranslationMode::Barre);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_pair_and_topology() {
        let cmd = p(&["pair", "--a", "gemv", "--b", "gups", "--chiplets", "8"]).unwrap();
        match cmd {
            Command::Pair { pair, cfg, .. } => {
                assert_eq!(pair.a, AppId::Gemv);
                assert_eq!(cfg.topology.n_chiplets, 8);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_chaos_rates() {
        let cmd = p(&["chaos", "--app", "gups", "--rates", "0,0.01"]).unwrap();
        match cmd {
            Command::Chaos { app, rates, .. } => {
                assert_eq!(app, AppId::Gups);
                assert_eq!(rates, vec![0.0, 0.01]);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults kick in without --rates; bad rates are rejected.
        assert!(matches!(
            p(&["chaos", "--app", "gups"]).unwrap(),
            Command::Chaos { .. }
        ));
        assert!(p(&["chaos", "--app", "gups", "--rates", "1.5"]).is_err());
        assert!(p(&["chaos", "--rates", "0.1"]).is_err());
    }

    #[test]
    fn rejects_unknowns() {
        assert!(p(&["run", "--app", "nosuch"]).is_err());
        assert!(p(&["run"]).is_err());
        assert!(p(&["frobnicate"]).is_err());
        assert!(p(&["run", "--app", "gups", "--mode", "warp-drive"]).is_err());
        assert!(p(&["run", "--app"]).is_err());
    }

    #[test]
    fn flag_helpers_cover_all_labels() {
        for m in [
            "baseline",
            "valkyrie",
            "least",
            "shared-l2",
            "barre",
            "fbarre",
            "fbarre1",
            "fbarre4",
        ] {
            assert!(mode_by_name(m).is_some(), "{m}");
        }
        for pol in ["lasp", "coda", "rr", "chunking"] {
            assert!(policy_by_name(pol).is_some(), "{pol}");
        }
        for ps in ["4k", "64k", "2m"] {
            assert!(page_size_by_name(ps).is_some(), "{ps}");
        }
        assert_eq!(app_by_name("gesm"), Some(AppId::Gesm));
        assert_eq!(app_by_name("zzz"), None);
    }

    #[test]
    fn ptws_inf_parses() {
        let cmd = p(&["run", "--app", "gemv", "--ptws", "inf"]).unwrap();
        match cmd {
            Command::Run { cfg, .. } => assert_eq!(cfg.ptws, None),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn empty_args_is_help() {
        assert!(matches!(p(&[]).unwrap(), Command::Help));
    }

    #[test]
    fn parses_bench_and_jobs() {
        match p(&[
            "bench",
            "--json",
            "--quick",
            "--jobs",
            "8",
            "--out",
            "/tmp/b.json",
        ])
        .unwrap()
        {
            Command::Bench {
                quick,
                json,
                jobs,
                out,
            } => {
                assert!(quick && json);
                assert_eq!(jobs, Some(8));
                assert_eq!(out, std::path::PathBuf::from("/tmp/b.json"));
            }
            other => panic!("wrong command {other:?}"),
        }
        match p(&["bench"]).unwrap() {
            Command::Bench {
                quick, json, jobs, ..
            } => {
                assert!(!quick && !json);
                assert_eq!(jobs, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        match p(&["sweep", "--apps", "gemv", "--jobs", "2"]).unwrap() {
            Command::Sweep { jobs, .. } => assert_eq!(jobs, Some(2)),
            other => panic!("wrong command {other:?}"),
        }
        match p(&["chaos", "--app", "gups", "--jobs", "4"]).unwrap() {
            Command::Chaos { jobs, .. } => assert_eq!(jobs, Some(4)),
            other => panic!("wrong command {other:?}"),
        }
        assert!(p(&["bench", "--jobs", "0"]).is_err());
        assert!(p(&["bench", "--jobs", "many"]).is_err());
        assert!(p(&["bench", "--out"]).is_err());
    }

    #[test]
    fn parses_lint() {
        match p(&["lint"]).unwrap() {
            Command::Lint { root, json } => {
                assert_eq!(root, std::path::PathBuf::from("."));
                assert!(!json);
            }
            other => panic!("wrong command {other:?}"),
        }
        match p(&["lint", "--json", "--root", "/tmp/ws"]).unwrap() {
            Command::Lint { root, json } => {
                assert_eq!(root, std::path::PathBuf::from("/tmp/ws"));
                assert!(json);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(p(&["lint", "--root"]).is_err());
    }
}
