//! Argument parsing and command dispatch for the `barre` CLI.
//!
//! The binary front end for the Barre Chord model: list the workloads,
//! run one experiment, or sweep every application under a translation
//! mode — without writing any Rust. Kept dependency-free (hand-rolled
//! parsing) so the workspace stays within its offline crate budget.
//!
//! ```text
//! barre list
//! barre table2 [--paper]
//! barre run   --app gups --mode fbarre [--seed 7] [--ptws 8] [--paper]
//! barre sweep --mode barre [--apps gups,spmv] [--policy coda]
//! barre pair  --a gemv --b gups --mode fbarre
//! barre chaos --app gups --mode barre [--rates 0.001,0.01,0.05]
//! barre bench [--json] [--quick] [--jobs 8] [--out BENCH_sweep.json]
//! barre merge --out merged shard-a/ shard-b/ [BENCH_a.json ...]
//! ```
//!
//! Sweep-shaped commands (`sweep`, `chaos`, `bench`) fan their
//! independent runs across the `barre_sim::pool` worker pool; `--jobs 1`
//! (or `BARRE_JOBS=1`) forces the serial path and produces identical
//! output.
//!
//! With `--supervise` (or any of `--journal`, `--resume`, `--timeout`,
//! `--retries`), `sweep` and `chaos` instead run every job in a
//! crash-isolated child process — see [`supervisor`] — journaling each
//! transition so an interrupted campaign resumes with byte-identical
//! output.

use barre_obs::log as olog;
use barre_obs::Field;
use barre_system::{
    chaos_jobs, run_app, run_batch, run_pair, run_spec, speedup, summary_line, sweep_jobs,
    BatchJob, LabeledJob, MmuKind, RunMetrics, SimError, SystemConfig, TranslationMode,
};
use barre_workloads::{AppId, AppPair};

// Request-vocabulary helpers live with the daemon's validator so the CLI
// and `barre serve` resolve names identically; re-exported here for the
// existing callers.
pub use barre_serve::request::{app_by_name, mode_by_name, page_size_by_name, policy_by_name};

pub mod lint_cmd;
pub mod supervisor;
pub mod trace_cmd;

/// A parsed CLI invocation.
#[derive(Debug, Clone)]
pub enum Command {
    /// `barre list` — print the workload table.
    List,
    /// `barre table2` — print the active configuration.
    Table2 { cfg: Box<SystemConfig> },
    /// `barre run` — run one app under one mode, print a summary line.
    Run {
        app: AppId,
        cfg: Box<SystemConfig>,
        seed: u64,
        baseline: bool,
        /// Print only the canonical metrics JSON line (the `barre serve`
        /// child protocol); failures exit with [`SimError::exit_code`].
        metrics_json: bool,
    },
    /// `barre sweep` — run a set of apps, print speedups vs baseline.
    Sweep {
        apps: Vec<AppId>,
        cfg: Box<SystemConfig>,
        seed: u64,
        jobs: Option<usize>,
        /// Crash-isolated supervision (`--supervise` and friends).
        sup: Option<supervisor::SuperviseOpts>,
        /// Remote dispatch through a `barre queue` coordinator
        /// (`--dispatch host:port`).
        dispatch: Option<DispatchOpts>,
        /// Hidden child mode: run exactly this job of the sweep's job
        /// list and print its metrics as canonical JSON.
        job_index: Option<usize>,
    },
    /// `barre pair` — co-run two apps (§VII-I).
    Pair {
        pair: AppPair,
        cfg: Box<SystemConfig>,
        seed: u64,
    },
    /// `barre chaos` — sweep ATS fault-injection rates for one app.
    Chaos {
        app: AppId,
        cfg: Box<SystemConfig>,
        seed: u64,
        rates: Vec<f64>,
        jobs: Option<usize>,
        /// Crash-isolated supervision (`--supervise` and friends).
        sup: Option<supervisor::SuperviseOpts>,
        /// Remote dispatch through a `barre queue` coordinator
        /// (`--dispatch host:port`).
        dispatch: Option<DispatchOpts>,
        /// Hidden child mode (see [`Command::Sweep::job_index`]).
        job_index: Option<usize>,
    },
    /// `barre merge` — fold per-shard journals and `BENCH_sweep.json`
    /// fragments into one trajectory, detecting digest conflicts.
    Merge {
        out: std::path::PathBuf,
        inputs: Vec<std::path::PathBuf>,
    },
    /// `barre bench` — timed smoke sweep with serial/parallel cross-check.
    Bench {
        quick: bool,
        json: bool,
        jobs: Option<usize>,
        out: std::path::PathBuf,
        /// `--gate <ratio>`: exit nonzero when any mode is more than
        /// `ratio` times slower than the same app's baseline.
        gate: Option<f64>,
    },
    /// `barre lint` — run the determinism & panic-safety analyzer.
    Lint { opts: lint_cmd::LintOpts },
    /// `barre trace` — run one app with the lifecycle tracer and export
    /// the trace (Chrome-trace JSON, or JSONL when `--out` ends in
    /// `.jsonl`).
    Trace {
        app: AppId,
        cfg: Box<SystemConfig>,
        seed: u64,
        out: std::path::PathBuf,
        opts: barre_trace::TraceOptions,
    },
    /// `barre report` — print per-stage latency percentiles and the
    /// slowest journeys of a trace export (or summarize a journal).
    Report {
        input: std::path::PathBuf,
        top: usize,
    },
    /// `barre report --fleet` — stitch per-process fleet-trace files
    /// (`BARRE_FLEET_TRACE`) from a distributed sweep into one
    /// Perfetto/Chrome-trace timeline keyed by correlation id.
    FleetReport {
        dirs: Vec<std::path::PathBuf>,
        out: Option<std::path::PathBuf>,
    },
    /// `barre report --bench-diff` — compare two `BENCH_sweep.json`
    /// documents cell by cell and flag throughput regressions.
    BenchDiff {
        old: std::path::PathBuf,
        new: std::path::PathBuf,
        threshold: f64,
    },
    /// `barre serve` — long-running simulation daemon (JSONL over TCP
    /// plus an HTTP health shim); see [`barre_serve`].
    Serve {
        opts: Box<barre_serve::ServeOptions>,
    },
    /// `barre queue` — lease-based shared job-queue coordinator for
    /// multi-node sweeps; see [`barre_serve::jobq`].
    Queue {
        opts: Box<barre_serve::jobq::QueueOptions>,
    },
    /// `barre worker` — pull jobs from a queue coordinator under
    /// time-bounded leases and execute them in crash-isolated children.
    Worker {
        opts: Box<barre_serve::jobq::WorkerOptions>,
    },
    /// `barre help`.
    Help,
}

/// How a dispatched sweep reaches its coordinator: address, client-side
/// journal location, and the child argument list job fingerprints (and
/// worker re-execution) are derived from — the same derivation the
/// supervisor uses, so serial and dispatched runs of one command line
/// agree on every fingerprint.
#[derive(Debug, Clone)]
pub struct DispatchOpts {
    /// Coordinator address (`host:port`).
    pub addr: String,
    /// Where to write the terminal records, in job order (same default
    /// as the supervisor's journal).
    pub journal: std::path::PathBuf,
    /// Base argument list for remote children (supervisor/dispatch
    /// flags stripped); workers append `--job-index <i>`.
    pub child_args: Vec<String>,
}

/// Errors produced while parsing arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// Default `--gate` ratio: no mode may run more than this many times
/// slower than the same app's baseline (the ISSUE-8 perf contract).
pub const DEFAULT_BENCH_GATE: f64 = 5.0;

/// Default `--bench-diff` regression threshold. Wall-clock comparisons
/// across CI runs are noisy, so the default is deliberately generous;
/// tighten with `--threshold` on quiet machines.
pub const DEFAULT_BENCH_DIFF_THRESHOLD: f64 = 1.5;

/// Parses the full argument list (without the program name).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first unknown command, flag or
/// value.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    // `merge` is the one command with positional operands (the shard
    // inputs), so it gets its own tiny parser.
    if cmd == "merge" {
        let mut out: Option<std::path::PathBuf> = None;
        let mut inputs = Vec::new();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--out" => {
                    i += 1;
                    let v = args
                        .get(i)
                        .cloned()
                        .ok_or_else(|| err("flag --out needs a value"))?;
                    out = Some(std::path::PathBuf::from(v));
                }
                flag if flag.starts_with("--") => {
                    return Err(err(format!("unknown flag {flag}")));
                }
                path => inputs.push(std::path::PathBuf::from(path)),
            }
            i += 1;
        }
        if inputs.is_empty() {
            return Err(err(
                "merge needs at least one journal or bench-report input",
            ));
        }
        return Ok(Command::Merge {
            out: out.unwrap_or_else(|| std::path::PathBuf::from("merged")),
            inputs,
        });
    }
    // `report` also takes positional operands: the trace or journal,
    // or two bench reports under `--bench-diff`.
    if cmd == "report" {
        let mut paths: Vec<std::path::PathBuf> = Vec::new();
        let mut top = trace_cmd::DEFAULT_TOP;
        let mut bench_diff = false;
        let mut fleet = false;
        let mut out: Option<std::path::PathBuf> = None;
        let mut threshold: Option<f64> = None;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--fleet" => fleet = true,
                "--out" => {
                    i += 1;
                    let v = args
                        .get(i)
                        .cloned()
                        .ok_or_else(|| err("flag --out needs a value"))?;
                    out = Some(std::path::PathBuf::from(v));
                }
                "--top" => {
                    i += 1;
                    let v = args
                        .get(i)
                        .cloned()
                        .ok_or_else(|| err("flag --top needs a value"))?;
                    top = v.parse().map_err(|_| err(format!("bad top count {v}")))?;
                }
                "--bench-diff" => bench_diff = true,
                "--threshold" => {
                    i += 1;
                    let v = args
                        .get(i)
                        .cloned()
                        .ok_or_else(|| err("flag --threshold needs a value"))?;
                    let r: f64 = v.parse().map_err(|_| err(format!("bad threshold {v}")))?;
                    if !r.is_finite() || r <= 0.0 {
                        return Err(err(format!("threshold {v} must be positive")));
                    }
                    threshold = Some(r);
                }
                flag if flag.starts_with("--") => {
                    return Err(err(format!("unknown flag {flag}")));
                }
                path => paths.push(std::path::PathBuf::from(path)),
            }
            i += 1;
        }
        if fleet {
            if bench_diff {
                return Err(err("--fleet and --bench-diff are mutually exclusive"));
            }
            if threshold.is_some() {
                return Err(err("--threshold only applies to --bench-diff"));
            }
            if paths.is_empty() {
                return Err(err("--fleet needs at least one trace directory"));
            }
            return Ok(Command::FleetReport { dirs: paths, out });
        }
        if out.is_some() {
            return Err(err("--out only applies to --fleet"));
        }
        if bench_diff {
            let mut it = paths.into_iter();
            let (old, new) = match (it.next(), it.next(), it.next()) {
                (Some(old), Some(new), None) => (old, new),
                _ => return Err(err("--bench-diff needs exactly two bench-report paths")),
            };
            return Ok(Command::BenchDiff {
                old,
                new,
                threshold: threshold.unwrap_or(DEFAULT_BENCH_DIFF_THRESHOLD),
            });
        }
        if threshold.is_some() {
            return Err(err("--threshold only applies to --bench-diff"));
        }
        let mut it = paths.into_iter();
        let input = it
            .next()
            .ok_or_else(|| err("report needs a trace or journal path"))?;
        if let Some(extra) = it.next() {
            return Err(err(format!("unexpected operand {}", extra.display())));
        }
        return Ok(Command::Report { input, top });
    }
    // `serve` has its own flag vocabulary (daemon knobs, not simulation
    // knobs), so it too gets a dedicated parser.
    if cmd == "serve" {
        let mut opts = barre_serve::ServeOptions::default();
        let mut i = 1;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = |i: &mut usize| -> Result<String, ParseError> {
                *i += 1;
                args.get(*i)
                    .cloned()
                    .ok_or_else(|| err(format!("flag {flag} needs a value")))
            };
            match flag {
                "--host" => opts.host = value(&mut i)?,
                "--port" => {
                    let v = value(&mut i)?;
                    opts.port = v.parse().map_err(|_| err(format!("bad port {v}")))?;
                }
                "--workers" => {
                    let v = value(&mut i)?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| err(format!("bad worker count {v}")))?;
                    if n == 0 {
                        return Err(err("--workers must be at least 1"));
                    }
                    opts.workers = Some(n);
                }
                "--queue-cap" => {
                    let v = value(&mut i)?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| err(format!("bad queue capacity {v}")))?;
                    if n == 0 {
                        return Err(err("--queue-cap must be at least 1"));
                    }
                    opts.queue_cap = n;
                }
                "--cache-dir" => opts.cache_dir = std::path::PathBuf::from(value(&mut i)?),
                "--timeout" => {
                    let v = value(&mut i)?;
                    let secs: f64 = v.parse().map_err(|_| err(format!("bad timeout {v}")))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(err(format!("timeout {v} must be positive seconds")));
                    }
                    opts.timeout = std::time::Duration::from_secs_f64(secs);
                }
                "--retries" => {
                    let v = value(&mut i)?;
                    opts.retries = v.parse().map_err(|_| err(format!("bad retry count {v}")))?;
                }
                "--breaker" => {
                    let v = value(&mut i)?;
                    opts.breaker_threshold = v
                        .parse()
                        .map_err(|_| err(format!("bad breaker threshold {v}")))?;
                }
                "--log-file" => opts.log_file = Some(std::path::PathBuf::from(value(&mut i)?)),
                other => return Err(err(format!("unknown flag {other}"))),
            }
            i += 1;
        }
        return Ok(Command::Serve {
            opts: Box::new(opts),
        });
    }
    // `queue` and `worker` are daemons too, with their own small flag
    // vocabularies (lease protocol knobs, not simulation knobs).
    if cmd == "queue" {
        let mut opts = barre_serve::jobq::QueueOptions::default();
        let mut i = 1;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = |i: &mut usize| -> Result<String, ParseError> {
                *i += 1;
                args.get(*i)
                    .cloned()
                    .ok_or_else(|| err(format!("flag {flag} needs a value")))
            };
            match flag {
                "--host" => opts.host = value(&mut i)?,
                "--port" => {
                    let v = value(&mut i)?;
                    opts.port = v.parse().map_err(|_| err(format!("bad port {v}")))?;
                }
                "--journal" => opts.journal = std::path::PathBuf::from(value(&mut i)?),
                "--lease" => {
                    let v = value(&mut i)?;
                    let secs: f64 = v.parse().map_err(|_| err(format!("bad lease {v}")))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(err(format!("lease {v} must be positive seconds")));
                    }
                    opts.lease = std::time::Duration::from_secs_f64(secs);
                }
                "--max-leases" => {
                    let v = value(&mut i)?;
                    opts.max_leases = v
                        .parse()
                        .map_err(|_| err(format!("bad lease budget {v}")))?;
                }
                "--log-file" => opts.log_file = Some(std::path::PathBuf::from(value(&mut i)?)),
                other => return Err(err(format!("unknown flag {other}"))),
            }
            i += 1;
        }
        return Ok(Command::Queue {
            opts: Box::new(opts),
        });
    }
    if cmd == "worker" {
        let mut opts = barre_serve::jobq::WorkerOptions::default();
        let mut connected = false;
        let mut i = 1;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = |i: &mut usize| -> Result<String, ParseError> {
                *i += 1;
                args.get(*i)
                    .cloned()
                    .ok_or_else(|| err(format!("flag {flag} needs a value")))
            };
            match flag {
                "--connect" => {
                    opts.connect = value(&mut i)?;
                    connected = true;
                }
                "--name" => opts.name = Some(value(&mut i)?),
                "--jobs" => {
                    let v = value(&mut i)?;
                    let n: usize = v.parse().map_err(|_| err(format!("bad job count {v}")))?;
                    if n == 0 {
                        return Err(err("--jobs must be at least 1"));
                    }
                    opts.slots = n;
                }
                "--timeout" => {
                    let v = value(&mut i)?;
                    let secs: f64 = v.parse().map_err(|_| err(format!("bad timeout {v}")))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(err(format!("timeout {v} must be positive seconds")));
                    }
                    opts.timeout = Some(std::time::Duration::from_secs_f64(secs));
                }
                "--log-file" => opts.log_file = Some(std::path::PathBuf::from(value(&mut i)?)),
                other => return Err(err(format!("unknown flag {other}"))),
            }
            i += 1;
        }
        if !connected {
            return Err(err("worker needs --connect <host:port>"));
        }
        return Ok(Command::Worker {
            opts: Box::new(opts),
        });
    }
    // `lint` grew its own flag vocabulary in PR 7 (baseline files, SARIF,
    // autofix, waiver budgets) that collides with the simulation flags
    // (`--baseline` means something else entirely to `run`), so it gets a
    // dedicated parser too.
    if cmd == "lint" {
        let mut opts = lint_cmd::LintOpts::default();
        let mut i = 1;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = |i: &mut usize| -> Result<String, ParseError> {
                *i += 1;
                args.get(*i)
                    .cloned()
                    .ok_or_else(|| err(format!("flag {flag} needs a value")))
            };
            match flag {
                "--json" => opts.json = true,
                "--sarif" => opts.sarif = true,
                "--fix" => opts.fix = true,
                "--no-baseline" => opts.no_baseline = true,
                "--write-baseline" => opts.write_baseline = true,
                "--parallel-readiness" => opts.readiness = true,
                "--root" => opts.root = std::path::PathBuf::from(value(&mut i)?),
                "--baseline" => opts.baseline = Some(std::path::PathBuf::from(value(&mut i)?)),
                "--changed-since" => opts.changed_since = Some(value(&mut i)?),
                "--max-waivers" => {
                    let v = value(&mut i)?;
                    opts.max_waivers = v
                        .parse()
                        .map_err(|_| err(format!("bad waiver budget {v}")))?;
                }
                other => return Err(err(format!("unknown flag {other}"))),
            }
            i += 1;
        }
        if opts.json && opts.sarif {
            return Err(err("--json and --sarif are mutually exclusive"));
        }
        if opts.no_baseline && opts.baseline.is_some() {
            return Err(err("--no-baseline conflicts with --baseline <file>"));
        }
        return Ok(Command::Lint { opts });
    }
    let mut cfg = SystemConfig::scaled();
    let mut seed = 0x15CA_2024u64;
    let mut app = None;
    let mut apps: Option<Vec<AppId>> = None;
    let mut pair_a = None;
    let mut pair_b = None;
    let mut baseline = false;
    let mut metrics_json = false;
    let mut rates: Option<Vec<f64>> = None;
    let mut json = false;
    let mut jobs: Option<usize> = None;
    let mut quick = false;
    let mut gate: Option<f64> = None;
    let mut out: Option<std::path::PathBuf> = None;
    let mut supervise = false;
    let mut dispatch_addr: Option<String> = None;
    let mut journal: Option<std::path::PathBuf> = None;
    let mut resume: Option<std::path::PathBuf> = None;
    let mut timeout: Option<std::time::Duration> = None;
    let mut retries: Option<u32> = None;
    let mut job_index: Option<usize> = None;
    let mut window: Option<usize> = None;
    let mut filter = barre_trace::StageMask::all();

    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, ParseError> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| err(format!("flag {flag} needs a value")))
        };
        match flag {
            "--paper" => cfg = SystemConfig::paper().with_mode(cfg.mode),
            "--smoke" => cfg = barre_system::smoke_config().with_mode(cfg.mode),
            "--supervise" => supervise = true,
            "--dispatch" => dispatch_addr = Some(value(&mut i)?),
            "--journal" => journal = Some(std::path::PathBuf::from(value(&mut i)?)),
            "--resume" => resume = Some(std::path::PathBuf::from(value(&mut i)?)),
            "--timeout" => {
                let v = value(&mut i)?;
                let secs: f64 = v.parse().map_err(|_| err(format!("bad timeout {v}")))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(err(format!("timeout {v} must be positive seconds")));
                }
                timeout = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--retries" => {
                let v = value(&mut i)?;
                retries = Some(v.parse().map_err(|_| err(format!("bad retry count {v}")))?);
            }
            "--job-index" => {
                let v = value(&mut i)?;
                job_index = Some(v.parse().map_err(|_| err(format!("bad job index {v}")))?);
            }
            "--baseline" => baseline = true,
            "--metrics-json" => metrics_json = true,
            "--json" => json = true,
            "--quick" => quick = true,
            "--gate" => {
                // Optional value: `--gate` alone means the default ratio.
                gate = Some(DEFAULT_BENCH_GATE);
                if let Some(v) = args.get(i + 1).filter(|v| !v.starts_with("--")) {
                    let r: f64 = v.parse().map_err(|_| err(format!("bad gate ratio {v}")))?;
                    if !r.is_finite() || r <= 0.0 {
                        return Err(err(format!("gate ratio {v} must be positive")));
                    }
                    gate = Some(r);
                    i += 1;
                }
            }
            "--out" => out = Some(std::path::PathBuf::from(value(&mut i)?)),
            "--jobs" => {
                let v = value(&mut i)?;
                let n: usize = v.parse().map_err(|_| err(format!("bad job count {v}")))?;
                if n == 0 {
                    return Err(err("--jobs must be at least 1"));
                }
                jobs = Some(n);
            }
            "--gmmu" => cfg.mmu = MmuKind::Gmmu,
            "--migration" => cfg.migration = Some(Default::default()),
            "--app" => {
                let v = value(&mut i)?;
                app = Some(app_by_name(&v).ok_or_else(|| err(format!("unknown app {v}")))?);
            }
            "--a" => {
                let v = value(&mut i)?;
                pair_a = Some(app_by_name(&v).ok_or_else(|| err(format!("unknown app {v}")))?);
            }
            "--b" => {
                let v = value(&mut i)?;
                pair_b = Some(app_by_name(&v).ok_or_else(|| err(format!("unknown app {v}")))?);
            }
            "--apps" => {
                let v = value(&mut i)?;
                if v == "all" {
                    apps = Some(AppId::all().to_vec());
                } else {
                    let mut list = Vec::new();
                    for part in v.split(',') {
                        list.push(
                            app_by_name(part).ok_or_else(|| err(format!("unknown app {part}")))?,
                        );
                    }
                    apps = Some(list);
                }
            }
            "--mode" => {
                let v = value(&mut i)?;
                cfg.mode = mode_by_name(&v).ok_or_else(|| err(format!("unknown mode {v}")))?;
            }
            "--policy" => {
                let v = value(&mut i)?;
                cfg.policy =
                    policy_by_name(&v).ok_or_else(|| err(format!("unknown policy {v}")))?;
            }
            "--page-size" => {
                let v = value(&mut i)?;
                cfg.page_size =
                    page_size_by_name(&v).ok_or_else(|| err(format!("unknown page size {v}")))?;
            }
            "--ptws" => {
                let v = value(&mut i)?;
                cfg.ptws = if v == "inf" {
                    None
                } else {
                    Some(v.parse().map_err(|_| err(format!("bad PTW count {v}")))?)
                };
            }
            "--chiplets" => {
                let v = value(&mut i)?;
                let n: usize = v
                    .parse()
                    .map_err(|_| err(format!("bad chiplet count {v}")))?;
                cfg.topology = cfg.topology.with_chiplets(n);
            }
            "--frames" => {
                let v = value(&mut i)?;
                let n: usize = v.parse().map_err(|_| err(format!("bad frame count {v}")))?;
                if n == 0 {
                    return Err(err("--frames must be at least 1"));
                }
                cfg.frames_per_chiplet = Some(n);
            }
            "--seed" => {
                let v = value(&mut i)?;
                seed = v.parse().map_err(|_| err(format!("bad seed {v}")))?;
            }
            "--rates" => {
                let v = value(&mut i)?;
                let mut list = Vec::new();
                for part in v.split(',') {
                    let r: f64 = part
                        .parse()
                        .map_err(|_| err(format!("bad fault rate {part}")))?;
                    if !(0.0..=1.0).contains(&r) {
                        return Err(err(format!("fault rate {part} outside [0, 1]")));
                    }
                    list.push(r);
                }
                rates = Some(list);
            }
            "--window" => {
                let v = value(&mut i)?;
                let n: usize = v.parse().map_err(|_| err(format!("bad window {v}")))?;
                if n == 0 {
                    return Err(err("--window must be at least 1"));
                }
                window = Some(n);
            }
            "--filter" => {
                let v = value(&mut i)?;
                // Accept both `--filter ptw,fill` and the documented
                // `--filter stage=ptw,fill` form.
                let list = v.strip_prefix("stage=").unwrap_or(&v);
                filter = barre_trace::StageMask::parse(list)
                    .ok_or_else(|| err(format!("unknown stage in filter {v}")))?;
            }
            name if cmd == "trace" && !name.starts_with("--") && app.is_none() => {
                app = Some(app_by_name(name).ok_or_else(|| err(format!("unknown app {name}")))?);
            }
            other => return Err(err(format!("unknown flag {other}"))),
        }
        i += 1;
    }

    // `--dispatch` hands the sweep to a remote queue coordinator: the
    // workers own supervision there, so the local supervisor flags are
    // either repurposed (`--journal`/`--resume` name the client-side
    // journal) or rejected.
    let dispatch = if let Some(addr) = dispatch_addr {
        if supervise {
            return Err(err("--supervise and --dispatch are mutually exclusive"));
        }
        if timeout.is_some() || retries.is_some() {
            return Err(err(
                "--timeout/--retries are supervisor and worker flags; with --dispatch the workers own them",
            ));
        }
        Some(DispatchOpts {
            addr,
            journal: resume
                .clone()
                .or_else(|| journal.clone())
                .unwrap_or_else(|| std::path::PathBuf::from("sweep-journal")),
            child_args: strip_supervisor_flags(args),
        })
    } else {
        None
    };
    // Any supervision flag opts the sweep into the crash-isolated path;
    // `--resume` doubles as the journal location.
    let sup = if dispatch.is_none()
        && (supervise
            || journal.is_some()
            || resume.is_some()
            || timeout.is_some()
            || retries.is_some())
    {
        if let (Some(j), Some(r)) = (&journal, &resume) {
            if j != r {
                return Err(err("--journal and --resume disagree; pass just one"));
            }
        }
        Some(supervisor::SuperviseOpts {
            journal: resume
                .clone()
                .or(journal)
                .unwrap_or_else(|| std::path::PathBuf::from("sweep-journal")),
            resume: resume.is_some(),
            timeout,
            retries: retries.unwrap_or(2),
            child_args: strip_supervisor_flags(args),
        })
    } else {
        None
    };

    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List),
        "table2" => Ok(Command::Table2 { cfg: Box::new(cfg) }),
        "run" => Ok(Command::Run {
            app: app.ok_or_else(|| err("run needs --app <name>"))?,
            cfg: Box::new(cfg),
            seed,
            baseline,
            metrics_json,
        }),
        "sweep" => Ok(Command::Sweep {
            apps: apps.unwrap_or_else(|| AppId::all().to_vec()),
            cfg: Box::new(cfg),
            seed,
            jobs,
            sup,
            dispatch,
            job_index,
        }),
        "pair" => Ok(Command::Pair {
            pair: AppPair {
                a: pair_a.ok_or_else(|| err("pair needs --a <name>"))?,
                b: pair_b.ok_or_else(|| err("pair needs --b <name>"))?,
            },
            cfg: Box::new(cfg),
            seed,
        }),
        "chaos" => Ok(Command::Chaos {
            app: app.ok_or_else(|| err("chaos needs --app <name>"))?,
            cfg: Box::new(cfg),
            seed,
            rates: rates.unwrap_or_else(|| vec![0.0, 0.001, 0.01, 0.05]),
            jobs,
            sup,
            dispatch,
            job_index,
        }),
        "bench" => Ok(Command::Bench {
            quick,
            json,
            jobs,
            out: out.unwrap_or_else(|| std::path::PathBuf::from("BENCH_sweep.json")),
            gate,
        }),
        "trace" => Ok(Command::Trace {
            app: app.ok_or_else(|| err("trace needs an app (positional or --app <name>)"))?,
            cfg: Box::new(cfg),
            seed,
            out: out.unwrap_or_else(|| std::path::PathBuf::from("trace.json")),
            opts: barre_trace::TraceOptions {
                window: window.unwrap_or_else(|| barre_trace::TraceOptions::default().window),
                filter,
            },
        }),
        other => Err(err(format!("unknown command {other}"))),
    }
}

/// The original argument list minus supervisor-only flags — what a
/// crash-isolated child is re-executed with (plus `--job-index <i>`).
/// `--jobs` is stripped too: it does not change any job's simulation, so
/// keeping it out makes job fingerprints stable across worker counts.
/// `--dispatch` likewise, so a dispatched sweep and a local supervised
/// run of the same command line agree on every job fingerprint.
fn strip_supervisor_flags(args: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--supervise" => {}
            "--journal" | "--resume" | "--timeout" | "--retries" | "--job-index" | "--jobs"
            | "--dispatch" => {
                i += 1;
            }
            other => out.push(other.to_string()),
        }
        i += 1;
    }
    out
}

/// Usage text.
pub const USAGE: &str = "\
barre — Barre Chord MCM-GPU translation model

USAGE:
  barre list                              list the 19 workloads
  barre table2 [--paper]                  print the configuration
  barre run   --app <name> [flags]        run one app (baseline compare with --baseline)
  barre sweep [--apps a,b,c|all] [flags]  speedups vs baseline per app
  barre pair  --a <name> --b <name>       co-run two apps (multi-programming)
  barre chaos --app <name> [flags]        sweep ATS drop rates (fault injection)
  barre bench [--json] [--quick] [flags]  timed smoke sweep + serial/parallel cross-check
  barre merge --out <dir> <inputs...>     fold shard journals / bench reports into one
  barre lint  [flags]                     determinism & panic-safety analyzer
                                          (exit 0 clean, 1 violations, 2 usage/budget error)
  barre trace <app> [flags]               run one app traced; write trace.json (Perfetto-loadable)
  barre report <trace|journal> [--top n]  per-stage p50/p95/p99 tables + slowest journeys
  barre report --bench-diff <old> <new>   compare two BENCH_sweep.json files; exit 1 on
                                          regressions beyond --threshold (default 1.5x)
  barre report --fleet <dirs...> [--out p] stitch BARRE_FLEET_TRACE'd per-process trace files
                                          into one Perfetto timeline (default fleet-trace.json)
  barre serve [flags]                     simulation daemon: JSONL requests over TCP, HTTP shim
                                          (/healthz /readyz /stats /metrics), verified result cache
  barre queue [flags]                     lease-based shared job-queue coordinator with a
                                          write-ahead journal (crash-restartable) and an HTTP
                                          shim (/healthz /readyz /stats /metrics)
  barre worker --connect <host:port>      pull jobs from a queue coordinator under leases,
                                          heartbeat to keep them, run them crash-isolated

FLAGS:
  --mode <baseline|valkyrie|least|shared-l2|barre|fbarre|fbarre1|fbarre4>
  --policy <lasp|coda|rr|chunking>     --page-size <4k|64k|2m>
  --ptws <n|inf>                       --chiplets <n>
  --gmmu                               --migration
  --paper                              --smoke (small fast configuration)
  --seed <n>
  --rates <r1,r2,...>                  chaos drop-rate sweep (default 0,0.001,0.01,0.05)
  --jobs <n>                           worker threads for sweep/chaos/bench
                                       (default: BARRE_JOBS env, then all cores; 1 = serial)
  --quick                              bench: 3-app subset instead of the balanced 9
  --gate [ratio]                       bench: exit 1 if any mode is more than ratio times
                                       slower than baseline (default 5.0)
  --threshold <ratio>                  report --bench-diff: regression cutoff (default 1.5)
  --out <path>                         bench: report path (default BENCH_sweep.json)
                                       merge: output directory (default merged/)
                                       trace: export path (default trace.json; .jsonl = compact)
  --window <n>                         trace: span-ring retention (default 65536 spans)
  --filter stage=<s1,s2,...>           trace: stages kept in the span ring (histograms
                                       always cover every stage); names as in the report
  --top <n>                            report: slowest journeys shown (default 10)
  --out <path>                         report --fleet: timeline path (default fleet-trace.json)

OBSERVABILITY:
  BARRE_LOG=<error|warn|info|debug|trace>  stderr structured-log threshold (default info);
                                       daemon/worker/dispatch diagnostics are one JSON
                                       object per line (ts_ms, level, component, event, msg)
  BARRE_FLEET_TRACE=<dir>              fleet processes append span events to
                                       <dir>/fleet-<role>-<pid>.trace.jsonl; stitch with
                                       `barre report --fleet <dir>`
  --log-file <path>                    serve/queue/worker: append structured logs to <path>
                                       instead of stderr

LINT FLAGS:
  --root <dir>                         workspace to analyze (default .)
  --json | --sarif                     barre-lint/2 JSON or SARIF 2.1.0 (mutually exclusive)
  --baseline <file>                    accepted-findings file (default <root>/lint-baseline.json)
  --no-baseline                        ignore any baseline file
  --write-baseline                     regenerate the baseline from current findings
  --changed-since <rev>                only report findings in files changed since <rev>
  --max-waivers <n>                    inline-waiver budget (default 5; exit 2 on breach)
  --fix                                apply safe autofixes (W001 scaffold, D002 clock rewrite)
  --parallel-readiness                 append the R001 audit report (ROADMAP item 2 gate)

SUPERVISOR FLAGS (sweep, chaos):
  --supervise                          run each job in a crash-isolated child process
  --journal <dir|file.jsonl>           write-ahead journal location (default sweep-journal/)
  --resume <dir|file.jsonl>            skip jobs journaled as done, rerun the rest;
                                       output is byte-identical to an uninterrupted run
  --timeout <secs>                     per-job wall-clock budget (kill + retry on expiry)
  --retries <n>                        transient-failure retries per job (default 2);
                                       permanent failures (exit 64) are never retried
  --dispatch <host:port>               run the sweep on a `barre queue` coordinator instead
                                       of locally; workers execute, results and the journal
                                       come back byte-identical to a serial supervised run

SERVE FLAGS:
  --host <addr> --port <n>             bind address (default 127.0.0.1:7341; port 0 = ephemeral,
                                       the chosen address is printed as `listening on ...`)
  --workers <n>                        simulation worker threads (default: BARRE_JOBS, then cores)
  --queue-cap <n>                      admission-queue bound; beyond it requests are shed with a
                                       429-style response and a retry_after_ms hint (default 64)
  --cache-dir <dir>                    verified result-cache location (default serve-cache/)
  --timeout <secs>                     default per-request deadline, queue wait included
                                       (default 60; requests may override with timeout_ms)
  --retries <n>                        serve: transient-failure retries per request (default 1)
  --breaker <n>                        quarantine a config fingerprint after n consecutive
                                       failures (default 3; 0 disables the circuit breaker)

QUEUE FLAGS:
  --host <addr> --port <n>             bind address (default 127.0.0.1:7342; port 0 = ephemeral,
                                       printed as `listening on ...`)
  --journal <dir|file.jsonl>           write-ahead journal location (default queue-journal/);
                                       restart with the same journal to resume
  --lease <secs>                       lease duration before an unheartbeated job is
                                       re-dispatched (default 10)
  --max-leases <n>                     quarantine a job as poison after n burned leases
                                       (default 3; 0 disables quarantine)

WORKER FLAGS:
  --connect <host:port>                queue coordinator to pull jobs from (required)
  --name <id>                          worker identity stamped on journal records
                                       (default worker-<pid>; BARRE_WORKER_ID also works)
  --jobs <n>                           concurrent job slots (default 1)
  --timeout <secs>                     per-job wall-clock budget (kill + report on expiry)
";

/// Reports a simulation failure on stderr and yields the error exit code.
fn report(err: &SimError) -> i32 {
    eprintln!("error: {err}");
    1
}

/// Hidden child mode (`--job-index i`): re-derive the sweep's job list
/// from the same command line, run exactly job `i`, and print its
/// metrics as one line of canonical JSON for the supervisor to journal.
/// Failures exit with [`SimError::exit_code`] so the supervisor can tell
/// permanent configuration bugs from transient-shaped faults.
fn run_child_job(labeled: &[LabeledJob], index: usize) -> i32 {
    let Some(l) = labeled.get(index) else {
        eprintln!(
            "error: --job-index {index} out of range ({} jobs)",
            labeled.len()
        );
        return supervisor::EXIT_USAGE;
    };
    child_test_hooks(index);
    let (spec, cfg, seed) = l.job.clone();
    match run_spec(spec, &cfg, seed) {
        Ok(m) => {
            println!("{}", barre_system::metrics_to_json(&m));
            0
        }
        Err(e) => {
            eprintln!("error: {}: {e}", l.label);
            e.exit_code()
        }
    }
}

/// Failure-injection hooks for the supervisor's integration tests.
/// `BARRE_TEST_KILL="<i>:<sentinel>"` SIGKILLs child `i` once (the
/// sentinel file marks the kill as spent, so retries and resumes
/// proceed); `BARRE_TEST_HANG="<i>"` hangs child `i` forever to exercise
/// the watchdog timeout. No-ops unless those variables are set.
fn child_test_hooks(index: usize) {
    if let Ok(spec) = std::env::var("BARRE_TEST_KILL") {
        if let Some((idx, sentinel)) = spec.split_once(':') {
            if idx.parse() == Ok(index) && !std::path::Path::new(sentinel).exists() {
                let _ = std::fs::write(sentinel, b"killed\n");
                supervisor::kill_self();
            }
        }
    }
    if let Ok(v) = std::env::var("BARRE_TEST_HANG") {
        if v.parse() == Ok(index) {
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
    }
}

/// Runs a labeled job list either inline on the worker pool or under the
/// crash-isolated supervisor, returning one [`RunMetrics`] per job in
/// input order. `Err` carries the process exit code; failure details
/// have already been printed to stderr, keeping stdout byte-identical
/// across inline, supervised and resumed runs.
fn collect_metrics(
    labeled: &[LabeledJob],
    jobs: Option<usize>,
    sup: Option<&supervisor::SuperviseOpts>,
) -> Result<Vec<RunMetrics>, i32> {
    let threads = barre_sim::pool::resolve_jobs(jobs);
    let Some(sup) = sup else {
        let batch: Vec<BatchJob> = labeled.iter().map(|l| l.job.clone()).collect();
        let results = run_batch(batch, threads).map_err(|e| report(&e))?;
        let mut out = Vec::with_capacity(labeled.len());
        for (l, res) in labeled.iter().zip(results) {
            match res {
                Ok(m) => out.push(m),
                Err(e) => {
                    eprintln!("error: {}: {e}", l.label);
                    return Err(1);
                }
            }
        }
        return Ok(out);
    };
    let run = match supervisor::run_supervised(labeled, threads, sup) {
        Ok(r) => r,
        Err(e) => {
            olog::error("supervisor", "run_failed", &[], &format!("error: {e}"));
            return Err(1);
        }
    };
    let journal = supervisor::journal_file_of(&sup.journal);
    if run.resumed > 0 {
        olog::info(
            "supervisor",
            "resumed",
            &[("jobs", Field::U(run.resumed as u64))],
            &format!(
                "resumed {} finished job(s) from {}",
                run.resumed,
                journal.display()
            ),
        );
    }
    for f in &run.failures {
        olog::warn(
            "supervisor",
            "job_failed",
            &[("label", Field::S(&f.label))],
            &f.to_string(),
        );
    }
    if run.interrupted {
        olog::warn(
            "supervisor",
            "interrupted",
            &[],
            &format!(
                "interrupted: in-flight jobs drained and journaled; rerun with --resume {} to finish",
                journal.display()
            ),
        );
        return Err(supervisor::interrupt_exit_code());
    }
    if !run.failures.is_empty() {
        olog::error(
            "supervisor",
            "jobs_failed",
            &[
                ("failed", Field::U(run.failures.len() as u64)),
                ("total", Field::U(labeled.len() as u64)),
            ],
            &format!(
                "{} of {} job(s) failed; the rest completed and are journaled in {}",
                run.failures.len(),
                labeled.len(),
                journal.display()
            ),
        );
        return Err(1);
    }
    let metrics: Vec<RunMetrics> = run.results.into_iter().flatten().collect();
    if metrics.len() != labeled.len() {
        eprintln!(
            "error: supervisor returned {} of {} results",
            metrics.len(),
            labeled.len()
        );
        return Err(1);
    }
    Ok(metrics)
}

/// Runs a labeled job list through a remote `barre queue` coordinator,
/// returning one [`RunMetrics`] per job in input order. The counterpart
/// of [`collect_metrics`]'s supervised path: failures and poison
/// verdicts go to stderr in the supervisor's format, stdout stays
/// byte-identical to a local run.
fn collect_dispatched(labeled: &[LabeledJob], d: &DispatchOpts) -> Result<Vec<RunMetrics>, i32> {
    supervisor::install_drain_handlers();
    let jobs: Vec<barre_serve::jobq::JobSpec> = labeled
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let mut args = d.child_args.clone();
            args.push("--job-index".to_string());
            args.push(i.to_string());
            barre_serve::jobq::JobSpec {
                fingerprint: supervisor::job_fingerprint(&d.child_args, i, &l.label),
                label: l.label.clone(),
                args,
                // One correlation id per job, minted at the dispatch
                // origin — the root of the cross-process trace.
                corr: Some(barre_obs::corr_id()),
            }
        })
        .collect();
    let journal = supervisor::journal_file_of(&d.journal);
    let outcome = match barre_serve::jobq::dispatch_sweep(&d.addr, &jobs, &journal) {
        Ok(o) => o,
        Err(e) => {
            olog::error("dispatch", "sweep_failed", &[], &format!("error: {e}"));
            return Err(1);
        }
    };
    if outcome.interrupted {
        return Err(supervisor::interrupt_exit_code());
    }
    for f in &outcome.failures {
        if f.quarantined {
            olog::warn(
                "dispatch",
                "job_quarantined",
                &[("label", Field::S(&f.label))],
                &format!(
                    "POISON {} quarantined after {} lease(s): {}",
                    f.label, f.attempts, f.exit
                ),
            );
        } else {
            olog::warn(
                "dispatch",
                "job_failed",
                &[("label", Field::S(&f.label))],
                &format!(
                    "FAILED {} after {} attempt(s): {}",
                    f.label, f.attempts, f.exit
                ),
            );
        }
    }
    if !outcome.failures.is_empty() {
        olog::error(
            "dispatch",
            "jobs_failed",
            &[
                ("failed", Field::U(outcome.failures.len() as u64)),
                ("total", Field::U(labeled.len() as u64)),
            ],
            &format!(
                "{} of {} job(s) failed; the rest completed and are journaled in {}",
                outcome.failures.len(),
                labeled.len(),
                journal.display()
            ),
        );
        return Err(1);
    }
    let metrics: Vec<RunMetrics> = outcome.results.into_iter().flatten().collect();
    if metrics.len() != labeled.len() {
        olog::error(
            "dispatch",
            "results_incomplete",
            &[],
            &format!(
                "error: coordinator returned {} of {} results",
                metrics.len(),
                labeled.len()
            ),
        );
        return Err(1);
    }
    Ok(metrics)
}

/// Renders the sweep speedup table. One shared renderer keeps inline,
/// supervised and resumed runs byte-identical on stdout.
fn render_sweep(apps: &[AppId], cfg: &SystemConfig, metrics: &[RunMetrics]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<8} {:>12} {:>12} {:>9}",
        "app",
        "base cy",
        format!("{} cy", cfg.mode.label()),
        "speedup"
    );
    let mut ratios = Vec::new();
    for (app, pair) in apps.iter().zip(metrics.chunks_exact(2)) {
        let sp = speedup(&pair[0], &pair[1]);
        ratios.push(sp);
        let _ = writeln!(
            s,
            "{:<8} {:>12} {:>12} {:>8.3}x",
            app.name(),
            pair[0].total_cycles,
            pair[1].total_cycles,
            sp
        );
    }
    let _ = writeln!(
        s,
        "geomean: {:.3}x",
        barre_system::geomean(ratios.iter().copied())
    );
    s
}

/// Renders the chaos fault-injection table (shared renderer, see
/// [`render_sweep`]).
fn render_chaos(rates: &[f64], metrics: &[RunMetrics]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<8} {:>10} {:>8} {:>8} {:>9} {:>10} {:>12}",
        "drop", "cycles", "faults", "retries", "timeouts", "fallbacks", "ATS"
    );
    for (rate, m) in rates.iter().zip(metrics) {
        let _ = writeln!(
            s,
            "{:<8} {:>10} {:>8} {:>8} {:>9} {:>10} {:>12}",
            format!("{rate}"),
            m.total_cycles,
            m.faults_injected,
            m.ats_retries,
            m.ats_timeouts,
            m.fallback_translations,
            m.ats_requests
        );
    }
    s
}

/// `barre merge`: folds shard journals (directories or `.jsonl` files)
/// and `BENCH_sweep.json` fragments (`.json` files) into one output
/// directory, refusing to merge shards whose completed runs disagree.
fn run_merge(out: &std::path::Path, inputs: &[std::path::PathBuf]) -> i32 {
    let mut journal_shards: Vec<Vec<barre_system::JournalRecord>> = Vec::new();
    let mut bench_docs: Vec<String> = Vec::new();
    let mut skipped_total = 0usize;
    for p in inputs {
        if p.extension().is_some_and(|e| e == "json") {
            match std::fs::read_to_string(p) {
                Ok(doc) => bench_docs.push(doc),
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", p.display());
                    return 1;
                }
            }
        } else {
            let path = supervisor::journal_file_of(p);
            // Lenient read: a shard that survived a crash may carry torn
            // or corrupt lines anywhere, not just at the tail. Skipped
            // lines are surfaced, never silently dropped.
            match barre_system::read_journal_lenient(&path) {
                Ok((recs, skipped)) => {
                    if skipped > 0 {
                        eprintln!(
                            "warning: {}: skipped {skipped} corrupt line(s)",
                            path.display()
                        );
                        skipped_total = skipped_total.saturating_add(skipped);
                    }
                    journal_shards.push(recs);
                }
                Err(e) => {
                    eprintln!("error: cannot read journal {}: {e}", path.display());
                    return 1;
                }
            }
        }
    }
    let (journal_out, bench_out) = if out.extension().is_some_and(|e| e == "jsonl") {
        let dir = out
            .parent()
            .map(std::path::Path::to_path_buf)
            .unwrap_or_default();
        (out.to_path_buf(), dir.join("BENCH_sweep.json"))
    } else {
        (
            out.join(barre_system::JOURNAL_FILE),
            out.join("BENCH_sweep.json"),
        )
    };
    if let Some(dir) = journal_out.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return 1;
        }
    }
    if !journal_shards.is_empty() {
        let mut merged = match barre_system::merge_journals(&journal_shards) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
        // The merged journal is worker-agnostic: strip the identity
        // stamps so a distributed run's merge is byte-identical to a
        // serial run's, and report the attribution on stderr instead.
        let mut by_worker: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();
        for r in &mut merged {
            if let barre_system::JournalEvent::Done { worker, .. } = &mut r.event {
                if let Some(w) = worker.take() {
                    *by_worker.entry(w).or_insert(0) += 1;
                }
            }
        }
        if !by_worker.is_empty() {
            let attribution: Vec<String> =
                by_worker.iter().map(|(w, n)| format!("{w}: {n}")).collect();
            eprintln!("workers: {}", attribution.join(", "));
        }
        let mut doc = String::with_capacity(merged.len() * 256);
        for r in &merged {
            doc.push_str(&r.to_line());
            doc.push('\n');
        }
        if let Err(e) = std::fs::write(&journal_out, doc) {
            eprintln!("error: cannot write {}: {e}", journal_out.display());
            return 1;
        }
        let done = merged
            .iter()
            .filter(|r| matches!(r.event, barre_system::JournalEvent::Done { .. }))
            .count();
        let skipped_note = if skipped_total > 0 {
            format!(", {skipped_total} line(s) skipped")
        } else {
            String::new()
        };
        println!(
            "merged {} journal shard(s): {} record(s), {} done{} -> {}",
            journal_shards.len(),
            merged.len(),
            done,
            skipped_note,
            journal_out.display()
        );
    }
    if !bench_docs.is_empty() {
        let merged = match barre_bench::wallclock::merge_reports(&bench_docs) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
        if let Err(e) = std::fs::write(&bench_out, merged) {
            eprintln!("error: cannot write {}: {e}", bench_out.display());
            return 1;
        }
        println!(
            "merged {} bench report(s) -> {}",
            bench_docs.len(),
            bench_out.display()
        );
    }
    0
}

/// Executes a parsed command, printing to stdout. Returns the process
/// exit code (0 on success, 1 when the simulation reports a
/// [`SimError`]).
pub fn execute(cmd: Command) -> i32 {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            0
        }
        Command::List => {
            println!(
                "{:<8} {:<20} {:>12} {:>6}",
                "abbr", "name", "paper MPKI", "class"
            );
            for a in AppId::all() {
                println!(
                    "{:<8} {:<20} {:>12.3} {:>6}",
                    a.name(),
                    a.full_name(),
                    a.paper_mpki(),
                    a.category()
                );
            }
            0
        }
        Command::Table2 { cfg } => {
            print!("{}", cfg.table2());
            0
        }
        Command::Run {
            app,
            cfg,
            seed,
            baseline,
            metrics_json,
        } => {
            // Deadline-test hook for the serve integration tests: a child
            // that never finishes, so the daemon's watchdog must kill it.
            if std::env::var("BARRE_TEST_RUN_HANG").is_ok() {
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            if metrics_json {
                // The `barre serve` child protocol: exactly one line of
                // canonical metrics JSON on success; SimError exit codes
                // tell the daemon permanent from transient failures.
                return match run_app(app, &cfg, seed) {
                    Ok(m) => {
                        println!("{}", barre_system::metrics_to_json(&m));
                        0
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        e.exit_code()
                    }
                };
            }
            let m = match run_app(app, &cfg, seed) {
                Ok(m) => m,
                Err(e) => return report(&e),
            };
            println!(
                "{}",
                summary_line(&format!("{app}/{}", cfg.mode.label()), &m)
            );
            if baseline {
                let base_cfg = (*cfg.clone()).with_mode(TranslationMode::Baseline);
                let b = match run_app(app, &base_cfg, seed) {
                    Ok(b) => b,
                    Err(e) => return report(&e),
                };
                println!("{}", summary_line(&format!("{app}/baseline"), &b));
                println!("speedup: {:.3}x", speedup(&b, &m));
            }
            0
        }
        Command::Sweep {
            apps,
            cfg,
            seed,
            jobs,
            sup,
            dispatch,
            job_index,
        } => {
            // Every execution path — inline pool, supervised children,
            // remote dispatch, `--job-index` replay — derives its work
            // from this one job list, so a job index means the same
            // simulation everywhere.
            let labeled = sweep_jobs(&apps, &cfg, seed);
            if let Some(index) = job_index {
                return run_child_job(&labeled, index);
            }
            let metrics = match &dispatch {
                Some(d) => collect_dispatched(&labeled, d),
                None => collect_metrics(&labeled, jobs, sup.as_ref()),
            };
            let metrics = match metrics {
                Ok(m) => m,
                Err(code) => return code,
            };
            print!("{}", render_sweep(&apps, &cfg, &metrics));
            0
        }
        Command::Pair { pair, cfg, seed } => {
            let m: RunMetrics = match run_pair(pair, &cfg, seed) {
                Ok(m) => m,
                Err(e) => return report(&e),
            };
            println!("{}", summary_line(&pair.label(), &m));
            0
        }
        Command::Lint { opts } => lint_cmd::run_lint(&opts),
        Command::Chaos {
            app,
            cfg,
            seed,
            rates,
            jobs,
            sup,
            dispatch,
            job_index,
        } => {
            let labeled = chaos_jobs(app, &cfg, seed, &rates);
            if let Some(index) = job_index {
                return run_child_job(&labeled, index);
            }
            let metrics = match &dispatch {
                Some(d) => collect_dispatched(&labeled, d),
                None => collect_metrics(&labeled, jobs, sup.as_ref()),
            };
            let metrics = match metrics {
                Ok(m) => m,
                Err(code) => return code,
            };
            print!("{}", render_chaos(&rates, &metrics));
            0
        }
        Command::Trace {
            app,
            cfg,
            seed,
            out,
            opts,
        } => trace_cmd::run_trace(app, &cfg, seed, &out, &opts),
        Command::Report { input, top } => trace_cmd::run_report(&input, top),
        Command::FleetReport { dirs, out } => trace_cmd::run_fleet_report(&dirs, out.as_deref()),
        Command::BenchDiff {
            old,
            new,
            threshold,
        } => {
            let read = |p: &std::path::Path| match std::fs::read_to_string(p) {
                Ok(doc) => Some(doc),
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", p.display());
                    None
                }
            };
            let (Some(old_doc), Some(new_doc)) = (read(&old), read(&new)) else {
                return 1;
            };
            match barre_bench::wallclock::diff_reports(&old_doc, &new_doc, threshold) {
                Ok(diff) => {
                    print!("{}", diff.render());
                    i32::from(!diff.regressions().is_empty())
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
        Command::Serve { opts } => barre_serve::run_serve(&opts),
        Command::Queue { opts } => barre_serve::jobq::run_queue(&opts),
        Command::Worker { opts } => barre_serve::jobq::run_worker(&opts),
        Command::Merge { out, inputs } => run_merge(&out, &inputs),
        Command::Bench {
            quick,
            json,
            jobs,
            out,
            gate,
        } => {
            let threads = barre_sim::pool::resolve_jobs(jobs);
            let r = match barre_bench::wallclock::run_bench(quick, threads) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            let doc = r.to_json();
            if let Err(e) = std::fs::write(&out, &doc) {
                eprintln!("error: cannot write {}: {e}", out.display());
                return 1;
            }
            if json {
                print!("{doc}");
            } else {
                print!("{}", r.summary());
                println!("report written to {}", out.display());
            }
            if let Some(ratio) = gate {
                let violations = r.gate_violations(ratio);
                if !violations.is_empty() {
                    for v in &violations {
                        eprintln!("gate: {v}");
                    }
                    eprintln!("gate: {} cell(s) beyond {ratio:.1}x", violations.len());
                    return 1;
                }
                println!("gate: all modes within {ratio:.1}x of baseline");
            }
            // Serial/parallel divergence is a determinism bug — fail.
            i32::from(!r.divergent.is_empty())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Command, ParseError> {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_run() {
        let cmd = p(&["run", "--app", "gups", "--mode", "fbarre", "--seed", "7"]).unwrap();
        match cmd {
            Command::Run { app, cfg, seed, .. } => {
                assert_eq!(app, AppId::Gups);
                assert_eq!(seed, 7);
                assert!(matches!(cfg.mode, TranslationMode::FBarre(_)));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_sweep_subset() {
        let cmd = p(&["sweep", "--apps", "gemv,gups", "--mode", "barre"]).unwrap();
        match cmd {
            Command::Sweep { apps, cfg, .. } => {
                assert_eq!(apps, vec![AppId::Gemv, AppId::Gups]);
                assert_eq!(cfg.mode, TranslationMode::Barre);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_pair_and_topology() {
        let cmd = p(&["pair", "--a", "gemv", "--b", "gups", "--chiplets", "8"]).unwrap();
        match cmd {
            Command::Pair { pair, cfg, .. } => {
                assert_eq!(pair.a, AppId::Gemv);
                assert_eq!(cfg.topology.n_chiplets, 8);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_chaos_rates() {
        let cmd = p(&["chaos", "--app", "gups", "--rates", "0,0.01"]).unwrap();
        match cmd {
            Command::Chaos { app, rates, .. } => {
                assert_eq!(app, AppId::Gups);
                assert_eq!(rates, vec![0.0, 0.01]);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults kick in without --rates; bad rates are rejected.
        assert!(matches!(
            p(&["chaos", "--app", "gups"]).unwrap(),
            Command::Chaos { .. }
        ));
        assert!(p(&["chaos", "--app", "gups", "--rates", "1.5"]).is_err());
        assert!(p(&["chaos", "--rates", "0.1"]).is_err());
    }

    #[test]
    fn parses_queue_flags() {
        match p(&[
            "queue",
            "--port",
            "0",
            "--journal",
            "/tmp/q",
            "--lease",
            "2.5",
            "--max-leases",
            "5",
        ])
        .unwrap()
        {
            Command::Queue { opts } => {
                assert_eq!(opts.port, 0);
                assert_eq!(opts.journal, std::path::PathBuf::from("/tmp/q"));
                assert_eq!(opts.lease, std::time::Duration::from_secs_f64(2.5));
                assert_eq!(opts.max_leases, 5);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(p(&["queue", "--lease", "0"]).is_err());
        assert!(p(&["queue", "--lease", "nope"]).is_err());
        assert!(p(&["queue", "--apps", "gemv"]).is_err());
    }

    #[test]
    fn parses_worker_flags() {
        match p(&[
            "worker",
            "--connect",
            "127.0.0.1:7342",
            "--name",
            "w1",
            "--jobs",
            "3",
            "--timeout",
            "4",
        ])
        .unwrap()
        {
            Command::Worker { opts } => {
                assert_eq!(opts.connect, "127.0.0.1:7342");
                assert_eq!(opts.name.as_deref(), Some("w1"));
                assert_eq!(opts.slots, 3);
                assert_eq!(opts.timeout, Some(std::time::Duration::from_secs(4)));
            }
            other => panic!("wrong command {other:?}"),
        }
        // --connect is mandatory; zero slots and bad budgets are rejected.
        assert!(p(&["worker"]).is_err());
        assert!(p(&["worker", "--connect", "h:1", "--jobs", "0"]).is_err());
        assert!(p(&["worker", "--connect", "h:1", "--timeout", "-1"]).is_err());
    }

    #[test]
    fn parses_dispatch_and_rejects_conflicts() {
        match p(&[
            "sweep",
            "--apps",
            "gemv",
            "--dispatch",
            "127.0.0.1:7342",
            "--journal",
            "/tmp/shard.jsonl",
        ])
        .unwrap()
        {
            Command::Sweep { sup, dispatch, .. } => {
                let d = dispatch.expect("dispatch parsed");
                assert!(sup.is_none(), "dispatch must not also supervise locally");
                assert_eq!(d.addr, "127.0.0.1:7342");
                assert_eq!(d.journal, std::path::PathBuf::from("/tmp/shard.jsonl"));
                // The child args a worker replays must not re-dispatch.
                assert!(!d.child_args.iter().any(|a| a == "--dispatch"));
                assert!(!d.child_args.iter().any(|a| a == "127.0.0.1:7342"));
            }
            other => panic!("wrong command {other:?}"),
        }
        match p(&["chaos", "--app", "gups", "--dispatch", "h:1"]).unwrap() {
            Command::Chaos { dispatch, .. } => assert!(dispatch.is_some()),
            other => panic!("wrong command {other:?}"),
        }
        assert!(p(&["sweep", "--dispatch", "h:1", "--supervise"]).is_err());
        assert!(p(&["sweep", "--dispatch", "h:1", "--timeout", "5"]).is_err());
        assert!(p(&["sweep", "--dispatch", "h:1", "--retries", "1"]).is_err());
    }

    #[test]
    fn rejects_unknowns() {
        assert!(p(&["run", "--app", "nosuch"]).is_err());
        assert!(p(&["run"]).is_err());
        assert!(p(&["frobnicate"]).is_err());
        assert!(p(&["run", "--app", "gups", "--mode", "warp-drive"]).is_err());
        assert!(p(&["run", "--app"]).is_err());
    }

    #[test]
    fn flag_helpers_cover_all_labels() {
        for m in [
            "baseline",
            "valkyrie",
            "least",
            "shared-l2",
            "barre",
            "fbarre",
            "fbarre1",
            "fbarre4",
        ] {
            assert!(mode_by_name(m).is_some(), "{m}");
        }
        for pol in ["lasp", "coda", "rr", "chunking"] {
            assert!(policy_by_name(pol).is_some(), "{pol}");
        }
        for ps in ["4k", "64k", "2m"] {
            assert!(page_size_by_name(ps).is_some(), "{ps}");
        }
        assert_eq!(app_by_name("gesm"), Some(AppId::Gesm));
        assert_eq!(app_by_name("zzz"), None);
    }

    #[test]
    fn ptws_inf_parses() {
        let cmd = p(&["run", "--app", "gemv", "--ptws", "inf"]).unwrap();
        match cmd {
            Command::Run { cfg, .. } => assert_eq!(cfg.ptws, None),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn empty_args_is_help() {
        assert!(matches!(p(&[]).unwrap(), Command::Help));
    }

    #[test]
    fn parses_bench_and_jobs() {
        match p(&[
            "bench",
            "--json",
            "--quick",
            "--jobs",
            "8",
            "--out",
            "/tmp/b.json",
        ])
        .unwrap()
        {
            Command::Bench {
                quick,
                json,
                jobs,
                out,
                gate,
            } => {
                assert!(quick && json);
                assert_eq!(jobs, Some(8));
                assert_eq!(out, std::path::PathBuf::from("/tmp/b.json"));
                assert_eq!(gate, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        match p(&["bench"]).unwrap() {
            Command::Bench {
                quick,
                json,
                jobs,
                gate,
                ..
            } => {
                assert!(!quick && !json);
                assert_eq!(jobs, None);
                assert_eq!(gate, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        match p(&["sweep", "--apps", "gemv", "--jobs", "2"]).unwrap() {
            Command::Sweep { jobs, .. } => assert_eq!(jobs, Some(2)),
            other => panic!("wrong command {other:?}"),
        }
        match p(&["chaos", "--app", "gups", "--jobs", "4"]).unwrap() {
            Command::Chaos { jobs, .. } => assert_eq!(jobs, Some(4)),
            other => panic!("wrong command {other:?}"),
        }
        assert!(p(&["bench", "--jobs", "0"]).is_err());
        assert!(p(&["bench", "--jobs", "many"]).is_err());
        assert!(p(&["bench", "--out"]).is_err());
    }

    #[test]
    fn parses_bench_gate() {
        // Bare flag takes the default ratio; a following flag is not a value.
        match p(&["bench", "--gate", "--quick"]).unwrap() {
            Command::Bench { gate, quick, .. } => {
                assert_eq!(gate, Some(DEFAULT_BENCH_GATE));
                assert!(quick);
            }
            other => panic!("wrong command {other:?}"),
        }
        match p(&["bench", "--gate", "3.5"]).unwrap() {
            Command::Bench { gate, .. } => assert_eq!(gate, Some(3.5)),
            other => panic!("wrong command {other:?}"),
        }
        assert!(p(&["bench", "--gate", "abc"]).is_err());
        assert!(p(&["bench", "--gate", "0"]).is_err());
        assert!(p(&["bench", "--gate", "-2"]).is_err());
    }

    #[test]
    fn parses_trace() {
        // Positional app, documented `stage=` filter form, window.
        match p(&[
            "trace",
            "gups",
            "--mode",
            "fbarre",
            "--window",
            "128",
            "--filter",
            "stage=ptw,fill",
            "--out",
            "/tmp/t.jsonl",
        ])
        .unwrap()
        {
            Command::Trace {
                app,
                cfg,
                out,
                opts,
                ..
            } => {
                assert_eq!(app, AppId::Gups);
                assert!(matches!(cfg.mode, TranslationMode::FBarre(_)));
                assert_eq!(out, std::path::PathBuf::from("/tmp/t.jsonl"));
                assert_eq!(opts.window, 128);
                assert!(opts.filter.contains(barre_trace::Stage::Ptw));
                assert!(!opts.filter.contains(barre_trace::Stage::TlbL1));
            }
            other => panic!("wrong command {other:?}"),
        }
        // --app form and defaults.
        match p(&["trace", "--app", "gemv"]).unwrap() {
            Command::Trace { app, out, opts, .. } => {
                assert_eq!(app, AppId::Gemv);
                assert_eq!(out, std::path::PathBuf::from("trace.json"));
                assert_eq!(opts.window, 65_536);
                assert!(opts.filter.contains(barre_trace::Stage::TlbL1));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(p(&["trace"]).is_err());
        assert!(p(&["trace", "nosuch"]).is_err());
        assert!(p(&["trace", "gups", "--filter", "warp-core"]).is_err());
        assert!(p(&["trace", "gups", "--window", "0"]).is_err());
    }

    #[test]
    fn parses_report() {
        match p(&["report", "trace.json"]).unwrap() {
            Command::Report { input, top } => {
                assert_eq!(input, std::path::PathBuf::from("trace.json"));
                assert_eq!(top, trace_cmd::DEFAULT_TOP);
            }
            other => panic!("wrong command {other:?}"),
        }
        match p(&["report", "--top", "3", "sweep-journal"]).unwrap() {
            Command::Report { input, top } => {
                assert_eq!(input, std::path::PathBuf::from("sweep-journal"));
                assert_eq!(top, 3);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(p(&["report"]).is_err());
        assert!(p(&["report", "a", "b"]).is_err());
        assert!(p(&["report", "--top", "many", "t.json"]).is_err());
    }

    #[test]
    fn parses_bench_diff() {
        match p(&["report", "--bench-diff", "old.json", "new.json"]).unwrap() {
            Command::BenchDiff {
                old,
                new,
                threshold,
            } => {
                assert_eq!(old, std::path::PathBuf::from("old.json"));
                assert_eq!(new, std::path::PathBuf::from("new.json"));
                assert_eq!(threshold, DEFAULT_BENCH_DIFF_THRESHOLD);
            }
            other => panic!("wrong command {other:?}"),
        }
        match p(&["report", "--bench-diff", "a", "b", "--threshold", "1.1"]).unwrap() {
            Command::BenchDiff { threshold, .. } => assert_eq!(threshold, 1.1),
            other => panic!("wrong command {other:?}"),
        }
        assert!(p(&["report", "--bench-diff", "only-one"]).is_err());
        assert!(p(&["report", "--bench-diff", "a", "b", "c"]).is_err());
        assert!(p(&["report", "--bench-diff", "a", "b", "--threshold", "0"]).is_err());
        // --threshold without --bench-diff is rejected.
        assert!(p(&["report", "t.json", "--threshold", "1.2"]).is_err());
    }

    #[test]
    fn parses_lint() {
        match p(&["lint"]).unwrap() {
            Command::Lint { opts } => {
                assert_eq!(opts.root, std::path::PathBuf::from("."));
                assert!(!opts.json && !opts.sarif && !opts.fix);
                assert_eq!(opts.max_waivers, 5);
                assert!(opts.baseline.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
        match p(&["lint", "--json", "--root", "/tmp/ws"]).unwrap() {
            Command::Lint { opts } => {
                assert_eq!(opts.root, std::path::PathBuf::from("/tmp/ws"));
                assert!(opts.json);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(p(&["lint", "--root"]).is_err());
    }

    #[test]
    fn parses_lint_analyzer_flags() {
        match p(&[
            "lint",
            "--sarif",
            "--baseline",
            "bl.json",
            "--changed-since",
            "origin/main",
            "--max-waivers",
            "9",
            "--parallel-readiness",
        ])
        .unwrap()
        {
            Command::Lint { opts } => {
                assert!(opts.sarif && opts.readiness);
                assert_eq!(opts.baseline, Some(std::path::PathBuf::from("bl.json")));
                assert_eq!(opts.changed_since.as_deref(), Some("origin/main"));
                assert_eq!(opts.max_waivers, 9);
            }
            other => panic!("wrong command {other:?}"),
        }
        // --json and --sarif are two serializations of the same report.
        assert!(p(&["lint", "--json", "--sarif"]).is_err());
        assert!(p(&["lint", "--no-baseline", "--baseline", "b.json"]).is_err());
        assert!(p(&["lint", "--max-waivers", "lots"]).is_err());
        assert!(p(&["lint", "--frobnicate"]).is_err());
    }
}
