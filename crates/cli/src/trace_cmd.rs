//! `barre trace` and `barre report` — record one traced run and
//! summarize trace (or journal) files.
//!
//! `trace` runs a single app with the lifecycle tracer attached and
//! writes either a Chrome-trace/Perfetto JSON document (default) or the
//! compact JSONL stream (when `--out` ends in `.jsonl`). `report` reads
//! either export back — or a sweep journal — and prints per-stage
//! p50/p95/p99 latency tables plus the top-N slowest journeys. All
//! parsing goes through `barre_system::Json`, whose exact-text number
//! handling keeps round-trips lossless.
//!
//! `report --fleet <dirs…>` stitches the per-process
//! `fleet-<role>-<pid>.trace.jsonl` files a `BARRE_FLEET_TRACE`d sweep
//! leaves behind into one Perfetto timeline: events are joined by
//! correlation id (falling back to job fingerprint), and each job's
//! queued → leased → attempt phases become spans on its own track.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::Path;

use barre_system::{trace_app, JournalEvent, Json, SystemConfig};
use barre_trace::export::{chrome_trace, jsonl, TraceMeta};
use barre_trace::{LatencyHistogram, Stage, TraceOptions};
use barre_workloads::AppId;

/// Journeys shown by default in the slowest-journeys table.
pub const DEFAULT_TOP: usize = 10;

/// Runs `app` traced and writes the export to `out`. Returns the
/// process exit code.
pub fn run_trace(
    app: AppId,
    cfg: &SystemConfig,
    seed: u64,
    out: &Path,
    opts: &TraceOptions,
) -> i32 {
    let (m, rec) = match trace_app(app, cfg, seed, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let meta = TraceMeta {
        app: app.name().to_string(),
        mode: cfg.mode.label(),
        seed,
        window: opts.window as u64,
    };
    let doc = if out.extension().is_some_and(|e| e == "jsonl") {
        jsonl(&rec, &meta)
    } else {
        chrome_trace(&rec, &meta)
    };
    if let Err(e) = std::fs::write(out, &doc) {
        eprintln!("error: cannot write {}: {e}", out.display());
        return 1;
    }
    println!(
        "traced {}/{} seed={}: {} cycles, {} span(s) recorded ({} dropped, {} filtered), {} sample(s)",
        app.name(),
        meta.mode,
        seed,
        m.total_cycles,
        rec.ring().recorded(),
        rec.ring().dropped(),
        rec.filtered(),
        rec.samples().len()
    );
    let stage_hists: Vec<(String, LatencyHistogram)> = Stage::ALL
        .iter()
        .map(|s| (s.name().to_string(), rec.stage_histogram(*s).clone()))
        .collect();
    print!("{}", render_stage_table(&stage_hists));
    println!("trace written to {}", out.display());
    0
}

/// Summarizes a trace export or a sweep journal. Returns the process
/// exit code.
pub fn run_report(input: &Path, top: usize) -> i32 {
    let doc = match std::fs::read_to_string(input) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", input.display());
            return 1;
        }
    };
    let parsed = if doc.trim_start().starts_with("{\"traceEvents\"") {
        parse_chrome_trace(&doc)
    } else if doc
        .lines()
        .next()
        .is_some_and(|l| l.contains("\"t\":\"meta\""))
    {
        parse_trace_jsonl(&doc)
    } else {
        return report_journal(input, &doc);
    };
    match parsed {
        Ok(t) => {
            print!("{}", render_trace_report(&t, top));
            0
        }
        Err(e) => {
            eprintln!("error: {}: {e}", input.display());
            1
        }
    }
}

/// A trace export read back for reporting.
struct TraceDoc {
    header: String,
    stage_hists: Vec<(String, LatencyHistogram)>,
    /// `(id, chiplet, start, duration)` of every retained whole-journey
    /// (`cu-issue`) span.
    journeys: Vec<(u64, u64, u64, u64)>,
    samples: usize,
    /// `(spills, rebins, growths, buckets)` from the last sample, when
    /// the trace carries event-queue counters (schema >= this version).
    queue: Option<(u64, u64, u64, u64)>,
}

fn queue_of_sample(v: &Json) -> Option<(u64, u64, u64, u64)> {
    let n = |k: &str| v.get(k).and_then(Json::as_u64);
    Some((
        n("queue_spills")?,
        n("queue_rebins")?,
        n("queue_growths")?,
        n("queue_buckets")?,
    ))
}

fn hist_from_value(v: &Json) -> Result<LatencyHistogram, String> {
    let pairs = v
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or("histogram missing buckets")?
        .iter()
        .map(|p| {
            let a = p.as_arr().ok_or("bucket pair not an array")?;
            let i = a.first().and_then(Json::as_u64).ok_or("bad bucket index")?;
            let c = a.get(1).and_then(Json::as_u64).ok_or("bad bucket count")?;
            Ok((i as usize, c))
        })
        .collect::<Result<Vec<(usize, u64)>, String>>()?;
    let sum = v
        .get("sum")
        .and_then(Json::as_u128)
        .ok_or("histogram missing sum")?;
    let min = v
        .get("min")
        .and_then(Json::as_u64)
        .ok_or("histogram missing min")?;
    let max = v
        .get("max")
        .and_then(Json::as_u64)
        .ok_or("histogram missing max")?;
    Ok(LatencyHistogram::from_parts(&pairs, sum, min, max))
}

fn header_of(v: &Json) -> String {
    let s = |k: &str| v.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
    let n = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
    format!(
        "app={} mode={} seed={} window={} spans: {} recorded, {} dropped, {} filtered",
        s("app"),
        s("mode"),
        n("seed"),
        n("window"),
        n("spans_recorded"),
        n("spans_dropped"),
        n("spans_filtered"),
    )
}

fn parse_chrome_trace(doc: &str) -> Result<TraceDoc, String> {
    let v = Json::parse(doc)?;
    let barre = v
        .get("barre")
        .ok_or("no barre section (not a barre trace?)")?;
    let mut stage_hists = Vec::with_capacity(Stage::COUNT);
    for (name, hv) in barre
        .get("stage_histograms")
        .and_then(Json::as_obj)
        .ok_or("no stage_histograms")?
    {
        stage_hists.push((name.clone(), hist_from_value(hv)?));
    }
    let mut journeys = Vec::new();
    for ev in v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("no traceEvents")?
    {
        if ev.get("name").and_then(Json::as_str) == Some(Stage::CuIssue.name()) {
            let g = |k: &str| ev.get(k).and_then(Json::as_u64).ok_or("bad traceEvent");
            journeys.push((g("tid")?, g("pid")?, g("ts")?, g("dur")?));
        }
    }
    let sample_arr = barre.get("samples").and_then(Json::as_arr);
    let samples = sample_arr.map_or(0, <[Json]>::len);
    let queue = sample_arr
        .and_then(<[Json]>::last)
        .and_then(queue_of_sample);
    Ok(TraceDoc {
        header: header_of(barre),
        stage_hists,
        journeys,
        samples,
        queue,
    })
}

fn parse_trace_jsonl(doc: &str) -> Result<TraceDoc, String> {
    let mut header = String::new();
    let mut stage_hists = Vec::new();
    let mut journeys = Vec::new();
    let mut samples = 0usize;
    let mut queue = None;
    for (lineno, line) in doc.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        match v.get("t").and_then(Json::as_str) {
            Some("meta") => header = header_of(&v),
            Some("hist") => {
                if v.get("scope").and_then(Json::as_str) == Some("stage") {
                    let name = v
                        .get("stage")
                        .and_then(Json::as_str)
                        .ok_or("hist line missing stage")?;
                    let h = hist_from_value(v.get("hist").ok_or("hist line missing hist")?)?;
                    stage_hists.push((name.to_string(), h));
                }
            }
            Some("sample") => {
                samples += 1;
                if let Some(s) = v.get("sample") {
                    queue = queue_of_sample(s).or(queue);
                }
            }
            Some("span") => {
                if v.get("stage").and_then(Json::as_str) == Some(Stage::CuIssue.name()) {
                    let g = |k: &str| v.get(k).and_then(Json::as_u64).ok_or("bad span line");
                    let (start, end) = (g("start")?, g("end")?);
                    journeys.push((g("id")?, g("chiplet")?, start, end.saturating_sub(start)));
                }
            }
            _ => return Err(format!("line {}: unknown record", lineno + 1)),
        }
    }
    Ok(TraceDoc {
        header,
        stage_hists,
        journeys,
        samples,
        queue,
    })
}

fn render_stage_table(stage_hists: &[(String, LatencyHistogram)]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:>10} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "stage", "count", "p50", "p95", "p99", "mean", "max"
    );
    for (name, h) in stage_hists {
        if h.count() == 0 {
            let _ = writeln!(
                s,
                "{name:<10} {:>10} {:>9} {:>9} {:>9} {:>11} {:>9}",
                0, "-", "-", "-", "-", "-"
            );
            continue;
        }
        let _ = writeln!(
            s,
            "{:<10} {:>10} {:>9} {:>9} {:>9} {:>11.1} {:>9}",
            name,
            h.count(),
            h.p50(),
            h.p95(),
            h.p99(),
            h.mean(),
            h.max()
        );
    }
    s
}

fn render_trace_report(t: &TraceDoc, top: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{}; {} sample(s)", t.header, t.samples);
    if let Some((spills, rebins, growths, buckets)) = t.queue {
        let _ = writeln!(
            s,
            "event queue: {spills} spill(s), {rebins} rebin(s), {growths} wheel growth(s), \
             {buckets} bucket(s)"
        );
    }
    s.push_str(&render_stage_table(&t.stage_hists));
    let mut slowest = t.journeys.clone();
    // Duration-descending; break ties deterministically on (start, id).
    slowest.sort_by_key(|&(id, _, start, dur)| (std::cmp::Reverse(dur), start, id));
    slowest.truncate(top);
    if !slowest.is_empty() {
        let _ = writeln!(
            s,
            "top {} slowest journeys (cu-issue spans):",
            slowest.len()
        );
        let _ = writeln!(
            s,
            "  {:>20} {:>8} {:>12} {:>10}",
            "id", "chiplet", "start", "cycles"
        );
        for (id, chiplet, start, dur) in slowest {
            let _ = writeln!(s, "  {id:>20} {chiplet:>8} {start:>12} {dur:>10}");
        }
    }
    s
}

/// `barre report` on a sweep journal: one line per completed job. The
/// percentile tables need a trace export; journals carry aggregate
/// metrics only.
fn report_journal(input: &Path, _doc: &str) -> i32 {
    let path = crate::supervisor::journal_file_of(input);
    let records = match barre_system::read_journal(&path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot read journal {}: {e}", path.display());
            return 1;
        }
    };
    let done = barre_system::completed_index(&records);
    println!(
        "journal {}: {} record(s), {} job(s) done",
        path.display(),
        records.len(),
        done.len()
    );
    println!(
        "{:<24} {:>12} {:>10} {:>12} {:>12} {:>18} {:>18}",
        "job", "cycles", "ATS", "lat mean", "lat max", "digest", "hist"
    );
    for rec in done.values() {
        if let JournalEvent::Done {
            metrics,
            digest,
            hist_digest,
            ..
        } = &rec.event
        {
            let lat = &metrics.ats_latency;
            let mean = if lat.count() == 0 {
                0.0
            } else {
                lat.sum() as f64 / lat.count() as f64
            };
            let hist = hist_digest.as_deref().unwrap_or("-");
            println!(
                "{:<24} {:>12} {:>10} {:>12.1} {:>12} {:>18} {:>18}",
                rec.label,
                metrics.total_cycles,
                metrics.ats_requests,
                mean,
                lat.max(),
                digest,
                hist
            );
        }
    }
    0
}

// ---------------------------------------------------------------------
// `barre report --fleet`: cross-process trace stitching.

/// One parsed fleet-trace point event (a line of some process's
/// `fleet-<role>-<pid>.trace.jsonl`).
#[derive(Debug, Clone)]
struct FleetEvent {
    ts_ms: u64,
    role: String,
    event: String,
    corr: String,
    fp: String,
    label: String,
    worker: String,
    exit: String,
}

/// One derived phase span on a job's stitched timeline.
#[derive(Debug)]
struct FleetSpan {
    name: &'static str,
    start_ms: u64,
    end_ms: u64,
    /// What closed the span: a verdict, an exit class, or a worker.
    detail: String,
}

/// One job's stitched view across every fleet process that touched it.
#[derive(Debug)]
struct FleetJob {
    /// Correlation id, or `fp:<fingerprint>` when none was ever minted.
    key: String,
    label: String,
    fp: String,
    /// `done`, `failed`, `quarantined`, or `pending`.
    verdict: String,
    spans: Vec<FleetSpan>,
    events: Vec<FleetEvent>,
}

fn parse_fleet_line(line: &str) -> Result<FleetEvent, String> {
    let v = Json::parse(line)?;
    let s = |k: &str| v.get(k).and_then(Json::as_str).unwrap_or("").to_string();
    Ok(FleetEvent {
        ts_ms: v
            .get("ts_ms")
            .and_then(Json::as_u64)
            .ok_or("missing ts_ms")?,
        role: v
            .get("role")
            .and_then(Json::as_str)
            .ok_or("missing role")?
            .to_string(),
        event: v
            .get("event")
            .and_then(Json::as_str)
            .ok_or("missing event")?
            .to_string(),
        corr: s("corr"),
        fp: s("fp"),
        label: s("label"),
        worker: s("worker"),
        exit: s("exit"),
    })
}

/// Groups events into jobs (by correlation id, falling back to
/// fingerprint) and derives each job's phase spans. Jobs come back
/// sorted by (label, fingerprint, key) for stable output.
fn stitch_fleet(mut events: Vec<FleetEvent>) -> Vec<FleetJob> {
    // Learn fp → corr from events carrying both, so corr-less records
    // (a lease for a job submitted without an id) still join the job.
    let mut corr_of_fp: BTreeMap<String, String> = BTreeMap::new();
    for e in &events {
        if !e.corr.is_empty() && !e.fp.is_empty() {
            corr_of_fp
                .entry(e.fp.clone())
                .or_insert_with(|| e.corr.clone());
        }
    }
    events.sort_by_key(|e| e.ts_ms);
    let mut jobs: BTreeMap<String, FleetJob> = BTreeMap::new();
    for e in events {
        let key = if !e.corr.is_empty() {
            e.corr.clone()
        } else if let Some(c) = corr_of_fp.get(&e.fp) {
            c.clone()
        } else if !e.fp.is_empty() {
            format!("fp:{}", e.fp)
        } else {
            // Process-level noise with nothing to join on.
            continue;
        };
        let job = jobs.entry(key.clone()).or_insert_with(|| FleetJob {
            key,
            label: String::new(),
            fp: String::new(),
            verdict: "pending".to_string(),
            spans: Vec::new(),
            events: Vec::new(),
        });
        if job.label.is_empty() && !e.label.is_empty() {
            job.label = e.label.clone();
        }
        if job.fp.is_empty() && !e.fp.is_empty() {
            job.fp = e.fp.clone();
        }
        job.events.push(e);
    }
    let mut out: Vec<FleetJob> = jobs.into_values().collect();
    for job in &mut out {
        derive_spans(job);
    }
    out.sort_by(|a, b| (&a.label, &a.fp, &a.key).cmp(&(&b.label, &b.fp, &b.key)));
    out
}

/// Walks one job's time-ordered events and derives its phase spans:
/// `queued` (enqueue → lease), `leased` (lease → verdict), `attempt`
/// (child spawn → exit). A requeue or lease expiry reopens the queued
/// phase; phases still open at the last event are closed there as
/// `unfinished` so interrupted sweeps render too.
fn derive_spans(job: &mut FleetJob) {
    let last_ts = job.events.last().map_or(0, |e| e.ts_ms);
    let mut queued: Option<u64> = None;
    let mut leased: Option<(u64, String)> = None;
    let mut attempt: Option<u64> = None;
    let mut spans = Vec::new();
    for e in &job.events {
        match e.event.as_str() {
            "submitted" | "queued" if queued.is_none() && leased.is_none() => {
                queued = Some(e.ts_ms);
            }
            "submitted" | "queued" => {}
            "leased" => {
                if let Some(start) = queued.take() {
                    spans.push(FleetSpan {
                        name: "queued",
                        start_ms: start,
                        end_ms: e.ts_ms,
                        detail: e.worker.clone(),
                    });
                }
                leased = Some((e.ts_ms, e.worker.clone()));
            }
            "attempt_start" => attempt = Some(e.ts_ms),
            "attempt_end" => {
                if let Some(start) = attempt.take() {
                    spans.push(FleetSpan {
                        name: "attempt",
                        start_ms: start,
                        end_ms: e.ts_ms,
                        detail: e.exit.clone(),
                    });
                }
            }
            "done" | "failed" | "quarantined" | "requeued" | "lease_expired" => {
                if let Some((start, worker)) = leased.take() {
                    let detail = if worker.is_empty() {
                        e.event.clone()
                    } else {
                        format!("{} ({worker})", e.event)
                    };
                    spans.push(FleetSpan {
                        name: "leased",
                        start_ms: start,
                        end_ms: e.ts_ms,
                        detail,
                    });
                }
                match e.event.as_str() {
                    "done" | "failed" | "quarantined" => job.verdict = e.event.clone(),
                    // Back in the queue: a fresh queued phase opens here.
                    _ => queued = Some(e.ts_ms),
                }
            }
            // heartbeat_lost, reported, collected: instants only.
            _ => {}
        }
    }
    if let Some(start) = attempt {
        spans.push(FleetSpan {
            name: "attempt",
            start_ms: start,
            end_ms: last_ts,
            detail: "unfinished".to_string(),
        });
    }
    if let Some((start, _)) = leased {
        spans.push(FleetSpan {
            name: "leased",
            start_ms: start,
            end_ms: last_ts,
            detail: "unfinished".to_string(),
        });
    }
    if let Some(start) = queued {
        spans.push(FleetSpan {
            name: "queued",
            start_ms: start,
            end_ms: last_ts,
            detail: "unfinished".to_string(),
        });
    }
    spans.sort_by_key(|s| s.start_ms);
    job.spans = spans;
}

fn push_esc(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders the stitched jobs as one Chrome-trace/Perfetto document:
/// a single `barre fleet` process with one thread (track) per job,
/// phase spans as `X` events and the raw point events as instants.
/// Timestamps are microseconds relative to `t0` (the fleet's first
/// event) so the timeline starts at zero.
fn render_fleet_chrome(jobs: &[FleetJob], t0: u64) -> String {
    let us = |ms: u64| ms.saturating_sub(t0) * 1000;
    let mut s = String::from("{\"traceEvents\":[\n");
    s.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"barre fleet\"}}");
    for (i, job) in jobs.iter().enumerate() {
        let tid = i + 1;
        let track = if job.label.is_empty() {
            &job.key
        } else {
            &job.label
        };
        let _ = write!(
            s,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\""
        );
        push_esc(&mut s, track);
        s.push_str("\"}}");
        for span in &job.spans {
            let dur = us(span.end_ms).saturating_sub(us(span.start_ms)).max(1);
            let _ = write!(
                s,
                ",\n{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{dur},\"pid\":1,\"tid\":{tid},\"args\":{{\"corr\":\"",
                span.name,
                us(span.start_ms),
            );
            push_esc(&mut s, &job.key);
            s.push_str("\",\"fp\":\"");
            push_esc(&mut s, &job.fp);
            s.push_str("\",\"detail\":\"");
            push_esc(&mut s, &span.detail);
            s.push_str("\"}}");
        }
        for e in &job.events {
            let _ = write!(
                s,
                ",\n{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{tid},\"args\":{{\"role\":\"",
                e.event,
                us(e.ts_ms),
            );
            push_esc(&mut s, &e.role);
            if !e.worker.is_empty() {
                s.push_str("\",\"worker\":\"");
                push_esc(&mut s, &e.worker);
            }
            if !e.exit.is_empty() {
                s.push_str("\",\"exit\":\"");
                push_esc(&mut s, &e.exit);
            }
            s.push_str("\"}}");
        }
    }
    s.push_str("\n]}\n");
    s
}

/// `barre report --fleet <dirs…>`: reads every `fleet-*.trace.jsonl`
/// under the given directories, stitches the events into per-job
/// timelines, prints a per-job summary, and writes one Perfetto
/// document (default `fleet-trace.json`). Returns the process exit
/// code.
pub fn run_fleet_report(dirs: &[std::path::PathBuf], out: Option<&Path>) -> i32 {
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for dir in dirs {
        let rd = match std::fs::read_dir(dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", dir.display());
                return 1;
            }
        };
        for entry in rd.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("fleet-") && name.ends_with(".trace.jsonl") {
                files.push(entry.path());
            }
        }
    }
    files.sort();
    if files.is_empty() {
        eprintln!(
            "error: no fleet-*.trace.jsonl files found; run the fleet with \
             BARRE_FLEET_TRACE=<dir> set"
        );
        return 1;
    }
    let mut events = Vec::new();
    for f in &files {
        let body = match std::fs::read_to_string(f) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", f.display());
                return 1;
            }
        };
        for (lineno, line) in body.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_fleet_line(line) {
                Ok(e) => events.push(e),
                Err(e) => {
                    eprintln!("error: {}:{}: {e}", f.display(), lineno + 1);
                    return 1;
                }
            }
        }
    }
    let n_events = events.len();
    let roles: BTreeSet<String> = events.iter().map(|e| e.role.clone()).collect();
    let roles: Vec<String> = roles.into_iter().collect();
    let t0 = events.iter().map(|e| e.ts_ms).min().unwrap_or(0);
    let jobs = stitch_fleet(events);
    println!(
        "fleet: {n_events} event(s) in {} file(s); {} job(s); roles: {}",
        files.len(),
        jobs.len(),
        roles.join(",")
    );
    println!(
        "{:<24} {:<19} {:<12} {:>6} {:>10}",
        "job", "corr", "verdict", "spans", "wall ms"
    );
    for job in &jobs {
        let name = if job.label.is_empty() {
            job.fp.as_str()
        } else {
            job.label.as_str()
        };
        let first = job.events.first().map_or(0, |e| e.ts_ms);
        let last = job.events.last().map_or(0, |e| e.ts_ms);
        println!(
            "{:<24} {:<19} {:<12} {:>6} {:>10}",
            name,
            job.key,
            job.verdict,
            job.spans.len(),
            last.saturating_sub(first)
        );
    }
    let doc = render_fleet_chrome(&jobs, t0);
    let out = out.unwrap_or_else(|| Path::new("fleet-trace.json"));
    if let Err(e) = std::fs::write(out, &doc) {
        eprintln!("error: cannot write {}: {e}", out.display());
        return 1;
    }
    println!("fleet timeline written to {}", out.display());
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use barre_trace::{Sample, StageMask, Tracer};

    fn recorder() -> Box<barre_trace::TraceRecorder> {
        let mut t = Tracer::recording(&TraceOptions {
            window: 64,
            filter: StageMask::all(),
        });
        t.span(Stage::CuIssue, 1, 0, 0, 100);
        t.span(Stage::CuIssue, 2, 1, 10, 400);
        t.span(Stage::TlbL1, 1, 0, 0, 4);
        t.span(Stage::Ptw, 1 << 62, 0, 20, 320);
        t.sample(Sample::default());
        t.take_recorder().expect("recording")
    }

    fn meta() -> TraceMeta {
        TraceMeta {
            app: "gups".into(),
            mode: "fbarre".into(),
            seed: 9,
            window: 64,
        }
    }

    #[test]
    fn chrome_trace_round_trips_through_report_parser() {
        let rec = recorder();
        let doc = chrome_trace(&rec, &meta());
        let t = parse_chrome_trace(&doc).expect("parse");
        assert_eq!(t.journeys.len(), 2);
        assert_eq!(t.samples, 1);
        let (name, h) = t
            .stage_hists
            .iter()
            .find(|(n, _)| n == "ptw")
            .expect("ptw hist");
        assert_eq!(name, "ptw");
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 300);
        assert_eq!(h.max(), rec.stage_histogram(Stage::Ptw).max());
        assert_eq!(h.p99(), rec.stage_histogram(Stage::Ptw).p99());
        assert!(t.header.contains("app=gups"));
    }

    #[test]
    fn jsonl_round_trips_through_report_parser() {
        let rec = recorder();
        let doc = jsonl(&rec, &meta());
        let t = parse_trace_jsonl(&doc).expect("parse");
        assert_eq!(t.journeys.len(), 2);
        assert_eq!(t.samples, 1);
        assert_eq!(t.stage_hists.len(), Stage::COUNT);
        let cu = &t
            .stage_hists
            .iter()
            .find(|(n, _)| n == "cu-issue")
            .expect("cu-issue hist")
            .1;
        assert_eq!(cu.count(), 2);
        assert_eq!(cu.min(), 100);
    }

    #[test]
    fn report_renders_percentiles_and_slowest_journeys() {
        let doc = chrome_trace(&recorder(), &meta());
        let t = parse_chrome_trace(&doc).expect("parse");
        let out = render_trace_report(&t, 1);
        assert!(out.contains("tlb-l1"));
        assert!(out.contains("p99"));
        assert!(out.contains("top 1 slowest journeys"));
        // Journey 2 (390 cycles) beats journey 1 (100 cycles).
        let tail = out.lines().last().expect("rows");
        assert!(tail.trim_start().starts_with('2'), "{tail}");
    }

    fn fe(ts_ms: u64, role: &str, event: &str, corr: &str, fp: &str) -> FleetEvent {
        FleetEvent {
            ts_ms,
            role: role.to_string(),
            event: event.to_string(),
            corr: corr.to_string(),
            fp: fp.to_string(),
            label: String::new(),
            worker: String::new(),
            exit: String::new(),
        }
    }

    #[test]
    fn fleet_stitch_derives_queued_leased_attempt_spans() {
        let mut ev = vec![
            fe(100, "client", "submitted", "cA", "f1"),
            fe(101, "queue", "queued", "cA", "f1"),
            fe(150, "queue", "leased", "cA", "f1"),
            fe(160, "worker", "attempt_start", "cA", "f1"),
            fe(400, "worker", "attempt_end", "cA", "f1"),
            fe(410, "queue", "done", "cA", "f1"),
            fe(420, "client", "collected", "cA", "f1"),
        ];
        ev[1].label = "gups/barre".to_string();
        ev[2].worker = "w1".to_string();
        ev[4].exit = "ok".to_string();
        let jobs = stitch_fleet(ev);
        assert_eq!(jobs.len(), 1);
        let job = &jobs[0];
        assert_eq!(job.label, "gups/barre");
        assert_eq!(job.verdict, "done");
        let names: Vec<&str> = job.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["queued", "leased", "attempt"]);
        assert_eq!(job.spans[0].start_ms, 100);
        assert_eq!(job.spans[0].end_ms, 150);
        assert_eq!(job.spans[1].end_ms, 410);
        assert!(job.spans[1].detail.contains("done"), "{:?}", job.spans[1]);
        assert_eq!(job.spans[2].detail, "ok");
    }

    #[test]
    fn fleet_stitch_requeue_reopens_queued_and_fp_fallback_joins() {
        // Lease expiry puts the job back in the queue; a corr-less
        // event joins via the fp → corr mapping learned elsewhere.
        let ev = vec![
            fe(10, "queue", "queued", "cB", "f2"),
            fe(20, "queue", "leased", "cB", "f2"),
            fe(90, "queue", "lease_expired", "", "f2"),
            fe(120, "queue", "leased", "cB", "f2"),
            fe(200, "queue", "done", "cB", "f2"),
        ];
        let jobs = stitch_fleet(ev);
        assert_eq!(jobs.len(), 1, "{jobs:?}");
        let job = &jobs[0];
        assert_eq!(job.verdict, "done");
        let names: Vec<&str> = job.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["queued", "leased", "queued", "leased"]);
        // The reopened queued phase runs expiry → second lease.
        assert_eq!(job.spans[2].start_ms, 90);
        assert_eq!(job.spans[2].end_ms, 120);
    }

    #[test]
    fn fleet_chrome_doc_parses_and_carries_job_tracks() {
        let mut ev = vec![
            fe(1000, "queue", "queued", "cC", "f3"),
            fe(1500, "queue", "leased", "cC", "f3"),
            fe(2000, "queue", "done", "cC", "f3"),
        ];
        ev[0].label = "radix/chord".to_string();
        let jobs = stitch_fleet(ev);
        let doc = render_fleet_chrome(&jobs, 1000);
        let v = Json::parse(&doc).expect("valid chrome trace json");
        let evs = v.get("traceEvents").and_then(Json::as_arr).expect("events");
        let track = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .expect("thread_name meta");
        assert_eq!(
            track
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("radix/chord")
        );
        let queued = evs
            .iter()
            .find(|e| {
                e.get("name").and_then(Json::as_str) == Some("queued")
                    && e.get("ph").and_then(Json::as_str) == Some("X")
            })
            .expect("queued span");
        assert_eq!(queued.get("ts").and_then(Json::as_u64), Some(0));
        assert_eq!(queued.get("dur").and_then(Json::as_u64), Some(500_000));
    }
}
