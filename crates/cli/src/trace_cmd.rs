//! `barre trace` and `barre report` — record one traced run and
//! summarize trace (or journal) files.
//!
//! `trace` runs a single app with the lifecycle tracer attached and
//! writes either a Chrome-trace/Perfetto JSON document (default) or the
//! compact JSONL stream (when `--out` ends in `.jsonl`). `report` reads
//! either export back — or a sweep journal — and prints per-stage
//! p50/p95/p99 latency tables plus the top-N slowest journeys. All
//! parsing goes through `barre_system::Json`, whose exact-text number
//! handling keeps round-trips lossless.

use std::fmt::Write as _;
use std::path::Path;

use barre_system::{trace_app, JournalEvent, Json, SystemConfig};
use barre_trace::export::{chrome_trace, jsonl, TraceMeta};
use barre_trace::{LatencyHistogram, Stage, TraceOptions};
use barre_workloads::AppId;

/// Journeys shown by default in the slowest-journeys table.
pub const DEFAULT_TOP: usize = 10;

/// Runs `app` traced and writes the export to `out`. Returns the
/// process exit code.
pub fn run_trace(
    app: AppId,
    cfg: &SystemConfig,
    seed: u64,
    out: &Path,
    opts: &TraceOptions,
) -> i32 {
    let (m, rec) = match trace_app(app, cfg, seed, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let meta = TraceMeta {
        app: app.name().to_string(),
        mode: cfg.mode.label(),
        seed,
        window: opts.window as u64,
    };
    let doc = if out.extension().is_some_and(|e| e == "jsonl") {
        jsonl(&rec, &meta)
    } else {
        chrome_trace(&rec, &meta)
    };
    if let Err(e) = std::fs::write(out, &doc) {
        eprintln!("error: cannot write {}: {e}", out.display());
        return 1;
    }
    println!(
        "traced {}/{} seed={}: {} cycles, {} span(s) recorded ({} dropped, {} filtered), {} sample(s)",
        app.name(),
        meta.mode,
        seed,
        m.total_cycles,
        rec.ring().recorded(),
        rec.ring().dropped(),
        rec.filtered(),
        rec.samples().len()
    );
    let stage_hists: Vec<(String, LatencyHistogram)> = Stage::ALL
        .iter()
        .map(|s| (s.name().to_string(), rec.stage_histogram(*s).clone()))
        .collect();
    print!("{}", render_stage_table(&stage_hists));
    println!("trace written to {}", out.display());
    0
}

/// Summarizes a trace export or a sweep journal. Returns the process
/// exit code.
pub fn run_report(input: &Path, top: usize) -> i32 {
    let doc = match std::fs::read_to_string(input) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", input.display());
            return 1;
        }
    };
    let parsed = if doc.trim_start().starts_with("{\"traceEvents\"") {
        parse_chrome_trace(&doc)
    } else if doc
        .lines()
        .next()
        .is_some_and(|l| l.contains("\"t\":\"meta\""))
    {
        parse_trace_jsonl(&doc)
    } else {
        return report_journal(input, &doc);
    };
    match parsed {
        Ok(t) => {
            print!("{}", render_trace_report(&t, top));
            0
        }
        Err(e) => {
            eprintln!("error: {}: {e}", input.display());
            1
        }
    }
}

/// A trace export read back for reporting.
struct TraceDoc {
    header: String,
    stage_hists: Vec<(String, LatencyHistogram)>,
    /// `(id, chiplet, start, duration)` of every retained whole-journey
    /// (`cu-issue`) span.
    journeys: Vec<(u64, u64, u64, u64)>,
    samples: usize,
    /// `(spills, rebins, growths, buckets)` from the last sample, when
    /// the trace carries event-queue counters (schema >= this version).
    queue: Option<(u64, u64, u64, u64)>,
}

fn queue_of_sample(v: &Json) -> Option<(u64, u64, u64, u64)> {
    let n = |k: &str| v.get(k).and_then(Json::as_u64);
    Some((
        n("queue_spills")?,
        n("queue_rebins")?,
        n("queue_growths")?,
        n("queue_buckets")?,
    ))
}

fn hist_from_value(v: &Json) -> Result<LatencyHistogram, String> {
    let pairs = v
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or("histogram missing buckets")?
        .iter()
        .map(|p| {
            let a = p.as_arr().ok_or("bucket pair not an array")?;
            let i = a.first().and_then(Json::as_u64).ok_or("bad bucket index")?;
            let c = a.get(1).and_then(Json::as_u64).ok_or("bad bucket count")?;
            Ok((i as usize, c))
        })
        .collect::<Result<Vec<(usize, u64)>, String>>()?;
    let sum = v
        .get("sum")
        .and_then(Json::as_u128)
        .ok_or("histogram missing sum")?;
    let min = v
        .get("min")
        .and_then(Json::as_u64)
        .ok_or("histogram missing min")?;
    let max = v
        .get("max")
        .and_then(Json::as_u64)
        .ok_or("histogram missing max")?;
    Ok(LatencyHistogram::from_parts(&pairs, sum, min, max))
}

fn header_of(v: &Json) -> String {
    let s = |k: &str| v.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
    let n = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
    format!(
        "app={} mode={} seed={} window={} spans: {} recorded, {} dropped, {} filtered",
        s("app"),
        s("mode"),
        n("seed"),
        n("window"),
        n("spans_recorded"),
        n("spans_dropped"),
        n("spans_filtered"),
    )
}

fn parse_chrome_trace(doc: &str) -> Result<TraceDoc, String> {
    let v = Json::parse(doc)?;
    let barre = v
        .get("barre")
        .ok_or("no barre section (not a barre trace?)")?;
    let mut stage_hists = Vec::with_capacity(Stage::COUNT);
    for (name, hv) in barre
        .get("stage_histograms")
        .and_then(Json::as_obj)
        .ok_or("no stage_histograms")?
    {
        stage_hists.push((name.clone(), hist_from_value(hv)?));
    }
    let mut journeys = Vec::new();
    for ev in v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("no traceEvents")?
    {
        if ev.get("name").and_then(Json::as_str) == Some(Stage::CuIssue.name()) {
            let g = |k: &str| ev.get(k).and_then(Json::as_u64).ok_or("bad traceEvent");
            journeys.push((g("tid")?, g("pid")?, g("ts")?, g("dur")?));
        }
    }
    let sample_arr = barre.get("samples").and_then(Json::as_arr);
    let samples = sample_arr.map_or(0, <[Json]>::len);
    let queue = sample_arr
        .and_then(<[Json]>::last)
        .and_then(queue_of_sample);
    Ok(TraceDoc {
        header: header_of(barre),
        stage_hists,
        journeys,
        samples,
        queue,
    })
}

fn parse_trace_jsonl(doc: &str) -> Result<TraceDoc, String> {
    let mut header = String::new();
    let mut stage_hists = Vec::new();
    let mut journeys = Vec::new();
    let mut samples = 0usize;
    let mut queue = None;
    for (lineno, line) in doc.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        match v.get("t").and_then(Json::as_str) {
            Some("meta") => header = header_of(&v),
            Some("hist") => {
                if v.get("scope").and_then(Json::as_str) == Some("stage") {
                    let name = v
                        .get("stage")
                        .and_then(Json::as_str)
                        .ok_or("hist line missing stage")?;
                    let h = hist_from_value(v.get("hist").ok_or("hist line missing hist")?)?;
                    stage_hists.push((name.to_string(), h));
                }
            }
            Some("sample") => {
                samples += 1;
                if let Some(s) = v.get("sample") {
                    queue = queue_of_sample(s).or(queue);
                }
            }
            Some("span") => {
                if v.get("stage").and_then(Json::as_str) == Some(Stage::CuIssue.name()) {
                    let g = |k: &str| v.get(k).and_then(Json::as_u64).ok_or("bad span line");
                    let (start, end) = (g("start")?, g("end")?);
                    journeys.push((g("id")?, g("chiplet")?, start, end.saturating_sub(start)));
                }
            }
            _ => return Err(format!("line {}: unknown record", lineno + 1)),
        }
    }
    Ok(TraceDoc {
        header,
        stage_hists,
        journeys,
        samples,
        queue,
    })
}

fn render_stage_table(stage_hists: &[(String, LatencyHistogram)]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:>10} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "stage", "count", "p50", "p95", "p99", "mean", "max"
    );
    for (name, h) in stage_hists {
        if h.count() == 0 {
            let _ = writeln!(
                s,
                "{name:<10} {:>10} {:>9} {:>9} {:>9} {:>11} {:>9}",
                0, "-", "-", "-", "-", "-"
            );
            continue;
        }
        let _ = writeln!(
            s,
            "{:<10} {:>10} {:>9} {:>9} {:>9} {:>11.1} {:>9}",
            name,
            h.count(),
            h.p50(),
            h.p95(),
            h.p99(),
            h.mean(),
            h.max()
        );
    }
    s
}

fn render_trace_report(t: &TraceDoc, top: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{}; {} sample(s)", t.header, t.samples);
    if let Some((spills, rebins, growths, buckets)) = t.queue {
        let _ = writeln!(
            s,
            "event queue: {spills} spill(s), {rebins} rebin(s), {growths} wheel growth(s), \
             {buckets} bucket(s)"
        );
    }
    s.push_str(&render_stage_table(&t.stage_hists));
    let mut slowest = t.journeys.clone();
    // Duration-descending; break ties deterministically on (start, id).
    slowest.sort_by_key(|&(id, _, start, dur)| (std::cmp::Reverse(dur), start, id));
    slowest.truncate(top);
    if !slowest.is_empty() {
        let _ = writeln!(
            s,
            "top {} slowest journeys (cu-issue spans):",
            slowest.len()
        );
        let _ = writeln!(
            s,
            "  {:>20} {:>8} {:>12} {:>10}",
            "id", "chiplet", "start", "cycles"
        );
        for (id, chiplet, start, dur) in slowest {
            let _ = writeln!(s, "  {id:>20} {chiplet:>8} {start:>12} {dur:>10}");
        }
    }
    s
}

/// `barre report` on a sweep journal: one line per completed job. The
/// percentile tables need a trace export; journals carry aggregate
/// metrics only.
fn report_journal(input: &Path, _doc: &str) -> i32 {
    let path = crate::supervisor::journal_file_of(input);
    let records = match barre_system::read_journal(&path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot read journal {}: {e}", path.display());
            return 1;
        }
    };
    let done = barre_system::completed_index(&records);
    println!(
        "journal {}: {} record(s), {} job(s) done",
        path.display(),
        records.len(),
        done.len()
    );
    println!(
        "{:<24} {:>12} {:>10} {:>12} {:>12} {:>18} {:>18}",
        "job", "cycles", "ATS", "lat mean", "lat max", "digest", "hist"
    );
    for rec in done.values() {
        if let JournalEvent::Done {
            metrics,
            digest,
            hist_digest,
            ..
        } = &rec.event
        {
            let lat = &metrics.ats_latency;
            let mean = if lat.count() == 0 {
                0.0
            } else {
                lat.sum() as f64 / lat.count() as f64
            };
            let hist = hist_digest.as_deref().unwrap_or("-");
            println!(
                "{:<24} {:>12} {:>10} {:>12.1} {:>12} {:>18} {:>18}",
                rec.label,
                metrics.total_cycles,
                metrics.ats_requests,
                mean,
                lat.max(),
                digest,
                hist
            );
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use barre_trace::{Sample, StageMask, Tracer};

    fn recorder() -> Box<barre_trace::TraceRecorder> {
        let mut t = Tracer::recording(&TraceOptions {
            window: 64,
            filter: StageMask::all(),
        });
        t.span(Stage::CuIssue, 1, 0, 0, 100);
        t.span(Stage::CuIssue, 2, 1, 10, 400);
        t.span(Stage::TlbL1, 1, 0, 0, 4);
        t.span(Stage::Ptw, 1 << 62, 0, 20, 320);
        t.sample(Sample::default());
        t.take_recorder().expect("recording")
    }

    fn meta() -> TraceMeta {
        TraceMeta {
            app: "gups".into(),
            mode: "fbarre".into(),
            seed: 9,
            window: 64,
        }
    }

    #[test]
    fn chrome_trace_round_trips_through_report_parser() {
        let rec = recorder();
        let doc = chrome_trace(&rec, &meta());
        let t = parse_chrome_trace(&doc).expect("parse");
        assert_eq!(t.journeys.len(), 2);
        assert_eq!(t.samples, 1);
        let (name, h) = t
            .stage_hists
            .iter()
            .find(|(n, _)| n == "ptw")
            .expect("ptw hist");
        assert_eq!(name, "ptw");
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 300);
        assert_eq!(h.max(), rec.stage_histogram(Stage::Ptw).max());
        assert_eq!(h.p99(), rec.stage_histogram(Stage::Ptw).p99());
        assert!(t.header.contains("app=gups"));
    }

    #[test]
    fn jsonl_round_trips_through_report_parser() {
        let rec = recorder();
        let doc = jsonl(&rec, &meta());
        let t = parse_trace_jsonl(&doc).expect("parse");
        assert_eq!(t.journeys.len(), 2);
        assert_eq!(t.samples, 1);
        assert_eq!(t.stage_hists.len(), Stage::COUNT);
        let cu = &t
            .stage_hists
            .iter()
            .find(|(n, _)| n == "cu-issue")
            .expect("cu-issue hist")
            .1;
        assert_eq!(cu.count(), 2);
        assert_eq!(cu.min(), 100);
    }

    #[test]
    fn report_renders_percentiles_and_slowest_journeys() {
        let doc = chrome_trace(&recorder(), &meta());
        let t = parse_chrome_trace(&doc).expect("parse");
        let out = render_trace_report(&t, 1);
        assert!(out.contains("tlb-l1"));
        assert!(out.contains("p99"));
        assert!(out.contains("top 1 slowest journeys"));
        // Journey 2 (390 cycles) beats journey 1 (100 cycles).
        let tail = out.lines().last().expect("rows");
        assert!(tail.trim_start().starts_with('2'), "{tail}");
    }
}
