//! `barre lint` — the CLI front end for `barre-analysis`.
//!
//! This module owns everything between argument parsing and process exit:
//! baseline resolution (explicit `--baseline`, auto-discovered
//! `lint-baseline.json`, or `--no-baseline`), the `--write-baseline`
//! regeneration flow (which preserves hand-edited justifications for
//! findings that still exist), `--fix` application, the
//! `--changed-since <rev>` fast path (via `git diff --name-only`), the
//! inline-waiver budget, and the three output formats (human,
//! `barre-lint/2` JSON, SARIF 2.1.0).
//!
//! Exit-code contract: `0` clean, `1` active violations, `2` operational
//! error (bad baseline file, git failure, waiver budget breach, walk
//! error).

use barre_analysis::{
    analyze_workspace, baseline, fix, render_human, render_json, sarif, AnalyzeOptions, Baseline,
    BaselineEntry, Diagnostic, LintReport,
};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Parsed `barre lint` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintOpts {
    /// Workspace root to analyze.
    pub root: PathBuf,
    /// Emit `barre-lint/2` JSON instead of human text.
    pub json: bool,
    /// Emit SARIF 2.1.0 instead of human text.
    pub sarif: bool,
    /// Explicit baseline file (default: `<root>/lint-baseline.json` when
    /// present).
    pub baseline: Option<PathBuf>,
    /// Ignore any baseline file.
    pub no_baseline: bool,
    /// Regenerate the baseline from current findings and exit.
    pub write_baseline: bool,
    /// Apply safe autofixes before reporting.
    pub fix: bool,
    /// Inline-waiver budget; exceeding it is an operational error.
    pub max_waivers: usize,
    /// Only report findings in files changed since this git revision.
    pub changed_since: Option<String>,
    /// Append the R001 parallel-readiness report.
    pub readiness: bool,
}

impl Default for LintOpts {
    fn default() -> Self {
        Self {
            root: PathBuf::from("."),
            json: false,
            sarif: false,
            baseline: None,
            no_baseline: false,
            write_baseline: false,
            fix: false,
            max_waivers: 5,
            changed_since: None,
            readiness: false,
        }
    }
}

/// Runs the analyzer per `opts` and returns the process exit code.
pub fn run_lint(opts: &LintOpts) -> i32 {
    // Resolve the baseline. `--write-baseline` analyzes without one (it
    // must see every finding), but still reads the old file to preserve
    // hand-edited justifications.
    let default_path = opts.root.join("lint-baseline.json");
    let baseline_path = match &opts.baseline {
        Some(p) => Some(p.clone()),
        None if default_path.is_file() => Some(default_path),
        None => None,
    };
    let old_baseline = match &baseline_path {
        Some(p) if !opts.no_baseline => match load_baseline(p) {
            Ok(b) => Some(b),
            Err(msg) => {
                eprintln!("error: {msg}");
                return 2;
            }
        },
        _ => None,
    };

    let analysis_baseline = if opts.write_baseline {
        None
    } else {
        old_baseline.clone()
    };
    let mut report = match analyze(&opts.root, analysis_baseline.clone()) {
        Ok(r) => r,
        Err(code) => return code,
    };

    if opts.write_baseline {
        let path = opts
            .baseline
            .clone()
            .unwrap_or_else(|| opts.root.join("lint-baseline.json"));
        return write_baseline(&path, &report, old_baseline.as_ref());
    }

    if opts.fix {
        match apply_fixes(&opts.root, &report.diagnostics) {
            Ok(0) => {}
            Ok(n) => {
                eprintln!("fixed {n} finding(s); re-analyzing");
                report = match analyze(&opts.root, analysis_baseline) {
                    Ok(r) => r,
                    Err(code) => return code,
                };
            }
            Err(code) => return code,
        }
    }

    if let Some(rev) = &opts.changed_since {
        let changed = match changed_files(&opts.root, rev) {
            Ok(set) => set,
            Err(code) => return code,
        };
        report.diagnostics.retain(|d| changed.contains(&d.file));
    }

    let mut out = if opts.sarif {
        sarif::render(&report.diagnostics)
    } else if opts.json {
        render_json(&report)
    } else {
        render_human(&report)
    };
    if opts.readiness {
        out.push_str(&barre_analysis::report::render_readiness(&report));
    }
    print!("{out}");

    if report.waived > opts.max_waivers {
        eprintln!(
            "error: inline-waiver budget exceeded: {} waived > --max-waivers {} — \
             move accepted findings into lint-baseline.json or fix them",
            report.waived, opts.max_waivers
        );
        return 2;
    }
    i32::from(!report.is_clean())
}

fn analyze(root: &Path, baseline: Option<Baseline>) -> Result<LintReport, i32> {
    analyze_workspace(root, &AnalyzeOptions { baseline }).map_err(|e| {
        eprintln!("error: lint walk failed under {}: {e}", root.display());
        2
    })
}

fn load_baseline(path: &Path) -> Result<Baseline, String> {
    let src = fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    baseline::parse_baseline(&src).map_err(|e| format!("bad baseline {}: {e}", path.display()))
}

/// Regenerates the baseline file. Every current finding gets an entry;
/// findings already present in the old baseline keep their (possibly
/// hand-edited) justification, new ones get a rule-specific template
/// that a human is expected to replace or confirm.
fn write_baseline(path: &Path, report: &LintReport, old: Option<&Baseline>) -> i32 {
    let entries: Vec<BaselineEntry> = report
        .diagnostics
        .iter()
        .map(|d| {
            let symbol = if d.symbol.is_empty() {
                d.message.clone()
            } else {
                d.symbol.clone()
            };
            let justification = old
                .and_then(|b| {
                    b.entries
                        .iter()
                        .find(|e| e.rule == d.rule && e.file == d.file && e.symbol == symbol)
                })
                .map(|e| e.justification.clone())
                .unwrap_or_else(|| default_justification(d.rule).to_string());
            BaselineEntry {
                rule: d.rule.to_string(),
                file: d.file.clone(),
                symbol,
                justification,
            }
        })
        .collect();
    let rendered = baseline::render_baseline(&entries);
    if let Err(e) = fs::write(path, rendered) {
        eprintln!("error: cannot write baseline {}: {e}", path.display());
        return 2;
    }
    println!(
        "wrote {} accepted finding(s) to {}",
        entries.len(),
        path.display()
    );
    0
}

/// The justification template stamped on a finding first entering the
/// baseline. Deliberately phrased as debt, not absolution.
fn default_justification(rule: &str) -> &'static str {
    match rule {
        "P002" => {
            "pre-existing panic path accepted at P002 introduction; burn down via \
             checked access before ROADMAP item 2"
        }
        "D004" => {
            "pre-existing float field accepted at D004 introduction; audit that the \
             value is config input or derived output, never accumulated sim state"
        }
        "D005" => {
            "pre-existing atomic accepted at D005 introduction; audit that it only \
             orchestrates across runs, never orders intra-run sim state"
        }
        _ => "accepted at rule introduction; justify properly or burn down",
    }
}

/// Applies `barre-analysis::fix` rewrites for the active diagnostics,
/// grouped per file. Returns how many findings were rewritten.
fn apply_fixes(root: &Path, diagnostics: &[Diagnostic]) -> Result<usize, i32> {
    let mut files: Vec<&str> = diagnostics.iter().map(|d| d.file.as_str()).collect();
    files.sort_unstable();
    files.dedup();

    let mut fixed = 0;
    for file in files {
        let per_file: Vec<&Diagnostic> = diagnostics.iter().filter(|d| d.file == file).collect();
        let path = root.join(file);
        let src = match fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: --fix cannot read {}: {e}", path.display());
                return Err(2);
            }
        };
        if let Some((new_src, n)) = fix::fix_source(&src, &per_file) {
            if let Err(e) = fs::write(&path, new_src) {
                eprintln!("error: --fix cannot write {}: {e}", path.display());
                return Err(2);
            }
            fixed += n;
        }
    }
    Ok(fixed)
}

/// Files changed since `rev`, as workspace-relative forward-slash paths.
fn changed_files(root: &Path, rev: &str) -> Result<BTreeSet<String>, i32> {
    let output = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", rev, "--"])
        .output();
    let output = match output {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: --changed-since requires git: {e}");
            return Err(2);
        }
    };
    if !output.status.success() {
        eprintln!(
            "error: git diff --name-only {rev} failed: {}",
            String::from_utf8_lossy(&output.stderr).trim()
        );
        return Err(2);
    }
    Ok(String::from_utf8_lossy(&output.stdout)
        .lines()
        .map(|l| l.trim().replace('\\', "/"))
        .filter(|l| !l.is_empty())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts_match_documented_contract() {
        let o = LintOpts::default();
        assert_eq!(o.root, PathBuf::from("."));
        assert_eq!(o.max_waivers, 5);
        assert!(!o.json && !o.sarif && !o.fix && !o.write_baseline);
    }

    #[test]
    fn justification_templates_cover_new_rules() {
        for rule in ["P002", "D004", "D005", "R001"] {
            assert!(!default_justification(rule).is_empty());
        }
        assert!(default_justification("P002").contains("ROADMAP item 2"));
    }
}
