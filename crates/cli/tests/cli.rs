//! End-to-end tests of the CLI: parse + execute on fast commands.

use barre_cli::{execute, parse, Command};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn list_executes() {
    let cmd = parse(&args(&["list"])).unwrap();
    assert_eq!(execute(cmd), 0);
}

#[test]
fn table2_executes_scaled_and_paper() {
    assert_eq!(execute(parse(&args(&["table2"])).unwrap()), 0);
    assert_eq!(execute(parse(&args(&["table2", "--paper"])).unwrap()), 0);
}

#[test]
fn help_for_unknown_flags() {
    assert!(parse(&args(&["run", "--warp-drive"])).is_err());
}

#[test]
fn paper_flag_preserves_mode() {
    // `--mode` before `--paper` must survive the config swap.
    let cmd = parse(&args(&["table2", "--mode", "barre", "--paper"])).unwrap();
    match cmd {
        Command::Table2 { cfg } => {
            assert_eq!(cfg.topology.total_cus(), 256);
            assert_eq!(cfg.mode.label(), "Barre");
        }
        other => panic!("wrong command {other:?}"),
    }
}
