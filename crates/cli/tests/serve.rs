//! End-to-end tests for the `barre serve` daemon: admission control,
//! deadlines, load shedding, the circuit breaker, the verified result
//! cache, and graceful drain on SIGINT/SIGTERM — all driven over real
//! TCP against the real binary, including a 1000-request soak against a
//! saturated two-worker daemon.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_barre");

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("barre-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

/// A running daemon plus the address it bound.
struct Daemon {
    child: Child,
    stdout: BufReader<ChildStdout>,
    addr: String,
}

/// Starts `barre serve --port 0 <extra>` in `dir` and waits for its
/// `listening on <addr>` handshake line.
fn start_daemon(dir: &Path, extra: &[&str], envs: &[(&str, &str)]) -> Daemon {
    let mut c = Command::new(BIN);
    c.args(["serve", "--port", "0"])
        .args(extra)
        .current_dir(dir)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    for (k, v) in envs {
        c.env(k, v);
    }
    let mut child = c.spawn().expect("spawn daemon");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("handshake line");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("bad handshake: {line:?}"))
        .trim()
        .to_string();
    Daemon {
        child,
        stdout,
        addr,
    }
}

impl Daemon {
    fn connect(&self) -> (BufReader<TcpStream>, TcpStream) {
        let s = TcpStream::connect(&self.addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(120))).ok();
        let r = BufReader::new(s.try_clone().expect("clone"));
        (r, s)
    }

    /// One request line on a fresh connection, one response line back.
    fn request(&self, line: &str) -> String {
        let (mut r, mut w) = self.connect();
        writeln!(w, "{line}").expect("send");
        w.flush().expect("flush");
        let mut resp = String::new();
        r.read_line(&mut resp).expect("response");
        resp.trim_end().to_string()
    }

    /// HTTP GET against the shim; returns (status_code, headers, body).
    fn http_get_full(&self, path: &str) -> (u16, String, String) {
        let (mut r, mut w) = self.connect();
        write!(w, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
        w.flush().expect("flush");
        let mut doc = String::new();
        r.read_to_string(&mut doc).expect("read response");
        let code: u16 = doc
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or_else(|| panic!("bad HTTP response: {doc:?}"));
        let (head, body) = doc
            .split_once("\r\n\r\n")
            .map(|(h, b)| (h.to_string(), b.to_string()))
            .unwrap_or_default();
        (code, head, body)
    }

    /// HTTP GET against the shim; returns (status_code, body).
    fn http_get(&self, path: &str) -> (u16, String) {
        let (code, _, body) = self.http_get_full(path);
        (code, body)
    }

    fn signal(&self, sig: &str) {
        Command::new("kill")
            .args([sig, &self.child.id().to_string()])
            .status()
            .expect("kill");
    }

    /// Signals, waits, and returns (exit_code, stderr).
    fn stop(mut self, sig: &str) -> (i32, String) {
        self.signal(sig);
        // Drain the remaining stdout so the daemon can never block on a
        // full pipe, then collect stderr via wait_with_output.
        let mut rest = String::new();
        let _ = self.stdout.read_to_string(&mut rest);
        let out = self.child.wait_with_output().expect("wait daemon");
        (
            out.status.code().unwrap_or(-1),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }
}

fn json_u64(doc: &str, path: &[&str]) -> u64 {
    let v = barre_system::Json::parse(doc.trim()).unwrap_or_else(|e| panic!("bad JSON {e}: {doc}"));
    let mut cur = &v;
    for p in path {
        cur = cur.get(p).unwrap_or_else(|| panic!("missing {p} in {doc}"));
    }
    cur.as_u64()
        .unwrap_or_else(|| panic!("non-u64 at {path:?}"))
}

fn json_str(doc: &str, key: &str) -> String {
    let v = barre_system::Json::parse(doc.trim()).unwrap_or_else(|e| panic!("bad JSON {e}: {doc}"));
    v.get(key)
        .and_then(barre_system::Json::as_str)
        .unwrap_or_else(|| panic!("missing {key} in {doc}"))
        .to_string()
}

const GUPS: &str = r#"{"app":"gups","smoke":true,"seed":7}"#;

#[test]
fn serve_cache_hits_are_byte_identical_and_survive_restart() {
    let dir = tmpdir("cache");
    let d = start_daemon(&dir, &["--workers", "1", "--cache-dir", "cache"], &[]);

    // Health shim is green from the start.
    let (code, body) = d.http_get("/healthz");
    assert_eq!((code, body.contains("ok")), (200, true));
    let (code, _) = d.http_get("/readyz");
    assert_eq!(code, 200);
    let (code, _) = d.http_get("/nope");
    assert_eq!(code, 404);

    // Cold run, then a cache hit: byte-identical responses.
    let cold = d.request(GUPS);
    assert_eq!(json_str(&cold, "status"), "ok", "{cold}");
    let hit = d.request(GUPS);
    assert_eq!(cold, hit, "cache hit must be byte-identical to cold run");
    // Alias spellings collide on the same cache entry.
    let alias = d.request(r#"{"seed":7,"smoke":true,"app":"gups"}"#);
    assert_eq!(cold, alias);

    // Invalid requests are structured 400s, not dropped connections.
    let bad = d.request(r#"{"app":"nosuch"}"#);
    assert_eq!(json_str(&bad, "status"), "error");
    assert_eq!(json_u64(&bad, &["code"]), 400);
    let typo = d.request(r#"{"app":"gups","warp":9}"#);
    assert_eq!(json_u64(&typo, &["code"]), 400);

    // /stats reflects all of it — and says it is JSON.
    let (code, head, stats) = d.http_get_full("/stats");
    assert_eq!(code, 200);
    assert!(
        head.to_lowercase()
            .contains("content-type: application/json"),
        "{head}"
    );
    assert_eq!(json_u64(&stats, &["requests", "ok"]), 1);
    assert_eq!(json_u64(&stats, &["requests", "cache_hits"]), 2);
    assert_eq!(json_u64(&stats, &["requests", "invalid"]), 2);
    assert_eq!(json_u64(&stats, &["cache", "entries"]), 1);
    assert!(json_u64(&stats, &["latency_ms", "count"]) >= 3);

    // /metrics serves the same counters in Prometheus text exposition,
    // with the exposition-format content type.
    let (code, head, metrics) = d.http_get_full("/metrics");
    assert_eq!(code, 200);
    assert!(
        head.to_lowercase()
            .contains("content-type: text/plain; version=0.0.4"),
        "{head}"
    );
    assert!(
        metrics.contains("barre_serve_requests_ok_cold_total 1\n"),
        "{metrics}"
    );
    assert!(
        metrics.contains("barre_serve_cache_hits_total 2\n"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE barre_serve_request_latency_ms histogram"),
        "{metrics}"
    );
    assert!(
        metrics.contains("barre_serve_request_latency_ms_bucket{le=\"+Inf\"}"),
        "{metrics}"
    );
    assert!(metrics.ends_with('\n'), "exposition must end with newline");

    // SIGTERM: graceful drain, exit 0, flushed cache index.
    let (exit, stderr) = d.stop("-TERM");
    assert_eq!(exit, 0, "stderr: {stderr}");
    assert!(stderr.contains("drain"), "{stderr}");
    let index = dir.join("cache").join("serve-cache.jsonl");
    let (records, skipped) =
        barre_system::read_journal_lenient(&index).expect("cache index parses");
    assert_eq!((records.len(), skipped), (1, 0));

    // `barre report` summarizes the cache index like any journal.
    let report = Command::new(BIN)
        .args(["report", "cache/serve-cache.jsonl"])
        .current_dir(&dir)
        .output()
        .expect("report");
    assert!(
        report.status.success(),
        "report failed: {}",
        String::from_utf8_lossy(&report.stderr)
    );

    // Warm restart: the same request is served from the reloaded cache,
    // byte-identical, with zero cold runs.
    let d2 = start_daemon(&dir, &["--workers", "1", "--cache-dir", "cache"], &[]);
    let warm = d2.request(GUPS);
    assert_eq!(cold, warm, "warm-cache response must match the cold run");
    let (_, stats) = d2.http_get("/stats");
    assert_eq!(json_u64(&stats, &["requests", "ok"]), 0);
    assert_eq!(json_u64(&stats, &["requests", "cache_hits"]), 1);
    let (exit, _) = d2.stop("-TERM");
    assert_eq!(exit, 0);
}

#[test]
fn deadlines_fire_and_full_queue_sheds() {
    let dir = tmpdir("deadline");
    // Every child hangs; workers=1, queue-cap=1. First request occupies
    // the worker, second fills the queue, third is shed instantly.
    let d = start_daemon(
        &dir,
        &[
            "--workers",
            "1",
            "--queue-cap",
            "1",
            "--breaker",
            "0",
            "--retries",
            "0",
            "--cache-dir",
            "cache",
        ],
        &[("BARRE_TEST_RUN_HANG", "1")],
    );

    let send = |line: &str| {
        let (r, mut w) = d.connect();
        writeln!(w, "{line}").expect("send");
        w.flush().expect("flush");
        (r, w)
    };
    let (mut r1, _w1) = send(r#"{"app":"gups","smoke":true,"seed":1,"timeout_ms":900}"#);
    std::thread::sleep(Duration::from_millis(150));
    let (mut r2, _w2) = send(r#"{"app":"gups","smoke":true,"seed":2,"timeout_ms":900}"#);
    std::thread::sleep(Duration::from_millis(150));
    // Queue now holds request 2; this one must be shed without waiting.
    let shed = d.request(r#"{"app":"gups","smoke":true,"seed":3,"timeout_ms":900}"#);
    assert_eq!(json_str(&shed, "status"), "shed", "{shed}");
    assert_eq!(json_u64(&shed, &["code"]), 429);
    assert!(json_u64(&shed, &["retry_after_ms"]) >= 1);

    // Both admitted requests hit their wall-clock deadline.
    let mut resp1 = String::new();
    r1.read_line(&mut resp1).expect("deadline response 1");
    assert_eq!(json_str(&resp1, "status"), "timeout", "{resp1}");
    assert_eq!(json_u64(&resp1, &["code"]), 504);
    let mut resp2 = String::new();
    r2.read_line(&mut resp2).expect("deadline response 2");
    assert_eq!(json_str(&resp2, "status"), "timeout", "{resp2}");

    let (_, stats) = d.http_get("/stats");
    assert_eq!(json_u64(&stats, &["requests", "timeouts"]), 2);
    assert_eq!(json_u64(&stats, &["requests", "shed"]), 1);
    assert_eq!(json_u64(&stats, &["queue", "max_depth"]), 1);

    let (exit, stderr) = d.stop("-TERM");
    assert_eq!(exit, 0, "stderr: {stderr}");
}

#[test]
fn breaker_quarantines_a_crashing_config() {
    let dir = tmpdir("breaker");
    let d = start_daemon(
        &dir,
        &[
            "--workers",
            "1",
            "--breaker",
            "2",
            "--retries",
            "0",
            "--cache-dir",
            "cache",
        ],
        &[],
    );
    // frames:1 exhausts physical frames instantly — a deterministic
    // transient-class failure (exit 65), perfect breaker bait.
    let bad = r#"{"app":"gups","smoke":true,"frames":1}"#;
    let r1 = d.request(bad);
    assert_eq!(json_str(&r1, "status"), "failed", "{r1}");
    assert_eq!(json_u64(&r1, &["code"]), 500);
    assert!(
        json_str(&r1, "error").contains("out of physical frames"),
        "{r1}"
    );
    let r2 = d.request(bad);
    assert_eq!(json_str(&r2, "status"), "failed", "{r2}");
    // Two consecutive failures tripped the breaker: no more children.
    let r3 = d.request(bad);
    assert_eq!(json_str(&r3, "status"), "quarantined", "{r3}");
    assert_eq!(json_u64(&r3, &["code"]), 503);

    // Other fingerprints are unaffected.
    let ok = d.request(GUPS);
    assert_eq!(json_str(&ok, "status"), "ok", "{ok}");

    let (_, stats) = d.http_get("/stats");
    assert_eq!(json_u64(&stats, &["requests", "failed_transient"]), 2);
    assert_eq!(json_u64(&stats, &["requests", "quarantined"]), 1);
    assert_eq!(json_u64(&stats, &["breaker", "open"]), 1);

    let (exit, _) = d.stop("-TERM");
    assert_eq!(exit, 0);
}

#[test]
fn sigint_drains_as_cleanly_as_sigterm() {
    let dir = tmpdir("sigint");
    let d = start_daemon(&dir, &["--workers", "1", "--cache-dir", "cache"], &[]);
    let cold = d.request(GUPS);
    assert_eq!(json_str(&cold, "status"), "ok");
    let (exit, stderr) = d.stop("-INT");
    assert_eq!(exit, 0, "stderr: {stderr}");
    let index = dir.join("cache").join("serve-cache.jsonl");
    let (records, skipped) = barre_system::read_journal_lenient(&index).expect("index parses");
    assert_eq!((records.len(), skipped), (1, 0));
}

/// The acceptance soak: 1000 mixed requests from 8 client threads
/// against a saturated 2-worker daemon with a small bounded queue.
/// Every request gets exactly one response, no panics, shed counts in
/// /stats match what clients saw, and every `ok` for a given config is
/// byte-identical.
#[test]
fn soak_1000_requests_against_saturated_daemon() {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let dir = tmpdir("soak");
    let d = start_daemon(
        &dir,
        &["--workers", "2", "--queue-cap", "8", "--cache-dir", "cache"],
        &[],
    );

    // Four distinct valid configs; every thread interleaves them with
    // duplicates and ~10% invalid requests.
    let configs: Vec<String> = (0..4)
        .map(|i| {
            format!(
                r#"{{"app":"{}","smoke":true,"seed":{}}}"#,
                ["gups", "gemv"][i % 2],
                i / 2
            )
        })
        .collect();
    let shed_seen = Arc::new(AtomicU64::new(0));
    let addr = d.addr.clone();
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let configs = configs.clone();
        let shed_seen = Arc::clone(&shed_seen);
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let s = TcpStream::connect(&addr).expect("connect");
            s.set_read_timeout(Some(Duration::from_secs(300))).ok();
            let mut r = BufReader::new(s.try_clone().expect("clone"));
            let mut w = s;
            // Per-config responses this thread saw, for identity checks.
            let mut ok_by_cfg: BTreeMap<usize, Vec<String>> = BTreeMap::new();
            let mut answered = 0u64;
            for i in 0..125u64 {
                let pick = ((t + i) % 10) as usize;
                let line = if pick == 9 {
                    // ~10% invalid: unknown app or malformed field.
                    if i % 2 == 0 {
                        r#"{"app":"nosuch"}"#.to_string()
                    } else {
                        r#"{"app":"gups","chiplets":0}"#.to_string()
                    }
                } else {
                    configs[pick % configs.len()].clone()
                };
                writeln!(w, "{line}").expect("send");
                w.flush().expect("flush");
                let mut resp = String::new();
                r.read_line(&mut resp).expect("response");
                let resp = resp.trim_end().to_string();
                assert!(!resp.is_empty(), "empty response");
                answered += 1;
                let status = json_str(&resp, "status");
                match status.as_str() {
                    "ok" => {
                        if pick != 9 {
                            ok_by_cfg
                                .entry(pick % configs.len())
                                .or_default()
                                .push(resp);
                        }
                    }
                    "shed" => {
                        shed_seen.fetch_add(1, Ordering::Relaxed);
                        assert!(json_u64(&resp, &["retry_after_ms"]) >= 1, "{resp}");
                    }
                    "error" => assert_eq!(json_u64(&resp, &["code"]), 400, "{resp}"),
                    other => panic!("unexpected status {other}: {resp}"),
                }
            }
            (answered, ok_by_cfg)
        }));
    }

    // Scrape /metrics while the daemon is saturated: the exposition must
    // stay valid and the scrape must never block behind simulation work.
    for _ in 0..5 {
        let (code, head, body) = d.http_get_full("/metrics");
        assert_eq!(code, 200, "mid-soak scrape failed");
        assert!(
            head.to_lowercase()
                .contains("content-type: text/plain; version=0.0.4"),
            "{head}"
        );
        assert!(
            body.contains("# TYPE barre_serve_requests_received_total counter"),
            "{body}"
        );
        assert!(body.ends_with('\n'), "{body}");
        std::thread::sleep(Duration::from_millis(50));
    }

    let mut total_answered = 0u64;
    let mut ok_by_cfg: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for h in handles {
        let (answered, per_cfg) = h.join().expect("client thread");
        total_answered += answered;
        for (cfg, responses) in per_cfg {
            ok_by_cfg.entry(cfg).or_default().extend(responses);
        }
    }
    assert_eq!(total_answered, 1000, "every request must be answered");

    // All ok responses for one config — cold or cached, any thread —
    // are byte-identical.
    for (cfg, responses) in &ok_by_cfg {
        assert!(!responses.is_empty());
        for resp in responses {
            assert_eq!(
                resp, &responses[0],
                "config {cfg}: cache-hit response diverged from cold response"
            );
        }
    }

    let (_, stats) = d.http_get("/stats");
    assert_eq!(
        json_u64(&stats, &["requests", "shed"]),
        shed_seen.load(Ordering::Relaxed),
        "daemon shed count must match what clients observed: {stats}"
    );
    assert!(json_u64(&stats, &["queue", "max_depth"]) <= 8, "{stats}");
    assert_eq!(json_u64(&stats, &["requests", "received"]), 1000);
    assert_eq!(json_u64(&stats, &["cache", "entries"]), 4);

    // The final exposition agrees with /stats.
    let (_, metrics) = d.http_get("/metrics");
    assert!(
        metrics.contains("barre_serve_requests_received_total 1000\n"),
        "{metrics}"
    );
    assert!(
        metrics.contains("barre_serve_cache_entries 4\n"),
        "{metrics}"
    );

    let (exit, stderr) = d.stop("-TERM");
    assert_eq!(exit, 0, "stderr: {stderr}");
    assert!(
        !stderr.to_lowercase().contains("panic"),
        "daemon panicked during soak: {stderr}"
    );
    // The flushed index warm-loads: 4 verified entries, nothing skipped.
    let index = dir.join("cache").join("serve-cache.jsonl");
    let (records, skipped) = barre_system::read_journal_lenient(&index).expect("index parses");
    let (verified, dropped) = barre_system::verified_done_index(&records);
    assert_eq!(skipped, 0);
    assert_eq!(dropped, 0);
    assert_eq!(verified.len(), 4);
}
