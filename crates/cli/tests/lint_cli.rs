//! End-to-end tests for `barre lint`: exit codes and output shape, run
//! against synthetic workspaces built under the cargo tmpdir.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn make_tree(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear stale tree");
    }
    for (rel, body) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(&path, body).expect("write fixture file");
    }
    root
}

fn run_lint(root: &Path, json: bool) -> (i32, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_barre"));
    cmd.arg("lint").arg("--root").arg(root);
    if json {
        cmd.arg("--json");
    }
    let out = cmd.output().expect("spawn barre");
    let code = out.status.code().expect("exit code");
    (code, String::from_utf8(out.stdout).expect("utf8 stdout"))
}

#[test]
fn clean_tree_exits_zero() {
    let root = make_tree(
        "lint_clean",
        &[(
            "crates/tlb/src/lib.rs",
            "use std::collections::BTreeMap;\npub type T = BTreeMap<u64, u64>;\n",
        )],
    );
    let (code, stdout) = run_lint(&root, false);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
}

#[test]
fn violation_exits_one_with_rule_and_line() {
    let root = make_tree(
        "lint_dirty",
        &[(
            "crates/tlb/src/lib.rs",
            "// simulator state\nuse std::collections::HashMap;\npub type T = HashMap<u64, u64>;\n",
        )],
    );
    let (code, stdout) = run_lint(&root, false);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("[D001]"), "{stdout}");
    assert!(stdout.contains("lib.rs:2"), "{stdout}");
}

#[test]
fn json_output_is_machine_readable() {
    let root = make_tree(
        "lint_json",
        &[(
            "crates/tlb/src/lib.rs",
            "use std::collections::HashMap;\npub type T = HashMap<u64, u64>;\n",
        )],
    );
    let (code, stdout) = run_lint(&root, true);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("\"rule\": \"D001\""), "{stdout}");
    assert!(stdout.contains("\"line\": 1"), "{stdout}");
    assert!(stdout.contains("\"files_scanned\": 1"), "{stdout}");
}

#[test]
fn missing_root_exits_two() {
    let bogus = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint_no_such_dir");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_barre"));
    cmd.arg("lint").arg("--root").arg(&bogus);
    let out = cmd.output().expect("spawn barre");
    assert_eq!(out.status.code(), Some(2));
}
