//! End-to-end tests for `barre lint`: exit codes and output shape, run
//! against synthetic workspaces built under the cargo tmpdir.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn make_tree(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear stale tree");
    }
    for (rel, body) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(&path, body).expect("write fixture file");
    }
    root
}

fn run_lint(root: &Path, json: bool) -> (i32, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_barre"));
    cmd.arg("lint").arg("--root").arg(root);
    if json {
        cmd.arg("--json");
    }
    let out = cmd.output().expect("spawn barre");
    let code = out.status.code().expect("exit code");
    (code, String::from_utf8(out.stdout).expect("utf8 stdout"))
}

#[test]
fn clean_tree_exits_zero() {
    let root = make_tree(
        "lint_clean",
        &[(
            "crates/tlb/src/lib.rs",
            "use std::collections::BTreeMap;\npub type T = BTreeMap<u64, u64>;\n",
        )],
    );
    let (code, stdout) = run_lint(&root, false);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
}

#[test]
fn violation_exits_one_with_rule_and_line() {
    let root = make_tree(
        "lint_dirty",
        &[(
            "crates/tlb/src/lib.rs",
            "// simulator state\nuse std::collections::HashMap;\npub type T = HashMap<u64, u64>;\n",
        )],
    );
    let (code, stdout) = run_lint(&root, false);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("[D001]"), "{stdout}");
    assert!(stdout.contains("lib.rs:2"), "{stdout}");
}

#[test]
fn json_output_is_machine_readable() {
    let root = make_tree(
        "lint_json",
        &[(
            "crates/tlb/src/lib.rs",
            "use std::collections::HashMap;\npub type T = HashMap<u64, u64>;\n",
        )],
    );
    let (code, stdout) = run_lint(&root, true);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("\"rule\": \"D001\""), "{stdout}");
    assert!(stdout.contains("\"line\": 1"), "{stdout}");
    assert!(stdout.contains("\"files_scanned\": 1"), "{stdout}");
}

#[test]
fn missing_root_exits_two() {
    let bogus = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint_no_such_dir");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_barre"));
    cmd.arg("lint").arg("--root").arg(&bogus);
    let out = cmd.output().expect("spawn barre");
    assert_eq!(out.status.code(), Some(2));
}

fn run_args(root: &Path, args: &[&str]) -> (i32, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_barre"));
    cmd.arg("lint").arg("--root").arg(root).args(args);
    let out = cmd.output().expect("spawn barre");
    (
        out.status.code().expect("exit code"),
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

#[test]
fn json_is_schema_v2() {
    let root = make_tree(
        "lint_schema_v2",
        &[(
            "crates/tlb/src/lib.rs",
            "use std::collections::BTreeMap;\npub type T = BTreeMap<u64, u64>;\n",
        )],
    );
    let (code, stdout, _) = run_args(&root, &["--json"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("\"schema\": \"barre-lint/2\""), "{stdout}");
    assert!(stdout.contains("\"baselined\": 0"), "{stdout}");
}

#[test]
fn sarif_output_has_the_2_1_0_shape() {
    let root = make_tree(
        "lint_sarif",
        &[(
            "crates/tlb/src/lib.rs",
            "use std::collections::HashMap;\npub type T = HashMap<u64, u64>;\n",
        )],
    );
    let (code, stdout, _) = run_args(&root, &["--sarif"]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("\"version\": \"2.1.0\""), "{stdout}");
    assert!(stdout.contains("\"ruleId\": \"D001\""), "{stdout}");
    assert!(stdout.contains("%SRCROOT%"), "{stdout}");
}

#[test]
fn write_baseline_then_lint_is_clean() {
    let root = make_tree(
        "lint_baseline_flow",
        &[(
            "crates/tlb/src/lib.rs",
            "use std::collections::HashMap;\npub type T = HashMap<u64, u64>;\n",
        )],
    );
    let (code, stdout, _) = run_args(&root, &["--write-baseline"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(root.join("lint-baseline.json").is_file());

    // The baseline file is auto-discovered; the tree now lints clean.
    let (code, stdout, _) = run_args(&root, &["--json"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("\"baselined\": 2"), "{stdout}");

    // --no-baseline restores the violations.
    let (code, _, _) = run_args(&root, &["--no-baseline"]);
    assert_eq!(code, 1);
}

#[test]
fn waiver_budget_breach_exits_two() {
    let root = make_tree(
        "lint_waiver_budget",
        &[(
            "crates/tlb/src/lib.rs",
            "// barre:allow(D001) legacy import kept for serde compat\n\
             use std::collections::HashMap;\n\
             // barre:allow(D001) second legacy import\n\
             use std::collections::HashSet;\n",
        )],
    );
    // Two justified waivers: fine under the default budget of 5...
    let (code, _, _) = run_args(&root, &[]);
    assert_eq!(code, 0);
    // ...but an operational error under --max-waivers 1.
    let (code, _, stderr) = run_args(&root, &["--max-waivers", "1"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("waiver budget exceeded"), "{stderr}");
}

#[test]
fn fix_rewrites_and_is_idempotent() {
    let src = "pub fn stamp() -> u64 {\n    let t0 = Instant::now();\n    0\n}\n";
    let root = make_tree("lint_fix", &[("crates/tlb/src/lib.rs", src)]);
    let file = root.join("crates/tlb/src/lib.rs");

    let (_, _, stderr) = run_args(&root, &["--fix"]);
    assert!(stderr.contains("fixed 1 finding(s)"), "{stderr}");
    let once = fs::read_to_string(&file).expect("read fixed file");
    assert!(once.contains("clock.now()"), "{once}");
    assert!(!once.contains("Instant::now()"), "{once}");

    // Running --fix again must not touch the file further.
    run_args(&root, &["--fix"]);
    let twice = fs::read_to_string(&file).expect("read file again");
    assert_eq!(once, twice, "--fix is not idempotent");
}

#[test]
fn changed_since_filters_to_touched_files() {
    let root = make_tree(
        "lint_changed_since",
        &[
            (
                "crates/tlb/src/old.rs",
                "use std::collections::HashMap;\npub type T = HashMap<u64, u64>;\n",
            ),
            (
                "crates/tlb/src/lib.rs",
                "use std::collections::BTreeMap;\npub type U = BTreeMap<u64, u64>;\n",
            ),
        ],
    );
    let git = |args: &[&str]| {
        let out = Command::new("git")
            .arg("-C")
            .arg(&root)
            .args(args)
            .env("GIT_AUTHOR_NAME", "t")
            .env("GIT_AUTHOR_EMAIL", "t@t")
            .env("GIT_COMMITTER_NAME", "t")
            .env("GIT_COMMITTER_EMAIL", "t@t")
            .output()
            .expect("spawn git");
        assert!(out.status.success(), "git {args:?}: {:?}", out);
    };
    git(&["init", "-q"]);
    git(&["add", "-A"]);
    git(&["commit", "-qm", "seed"]);
    // Introduce a new violation in a new file only.
    fs::write(
        root.join("crates/tlb/src/new.rs"),
        "use std::collections::HashSet;\npub type S = HashSet<u64>;\n",
    )
    .expect("write new file");
    git(&["add", "-A"]);

    let (code, stdout, _) = run_args(&root, &["--changed-since", "HEAD"]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("new.rs"), "{stdout}");
    // The pre-existing violation in old.rs is filtered out of this run.
    assert!(!stdout.contains("old.rs:1"), "{stdout}");

    // A bad revision is an operational error.
    let (code, _, stderr) = run_args(&root, &["--changed-since", "no-such-rev"]);
    assert_eq!(code, 2, "{stderr}");
}

#[test]
fn parallel_readiness_report_is_appended() {
    let root = make_tree(
        "lint_readiness",
        &[(
            "crates/system/src/machine.rs",
            "/// The machine.\npub struct Machine {\n    counters: Vec<u64>,\n}\n",
        )],
    );
    let (code, stdout, _) = run_args(&root, &["--parallel-readiness"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(
        stdout.contains("parallel-readiness audit (R001)"),
        "{stdout}"
    );
    assert!(stdout.contains("verdict: READY"), "{stdout}");
}
