//! Hot-path contracts for the F-Barre sweep: pinned golden metric
//! fingerprints for the full 9-app × 3-mode smoke sweep, and the
//! zero-allocation assertion for the F-Barre probe path.
//!
//! The fingerprints pin [`barre_system::metrics_digest`] (an FNV-64 of
//! the canonical all-integer metrics JSON), so *any* behavioural drift
//! in the simulator — event order, counter arithmetic, histogram
//! bucketing — fails here with the offending cell named. Re-record by
//! running the test and copying the table it prints, but only after
//! convincing yourself the drift is intended and documenting it in
//! DESIGN.md / CHANGES.md.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use barre_bench::wallclock::{bench_apps, bench_modes};
use barre_bench::SEED;
use barre_system::{metrics_digest, run_spec};

/// Counts heap allocations so [`barre_system::Machine::set_alloc_probe`]
/// can assert the F-Barre probe path never allocates. Lives in this
/// integration-test binary (each Cargo integration test is its own
/// crate), so the simulator crates stay free of process globals and the
/// R001 parallel-readiness audit keeps its READY verdict.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed
// atomic with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// `(app, mode, metrics_digest, total_cycles, events_processed)` for
/// every cell of the smoke sweep at the bench seed. The deterministic
/// columns double as a cross-check against the committed
/// `BENCH_sweep.json` and the CI trace-smoke job.
const GOLDEN: &[(&str, &str, &str, u64, u64)] = &[
    ("gemv", "baseline", "076ddc956be1b3b2", 40454, 15792),
    ("gemv", "barre", "076ddc956be1b3b2", 40454, 15792),
    ("gemv", "fbarre", "fdcd279318e6ec5a", 39538, 15932),
    ("fft", "baseline", "bdbc19298fab03b4", 63687, 16848),
    ("fft", "barre", "bdbc19298fab03b4", 63687, 16848),
    ("fft", "fbarre", "5e6eae2e7926d460", 51518, 17467),
    ("pr", "baseline", "bcb4b809ac0a117e", 342679, 163504),
    ("pr", "barre", "458c521e5afad505", 360419, 163386),
    ("pr", "fbarre", "6b6bbc32a65d7489", 374556, 163531),
    ("jac2d", "baseline", "a1d34c0b9081b105", 45471, 15981),
    ("jac2d", "barre", "a1d34c0b9081b105", 45471, 15981),
    ("jac2d", "fbarre", "13ef568e99619bde", 40442, 16265),
    ("lu", "baseline", "f67a72faa7f35ab4", 53882, 16176),
    ("lu", "barre", "f67a72faa7f35ab4", 53882, 16176),
    ("lu", "fbarre", "0ebe21b3f25734cb", 46959, 16471),
    ("st2d", "baseline", "37d4f14fd8d05f3b", 40277, 15981),
    ("st2d", "barre", "37d4f14fd8d05f3b", 40277, 15981),
    ("st2d", "fbarre", "409284cf9037e0fd", 39538, 16267),
    ("matr", "baseline", "b628c59d62ccf732", 54526, 16176),
    ("matr", "barre", "b628c59d62ccf732", 54526, 16176),
    ("matr", "fbarre", "ddee5314801cc23c", 47611, 16467),
    ("gups", "baseline", "8952ce2a68284155", 2571904, 1338213),
    ("gups", "barre", "5dc61b44a69f5360", 2520679, 1299476),
    ("gups", "fbarre", "1ea934fc132034b2", 2136215, 906032),
    ("spmv", "baseline", "acd9bcd30a4fd71f", 1655993, 859414),
    ("spmv", "barre", "42637337bcbfd049", 1641896, 860906),
    ("spmv", "fbarre", "893a7578a7ac9603", 1307742, 703927),
];

#[test]
fn golden_fingerprints_smoke_sweep() {
    let mut actual = Vec::new();
    for app in bench_apps(false) {
        for (mode, cfg) in bench_modes() {
            let m = run_spec(app.spec(), &cfg, SEED).expect("smoke run");
            actual.push((
                app.name().to_string(),
                mode.to_string(),
                metrics_digest(&m),
                m.total_cycles,
                m.events_processed,
            ));
        }
    }
    let expected: Vec<_> = GOLDEN
        .iter()
        .map(|&(a, mo, d, c, e)| (a.to_string(), mo.to_string(), d.to_string(), c, e))
        .collect();
    if actual != expected {
        // Print the re-pin table before failing so an intended change
        // is a copy-paste, not an archaeology session.
        println!("actual sweep table (for re-pinning GOLDEN):");
        for (a, mo, d, c, e) in &actual {
            println!("    (\"{a}\", \"{mo}\", \"{d}\", {c}, {e}),");
        }
        for (i, (act, exp)) in actual.iter().zip(&expected).enumerate() {
            assert_eq!(act, exp, "sweep cell {i} ({}/{}) drifted", exp.0, exp.1);
        }
        assert_eq!(actual.len(), expected.len(), "sweep shape changed");
    }
}

/// Runs an F-Barre smoke config with the counting allocator installed
/// as the machine's probe: every local/peer coalescing probe then
/// `debug_assert`s it performed zero heap allocations. Debug builds
/// only — the probe seam compiles out of release binaries.
#[cfg(debug_assertions)]
#[test]
fn fbarre_probe_path_is_allocation_free() {
    use barre_system::{build_machine, smoke_config, TranslationMode};

    let cfg = smoke_config().with_mode(TranslationMode::FBarre(Default::default()));
    for app in [barre_workloads::AppId::Gups, barre_workloads::AppId::Spmv] {
        let mut machine = build_machine(&[app.spec()], &cfg, SEED).expect("assemble");
        machine.set_alloc_probe(alloc_count);
        let m = machine.run().expect("run");
        assert!(m.events_processed > 0);
    }
}
