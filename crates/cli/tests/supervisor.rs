//! End-to-end crash/kill/resume tests for the sweep supervisor.
//!
//! These drive the real `barre` binary: children are SIGKILLed or hung
//! via the `BARRE_TEST_KILL` / `BARRE_TEST_HANG` hooks, and the resumed
//! output is compared byte-for-byte against an uninterrupted serial run
//! — the acceptance criterion of the supervisor design.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_barre");

/// The sweep under test: one app, two jobs (gemv/baseline, gemv/Barre),
/// on the fast smoke configuration so debug-mode children finish quickly.
const SWEEP: &[&str] = &["sweep", "--smoke", "--apps", "gemv", "--mode", "barre"];

fn barre(dir: &Path, args: &[&str], envs: &[(&str, String)]) -> Output {
    let mut c = Command::new(BIN);
    c.args(args).current_dir(dir);
    for (k, v) in envs {
        c.env(k, v);
    }
    c.output().expect("spawn barre")
}

fn sweep_args<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut v = SWEEP.to_vec();
    v.extend_from_slice(extra);
    v
}

fn text(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("barre-sup-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

#[test]
fn sigkilled_child_resumes_byte_identical() {
    let dir = tmpdir("kill");
    // Uninterrupted serial reference run.
    let reference = barre(&dir, &sweep_args(&["--jobs", "1"]), &[]);
    assert!(
        reference.status.success(),
        "reference run failed: {}",
        text(&reference.stderr)
    );

    // Supervised run with child 1 SIGKILLed mid-sweep and no retries:
    // the killed job becomes a labeled failure, the other job still
    // completes and lands in the journal, exit code is 1.
    let sentinel = dir.join("kill-sentinel");
    let kill_env = [("BARRE_TEST_KILL", format!("1:{}", sentinel.display()))];
    let killed = barre(
        &dir,
        &sweep_args(&[
            "--supervise",
            "--journal",
            "j",
            "--retries",
            "0",
            "--jobs",
            "1",
        ]),
        &kill_env,
    );
    assert_eq!(
        killed.status.code(),
        Some(1),
        "stderr: {}",
        text(&killed.stderr)
    );
    let err = text(&killed.stderr);
    assert!(err.contains("FAILED"), "no labeled failure in: {err}");
    assert!(err.contains("signal:9") || err.contains("exit:"), "{err}");
    assert!(sentinel.exists(), "kill hook never fired");
    assert!(killed.stdout.is_empty(), "partial table printed on failure");
    assert!(dir.join("j").join("sweep.journal.jsonl").exists());

    // Resume from the journal (sentinel now spent, so no more kills):
    // the finished job is replayed from the journal, the killed one is
    // rerun, and stdout equals the uninterrupted run byte-for-byte.
    let resumed = barre(
        &dir,
        &sweep_args(&["--resume", "j", "--jobs", "1"]),
        &kill_env,
    );
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        text(&resumed.stderr)
    );
    assert_eq!(
        text(&resumed.stdout),
        text(&reference.stdout),
        "resumed sweep must be byte-identical to the uninterrupted run"
    );
    assert!(
        text(&resumed.stderr).contains("resumed 1 finished job(s)"),
        "resume did not replay the journaled job: {}",
        text(&resumed.stderr)
    );
}

#[test]
fn retry_recovers_a_killed_child_in_one_invocation() {
    let dir = tmpdir("retry");
    let reference = barre(&dir, &sweep_args(&["--jobs", "1"]), &[]);
    assert!(reference.status.success());

    // One SIGKILL, one retry: the supervisor retries with backoff and
    // the campaign still succeeds with identical output.
    let sentinel = dir.join("retry-sentinel");
    let run = barre(
        &dir,
        &sweep_args(&[
            "--supervise",
            "--journal",
            "j",
            "--retries",
            "1",
            "--jobs",
            "1",
        ]),
        &[("BARRE_TEST_KILL", format!("0:{}", sentinel.display()))],
    );
    assert!(
        run.status.success(),
        "retry did not recover: {}",
        text(&run.stderr)
    );
    assert_eq!(text(&run.stdout), text(&reference.stdout));
    assert!(sentinel.exists());
    // Journal shows the extra attempt: 2 jobs + 1 retry = 3 starts.
    let journal =
        std::fs::read_to_string(dir.join("j").join("sweep.journal.jsonl")).expect("journal");
    assert_eq!(journal.matches("\"event\":\"start\"").count(), 3);
    assert_eq!(journal.matches("\"event\":\"done\"").count(), 2);
}

#[test]
fn timed_out_child_fails_with_state_dump() {
    let dir = tmpdir("timeout");
    // Job 0 hangs forever; a 1-second budget kills it. No retries, so it
    // is reported as a labeled timeout failure with a dump file, while
    // job 1 still completes and is journaled.
    let run = barre(
        &dir,
        &sweep_args(&[
            "--supervise",
            "--journal",
            "j",
            "--timeout",
            "1",
            "--retries",
            "0",
        ]),
        &[("BARRE_TEST_HANG", "0".to_string())],
    );
    assert_eq!(run.status.code(), Some(1), "stderr: {}", text(&run.stderr));
    let err = text(&run.stderr);
    assert!(err.contains("timeout"), "{err}");
    assert!(err.contains("state dump:"), "{err}");
    let journal =
        std::fs::read_to_string(dir.join("j").join("sweep.journal.jsonl")).expect("journal");
    assert!(journal.contains("\"exit\":\"timeout\""));
    assert!(journal.contains("\"dump\":"));
    assert_eq!(journal.matches("\"event\":\"done\"").count(), 1);
    // The dump file named in the journal exists under the journal dir.
    let dumps: Vec<_> = std::fs::read_dir(dir.join("j"))
        .expect("read journal dir")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().ends_with(".dump.txt"))
        .collect();
    assert_eq!(dumps.len(), 1, "expected exactly one dump file");
}

#[test]
fn merge_folds_shards_and_resume_replays_everything() {
    let dir = tmpdir("merge");
    // One clean supervised run to obtain a complete journal.
    let full = barre(
        &dir,
        &sweep_args(&["--supervise", "--journal", "full", "--jobs", "1"]),
        &[],
    );
    assert!(full.status.success(), "stderr: {}", text(&full.stderr));
    let journal =
        std::fs::read_to_string(dir.join("full").join("sweep.journal.jsonl")).expect("journal");

    // Split its records into two shard files, as if two machines each
    // ran part of the sweep with the same command line.
    let done_lines: Vec<&str> = journal
        .lines()
        .filter(|l| l.contains("\"event\":\"done\""))
        .collect();
    assert_eq!(done_lines.len(), 2);
    std::fs::write(dir.join("shard-a.jsonl"), format!("{}\n", done_lines[0])).expect("shard a");
    std::fs::write(dir.join("shard-b.jsonl"), format!("{}\n", done_lines[1])).expect("shard b");

    let merged = barre(
        &dir,
        &["merge", "--out", "merged", "shard-a.jsonl", "shard-b.jsonl"],
        &[],
    );
    assert!(merged.status.success(), "stderr: {}", text(&merged.stderr));
    assert!(text(&merged.stdout).contains("2 done"));

    // Resuming from the merged journal replays every job — zero
    // simulations run — and stdout still matches the supervised run.
    let resumed = barre(
        &dir,
        &sweep_args(&["--resume", "merged", "--jobs", "1"]),
        &[],
    );
    assert!(
        resumed.status.success(),
        "stderr: {}",
        text(&resumed.stderr)
    );
    assert_eq!(text(&resumed.stdout), text(&full.stdout));
    assert!(text(&resumed.stderr).contains("resumed 2 finished job(s)"));

    // A tampered digest is a conflict, not a silent merge.
    let tampered = done_lines[1].replacen("\"digest\":\"", "\"digest\":\"x", 1);
    std::fs::write(dir.join("shard-c.jsonl"), format!("{tampered}\n")).expect("shard c");
    let conflict = barre(
        &dir,
        &["merge", "--out", "m2", "shard-b.jsonl", "shard-c.jsonl"],
        &[],
    );
    assert_eq!(conflict.status.code(), Some(1));
    assert!(text(&conflict.stderr).contains("conflict"));
}

#[cfg(unix)]
#[test]
fn sigint_drains_and_journal_resumes() {
    let dir = tmpdir("sigint");
    let reference = barre(&dir, &sweep_args(&["--jobs", "1"]), &[]);
    assert!(reference.status.success());

    // Job 0 hangs (3 s budget); SIGINT the supervisor while it is in
    // flight. The drain must wait the hung child out, journal the
    // timeout, skip the rest, and exit 130.
    let child = Command::new(BIN)
        .args(sweep_args(&[
            "--supervise",
            "--journal",
            "j",
            "--jobs",
            "1",
            "--timeout",
            "3",
            "--retries",
            "0",
        ]))
        .current_dir(&dir)
        .env("BARRE_TEST_HANG", "0")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn supervisor");
    std::thread::sleep(std::time::Duration::from_millis(800));
    let _ = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("send SIGINT");
    let out = child.wait_with_output().expect("wait supervisor");
    assert_eq!(
        out.status.code(),
        Some(130),
        "stderr: {}",
        text(&out.stderr)
    );
    assert!(text(&out.stderr).contains("interrupted"));

    // Resume (no hang) completes the campaign byte-identically.
    let resumed = barre(&dir, &sweep_args(&["--resume", "j", "--jobs", "1"]), &[]);
    assert!(
        resumed.status.success(),
        "stderr: {}",
        text(&resumed.stderr)
    );
    assert_eq!(text(&resumed.stdout), text(&reference.stdout));
}

#[cfg(unix)]
#[test]
fn sigterm_drains_identically_to_sigint() {
    let dir = tmpdir("sigterm");
    let reference = barre(&dir, &sweep_args(&["--jobs", "1"]), &[]);
    assert!(reference.status.success());

    // Same shape as the SIGINT test, but with the signal a process
    // manager actually sends. The drain must behave identically: wait
    // out the hung child, journal, print the resume hint, and exit
    // 128 + SIGTERM = 143.
    let child = Command::new(BIN)
        .args(sweep_args(&[
            "--supervise",
            "--journal",
            "j",
            "--jobs",
            "1",
            "--timeout",
            "3",
            "--retries",
            "0",
        ]))
        .current_dir(&dir)
        .env("BARRE_TEST_HANG", "0")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn supervisor");
    std::thread::sleep(std::time::Duration::from_millis(800));
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    let out = child.wait_with_output().expect("wait supervisor");
    assert_eq!(
        out.status.code(),
        Some(143),
        "stderr: {}",
        text(&out.stderr)
    );
    let err = text(&out.stderr);
    assert!(err.contains("interrupted"), "{err}");
    assert!(err.contains("--resume"), "no resume hint: {err}");

    // Resume (no hang) completes the campaign byte-identically.
    let resumed = barre(&dir, &sweep_args(&["--resume", "j", "--jobs", "1"]), &[]);
    assert!(
        resumed.status.success(),
        "stderr: {}",
        text(&resumed.stderr)
    );
    assert_eq!(text(&resumed.stdout), text(&reference.stdout));
}
