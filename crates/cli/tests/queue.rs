//! End-to-end chaos tests for the distributed dispatch stack: `barre
//! queue` + `barre worker` + `barre sweep --dispatch`.
//!
//! These drive the real binary through the failure modes the queue was
//! built for — a worker SIGKILLed mid-lease, the coordinator SIGKILLed
//! and restarted from its journal, a poison job burning its lease
//! budget — and hold the acceptance bar from the design: a churn-heavy
//! distributed sweep must produce stdout and a merged journal
//! byte-identical to an uninterrupted serial `barre sweep`.

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_barre");

/// The sweep under test: one app, two jobs (gemv/baseline, gemv/Barre),
/// on the fast smoke configuration so debug-mode children finish quickly.
const SWEEP: &[&str] = &["sweep", "--smoke", "--apps", "gemv", "--mode", "barre"];

fn barre(dir: &Path, args: &[&str], envs: &[(&str, String)]) -> Output {
    let mut c = Command::new(BIN);
    c.args(args).current_dir(dir);
    for (k, v) in envs {
        c.env(k, v);
    }
    c.output().expect("spawn barre")
}

fn sweep_args<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut v = SWEEP.to_vec();
    v.extend_from_slice(extra);
    v
}

fn text(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("barre-queue-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

/// Picks a free TCP port by binding an ephemeral socket and dropping it
/// — needed when a test must restart a daemon on the *same* address.
fn free_port() -> u16 {
    TcpListener::bind(("127.0.0.1", 0))
        .expect("probe port")
        .local_addr()
        .expect("probe addr")
        .port()
}

/// A spawned daemon (coordinator or worker) with piped output.
struct Daemon {
    child: Child,
}

impl Daemon {
    fn spawn(dir: &Path, args: &[&str], envs: &[(&str, String)]) -> Daemon {
        let mut c = Command::new(BIN);
        c.args(args)
            .current_dir(dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        for (k, v) in envs {
            c.env(k, v);
        }
        Daemon {
            child: c.spawn().expect("spawn daemon"),
        }
    }

    /// Reads the `listening on <addr>` handshake from stdout.
    fn addr(&mut self) -> String {
        let out = self.child.stdout.as_mut().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(out).read_line(&mut line).expect("handshake");
        line.trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("bad handshake: {line:?}"))
            .to_string()
    }

    fn signal(&self, sig: &str) {
        let _ = Command::new("kill")
            .args([sig, &self.child.id().to_string()])
            .status()
            .expect("send signal");
    }

    fn wait(self) -> Output {
        self.child.wait_with_output().expect("wait daemon")
    }

    /// Waits for exit without draining the output pipes — for SIGKILLed
    /// daemons whose orphaned children still hold the pipe write ends
    /// (`wait_with_output` would block on them forever).
    fn reap(mut self) {
        let _ = self.child.wait();
    }

    /// Direct child pids, from procfs (Linux). Used to reap the orphans a
    /// SIGKILLed worker leaves behind.
    fn children(&self) -> Vec<u32> {
        let pid = self.child.id();
        std::fs::read_to_string(format!("/proc/{pid}/task/{pid}/children"))
            .unwrap_or_default()
            .split_whitespace()
            .filter_map(|t| t.parse().ok())
            .collect()
    }
}

/// HTTP GET against a daemon's shim; returns (status, headers, body).
fn http_get(addr: &str, path: &str) -> (u16, String, String) {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).expect("connect http");
    s.set_read_timeout(Some(Duration::from_secs(30))).ok();
    write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
    s.flush().expect("flush");
    let mut doc = String::new();
    s.read_to_string(&mut doc).expect("read http response");
    let code: u16 = doc
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("bad HTTP response: {doc:?}"));
    let (head, body) = doc
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (code, head, body)
}

/// Waits (bounded) until the queue's stats report no active work, so
/// tests can tear daemons down without racing in-flight transitions.
fn wait_until_exit(mut child: Child, budget: Duration) -> Output {
    let start = std::time::Instant::now();
    loop {
        if child.try_wait().expect("try_wait").is_some() {
            return child.wait_with_output().expect("wait");
        }
        if start.elapsed() > budget {
            let _ = child.kill();
            let out = child.wait_with_output().expect("wait");
            panic!(
                "client did not finish within {budget:?}\nstdout: {}\nstderr: {}",
                text(&out.stdout),
                text(&out.stderr)
            );
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[cfg(unix)]
#[test]
fn distributed_sweep_is_byte_identical_to_serial() {
    let dir = tmpdir("identical");
    // Uninterrupted serial supervised reference: journal + stdout.
    let reference = barre(
        &dir,
        &sweep_args(&["--supervise", "--journal", "serial", "--jobs", "1"]),
        &[],
    );
    assert!(
        reference.status.success(),
        "reference failed: {}",
        text(&reference.stderr)
    );

    // Coordinator on an ephemeral port, two workers.
    let mut queue = Daemon::spawn(
        &dir,
        &["queue", "--port", "0", "--journal", "q", "--lease", "5"],
        &[],
    );
    let addr = queue.addr();
    let w1 = Daemon::spawn(&dir, &["worker", "--connect", &addr, "--name", "w1"], &[]);
    let w2 = Daemon::spawn(&dir, &["worker", "--connect", &addr, "--name", "w2"], &[]);

    let dispatched = barre(
        &dir,
        &sweep_args(&["--dispatch", &addr, "--journal", "shard"]),
        &[],
    );
    assert!(
        dispatched.status.success(),
        "dispatch failed: {}",
        text(&dispatched.stderr)
    );
    assert_eq!(
        text(&dispatched.stdout),
        text(&reference.stdout),
        "distributed sweep must be byte-identical to the serial run"
    );

    // Merge both journals; the merged files must be byte-identical (the
    // merge strips worker stamps and reports attribution on stderr).
    let m1 = barre(&dir, &["merge", "--out", "m1", "serial"], &[]);
    assert!(m1.status.success(), "stderr: {}", text(&m1.stderr));
    let m2 = barre(&dir, &["merge", "--out", "m2", "shard"], &[]);
    assert!(m2.status.success(), "stderr: {}", text(&m2.stderr));
    assert!(
        text(&m2.stderr).contains("workers:"),
        "no worker attribution: {}",
        text(&m2.stderr)
    );
    let serial_merged = std::fs::read(dir.join("m1").join("sweep.journal.jsonl")).expect("m1");
    let shard_merged = std::fs::read(dir.join("m2").join("sweep.journal.jsonl")).expect("m2");
    assert_eq!(
        text(&serial_merged),
        text(&shard_merged),
        "merged journals must be byte-identical"
    );
    // Same record/done summary on stdout (paths differ, prefix must not).
    assert!(text(&m1.stdout).contains("2 record(s), 2 done"));
    assert!(text(&m2.stdout).contains("2 record(s), 2 done"));

    // Graceful teardown: workers drain with a resume hint, the
    // coordinator compacts its journal and reports a clean drain.
    w1.signal("-TERM");
    w2.signal("-TERM");
    let w1 = w1.wait();
    assert_eq!(w1.status.code(), Some(143), "stderr: {}", text(&w1.stderr));
    assert!(text(&w1.stderr).contains("drained"), "{}", text(&w1.stderr));
    let _ = w2.wait();
    queue.signal("-TERM");
    let q = queue.wait();
    assert_eq!(q.status.code(), Some(0), "stderr: {}", text(&q.stderr));
    let qerr = text(&q.stderr);
    assert!(qerr.contains("journal compacted"), "{qerr}");
    assert!(qerr.contains("2 done"), "{qerr}");
}

#[cfg(unix)]
#[test]
fn sigkilled_worker_lease_expires_and_redispatches() {
    let dir = tmpdir("worker-kill");
    let reference = barre(&dir, &sweep_args(&["--jobs", "1"]), &[]);
    assert!(reference.status.success());

    // Short leases so the dead worker's job comes back quickly. The
    // whole fleet writes span events under fleet/ for stitching below.
    let fleet = ("BARRE_FLEET_TRACE", "fleet".to_string());
    let mut queue = Daemon::spawn(
        &dir,
        &["queue", "--port", "0", "--journal", "q", "--lease", "1"],
        std::slice::from_ref(&fleet),
    );
    let addr = queue.addr();
    // w1 hangs on job 0 forever (heartbeating all the while) — the only
    // way its job finishes is w1 dying and the lease lapsing.
    let w1 = Daemon::spawn(
        &dir,
        &["worker", "--connect", &addr, "--name", "w1"],
        &[("BARRE_TEST_HANG", "0".to_string()), fleet.clone()],
    );

    // Dispatch in the background while the chaos plays out.
    let mut client = Command::new(BIN);
    client
        .args(sweep_args(&["--dispatch", &addr, "--journal", "shard"]))
        .current_dir(&dir)
        .env(fleet.0, &fleet.1)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let client = client.spawn().expect("spawn dispatch client");

    // Let w1 lease job 0 and start hanging, then SIGKILL it mid-lease.
    // Its hung child would be orphaned in an hour-long sleep, so note the
    // child pids first and kill them too (best-effort: the sweep
    // completes either way).
    std::thread::sleep(Duration::from_millis(1500));
    let orphans = w1.children();
    w1.signal("-KILL");
    w1.reap();
    for pid in orphans {
        let _ = Command::new("kill")
            .args(["-KILL", &pid.to_string()])
            .status();
    }

    // A healthy worker picks up the expired lease and finishes the sweep.
    let w2 = Daemon::spawn(
        &dir,
        &["worker", "--connect", &addr, "--name", "w2"],
        std::slice::from_ref(&fleet),
    );
    let out = wait_until_exit(client, Duration::from_secs(60));
    assert!(
        out.status.success(),
        "dispatch failed: {}",
        text(&out.stderr)
    );
    assert_eq!(
        text(&out.stdout),
        text(&reference.stdout),
        "re-dispatched sweep must still be byte-identical"
    );

    w2.signal("-TERM");
    let _ = w2.wait();
    queue.signal("-TERM");
    let q = queue.wait();
    let qerr = text(&q.stderr);
    assert!(
        qerr.contains("expired; re-queued"),
        "no lease-expiry evidence: {qerr}"
    );

    // The per-process fleet traces stitch into one timeline: both jobs
    // show queued → leased phases (the churned job twice) and end done.
    let report = barre(
        &dir,
        &["report", "--fleet", "fleet", "--out", "fleet.json"],
        &[],
    );
    assert!(
        report.status.success(),
        "fleet report failed: {}",
        text(&report.stderr)
    );
    let rout = text(&report.stdout);
    assert!(rout.contains("2 job(s)"), "{rout}");
    assert_eq!(rout.matches(" done ").count(), 2, "{rout}");
    let doc = std::fs::read_to_string(dir.join("fleet.json")).expect("fleet.json");
    let v = barre_system::Json::parse(&doc).expect("fleet timeline parses");
    let evs = v
        .get("traceEvents")
        .and_then(barre_system::Json::as_arr)
        .expect("traceEvents");
    let spans: Vec<&str> = evs
        .iter()
        .filter(|e| e.get("ph").and_then(barre_system::Json::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(barre_system::Json::as_str))
        .collect();
    assert!(
        spans.iter().filter(|n| **n == "queued").count() >= 2,
        "{spans:?}"
    );
    assert!(
        spans.iter().filter(|n| **n == "leased").count() >= 2,
        "{spans:?}"
    );
    // The SIGKILLed worker's burned lease is visible in the timeline.
    assert!(
        doc.contains("lease_expired"),
        "no expiry event in the stitched timeline"
    );
}

#[cfg(unix)]
#[test]
fn sigkilled_coordinator_restarts_from_journal_and_resumes() {
    let dir = tmpdir("coord-kill");
    let reference = barre(&dir, &sweep_args(&["--jobs", "1"]), &[]);
    assert!(reference.status.success());

    // Fixed port so the restarted coordinator is reachable at the same
    // address the client and workers already hold.
    let port = free_port();
    let addr = format!("127.0.0.1:{port}");
    let mut queue = Daemon::spawn(
        &dir,
        &["queue", "--port", &port.to_string(), "--journal", "q"],
        &[],
    );
    assert_eq!(queue.addr(), addr);

    // No workers yet: the client submits, the jobs sit queued.
    let mut client = Command::new(BIN);
    client
        .args(sweep_args(&["--dispatch", &addr, "--journal", "shard"]))
        .current_dir(&dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let client = client.spawn().expect("spawn dispatch client");
    std::thread::sleep(Duration::from_millis(1200));

    // SIGKILL the coordinator — no drain, no compaction, just death —
    // then restart it on the same port from the same journal.
    queue.signal("-KILL");
    let _ = queue.wait();
    let mut queue = Daemon::spawn(
        &dir,
        &["queue", "--port", &port.to_string(), "--journal", "q"],
        &[],
    );
    assert_eq!(queue.addr(), addr);

    // The restarted coordinator's shim accounts for the replay: journal
    // records read back, jobs re-queued, plus the startup compaction.
    let (code, head, stats) = http_get(&addr, "/stats");
    assert_eq!(code, 200);
    assert!(
        head.to_lowercase()
            .contains("content-type: application/json"),
        "{head}"
    );
    let v = barre_system::Json::parse(stats.trim()).expect("stats json");
    let n = |k: &str| {
        v.get(k)
            .and_then(barre_system::Json::as_u64)
            .unwrap_or_else(|| panic!("missing {k} in {stats}"))
    };
    assert!(n("replayed_records") >= 2, "{stats}");
    assert_eq!(n("replayed_requeued"), 2, "{stats}");
    assert!(n("compactions") >= 1, "{stats}");
    assert_eq!(n("queued"), 2, "{stats}");

    // Same numbers in Prometheus exposition on /metrics.
    let (code, head, metrics) = http_get(&addr, "/metrics");
    assert_eq!(code, 200);
    assert!(
        head.to_lowercase()
            .contains("content-type: text/plain; version=0.0.4"),
        "{head}"
    );
    assert!(metrics.contains("barre_queue_jobs_queued 2\n"), "{metrics}");
    assert!(
        metrics.contains("# TYPE barre_queue_replayed_records_total counter"),
        "{metrics}"
    );
    assert!(
        metrics.contains("barre_queue_replayed_requeued_total 2\n"),
        "{metrics}"
    );

    // A worker drains the restored queue; the client (which rode out the
    // crash polling) comes back byte-identical.
    let w = Daemon::spawn(&dir, &["worker", "--connect", &addr, "--name", "w1"], &[]);
    let out = wait_until_exit(client, Duration::from_secs(60));
    assert!(
        out.status.success(),
        "dispatch failed: {}",
        text(&out.stderr)
    );
    assert_eq!(text(&out.stdout), text(&reference.stdout));

    w.signal("-TERM");
    let _ = w.wait();
    queue.signal("-TERM");
    let q = queue.wait();
    assert_eq!(q.status.code(), Some(0), "stderr: {}", text(&q.stderr));
    let qerr = text(&q.stderr);
    assert!(
        qerr.contains("restored") && qerr.contains("from journal"),
        "restart never replayed the journal: {qerr}"
    );
}

#[cfg(unix)]
#[test]
fn poison_job_is_quarantined_and_reported() {
    let dir = tmpdir("poison");
    // Two burned leases quarantine a job; the worker's 1-second budget
    // turns the hung job into a lease burn quickly.
    let mut queue = Daemon::spawn(
        &dir,
        &[
            "queue",
            "--port",
            "0",
            "--journal",
            "q",
            "--max-leases",
            "2",
        ],
        &[],
    );
    let addr = queue.addr();
    let w = Daemon::spawn(
        &dir,
        &[
            "worker",
            "--connect",
            &addr,
            "--name",
            "w1",
            "--timeout",
            "1",
        ],
        &[("BARRE_TEST_HANG", "0".to_string())],
    );

    let dispatched = barre(
        &dir,
        &sweep_args(&["--dispatch", &addr, "--journal", "shard"]),
        &[],
    );
    // The poisoned job fails the campaign; the healthy job completed.
    assert_eq!(
        dispatched.status.code(),
        Some(1),
        "stdout: {}\nstderr: {}",
        text(&dispatched.stdout),
        text(&dispatched.stderr)
    );
    let err = text(&dispatched.stderr);
    assert!(err.contains("POISON"), "no poison verdict: {err}");
    assert!(err.contains("quarantined after 2 lease(s)"), "{err}");
    assert!(err.contains("1 of 2 job(s) failed"), "{err}");
    assert!(
        dispatched.stdout.is_empty(),
        "partial table printed on failure"
    );
    // The client journal carries the quarantine record for `barre merge`.
    let shard =
        std::fs::read_to_string(dir.join("shard").join("sweep.journal.jsonl")).expect("shard");
    assert!(shard.contains("\"event\":\"quarantined\""), "{shard}");
    assert_eq!(shard.matches("\"event\":\"done\"").count(), 1);

    w.signal("-TERM");
    let _ = w.wait();
    queue.signal("-TERM");
    let q = queue.wait();
    let qerr = text(&q.stderr);
    assert!(
        qerr.contains("POISON"),
        "coordinator never reported: {qerr}"
    );
}

#[test]
fn merge_surfaces_skipped_corrupt_lines() {
    let dir = tmpdir("skipped");
    // A clean supervised run provides genuine journal lines.
    let full = barre(
        &dir,
        &sweep_args(&["--supervise", "--journal", "full", "--jobs", "1"]),
        &[],
    );
    assert!(full.status.success(), "stderr: {}", text(&full.stderr));
    let journal =
        std::fs::read_to_string(dir.join("full").join("sweep.journal.jsonl")).expect("journal");

    // A shard with interior corruption: garbage between valid records.
    let mut lines: Vec<&str> = journal.lines().collect();
    lines.insert(1, "{\"this is\": not even close");
    lines.insert(3, "%%%% bit rot %%%%");
    std::fs::write(dir.join("rotten.jsonl"), format!("{}\n", lines.join("\n"))).expect("shard");

    let merged = barre(&dir, &["merge", "--out", "m", "rotten.jsonl"], &[]);
    assert!(merged.status.success(), "stderr: {}", text(&merged.stderr));
    let out = text(&merged.stdout);
    assert!(out.contains("2 done"), "{out}");
    assert!(out.contains("2 line(s) skipped"), "{out}");
    assert!(
        text(&merged.stderr).contains("skipped 2 corrupt line(s)"),
        "{}",
        text(&merged.stderr)
    );
    // The merged journal itself is clean and resumable.
    let resumed = barre(&dir, &sweep_args(&["--resume", "m", "--jobs", "1"]), &[]);
    assert!(
        resumed.status.success(),
        "stderr: {}",
        text(&resumed.stderr)
    );
    assert_eq!(text(&resumed.stdout), text(&full.stdout));
}
