//! `barre lint --fix`: mechanical rewrites for the fixable rules.
//!
//! Only two rules have a safe mechanical edit today:
//!
//! * **W001** — a `barre:allow(RULE)` with no justification gets a
//!   `TODO: justify …` scaffold appended, so the author fills in the
//!   reason instead of retyping the waiver syntax. The scaffold starts
//!   with `TODO`, which deliberately does **not** count as a
//!   justification — the diagnostic keeps firing until a human replaces
//!   it, but the *edit* is stable.
//! * **D002** — a literal `Instant::now()` / `SystemTime::now()` call
//!   is rewritten to `clock.now()` with a marker comment telling the
//!   author to thread the injected clock into scope. Type positions and
//!   imports are left alone (no mechanical edit is safe there).
//!
//! Every edit is **idempotent**: a second `--fix` run over already
//! fixed sources is byte-identical, which the fixture suite asserts.

use crate::rules::Diagnostic;

/// The scaffold appended to reason-less waivers. Starts with `TODO` so
/// the lexer keeps treating the waiver as unjustified.
pub const W001_SCAFFOLD: &str = "TODO: justify this waiver (scaffolded by barre lint --fix)";

/// The marker appended to rewritten wall-clock reads.
pub const D002_MARKER: &str = "/* barre:fix(D002): thread the injected clock into this scope */";

/// Applies every available fix for `diags` (all anchored in this file)
/// to `src`. Returns the rewritten source and edit count, or `None`
/// when nothing changed.
pub fn fix_source(src: &str, diags: &[&Diagnostic]) -> Option<(String, usize)> {
    let mut lines: Vec<String> = src.split('\n').map(str::to_string).collect();
    let mut edits = 0usize;
    for d in diags {
        let Some(line) = (d.line as usize)
            .checked_sub(1)
            .and_then(|i| lines.get_mut(i))
        else {
            continue;
        };
        match d.rule {
            "W001" => edits += scaffold_waiver(line),
            "D002" => edits += rewrite_wall_clock(line),
            _ => {}
        }
    }
    if edits == 0 {
        None
    } else {
        Some((lines.join("\n"), edits))
    }
}

/// Appends the W001 scaffold after `barre:allow(…)` when the waiver has
/// no reason text at all. Waivers that already carry text (including a
/// previous scaffold) are left untouched.
fn scaffold_waiver(line: &mut String) -> usize {
    let Some(start) = line.find("barre:allow(") else {
        return 0;
    };
    let after_open = start + "barre:allow(".len();
    let Some(close_rel) = line.get(after_open..).and_then(|r| r.find(')')) else {
        return 0;
    };
    let close = after_open + close_rel;
    let rest = line.get(close + 1..).unwrap_or("");
    if !rest.trim().is_empty() {
        return 0;
    }
    line.truncate(close + 1);
    line.push(' ');
    line.push_str(W001_SCAFFOLD);
    1
}

/// Rewrites literal wall-clock calls on the diagnostic's line. Only the
/// `X::now()` call form is mechanically fixable.
fn rewrite_wall_clock(line: &mut String) -> usize {
    let mut edits = 0usize;
    for pat in ["Instant::now()", "SystemTime::now()"] {
        while let Some(at) = line.find(pat) {
            line.replace_range(at..at + pat.len(), &format!("clock.now() {D002_MARKER}"));
            edits += 1;
        }
    }
    edits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::lint_source;

    fn fix_once(path: &str, src: &str) -> (String, usize) {
        let fl = lint_source(path, src);
        let refs: Vec<&Diagnostic> = fl.diagnostics.iter().collect();
        match fix_source(src, &refs) {
            Some((out, n)) => (out, n),
            None => (src.to_string(), 0),
        }
    }

    #[test]
    fn w001_scaffold_is_appended_and_idempotent() {
        let src = "// barre:allow(D001)\nuse std::collections::HashMap;\n";
        let (once, n) = fix_once("crates/sim/src/x.rs", src);
        assert_eq!(n, 1);
        assert!(once.contains(&format!("barre:allow(D001) {W001_SCAFFOLD}")));
        // Second run: W001 still fires (TODO is not a reason) but the
        // edit must be a no-op.
        let (twice, n2) = fix_once("crates/sim/src/x.rs", &once);
        assert_eq!(n2, 0);
        assert_eq!(twice, once);
    }

    #[test]
    fn d002_rewrite_is_idempotent_and_silences_the_rule() {
        let src = "fn f() { let t0 = Instant::now(); }\n";
        let (once, n) = fix_once("crates/sim/src/x.rs", src);
        assert_eq!(n, 1);
        assert!(once.contains("clock.now()"));
        assert!(once.contains("barre:fix(D002)"));
        assert!(!once.contains("Instant::now"));
        let fl = lint_source("crates/sim/src/x.rs", &once);
        assert!(
            fl.diagnostics.iter().all(|d| d.rule != "D002"),
            "{:?}",
            fl.diagnostics
        );
        let (twice, n2) = fix_once("crates/sim/src/x.rs", &once);
        assert_eq!(n2, 0);
        assert_eq!(twice, once);
    }

    #[test]
    fn type_position_wall_clock_is_not_rewritten() {
        // `fn f(t: Instant)` fires D002 but has no mechanical fix.
        let src = "fn f(t: Instant) -> u64 { 0 }\n";
        let (out, n) = fix_once("crates/sim/src/x.rs", src);
        assert_eq!(n, 0);
        assert_eq!(out, src);
    }

    #[test]
    fn waiver_with_reason_is_untouched() {
        let src = "// barre:allow(D001) keyed access only\nuse std::collections::HashMap;\n";
        let (out, n) = fix_once("crates/sim/src/x.rs", src);
        assert_eq!(n, 0);
        assert_eq!(out, src);
    }
}
