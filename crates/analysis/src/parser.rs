//! A lightweight item-level parser on top of the [`lexer`](crate::lexer).
//!
//! The token-pattern rules (D001, P001, …) never needed structure, but
//! the interprocedural passes do: P002 must know where one function ends
//! and the next begins, D004 must see struct *fields*, and R001 must walk
//! the type graph hanging off `Machine`. This parser recovers exactly
//! that much shape — functions with body token ranges, structs/enums
//! with field type identifiers, `impl` blocks, `static mut` and
//! `thread_local!` globals — and deliberately nothing more. It is not an
//! AST: expressions stay flat token runs, types are bags of identifiers.
//!
//! Being approximate is fine here. The downstream analyses are
//! over-approximating by construction (name-based call resolution), so a
//! parse that occasionally attributes a token to the enclosing item is
//! conservative, never unsound, for the reachability questions we ask.

use crate::lexer::{LexOut, TokKind, Token};

/// A function (or method) declaration.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name (`step`, `new`, …).
    pub name: String,
    /// `Type::name` when declared inside an `impl` block, else `name`.
    pub qual: String,
    /// The `impl` self type, when this is a method.
    pub self_ty: Option<String>,
    /// Declared with plain `pub` visibility (not `pub(crate)` etc.).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range `[start, end]` of the body, braces included.
    /// `None` for bodyless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
    /// Declared under `#[test]` / `#[cfg(test)]` (or inside such a mod).
    pub in_test: bool,
}

/// One field of a struct/union, or one enum-variant payload slot.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Field name; enum payload slots use the variant name.
    pub name: String,
    /// 1-based line of the field.
    pub line: u32,
    /// Every identifier appearing in the field's type (`Vec<Tlb<u64>>`
    /// yields `["Vec", "Tlb", "u64"]`) — the edges of the type graph.
    pub type_idents: Vec<String>,
}

/// A struct, enum, or union declaration with its field types.
#[derive(Debug, Clone)]
pub struct TypeItem {
    /// Type name.
    pub name: String,
    /// 1-based line of the declaring keyword.
    pub line: u32,
    /// Fields (structs/unions) or variant payload slots (enums).
    pub fields: Vec<FieldItem>,
    /// Declared under test-only compilation.
    pub in_test: bool,
}

/// What kind of process-global state a [`GlobalItem`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalKind {
    /// `static mut NAME: …` — unsynchronized mutable global.
    StaticMut,
    /// `thread_local! { … }` — per-thread state, invisible to a
    /// deterministic cross-thread merge.
    ThreadLocal,
}

/// A process-global declaration that matters for parallel readiness.
#[derive(Debug, Clone)]
pub struct GlobalItem {
    /// Which global form was found.
    pub kind: GlobalKind,
    /// Declared name (best effort; `thread_local!` reports the first
    /// identifier inside the macro body).
    pub name: String,
    /// 1-based line of the declaration.
    pub line: u32,
    /// Declared under test-only compilation.
    pub in_test: bool,
}

/// Item-level shape of one source file.
#[derive(Debug, Default)]
pub struct FileAst {
    /// Every `fn` declaration, in source order.
    pub fns: Vec<FnItem>,
    /// Every `struct`/`enum`/`union`, in source order.
    pub types: Vec<TypeItem>,
    /// Every `static mut` / `thread_local!`, in source order.
    pub globals: Vec<GlobalItem>,
}

/// Identifiers that read like calls but are control-flow keywords.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "let", "mut", "ref",
    "move", "fn", "impl", "trait", "struct", "enum", "union", "mod", "use", "pub", "const",
    "static", "type", "where", "unsafe", "async", "await", "dyn", "box", "break", "continue",
    "extern", "crate", "super", "self", "Self",
];

/// Whether `s` is a Rust keyword (for call-site extraction).
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Parses a lexed file into its item-level shape. `test_mask` must come
/// from [`crate::rules::test_mask_of`] over the same token stream.
pub fn parse_file(out: &LexOut, test_mask: &[bool]) -> FileAst {
    let toks = &out.tokens;
    let mut ast = FileAst::default();
    // Stack of enclosing `impl` self types, keyed by the brace depth at
    // which the impl body opened.
    let mut impl_stack: Vec<(usize, String)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct => {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth = depth.saturating_sub(1);
                    while impl_stack.last().is_some_and(|(d, _)| *d > depth) {
                        impl_stack.pop();
                    }
                }
                i += 1;
            }
            TokKind::Ident if t.text == "impl" => {
                if let Some((body_open, self_ty)) = impl_header(toks, i) {
                    // The impl body's `{` sits at `body_open`; methods in
                    // it see `self_ty` at depth `depth + 1`.
                    impl_stack.push((depth + 1, self_ty));
                    depth += 1;
                    i = body_open + 1;
                } else {
                    i += 1;
                }
            }
            TokKind::Ident if t.text == "fn" => {
                let is_pub = plain_pub_before(toks, i);
                let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                    i += 1;
                    continue;
                };
                let name = name_tok.text.clone();
                let self_ty = impl_stack.last().map(|(_, ty)| ty.clone());
                let qual = match &self_ty {
                    Some(ty) => format!("{ty}::{name}"),
                    None => name.clone(),
                };
                let body = fn_body_range(toks, i + 2);
                let end = match body {
                    Some((_, e)) => e,
                    None => bodyless_end(toks, i + 2),
                };
                ast.fns.push(FnItem {
                    name,
                    qual,
                    self_ty,
                    is_pub,
                    line: t.line,
                    body,
                    in_test: test_mask.get(i).copied().unwrap_or(false),
                });
                // Skip the whole declaration: nested closures/exprs stay
                // attributed to this fn, which is what the call graph wants.
                i = end + 1;
            }
            TokKind::Ident if t.text == "struct" || t.text == "enum" || t.text == "union" => {
                let in_test = test_mask.get(i).copied().unwrap_or(false);
                let (item, end) = parse_type_item(toks, i, t.text == "enum", in_test);
                if let Some(item) = item {
                    ast.types.push(item);
                }
                i = end + 1;
            }
            TokKind::Ident if t.text == "static" => {
                if toks.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
                    if let Some(name) = toks.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                        ast.globals.push(GlobalItem {
                            kind: GlobalKind::StaticMut,
                            name: name.text.clone(),
                            line: t.line,
                            in_test: test_mask.get(i).copied().unwrap_or(false),
                        });
                    }
                }
                i += 1;
            }
            TokKind::Ident if t.text == "thread_local" => {
                if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                    let name = toks
                        .iter()
                        .skip(i + 2)
                        .find(|n| n.kind == TokKind::Ident && !is_keyword(&n.text))
                        .map(|n| n.text.clone())
                        .unwrap_or_default();
                    ast.globals.push(GlobalItem {
                        kind: GlobalKind::ThreadLocal,
                        name,
                        line: t.line,
                        in_test: test_mask.get(i).copied().unwrap_or(false),
                    });
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    ast
}

/// Whether the item introduced at `kw_idx` is preceded by a plain `pub`
/// (possibly with qualifiers like `unsafe`/`async`/`const` in between).
/// `pub(crate)` and friends do not count.
fn plain_pub_before(toks: &[Token], kw_idx: usize) -> bool {
    let mut j = kw_idx;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        match t.text.as_str() {
            "unsafe" | "async" | "const" | "extern" | "default" if t.kind == TokKind::Ident => {
                continue;
            }
            "pub" if t.kind == TokKind::Ident => {
                return !toks.get(j + 1).is_some_and(|n| n.is_punct('('));
            }
            // An extern ABI string was skipped by the lexer entirely, so
            // anything else ends the qualifier run.
            _ => return false,
        }
    }
    false
}

/// Resolves an `impl` header starting at `impl_idx`: returns the token
/// index of the body's `{` and the self-type name (`impl Foo`,
/// `impl<T> Trait for Foo<T>` → `Foo`). `None` if no body is found.
fn impl_header(toks: &[Token], impl_idx: usize) -> Option<(usize, String)> {
    let mut j = impl_idx + 1;
    let mut angle = 0i32;
    let mut after_for: Option<usize> = None;
    let mut last_path_start: Option<usize> = None;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle == 0 && t.is_punct('{') {
            // Pick the path after `for` when present, else the first path.
            let start = after_for.or(last_path_start)?;
            return Some((j, last_segment(toks, start)));
        } else if angle == 0 && t.is_punct(';') {
            return None;
        } else if angle == 0 && t.kind == TokKind::Ident {
            if t.text == "for" {
                after_for = None; // next path segment wins
            } else if t.text != "where"
                && !is_keyword(&t.text)
                && after_for.is_none()
                && toks
                    .get(j.wrapping_sub(1))
                    .is_some_and(|p| p.is_ident("for"))
            {
                after_for = Some(j);
            } else if last_path_start.is_none() && t.text != "where" && !is_keyword(&t.text) {
                last_path_start = Some(j);
            }
        }
        j += 1;
    }
    None
}

/// Last identifier of the `a::b::C` path starting at token `start`.
fn last_segment(toks: &[Token], start: usize) -> String {
    let mut name = toks[start].text.clone();
    let mut j = start + 1;
    while j + 1 < toks.len() && toks[j].is_punct(':') && toks[j + 1].is_punct(':') {
        if let Some(n) = toks.get(j + 2).filter(|n| n.kind == TokKind::Ident) {
            name = n.text.clone();
            j += 3;
        } else {
            break;
        }
    }
    name
}

/// Finds the body `{ … }` of a fn whose name token sits right before
/// `from`: scans past the signature (parens, generics, return type,
/// where clause) to the first `{` at angle/paren depth 0, then brace
/// matches. Returns the inclusive token range, or `None` when the
/// declaration ends with `;`.
fn fn_body_range(toks: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut j = from;
    let mut angle = 0i32;
    let mut paren = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0); // `->` return arrows underflow
        } else if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if paren == 0 && angle == 0 && t.is_punct(';') {
            return None;
        } else if paren == 0 && angle == 0 && t.is_punct('{') {
            let mut depth = 0usize;
            for (k, b) in toks.iter().enumerate().skip(j) {
                if b.is_punct('{') {
                    depth += 1;
                } else if b.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some((j, k));
                    }
                }
            }
            return Some((j, toks.len() - 1));
        }
        j += 1;
    }
    None
}

/// Token index where a bodyless declaration starting near `from` ends
/// (its `;`, or the last token).
fn bodyless_end(toks: &[Token], from: usize) -> usize {
    let mut j = from;
    let mut paren = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if paren == 0 && (t.is_punct(';') || t.is_punct('{')) {
            return j;
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Parses a `struct`/`enum`/`union` starting at `kw_idx`. Returns the
/// item (if a name was found) and the token index where it ends.
fn parse_type_item(
    toks: &[Token],
    kw_idx: usize,
    is_enum: bool,
    in_test: bool,
) -> (Option<TypeItem>, usize) {
    let Some(name_tok) = toks.get(kw_idx + 1).filter(|n| n.kind == TokKind::Ident) else {
        return (None, kw_idx);
    };
    let mut item = TypeItem {
        name: name_tok.text.clone(),
        line: toks[kw_idx].line,
        fields: Vec::new(),
        in_test,
    };
    // Skip generics / where clause to the body opener.
    let mut j = kw_idx + 2;
    let mut angle = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle == 0 && t.is_punct(';') {
            return (Some(item), j); // unit struct
        } else if angle == 0 && (t.is_punct('{') || t.is_punct('(')) {
            break;
        }
        j += 1;
    }
    let Some(open) = toks.get(j) else {
        return (Some(item), j.saturating_sub(1));
    };
    if open.is_punct('(') {
        // Tuple struct: every ident up to the matching `)` is a type edge.
        let (idents, end, last_line) = idents_to_match(toks, j, '(', ')');
        item.fields.push(FieldItem {
            name: item.name.clone(),
            line: last_line,
            type_idents: idents,
        });
        return (Some(item), end);
    }
    // Braced body. For structs: `name: Type,` at depth 1. For enums:
    // `Variant(Type)` / `Variant { f: Type }` — collect idents per slot.
    let mut depth = 0usize;
    let mut field_name: Option<(String, u32)> = None;
    let mut collecting: Option<FieldItem> = None;
    let mut k = j;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                if let Some(f) = collecting.take() {
                    item.fields.push(f);
                }
                return (Some(item), k);
            }
        } else if depth == 1 {
            if t.is_punct(',') {
                if let Some(f) = collecting.take() {
                    item.fields.push(f);
                }
                field_name = None;
            } else if !is_enum && t.is_punct(':') {
                // `name: Type` — everything until the `,` is the type.
                if let Some((name, line)) = field_name.take() {
                    collecting = Some(FieldItem {
                        name,
                        line,
                        type_idents: Vec::new(),
                    });
                }
            } else if t.kind == TokKind::Ident {
                match &mut collecting {
                    Some(f) => {
                        if !is_keyword(&t.text) {
                            f.type_idents.push(t.text.clone());
                        }
                    }
                    None => {
                        if is_enum {
                            // Variant name opens a payload collector.
                            collecting = Some(FieldItem {
                                name: t.text.clone(),
                                line: t.line,
                                type_idents: Vec::new(),
                            });
                        } else if !is_keyword(&t.text) {
                            field_name = Some((t.text.clone(), t.line));
                        }
                    }
                }
            }
        } else if depth > 1 {
            // Inside a variant's `{ … }` payload or nested type braces.
            if let Some(f) = &mut collecting {
                if t.kind == TokKind::Ident && !is_keyword(&t.text) {
                    f.type_idents.push(t.text.clone());
                }
            }
        }
        // Tuple payload `Variant(Type)` sits at depth 1 inside parens —
        // idents there already feed `collecting` via the depth==1 arm
        // because parens do not change `depth`.
        k += 1;
    }
    (Some(item), k.saturating_sub(1))
}

/// Collects identifiers between `open`/`close` punctuation starting at
/// token `at` (which must be the opener). Returns (idents, index of the
/// closer, line of the opener).
fn idents_to_match(
    toks: &[Token],
    at: usize,
    open: char,
    close: char,
) -> (Vec<String>, usize, u32) {
    let mut idents = Vec::new();
    let mut depth = 0i32;
    let line = toks[at].line;
    for (k, t) in toks.iter().enumerate().skip(at) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return (idents, k, line);
            }
        } else if t.kind == TokKind::Ident && !is_keyword(&t.text) {
            idents.push(t.text.clone());
        }
    }
    (idents, toks.len().saturating_sub(1), line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask_of;

    fn parse(src: &str) -> FileAst {
        let out = lex(src);
        let mask = test_mask_of(&out.tokens);
        parse_file(&out, &mask)
    }

    #[test]
    fn finds_free_fns_and_methods() {
        let src = "
            pub fn alpha() -> u64 { beta() }
            fn beta() -> u64 { 3 }
            struct S { x: u64 }
            impl S {
                pub fn new() -> Self { S { x: 0 } }
                fn bump(&mut self) { self.x += 1; }
            }
        ";
        let ast = parse(src);
        let quals: Vec<&str> = ast.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["alpha", "beta", "S::new", "S::bump"]);
        assert!(ast.fns[0].is_pub && !ast.fns[1].is_pub);
        assert!(ast.fns[2].is_pub && !ast.fns[3].is_pub);
        assert_eq!(ast.fns[2].self_ty.as_deref(), Some("S"));
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let src = "
            impl<T: Clone> std::fmt::Display for Wrapper<T> {
                fn fmt(&self) {}
            }
        ";
        let ast = parse(src);
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].qual, "Wrapper::fmt");
    }

    #[test]
    fn body_ranges_cover_nested_braces() {
        let src = "fn f() { if x { y(); } else { z(); } } fn g() {}";
        let ast = parse(src);
        assert_eq!(ast.fns.len(), 2);
        let (s, e) = ast.fns[0].body.unwrap();
        assert!(e > s);
        // g's body must not overlap f's.
        let (gs, _) = ast.fns[1].body.unwrap();
        assert!(gs > e);
    }

    #[test]
    fn trait_methods_without_body_are_recorded() {
        let src = "trait T { fn required(&self) -> u64; fn with_default(&self) -> u64 { 1 } }";
        let ast = parse(src);
        assert_eq!(ast.fns.len(), 2);
        assert!(ast.fns[0].body.is_none());
        assert!(ast.fns[1].body.is_some());
    }

    #[test]
    fn struct_fields_capture_type_idents() {
        let src = "
            pub struct Machine {
                queue: EventQueue<Ev>,
                chiplets: Vec<ChipletState>,
                now: u64,
            }
            struct Pair(Cycle, Option<GlobalPfn>);
        ";
        let ast = parse(src);
        assert_eq!(ast.types.len(), 2);
        let m = &ast.types[0];
        assert_eq!(m.name, "Machine");
        assert_eq!(m.fields.len(), 3);
        assert_eq!(m.fields[0].type_idents, vec!["EventQueue", "Ev"]);
        assert_eq!(m.fields[1].type_idents, vec!["Vec", "ChipletState"]);
        let p = &ast.types[1];
        assert_eq!(p.fields.len(), 1);
        assert_eq!(
            p.fields[0].type_idents,
            vec!["Cycle", "Option", "GlobalPfn"]
        );
    }

    #[test]
    fn enum_variants_capture_payload_idents() {
        let src = "enum Tracer { Noop, Recording(Box<Recorder>), Pair { a: Cell<u8> } }";
        let ast = parse(src);
        let e = &ast.types[0];
        let names: Vec<&str> = e.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["Noop", "Recording", "Pair"]);
        assert_eq!(e.fields[1].type_idents, vec!["Box", "Recorder"]);
        assert_eq!(e.fields[2].type_idents, vec!["a", "Cell", "u8"]);
    }

    #[test]
    fn globals_static_mut_and_thread_local() {
        let src = "
            static OK: u64 = 1;
            static mut COUNTER: u64 = 0;
            thread_local! { static SCRATCH: Vec<u8> = Vec::new(); }
        ";
        let ast = parse(src);
        assert_eq!(ast.globals.len(), 2);
        assert_eq!(ast.globals[0].kind, GlobalKind::StaticMut);
        assert_eq!(ast.globals[0].name, "COUNTER");
        assert_eq!(ast.globals[1].kind, GlobalKind::ThreadLocal);
        assert_eq!(ast.globals[1].name, "SCRATCH");
    }

    #[test]
    fn test_items_are_marked() {
        let src = "
            fn prod() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn t() {}
            }
        ";
        let ast = parse(src);
        assert!(!ast.fns[0].in_test);
        assert!(ast.fns[1].in_test);
        assert!(ast.fns[2].in_test);
    }

    #[test]
    fn pub_crate_is_not_plain_pub() {
        let src = "pub(crate) fn a() {} pub const fn b() {} pub unsafe fn c() {}";
        let ast = parse(src);
        assert!(!ast.fns[0].is_pub);
        assert!(ast.fns[1].is_pub);
        assert!(ast.fns[2].is_pub);
    }

    #[test]
    fn where_clauses_and_return_generics_do_not_confuse_bodies() {
        let src = "fn f<T>(x: T) -> Option<Vec<T>> where T: Clone { Some(vec![x]) } fn g() {}";
        let ast = parse(src);
        assert_eq!(ast.fns.len(), 2);
        assert!(ast.fns[0].body.is_some());
    }
}
