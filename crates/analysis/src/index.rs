//! Workspace symbol index: every file's lexed tokens and item-level
//! shape, plus cross-file lookup tables for the interprocedural passes.
//!
//! The index is built once per `barre lint` run and shared by P002
//! (call-graph panic reachability), D004 (sim-state struct audit) and
//! R001 (the `Machine` type-closure parallel-readiness audit). Files are
//! keyed by workspace-relative path with forward slashes; all tables use
//! `BTreeMap` so iteration — and therefore every diagnostic order — is
//! deterministic.

use std::collections::BTreeMap;

use crate::lexer::{lex, LexOut};
use crate::parser::{parse_file, FileAst};
use crate::rules::{scope_of, test_mask_of, FileScope};

/// One indexed source file.
pub struct FileEntry {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Rule-applicability scope derived from the path.
    pub scope: FileScope,
    /// Lexer output (tokens, waivers, doc lines).
    pub lex: LexOut,
    /// Tokens covered by `#[test]` / `#[cfg(test)]` items.
    pub test_mask: Vec<bool>,
    /// Item-level shape.
    pub ast: FileAst,
}

/// A workspace-unique function id: (file index, fn index within file).
pub type FnId = (usize, usize);

/// The cross-file symbol index.
pub struct SymbolIndex {
    /// Indexed files in sorted path order.
    pub files: Vec<FileEntry>,
    /// Function lookup by bare name (`step` → every fn named `step`).
    pub fns_by_name: BTreeMap<String, Vec<FnId>>,
    /// Function lookup by `Type::name` qualification.
    pub fns_by_qual: BTreeMap<String, Vec<FnId>>,
    /// Type lookup by name → (file index, type index) entries.
    pub types_by_name: BTreeMap<String, Vec<(usize, usize)>>,
}

impl SymbolIndex {
    /// Builds the index from `(path, source)` pairs. Paths should be
    /// workspace-relative with forward slashes; entries are indexed in
    /// the order given (callers sort beforehand for determinism).
    pub fn build(sources: &[(String, String)]) -> SymbolIndex {
        let mut files = Vec::with_capacity(sources.len());
        for (path, src) in sources {
            let lex_out = lex(src);
            let test_mask = test_mask_of(&lex_out.tokens);
            let ast = parse_file(&lex_out, &test_mask);
            files.push(FileEntry {
                path: path.clone(),
                scope: scope_of(path),
                lex: lex_out,
                test_mask,
                ast,
            });
        }
        let mut fns_by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut fns_by_qual: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut types_by_name: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, entry) in files.iter().enumerate() {
            for (ki, f) in entry.ast.fns.iter().enumerate() {
                fns_by_name
                    .entry(f.name.clone())
                    .or_default()
                    .push((fi, ki));
                fns_by_qual
                    .entry(f.qual.clone())
                    .or_default()
                    .push((fi, ki));
            }
            for (ti, t) in entry.ast.types.iter().enumerate() {
                types_by_name
                    .entry(t.name.clone())
                    .or_default()
                    .push((fi, ti));
            }
        }
        SymbolIndex {
            files,
            fns_by_name,
            fns_by_qual,
            types_by_name,
        }
    }

    /// Total number of indexed functions.
    pub fn fn_count(&self) -> usize {
        self.files.iter().map(|f| f.ast.fns.len()).sum()
    }

    /// Dense numbering of every function, in (file, fn) order.
    pub fn fn_ids(&self) -> Vec<FnId> {
        let mut ids = Vec::with_capacity(self.fn_count());
        for (fi, entry) in self.files.iter().enumerate() {
            for ki in 0..entry.ast.fns.len() {
                ids.push((fi, ki));
            }
        }
        ids
    }

    /// The function item behind an id.
    pub fn fn_item(&self, id: FnId) -> &crate::parser::FnItem {
        &self.files[id.0].ast.fns[id.1]
    }

    /// Human-readable location of a function: `path::qual`.
    pub fn fn_label(&self, id: FnId) -> String {
        format!("{}::{}", self.files[id.0].path, self.fn_item(id).qual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    #[test]
    fn index_spans_files() {
        let idx = SymbolIndex::build(&src(&[
            (
                "crates/a/src/lib.rs",
                "pub fn alpha() {} struct S { x: u64 } impl S { pub fn get(&self) {} }",
            ),
            ("crates/b/src/lib.rs", "pub fn beta() { alpha(); }"),
        ]));
        assert_eq!(idx.fn_count(), 3);
        assert_eq!(idx.fns_by_name["alpha"].len(), 1);
        assert_eq!(idx.fns_by_qual["S::get"].len(), 1);
        assert_eq!(idx.types_by_name["S"].len(), 1);
        let (fi, ki) = idx.fns_by_name["beta"][0];
        assert_eq!(idx.files[fi].path, "crates/b/src/lib.rs");
        assert_eq!(idx.fn_label((fi, ki)), "crates/b/src/lib.rs::beta");
    }
}
