//! Rendering a [`LintReport`](crate::LintReport) for humans and machines.
//!
//! The JSON writer is hand-rolled (the workspace is dependency-free); the
//! output shape is versioned as **`barre-lint/2`** and stable:
//!
//! ```json
//! {
//!   "schema": "barre-lint/2",
//!   "files_scanned": 42,
//!   "waived": 3,
//!   "baselined": 7,
//!   "diagnostics": [
//!     {"file": "crates/x/src/y.rs", "line": 7, "rule": "D001",
//!      "message": "…", "suggestion": "…", "symbol": ""}
//!   ]
//! }
//! ```
//!
//! Schema history: `barre-lint/1` (implicit, PR 2–6) had no `schema`,
//! `baselined`, or `symbol` members; `/2` adds them. Consumers should
//! treat an absent `schema` as `/1`.

use crate::LintReport;
use std::fmt::Write as _;

/// Human-readable report: one `file:line: [RULE] message` block per
/// diagnostic, stale-baseline warnings, then a summary line.
pub fn render_human(report: &LintReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
        let _ = writeln!(out, "    fix: {}", d.suggestion);
    }
    for e in &report.stale_baseline {
        let _ = writeln!(
            out,
            "warning: stale baseline entry {} {} `{}` matches nothing — prune it",
            e.rule, e.file, e.symbol
        );
    }
    let _ = writeln!(
        out,
        "{} file(s) scanned, {} violation(s), {} waived, {} baselined",
        report.files_scanned,
        report.diagnostics.len(),
        report.waived,
        report.baselined
    );
    out
}

/// Machine-readable report (single JSON object, trailing newline).
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"barre-lint/2\",\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"waived\": {},", report.waived);
    let _ = writeln!(out, "  \"baselined\": {},", report.baselined);
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(
            out,
            "\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"suggestion\": {}, \
             \"symbol\": {}",
            json_str(&d.file),
            d.line,
            json_str(d.rule),
            json_str(&d.message),
            json_str(d.suggestion),
            json_str(&d.symbol)
        );
        out.push('}');
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// The `--parallel-readiness` section: the R001 audit as a go/no-go
/// artifact for ROADMAP item 2 (deterministic chiplet partitioning).
pub fn render_readiness(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("parallel-readiness audit (R001)\n");
    if report.readiness.roots.is_empty() {
        out.push_str("  roots: none found — is this a workspace checkout?\n");
    }
    for r in &report.readiness.roots {
        let _ = writeln!(out, "  root: {r}");
    }
    let _ = writeln!(out, "  types audited: {}", report.readiness.types_audited);
    let active: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "R001")
        .collect();
    let _ = writeln!(out, "  active findings: {}", active.len());
    for d in &active {
        let _ = writeln!(
            out,
            "    {}:{} {} — {}",
            d.file, d.line, d.symbol, d.message
        );
    }
    let waived: Vec<_> = report
        .waived_findings
        .iter()
        .filter(|w| w.rule == "R001")
        .collect();
    let _ = writeln!(out, "  waived findings: {}", waived.len());
    for w in &waived {
        let _ = writeln!(
            out,
            "    {}:{} {} — waived: {}",
            w.file, w.line, w.symbol, w.reason
        );
    }
    let verdict = if active.is_empty() {
        if waived.is_empty() {
            "READY (no interior mutability reachable from Machine)"
        } else {
            "READY (every finding waived with a justification)"
        }
    } else {
        "NOT READY (active findings above must be fixed or waived)"
    };
    let _ = writeln!(out, "  verdict: {verdict}");
    out
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::WaivedFinding;
    use crate::rules::Diagnostic;

    fn sample() -> LintReport {
        LintReport {
            diagnostics: vec![Diagnostic {
                file: "crates/x/src/y.rs".to_string(),
                line: 7,
                rule: "D001",
                message: "a \"quoted\" message".to_string(),
                suggestion: "fix it",
                symbol: String::new(),
            }],
            files_scanned: 3,
            waived: 1,
            baselined: 2,
            ..LintReport::default()
        }
    }

    #[test]
    fn human_report_mentions_rule_and_location() {
        let s = render_human(&sample());
        assert!(s.contains("crates/x/src/y.rs:7: [D001]"));
        assert!(s.contains("3 file(s) scanned, 1 violation(s), 1 waived, 2 baselined"));
    }

    #[test]
    fn json_is_schema_v2_and_escapes() {
        let s = render_json(&sample());
        assert!(s.contains("\"schema\": \"barre-lint/2\""));
        assert!(s.contains("\"files_scanned\": 3"));
        assert!(s.contains("\"baselined\": 2"));
        assert!(s.contains("\"rule\": \"D001\""));
        assert!(s.contains("a \\\"quoted\\\" message"));
        // It must parse with the in-tree reader.
        let v = crate::json::parse(&s).expect("self-parse");
        assert_eq!(
            v.get("schema").and_then(crate::json::Json::as_str),
            Some("barre-lint/2")
        );
    }

    #[test]
    fn json_empty_diagnostics_is_an_empty_array() {
        let r = LintReport::default();
        let s = render_json(&r);
        assert!(s.contains("\"diagnostics\": []"));
    }

    #[test]
    fn readiness_verdicts() {
        let mut r = LintReport::default();
        r.readiness
            .roots
            .push("Machine (crates/system/src/machine.rs)".to_string());
        r.readiness.types_audited = 5;
        assert!(render_readiness(&r).contains("verdict: READY (no interior"));

        r.waived_findings.push(WaivedFinding {
            rule: "R001",
            file: "crates/sim/src/c.rs".to_string(),
            line: 4,
            symbol: "C::cell".to_string(),
            reason: "single-threaded until item 2 lands".to_string(),
        });
        let s = render_readiness(&r);
        assert!(s.contains("verdict: READY (every finding waived"));
        assert!(s.contains("C::cell — waived: single-threaded"));

        r.diagnostics.push(Diagnostic {
            file: "crates/tlb/src/s.rs".to_string(),
            line: 9,
            rule: "R001",
            message: "`RefCell` in `TlbState::cache`".to_string(),
            suggestion: "own it",
            symbol: "TlbState::cache".to_string(),
        });
        assert!(render_readiness(&r).contains("verdict: NOT READY"));
    }

    #[test]
    fn stale_baseline_is_warned_in_human_output() {
        let mut r = LintReport::default();
        r.stale_baseline.push(crate::BaselineEntry {
            rule: "P002".to_string(),
            file: "crates/sim/src/gone.rs".to_string(),
            symbol: "gone".to_string(),
            justification: "x".to_string(),
        });
        let s = render_human(&r);
        assert!(s.contains("stale baseline entry P002"));
    }
}
