//! Rendering a [`LintReport`](crate::LintReport) for humans and machines.
//!
//! The JSON writer is hand-rolled (the workspace is dependency-free); the
//! output shape is stable:
//!
//! ```json
//! {
//!   "files_scanned": 42,
//!   "waived": 3,
//!   "diagnostics": [
//!     {"file": "crates/x/src/y.rs", "line": 7, "rule": "D001",
//!      "message": "…", "suggestion": "…"}
//!   ]
//! }
//! ```

use crate::LintReport;
use std::fmt::Write as _;

/// Human-readable report: one `file:line: [RULE] message` block per
/// diagnostic, then a summary line.
pub fn render_human(report: &LintReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
        let _ = writeln!(out, "    fix: {}", d.suggestion);
    }
    let _ = writeln!(
        out,
        "{} file(s) scanned, {} violation(s), {} waived",
        report.files_scanned,
        report.diagnostics.len(),
        report.waived
    );
    out
}

/// Machine-readable report (single JSON object, trailing newline).
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"waived\": {},", report.waived);
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(
            out,
            "\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"suggestion\": {}",
            json_str(&d.file),
            d.line,
            json_str(d.rule),
            json_str(&d.message),
            json_str(d.suggestion)
        );
        out.push('}');
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    fn sample() -> LintReport {
        LintReport {
            diagnostics: vec![Diagnostic {
                file: "crates/x/src/y.rs".to_string(),
                line: 7,
                rule: "D001",
                message: "a \"quoted\" message".to_string(),
                suggestion: "fix it",
            }],
            files_scanned: 3,
            waived: 1,
        }
    }

    #[test]
    fn human_report_mentions_rule_and_location() {
        let s = render_human(&sample());
        assert!(s.contains("crates/x/src/y.rs:7: [D001]"));
        assert!(s.contains("3 file(s) scanned, 1 violation(s), 1 waived"));
    }

    #[test]
    fn json_escapes_and_structures() {
        let s = render_json(&sample());
        assert!(s.contains("\"files_scanned\": 3"));
        assert!(s.contains("\"rule\": \"D001\""));
        assert!(s.contains("a \\\"quoted\\\" message"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn json_empty_diagnostics_is_an_empty_array() {
        let r = LintReport {
            diagnostics: Vec::new(),
            files_scanned: 0,
            waived: 0,
        };
        let s = render_json(&r);
        assert!(s.contains("\"diagnostics\": []"));
    }
}
