//! SARIF 2.1.0 export for GitHub code scanning.
//!
//! `barre lint --sarif` emits one run with the full rule table and one
//! result per *active* diagnostic (waived and baselined findings are by
//! definition accepted, so they stay out of code scanning). The
//! structure follows the SARIF 2.1.0 schema's required core: tool
//! driver with rule metadata, results with `ruleId` / `message` /
//! `physicalLocation`. [`validate`] re-parses an export and checks that
//! core structurally — the offline stand-in for a schema validator,
//! exercised by the test suite against a golden file.

use crate::report::json_str;
use crate::rules::Diagnostic;

/// The registered rule table: (id, short description). Every rule the
/// engine can emit must appear here — SARIF results whose `ruleId` is
/// missing from the driver table render without metadata in most
/// viewers.
pub const RULES: &[(&str, &str)] = &[
    (
        "D001",
        "Hash-based collection in a sim-facing crate (iteration order is nondeterministic)",
    ),
    ("D002", "Wall-clock read outside bench/cli/serve code"),
    (
        "D003",
        "Ambient entropy source (only the in-tree seeded RNG is reproducible)",
    ),
    (
        "D004",
        "Float field in sim-state (accumulation order changes results across partitionings)",
    ),
    (
        "D005",
        "Relaxed or unsynchronized atomic in sim-state (racy under parallel execution)",
    ),
    ("P001", "Panicking call in non-test library code"),
    ("P002", "Public API whose call closure reaches a panic site"),
    ("C001", "Lossy cast on a cycle/address-typed expression"),
    ("C002", "Unchecked += accumulation on a long-lived counter"),
    ("W001", "Waiver without a justification"),
    ("A001", "Undocumented public item in an API crate"),
    (
        "R001",
        "Interior mutability or thread-affine state reachable from Machine",
    ),
];

/// Renders the diagnostics as a SARIF 2.1.0 document.
pub fn render(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::with_capacity(4096 + diagnostics.len() * 256);
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"barre-lint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/barre\",\n");
    out.push_str(&format!(
        "          \"version\": {},\n",
        json_str(env!("CARGO_PKG_VERSION"))
    ));
    out.push_str("          \"rules\": [");
    for (i, (id, desc)) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            json_str(id),
            json_str(desc)
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let text = if d.symbol.is_empty() {
            d.message.clone()
        } else {
            format!("{} [{}]", d.message, d.symbol)
        };
        out.push_str(&format!(
            "\n        {{\"ruleId\": {rule}, \"level\": \"warning\", \
             \"message\": {{\"text\": {msg}}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": {uri}, \"uriBaseId\": \"%SRCROOT%\"}}, \
             \"region\": {{\"startLine\": {line}}}}}}}]}}",
            rule = json_str(d.rule),
            msg = json_str(&text),
            uri = json_str(&d.file),
            line = d.line.max(1)
        ));
    }
    out.push_str("\n      ]\n    }\n  ]\n}\n");
    out
}

/// Structurally validates a SARIF document against the 2.1.0 core:
/// version string, runs array, driver with named tool and rule ids,
/// results whose `ruleId` is registered and whose locations carry a
/// physical artifact + positive start line. Returns the first problem.
pub fn validate(src: &str) -> Result<(), String> {
    use crate::json::{parse, Json};
    let doc = parse(src).map_err(|e| format!("sarif: not JSON: {e}"))?;
    if doc.get("version").and_then(Json::as_str) != Some("2.1.0") {
        return Err("sarif: version must be \"2.1.0\"".to_string());
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("sarif: missing runs[]")?;
    if runs.is_empty() {
        return Err("sarif: runs[] is empty".to_string());
    }
    for run in runs {
        let driver = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .ok_or("sarif: run missing tool.driver")?;
        if driver.get("name").and_then(Json::as_str).is_none() {
            return Err("sarif: driver missing name".to_string());
        }
        let mut rule_ids = Vec::new();
        if let Some(rules) = driver.get("rules").and_then(Json::as_arr) {
            for r in rules {
                let id = r
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or("sarif: rule missing id")?;
                if r.get("shortDescription")
                    .and_then(|s| s.get("text"))
                    .and_then(Json::as_str)
                    .is_none()
                {
                    return Err(format!("sarif: rule {id} missing shortDescription.text"));
                }
                rule_ids.push(id.to_string());
            }
        }
        let results = run
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("sarif: run missing results[]")?;
        for res in results {
            let rule = res
                .get("ruleId")
                .and_then(Json::as_str)
                .ok_or("sarif: result missing ruleId")?;
            if !rule_ids.iter().any(|r| r == rule) {
                return Err(format!("sarif: result ruleId {rule} not in driver rules"));
            }
            if res
                .get("message")
                .and_then(|m| m.get("text"))
                .and_then(Json::as_str)
                .is_none()
            {
                return Err("sarif: result missing message.text".to_string());
            }
            let locs = res
                .get("locations")
                .and_then(Json::as_arr)
                .ok_or("sarif: result missing locations[]")?;
            for loc in locs {
                let phys = loc
                    .get("physicalLocation")
                    .ok_or("sarif: location missing physicalLocation")?;
                if phys
                    .get("artifactLocation")
                    .and_then(|a| a.get("uri"))
                    .and_then(Json::as_str)
                    .is_none()
                {
                    return Err("sarif: physicalLocation missing artifactLocation.uri".to_string());
                }
                let line = phys
                    .get("region")
                    .and_then(|r| r.get("startLine"))
                    .and_then(Json::as_u64)
                    .ok_or("sarif: region missing startLine")?;
                if line == 0 {
                    return Err("sarif: startLine must be positive".to_string());
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                file: "crates/sim/src/x.rs".to_string(),
                line: 12,
                rule: "D001",
                message: "HashMap in a sim-facing crate".to_string(),
                suggestion: "use BTreeMap",
                symbol: String::new(),
            },
            Diagnostic {
                file: "crates/system/src/machine.rs".to_string(),
                line: 40,
                rule: "P002",
                message: "call path: a -> b -> c (indexing at m.rs:9)".to_string(),
                suggestion: "bounds-check",
                symbol: "Machine::step".to_string(),
            },
        ]
    }

    #[test]
    fn render_validates() {
        let doc = render(&sample());
        validate(&doc).expect("structurally valid");
    }

    #[test]
    fn empty_report_validates() {
        validate(&render(&[])).expect("valid with zero results");
    }

    #[test]
    fn every_engine_rule_is_registered() {
        for id in [
            "D001", "D002", "D003", "D004", "D005", "P001", "P002", "C001", "C002", "W001", "A001",
            "R001",
        ] {
            assert!(RULES.iter().any(|(r, _)| *r == id), "missing {id}");
        }
    }

    #[test]
    fn validator_rejects_unregistered_rule_and_bad_line() {
        let doc = render(&[Diagnostic {
            file: "x.rs".to_string(),
            line: 1,
            rule: "Z999",
            message: "m".to_string(),
            suggestion: "",
            symbol: String::new(),
        }]);
        assert!(validate(&doc).is_err(), "Z999 is not a registered rule");
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"version": "2.1.0", "runs": []}"#).is_err());
    }
}
