//! A minimal Rust lexer — just enough structure for the rule engine.
//!
//! The lexer's one job is to distinguish *code* from *not-code*: line and
//! (nested) block comments, string/char/byte literals, raw strings with
//! arbitrary `#` fences, raw identifiers, and lifetimes all need to be
//! recognized so that rule tokens appearing inside them never fire. It
//! deliberately does not build an AST; the rules below are token-pattern
//! matchers.
//!
//! Comments are not discarded entirely: `// barre:allow(RULE) reason`
//! waivers are parsed out of them and reported alongside the tokens.

/// What kind of token a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `as`, `unwrap`, …).
    Ident,
    /// Numeric literal (lexed loosely; digits and alphanumeric suffix).
    Number,
    /// A single punctuation character (`.`, `!`, `[`, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Source text (for `Punct`, exactly one character).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// A `// barre:allow(RULE[,RULE…]) reason` waiver found in a comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 1-based line the waiver comment starts on.
    pub line: u32,
    /// Rule IDs the waiver names (e.g. `["D001", "P001"]`).
    pub rules: Vec<String>,
    /// Whether a non-empty justification follows the rule list. A reason
    /// that is only the `--fix` scaffold placeholder (starts with `TODO`)
    /// does not count: scaffolding marks where a human must still write
    /// the justification, it never silences a rule by itself.
    pub has_reason: bool,
    /// The justification text (possibly empty), as written.
    pub reason: String,
}

/// Lexer output: the token stream plus every waiver comment.
#[derive(Debug, Default)]
pub struct LexOut {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Waivers parsed from comments, in source order.
    pub waivers: Vec<Waiver>,
    /// 1-based lines covered by *outer* doc comments (`///`, `/** */`) —
    /// the forms that attach to the following item. Inner docs (`//!`,
    /// `/*! */`) document the enclosing module and are excluded so they
    /// can never stand in for a missing item doc. A multi-line block doc
    /// contributes every line it spans.
    pub doc_lines: Vec<u32>,
}

/// Marker that introduces a waiver inside a comment.
const WAIVER_MARK: &str = "barre:allow(";

/// Lexes `src` into tokens and waivers.
pub fn lex(src: &str) -> LexOut {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: LexOut::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: LexOut,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> LexOut {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.quote(),
                'r' | 'b' if self.raw_or_byte_prefix() => {}
                c if is_ident_start(c) => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    self.bump();
                    if !c.is_whitespace() {
                        self.out.tokens.push(Token {
                            kind: TokKind::Punct,
                            text: c.to_string(),
                            line,
                        });
                    }
                }
            }
        }
        self.out
    }

    /// Handles `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'…'`, `br#"…"#`.
    /// Returns `true` when it consumed something; `false` means the `r`/`b`
    /// starts a plain identifier and the caller should lex it normally.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let c0 = self.peek(0);
        let (skip, next) = match (c0, self.peek(1)) {
            (Some('b'), Some('r')) => (2, self.peek(2)),
            (Some('r') | Some('b'), n) => (1, n),
            _ => return false,
        };
        match next {
            // Raw string r"…" / r#"…"# / br"…".
            Some('"') | Some('#') if c0 == Some('r') || skip == 2 || next == Some('"') => {
                // Distinguish raw identifiers (r#foo) from raw strings
                // (r#"…): look past the run of #.
                let mut hashes = 0;
                while self.peek(skip + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(skip + hashes) != Some('"') {
                    if c0 == Some('r') && hashes == 1 {
                        return self.raw_ident();
                    }
                    return false;
                }
                for _ in 0..skip + hashes + 1 {
                    self.bump();
                }
                self.raw_string_tail(hashes);
                true
            }
            // Byte string b"…" handled above; byte char b'…'.
            Some('\'') if c0 == Some('b') => {
                self.bump(); // b
                self.char_literal();
                true
            }
            _ => false,
        }
    }

    /// Consumes `r#ident`, emitting the identifier.
    fn raw_ident(&mut self) -> bool {
        if !self.peek(2).is_some_and(is_ident_start) {
            return false;
        }
        let line = self.line;
        self.bump(); // r
        self.bump(); // #
        let mut text = String::new();
        while self.peek(0).is_some_and(is_ident_continue) {
            if let Some(ch) = self.bump() {
                text.push(ch);
            }
        }
        self.out.tokens.push(Token {
            kind: TokKind::Ident,
            text,
            line,
        });
        true
    }

    /// Consumes the body of a raw string whose opener had `hashes` fences.
    fn raw_string_tail(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c != '"' {
                continue;
            }
            let mut ok = true;
            for k in 0..hashes {
                if self.peek(k) != Some('#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                for _ in 0..hashes {
                    self.bump();
                }
                return;
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if text.starts_with("///") && !text.starts_with("////") {
            self.out.doc_lines.push(line);
        }
        self.scan_waiver(&text, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        self.bump();
        self.bump();
        let mut depth = 1;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        // `/** … */` is an outer block doc (`/**/` is an empty plain
        // comment: its body never received the extra `*`).
        if text.starts_with('*') {
            self.out.doc_lines.extend(line..=self.line);
        }
        self.scan_waiver(&text, line);
    }

    /// Parses `barre:allow(R1[,R2…]) reason` out of a comment body.
    fn scan_waiver(&mut self, comment: &str, line: u32) {
        let Some(at) = comment.find(WAIVER_MARK) else {
            return;
        };
        let rest = &comment[at + WAIVER_MARK.len()..];
        let Some(close) = rest.find(')') else {
            // Unclosed waiver: record as malformed (no rules, no reason).
            self.out.waivers.push(Waiver {
                line,
                rules: Vec::new(),
                has_reason: false,
                reason: String::new(),
            });
            return;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = rest[close + 1..].trim_start_matches([':', '-', ' ']).trim();
        self.out.waivers.push(Waiver {
            line,
            rules,
            has_reason: !reason.is_empty() && !reason.starts_with("TODO"),
            reason: reason.to_string(),
        });
    }

    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// A `'`: either a lifetime (`'a`, `'static`, `'_`) or a char literal.
    fn quote(&mut self) {
        // Lifetime: 'ident not closed by another quote right after one char.
        if self.peek(1).is_some_and(is_ident_start)
            && self.peek(2) != Some('\'')
            && self.peek(1) != Some('\\')
        {
            self.bump(); // '
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            return;
        }
        self.char_literal();
    }

    fn char_literal(&mut self) {
        self.bump(); // opening '
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => return,
                _ => {}
            }
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while self.peek(0).is_some_and(is_ident_continue) {
            if let Some(ch) = self.bump() {
                text.push(ch);
            }
        }
        self.out.tokens.push(Token {
            kind: TokKind::Ident,
            text,
            line,
        });
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            if let Some(ch) = self.bump() {
                text.push(ch);
            }
        }
        self.out.tokens.push(Token {
            kind: TokKind::Number,
            text,
            line,
        });
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn skips_comments_and_strings() {
        let src = r##"
            // HashMap in a comment
            /* HashSet in /* a nested */ block */
            let s = "HashMap::new()";
            let r = r#"unwrap() inside raw "quoted" string"#;
            let real = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap" || i == "HashSet"));
        assert!(!ids.iter().any(|i| i == "unwrap"));
        assert!(ids.iter().any(|i| i == "BTreeMap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; let q = '\\''; x }";
        let ids = idents(src);
        // 'a never shows up as a stray token; the idents after char
        // literals still lex.
        assert!(ids.iter().any(|i| i == "str"));
        assert!(ids.iter().any(|i| i == "q"));
        assert!(!ids.iter().any(|i| i == "a"));
    }

    #[test]
    fn byte_and_raw_literals() {
        let src = r##"let a = b"unwrap"; let b = br#"panic!"#; let c = b'u'; let d = r#type;"##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap" || i == "panic"));
        // Raw identifier r#type lexes as `type`.
        assert!(ids.iter().any(|i| i == "type"));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let src = "let a = 1;\nlet b = 2;\n\nlet c = 3;";
        let toks = lex(src).tokens;
        let c = toks.iter().find(|t| t.is_ident("c")).map(|t| t.line);
        assert_eq!(c, Some(4));
    }

    #[test]
    fn waivers_parse_rules_and_reason() {
        let src = "
            // barre:allow(D001) keyed access only, never iterated
            let m = HashMap::new();
            // barre:allow(P001,C001): two rules
            // barre:allow(D002)
        ";
        let out = lex(src);
        assert_eq!(out.waivers.len(), 3);
        assert_eq!(out.waivers[0].rules, vec!["D001"]);
        assert!(out.waivers[0].has_reason);
        assert_eq!(out.waivers[1].rules, vec!["P001", "C001"]);
        assert!(out.waivers[1].has_reason);
        assert!(!out.waivers[2].has_reason, "bare waiver has no reason");
        assert_eq!(out.waivers[0].reason, "keyed access only, never iterated");
    }

    #[test]
    fn todo_scaffold_is_not_a_reason() {
        let src = "// barre:allow(D001) TODO: justify — scaffolded by barre lint --fix\n";
        let out = lex(src);
        assert_eq!(out.waivers.len(), 1);
        assert!(!out.waivers[0].has_reason, "TODO scaffold must not justify");
        assert!(out.waivers[0].reason.starts_with("TODO"));
    }

    #[test]
    fn doc_lines_cover_outer_forms_only() {
        let src = "/// outer\n//! inner\n// plain\n//// ruler\n/** block\ndoc */\n/*! inner block */\n/* plain block */\n/**/\nlet x = 1;\n";
        let out = lex(src);
        assert_eq!(out.doc_lines, vec![1, 5, 6]);
    }

    #[test]
    fn strings_track_newlines() {
        let src = "let s = \"line\nbreak\";\nlet after = 1;";
        let toks = lex(src).tokens;
        let after = toks.iter().find(|t| t.is_ident("after")).map(|t| t.line);
        assert_eq!(after, Some(3));
    }
}
