//! The rule engine: walks a token stream and reports diagnostics.
//!
//! | Rule | What it catches |
//! |------|-----------------|
//! | D001 | hash-based collections in sim-facing crates (iteration order) |
//! | D002 | wall-clock reads outside bench/cli/serve code |
//! | D003 | ambient entropy (anything but the in-tree seeded RNG) |
//! | P001 | panicking calls in non-test library code |
//! | C001 | lossy `as` casts on cycle/address-typed expressions |
//! | C002 | unchecked `+=` accumulation on long-lived cycle/traffic counters |
//! | W001 | a `barre:allow` waiver without a justification |
//! | A001 | an undocumented `pub` item in the API crates (core/system) |
//! | D005 | `Ordering::Relaxed` / atomics inside deterministic sim state |
//! | O001 | bare `eprintln!` in fleet daemon code (serve crate) |
//!
//! The interprocedural rules (P002 panic reachability, D004 float
//! fields in sim-state structs, R001 parallel readiness) live in
//! [`crate::passes`] — they need the symbol index, not just one file's
//! tokens.
//!
//! Any rule can be silenced with `// barre:allow(RULE) <reason>` on the
//! same line or the line directly above the violation.

use crate::lexer::{lex, LexOut, TokKind, Token};

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule ID (`D001`, `P001`, …).
    pub rule: &'static str,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub suggestion: &'static str,
    /// Qualified symbol the finding anchors to (`Machine::step`,
    /// `FaultPlan::p_drop`). Empty for token-local rules; the baseline
    /// falls back to the message text then.
    pub symbol: String,
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Violations that were not waived.
    pub diagnostics: Vec<Diagnostic>,
    /// Violations silenced by a justified waiver.
    pub waived: usize,
}

/// Where a file sits in the workspace, which decides rule applicability.
#[derive(Debug, Clone, Copy)]
pub struct FileScope {
    /// Crate is in the deterministic-simulation set (D001 applies).
    pub sim_facing: bool,
    /// Wall-clock reads allowed (bench/cli frontends, the serve daemon
    /// — whose deadlines and latency stats are inherently wall-clock —
    /// and the obs crate, which timestamps log lines and trace events).
    pub wall_clock_ok: bool,
    /// Panicking calls allowed (bench/cli frontends only — the daemon
    /// must stay up, so `serve` is NOT in this set).
    pub panic_ok: bool,
    /// Integration test / example file (panic rules do not apply).
    pub test_file: bool,
    /// Library source of an API crate (A001 doc coverage applies).
    pub doc_required: bool,
    /// Crate state feeds the deterministic simulation *itself* — the
    /// sim-facing set minus `serve` (the daemon's wall-clock stats and
    /// monitoring atomics never touch sim outcomes). D004/D005 and the
    /// R001 parallel-readiness audit apply here.
    pub sim_state: bool,
    /// Library source of an API-surface crate (core/system/serve):
    /// its plain `pub fn`s are the P002 panic-reachability entry points.
    pub api_entry: bool,
    /// Fleet daemon code whose diagnostics must flow through the
    /// structured logger (O001): bare `eprintln!` lines are invisible
    /// to level filtering and unparseable by log shippers.
    pub structured_log: bool,
}

/// Crates whose state feeds simulation outcomes; hash-order
/// nondeterminism here can flip a fingerprint.
const SIM_FACING: &[&str] = &[
    "sim",
    "mem",
    "filters",
    "tlb",
    "mapping",
    "iommu",
    "gpu",
    "workloads",
    "core",
    "system",
    "trace",
    "serve",
];

/// Derives the rule-applicability scope from a workspace-relative path.
pub fn scope_of(path: &str) -> FileScope {
    let crate_name = path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("");
    let test_file = path.contains("/tests/")
        || path.starts_with("tests/")
        || path.contains("/examples/")
        || path.starts_with("examples/");
    let bench = path.contains("/benches/") || path.starts_with("benches/");
    let frontend = bench || crate_name == "cli" || crate_name == "bench";
    let sim_facing = SIM_FACING.contains(&crate_name);
    FileScope {
        sim_facing,
        wall_clock_ok: frontend || crate_name == "serve" || crate_name == "obs",
        panic_ok: frontend,
        test_file,
        doc_required: path.starts_with("crates/core/src/")
            || path.starts_with("crates/system/src/"),
        sim_state: sim_facing && crate_name != "serve" && !test_file && !bench,
        api_entry: path.starts_with("crates/core/src/")
            || path.starts_with("crates/system/src/")
            || path.starts_with("crates/serve/src/"),
        structured_log: path.starts_with("crates/serve/src/") && !test_file,
    }
}

/// Lints one source file given its workspace-relative `path`.
pub fn lint_source(path: &str, src: &str) -> FileLint {
    let out = lex(src);
    let masked = test_mask_of(&out.tokens);
    lint_lexed(path, &out, &masked)
}

/// Token-rule pass over an already lexed file (the symbol index shares
/// its lex with this pass so each file is lexed exactly once per run).
pub fn lint_lexed(path: &str, out: &LexOut, masked: &[bool]) -> FileLint {
    let scope = scope_of(path);
    // Nondecreasing line numbers of code tokens (used by the A001 doc
    // attachment check).
    let code_lines: Vec<u32> = out.tokens.iter().map(|t| t.line).collect();
    let mut raw: Vec<(u32, &'static str, String, &'static str)> = Vec::new();

    for (i, t) in out.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let in_test = masked[i] || scope.test_file;

        // D001: hash-based collections in sim-facing crates.
        if scope.sim_facing && !in_test && (t.text == "HashMap" || t.text == "HashSet") {
            raw.push((
                t.line,
                "D001",
                format!(
                    "{} in a sim-facing crate (iteration order is nondeterministic)",
                    t.text
                ),
                "use BTreeMap/BTreeSet or a sorted Vec, or add `// barre:allow(D001) <reason>` \
                 if the container is provably never iterated",
            ));
        }

        // D002: wall-clock reads outside bench/cli/serve.
        if !scope.wall_clock_ok && !in_test && (t.text == "Instant" || t.text == "SystemTime") {
            raw.push((
                t.line,
                "D002",
                format!("wall-clock read ({}) outside bench/cli/serve code", t.text),
                "derive timing from the simulated clock; wall-clock time is only \
                 meaningful in bench/cli frontends and the serve daemon",
            ));
        }

        // D003: ambient entropy. The in-tree seeded RNG is the only
        // randomness source allowed anywhere in the workspace.
        if matches!(
            t.text.as_str(),
            "thread_rng"
                | "ThreadRng"
                | "OsRng"
                | "from_entropy"
                | "getrandom"
                | "RandomState"
                | "DefaultHasher"
                | "rand"
        ) {
            raw.push((
                t.line,
                "D003",
                format!("ambient entropy source ({})", t.text),
                "use the in-tree seeded RNG so every run is reproducible from its seed",
            ));
        }

        // P001: panicking calls in non-test library code.
        if !in_test && !scope.panic_ok {
            let after_dot = i > 0 && out.tokens[i - 1].is_punct('.');
            let before_bang = out.tokens.get(i + 1).is_some_and(|n| n.is_punct('!'));
            let hit = (after_dot && (t.text == "unwrap" || t.text == "expect"))
                || (before_bang && (t.text == "panic" || t.text == "unreachable"));
            if hit {
                raw.push((
                    t.line,
                    "P001",
                    format!("panicking call ({}) in non-test library code", t.text),
                    "return an error through the SimError taxonomy, restructure so the \
                     invariant is expressed in types, or add `// barre:allow(P001) <reason>`",
                ));
            }
        }

        // A001: `pub` items in the API crates must carry a doc comment.
        if scope.doc_required && !in_test && t.text == "pub" {
            if let Some((kind, name)) = pub_item_at(&out.tokens, i) {
                let first = item_start_line(&out.tokens, i);
                if !has_attached_doc(&out.doc_lines, &code_lines, first) {
                    raw.push((
                        t.line,
                        "A001",
                        format!("undocumented public item: `pub {kind} {name}`"),
                        "add a `///` doc comment stating the item's contract, or \
                         `// barre:allow(A001) <reason>` for intentionally bare items",
                    ));
                }
            }
        }

        // C001: lossy `as` cast on a cycle/address-typed expression.
        if !scope.test_file && !masked[i] && t.text == "as" {
            if let Some((name, target)) = lossy_cast_at(&out.tokens, i) {
                raw.push((
                    t.line,
                    "C001",
                    format!("lossy cast: `{name} as {target}` may truncate a cycle/address value"),
                    "keep cycle and address arithmetic in u64, or use try_from with an \
                     explicit error path",
                ));
            }
        }

        // C002: unchecked `+=` accumulation on a long-lived counter.
        // The lexer splits `+=` into a `+` punct followed by `=`.
        if scope.sim_facing
            && !in_test
            && counter_smell(&t.text)
            && out.tokens.get(i + 1).is_some_and(|n| n.is_punct('+'))
            && out.tokens.get(i + 2).is_some_and(|n| n.is_punct('='))
        {
            raw.push((
                t.line,
                "C002",
                format!(
                    "unchecked accumulation: `{} += …` can wrap over a long run",
                    t.text
                ),
                "accumulate cycle/byte/message counters with `saturating_add` (or widen \
                 the type); silent wrap-around corrupts conservation checks and reports",
            ));
        }

        // O001: bare eprintln! in fleet daemon code. Everything the
        // serve/queue/worker processes say must carry the structured
        // ts_ms/level/component/event envelope, or operators cannot
        // filter by level and log shippers cannot parse it.
        if scope.structured_log
            && !in_test
            && t.text == "eprintln"
            && out.tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            raw.push((
                t.line,
                "O001",
                "bare eprintln! in fleet daemon code".to_string(),
                "emit through barre_obs::log (error/warn/info/debug) so the line carries \
                 the structured envelope, or add `// barre:allow(O001) <reason>`",
            ));
        }

        // D005: relaxed/unsynchronized atomics in deterministic sim
        // state. Under the future parallel partitioning (ROADMAP item
        // 2), racy counters produce run-to-run drift that breaks the
        // byte-identical fingerprint guarantee.
        if scope.sim_state
            && !in_test
            && (t.text == "Relaxed" || (t.text.starts_with("Atomic") && t.text.len() > 6))
        {
            raw.push((
                t.line,
                "D005",
                format!("atomic in deterministic sim state ({})", t.text),
                "sim state must be single-writer: keep counters as plain integers owned \
                 by one chiplet and merge deterministically at barriers; atomics (and \
                 especially `Ordering::Relaxed`) admit interleaving-dependent results",
            ));
        }
    }

    // Apply waivers: a waiver on line L silences matching rules on L and L+1.
    let mut filelint = FileLint::default();
    for (line, rule, message, suggestion) in raw {
        let covered = out.waivers.iter().any(|w| {
            (w.line == line || w.line + 1 == line)
                && w.has_reason
                && w.rules.iter().any(|r| r == rule)
        });
        if covered {
            filelint.waived += 1;
        } else {
            filelint.diagnostics.push(Diagnostic {
                file: path.to_string(),
                line,
                rule,
                message,
                suggestion,
                symbol: String::new(),
            });
        }
    }

    // W001: every waiver must carry a justification (and name a rule).
    for w in &out.waivers {
        if !w.has_reason || w.rules.is_empty() {
            filelint.diagnostics.push(Diagnostic {
                file: path.to_string(),
                line: w.line,
                rule: "W001",
                message: "waiver without a justification".to_string(),
                suggestion: "write `// barre:allow(RULE) <one-line reason>` — the reason \
                     is mandatory and must not start with TODO",
                symbol: String::new(),
            });
        }
    }

    filelint
        .diagnostics
        .sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    filelint
}

/// Item keywords whose `pub` form is part of a crate's documented API.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "mod", "type", "const", "static", "union",
];

/// If the `pub` at `pub_idx` introduces an API item, returns its
/// `(keyword, name)`. Re-exports (`pub use`), restricted visibility
/// (`pub(crate)` and friends), and `pub` struct fields return `None`.
fn pub_item_at(tokens: &[Token], pub_idx: usize) -> Option<(String, String)> {
    let mut j = pub_idx + 1;
    if tokens.get(j)?.is_punct('(') {
        return None;
    }
    // Skip qualifiers between `pub` and the item keyword. `const` is a
    // qualifier only in `const fn`; otherwise it is the item keyword.
    while tokens.get(j).is_some_and(|t| {
        matches!(t.text.as_str(), "unsafe" | "async" | "default" | "extern")
            || (t.text == "const" && tokens.get(j + 1).is_some_and(|n| n.is_ident("fn")))
    }) {
        j += 1;
    }
    let kw = tokens.get(j)?;
    if kw.kind != TokKind::Ident || !ITEM_KEYWORDS.contains(&kw.text.as_str()) {
        return None;
    }
    let mut k = j + 1;
    while tokens.get(k).is_some_and(|t| t.is_ident("mut")) {
        k += 1;
    }
    let name = tokens.get(k)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    Some((kw.text.clone(), name.text.clone()))
}

/// First source line of the item whose `pub` sits at `pub_idx`, walking
/// back over any stack of `#[…]` attributes so a doc comment above the
/// attributes still counts as attached.
fn item_start_line(tokens: &[Token], pub_idx: usize) -> u32 {
    let mut start = pub_idx;
    while start >= 2 && tokens[start - 1].is_punct(']') {
        let mut depth = 0usize;
        let mut k = start - 1;
        let open = loop {
            if tokens[k].is_punct(']') {
                depth += 1;
            } else if tokens[k].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break Some(k);
                }
            }
            if k == 0 {
                break None;
            }
            k -= 1;
        };
        match open {
            Some(o) if o >= 1 && tokens[o - 1].is_punct('#') => start = o - 1,
            _ => break,
        }
    }
    tokens[start].line
}

/// Whether an outer doc comment attaches to an item whose first token
/// (attributes included) sits on `first_line`: some doc line must fall
/// between the last preceding code token and the item — a doc separated
/// from the item by code belongs to an earlier item.
fn has_attached_doc(doc_lines: &[u32], code_lines: &[u32], first_line: u32) -> bool {
    let p = code_lines.partition_point(|&l| l < first_line);
    let prev_code = p.checked_sub(1).map_or(0, |q| code_lines[q]);
    doc_lines.iter().any(|&d| d >= prev_code && d < first_line)
}

/// Matches `IDENT as TY` or `IDENT.0 as TY` where `TY` is a narrowing
/// integer type and `IDENT` smells like a cycle/address quantity.
fn lossy_cast_at(tokens: &[Token], as_idx: usize) -> Option<(String, String)> {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    let target = tokens.get(as_idx + 1)?;
    if target.kind != TokKind::Ident || !NARROW.contains(&target.text.as_str()) {
        return None;
    }
    // Walk back over an optional `.0` tuple projection.
    let mut j = as_idx.checked_sub(1)?;
    if tokens[j].kind == TokKind::Number
        && tokens[j].text == "0"
        && j >= 2
        && tokens[j - 1].is_punct('.')
    {
        j -= 2;
    }
    let src = &tokens[j];
    if src.kind != TokKind::Ident {
        return None;
    }
    let lower = src.text.to_lowercase();
    let smells = ["cycle", "vpn", "pfn", "addr", "deadline"]
        .iter()
        .any(|s| lower.contains(s))
        || lower == "now"
        || lower == "latency";
    if smells {
        Some((src.text.clone(), target.text.clone()))
    } else {
        None
    }
}

/// Whether an identifier smells like a long-lived cycle/traffic counter
/// whose compound-assign accumulation C002 audits. Sim runs process
/// billions of events; a wrapping counter poisons every downstream
/// report without tripping any assertion.
fn counter_smell(name: &str) -> bool {
    let lower = name.to_lowercase();
    ["cycle", "bytes", "msgs", "busy"]
        .iter()
        .any(|s| lower.contains(s))
}

/// Marks every token that belongs to a `#[test]` / `#[cfg(test)]` item
/// (attribute through the end of the item body) so panic/collection rules
/// skip test code embedded in library files.
pub fn test_mask_of(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        let Some(end_attr) = attribute_at(tokens, i) else {
            i += 1;
            continue;
        };
        if !attr_is_test(&tokens[i..=end_attr]) {
            i = end_attr + 1;
            continue;
        }
        // Mask the attribute, any stacked attributes after it, and the
        // item they decorate (up to `;` or the matching close brace).
        let start = i;
        let mut j = end_attr + 1;
        while let Some(e) = attribute_at(tokens, j) {
            j = e + 1;
        }
        let mut depth = 0usize;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                break;
            }
            j += 1;
        }
        let end = j.min(tokens.len().saturating_sub(1));
        for m in mask.iter_mut().take(end + 1).skip(start) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// If `tokens[i]` starts an attribute (`#[ … ]`), returns the index of the
/// closing bracket.
fn attribute_at(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(i + 1) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Whether an attribute token slice is `#[test]`, `#[cfg(test)]`, or any
/// cfg combination that *enables* test-only compilation. `#[cfg(not(test))]`
/// is production code and returns false.
fn attr_is_test(attr: &[Token]) -> bool {
    let mut saw_test = false;
    for t in attr {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "test" => saw_test = true,
            "not" => return false,
            _ => {}
        }
    }
    saw_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src)
            .diagnostics
            .iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn d001_fires_in_sim_facing_crate_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_of("crates/tlb/src/tlb.rs", src), vec!["D001"]);
        assert!(rules_of("crates/analysis/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d001_waiver_with_reason_silences() {
        let src = "// barre:allow(D001) keyed access only, never iterated\n\
                   use std::collections::HashMap;\n";
        let fl = lint_source("crates/mem/src/x.rs", src);
        assert!(fl.diagnostics.is_empty(), "{:?}", fl.diagnostics);
        assert_eq!(fl.waived, 1);
    }

    #[test]
    fn waiver_without_reason_is_w001_and_does_not_silence() {
        let src = "// barre:allow(D001)\nuse std::collections::HashMap;\n";
        let rules = rules_of("crates/mem/src/x.rs", src);
        assert!(rules.contains(&"D001"));
        assert!(rules.contains(&"W001"));
    }

    #[test]
    fn same_line_waiver_covers() {
        let src = "let m: HashMap<u64, u32> = x; // barre:allow(D001) test double\n";
        let fl = lint_source("crates/sim/src/x.rs", src);
        assert!(fl.diagnostics.is_empty());
        assert_eq!(fl.waived, 1);
    }

    #[test]
    fn p001_catches_all_four_forms() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); unreachable!(); }";
        let rules = rules_of("crates/core/src/x.rs", src);
        assert_eq!(rules, vec!["P001"; 4]);
    }

    #[test]
    fn p001_skips_cfg_test_items_and_test_files() {
        let src = "#[cfg(test)]\nmod tests {\n fn g() { x.unwrap(); }\n}\n\
                   #[test]\nfn t() { y.expect(\"z\"); }\n";
        assert!(rules_of("crates/core/src/x.rs", src).is_empty());
        let prod = "fn f() { a.unwrap(); }";
        assert!(rules_of("crates/core/tests/it.rs", prod).is_empty());
        assert!(rules_of("tests/fault_injection.rs", prod).is_empty());
    }

    #[test]
    fn p001_cfg_not_test_is_production() {
        let src = "#[cfg(not(test))]\nfn f() { a.unwrap(); }";
        assert_eq!(rules_of("crates/core/src/x.rs", src), vec!["P001"]);
    }

    #[test]
    fn p001_ignores_unwrap_or_family() {
        let src = "fn f() { a.unwrap_or(0); b.unwrap_or_default(); c.unwrap_or_else(d); }";
        assert!(rules_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn d002_allowed_in_bench_cli_and_serve() {
        let src = "let t = Instant::now();";
        assert_eq!(rules_of("crates/system/src/x.rs", src), vec!["D002"]);
        assert!(rules_of("crates/cli/src/lib.rs", src).is_empty());
        assert!(rules_of("crates/system/benches/b.rs", src).is_empty());
        assert!(rules_of("crates/bench/src/lib.rs", src).is_empty());
        // The daemon's deadlines are wall-clock by nature.
        assert!(rules_of("crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn serve_is_sim_facing_but_must_not_panic() {
        // D001/C002 treat serve like any sim-facing crate…
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_of("crates/serve/src/cache.rs", src), vec!["D001"]);
        let acc = "fn f(&mut self) { self.total_bytes += n; }";
        assert_eq!(rules_of("crates/serve/src/stats.rs", acc), vec!["C002"]);
        // …and P001 still applies: a panic in the daemon kills every
        // in-flight request, unlike the one-shot CLI frontends.
        let panicky = "fn f() { a.unwrap(); }";
        assert_eq!(
            rules_of("crates/serve/src/server.rs", panicky),
            vec!["P001"]
        );
        assert!(rules_of("crates/cli/src/lib.rs", panicky).is_empty());
    }

    #[test]
    fn d003_fires_everywhere() {
        let src = "let r = thread_rng();";
        assert_eq!(rules_of("crates/cli/src/lib.rs", src), vec!["D003"]);
    }

    #[test]
    fn c001_catches_narrowing_casts_on_suspicious_names() {
        let src = "let a = total_cycles as u32; let b = vpn.0 as u16; let c = len as u32;";
        let fl = lint_source("crates/sim/src/x.rs", src);
        let rules: Vec<_> = fl.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["C001", "C001"], "{:?}", fl.diagnostics);
    }

    #[test]
    fn c001_allows_widening() {
        let src = "let a = cycle as u64; let b = deadline as i64;";
        assert!(rules_of("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn c002_catches_counter_accumulation_in_sim_facing_crates() {
        let src = "fn f(&mut self) { self.total_msgs += 1; self.busy_cycles += ser; }";
        assert_eq!(
            rules_of("crates/sim/src/link.rs", src),
            vec!["C002", "C002"]
        );
        // Same source outside the sim-facing set is fine.
        assert!(rules_of("crates/analysis/src/lib.rs", src).is_empty());
    }

    #[test]
    fn c002_ignores_benign_names_plain_addition_and_tests() {
        // `offset`/`count` are not long-lived traffic counters, and a
        // smelly name on the RHS of a plain `+` must not fire.
        let src = "fn f(&mut self) { self.offset += bytes; let t = now + busy_cycles; }";
        assert!(rules_of("crates/sim/src/x.rs", src).is_empty());
        let test_src = "#[test]\nfn t() { total_bytes += 1; }";
        assert!(rules_of("crates/sim/src/x.rs", test_src).is_empty());
    }

    #[test]
    fn c002_saturating_add_and_waiver_are_clean() {
        let src = "fn f(&mut self) { self.total_bytes = self.total_bytes.saturating_add(n); }";
        assert!(rules_of("crates/sim/src/link.rs", src).is_empty());
        let waived = "// barre:allow(C002) epoch-scoped counter, reset every 65536 events\n\
                      total_bytes += n;\n";
        let fl = lint_source("crates/sim/src/x.rs", waived);
        assert!(fl.diagnostics.is_empty(), "{:?}", fl.diagnostics);
        assert_eq!(fl.waived, 1);
    }

    #[test]
    fn c002_applies_to_the_trace_crate() {
        let src = "fn f(&mut self) { self.dropped_bytes += 1; }";
        assert_eq!(rules_of("crates/trace/src/lib.rs", src), vec!["C002"]);
    }

    #[test]
    fn a001_fires_on_undocumented_pub_in_api_crates_only() {
        let src = "pub fn f() {}\n";
        assert_eq!(rules_of("crates/core/src/x.rs", src), vec!["A001"]);
        assert_eq!(rules_of("crates/system/src/x.rs", src), vec!["A001"]);
        assert!(rules_of("crates/sim/src/x.rs", src).is_empty());
        assert!(rules_of("crates/core/tests/it.rs", src).is_empty());
    }

    #[test]
    fn a001_doc_above_attributes_counts() {
        let src = "/// Documented.\n#[derive(Debug)]\n#[repr(C)]\npub struct S { pub x: u64 }\n";
        assert!(rules_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn a001_doc_must_attach_to_the_item() {
        let src = "/// Docs for a.\npub fn a() {}\npub fn b() {}\n";
        let fl = lint_source("crates/core/src/x.rs", src);
        assert_eq!(fl.diagnostics.len(), 1, "{:?}", fl.diagnostics);
        assert_eq!(fl.diagnostics[0].line, 3);
        assert!(fl.diagnostics[0].message.contains("`pub fn b`"));
    }

    #[test]
    fn a001_skips_restricted_visibility_reexports_and_tests() {
        let src = "pub(crate) fn f() {}\npub use other::Thing;\n\
                   #[cfg(test)]\nmod tests { pub fn t() {} }\n";
        assert!(rules_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn a001_inner_module_docs_do_not_document_the_first_item() {
        let src = "//! Module docs.\n\npub fn first() {}\n";
        assert_eq!(rules_of("crates/core/src/x.rs", src), vec!["A001"]);
    }

    #[test]
    fn a001_understands_qualifiers_and_const_items() {
        let src = "/// ok\npub const fn f() {}\npub unsafe extern \"C\" fn g() {}\n\
                   pub const MAX: u64 = 1;\npub static mut FLAG: bool = false;\n";
        let fl = lint_source("crates/core/src/x.rs", src);
        let msgs: Vec<_> = fl.diagnostics.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(msgs.len(), 3, "{msgs:?}");
        assert!(msgs[0].contains("`pub fn g`"));
        assert!(msgs[1].contains("`pub const MAX`"));
        assert!(msgs[2].contains("`pub static FLAG`"));
    }

    #[test]
    fn a001_waiver_with_reason_silences() {
        let src = "// barre:allow(A001) internal plumbing, documented at the module level\n\
                   pub fn f() {}\n";
        let fl = lint_source("crates/system/src/x.rs", src);
        assert!(fl.diagnostics.is_empty(), "{:?}", fl.diagnostics);
        assert_eq!(fl.waived, 1);
    }

    #[test]
    fn tokens_inside_literals_never_fire() {
        let src = r##"
            // HashMap unwrap panic! Instant::now()
            /* thread_rng SystemTime */
            fn f() -> &'static str {
                let a = "HashMap::new().unwrap()";
                let b = r#"panic!("Instant")"#;
                a
            }
        "##;
        assert!(rules_of("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn diagnostics_carry_line_numbers() {
        let src = "\n\nuse std::collections::HashSet;\n";
        let fl = lint_source("crates/mem/src/x.rs", src);
        assert_eq!(fl.diagnostics.len(), 1);
        assert_eq!(fl.diagnostics[0].line, 3);
        assert_eq!(fl.diagnostics[0].rule, "D001");
    }

    #[test]
    fn d005_fires_on_atomics_in_sim_state_only() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let rules = rules_of("crates/sim/src/x.rs", src);
        // AtomicU64 twice (use + param) and Relaxed once.
        assert_eq!(rules, vec!["D005"; 3], "{rules:?}");
        // serve's monitoring counters are not sim state…
        assert!(rules_of("crates/serve/src/stats.rs", src).is_empty());
        // …and neither are non-sim crates or tests.
        assert!(rules_of("crates/analysis/src/x.rs", src).is_empty());
        assert!(rules_of("crates/sim/tests/it.rs", src).is_empty());
    }

    #[test]
    fn d005_waiver_with_reason_silences() {
        let src = "// barre:allow(D005) read-only after init, never raced\n\
                   use std::sync::atomic::AtomicBool;\n";
        let fl = lint_source("crates/tlb/src/x.rs", src);
        assert!(fl.diagnostics.is_empty(), "{:?}", fl.diagnostics);
        assert_eq!(fl.waived, 1);
    }

    #[test]
    fn o001_fires_on_bare_eprintln_in_serve_only() {
        let src = "fn f() { eprintln!(\"boom\"); }";
        assert_eq!(rules_of("crates/serve/src/server.rs", src), vec!["O001"]);
        assert_eq!(
            rules_of("crates/serve/src/jobq/worker.rs", src),
            vec!["O001"]
        );
        // Frontends, other crates, and test code keep their stderr.
        assert!(rules_of("crates/cli/src/lib.rs", src).is_empty());
        assert!(rules_of("crates/obs/src/log.rs", src).is_empty());
        assert!(rules_of("crates/serve/tests/serve.rs", src).is_empty());
        let in_test = "#[cfg(test)]\nmod tests { fn t() { eprintln!(\"x\"); } }";
        assert!(rules_of("crates/serve/src/server.rs", in_test).is_empty());
        // println! (the `listening on` handshake) and olog macro-free
        // calls are untouched.
        let ok =
            "fn f() { println!(\"listening on {}\", a); olog::info(\"c\", \"e\", &[], \"m\"); }";
        assert!(rules_of("crates/serve/src/server.rs", ok).is_empty());
    }

    #[test]
    fn o001_waiver_with_reason_silences() {
        let src = "// barre:allow(O001) pre-logger bootstrap failure path\n\
                   fn f() { eprintln!(\"x\"); }\n";
        let fl = lint_source("crates/serve/src/server.rs", src);
        assert!(fl.diagnostics.is_empty(), "{:?}", fl.diagnostics);
        assert_eq!(fl.waived, 1);
    }

    #[test]
    fn obs_crate_may_read_the_wall_clock() {
        let src = "let t = SystemTime::now();";
        assert!(rules_of("crates/obs/src/log.rs", src).is_empty());
        assert_eq!(rules_of("crates/system/src/x.rs", src), vec!["D002"]);
    }

    #[test]
    fn scope_of_sim_state_and_api_entry_sets() {
        assert!(scope_of("crates/sim/src/x.rs").sim_state);
        assert!(scope_of("crates/system/src/x.rs").sim_state);
        assert!(!scope_of("crates/serve/src/x.rs").sim_state);
        assert!(!scope_of("crates/sim/benches/b.rs").sim_state);
        assert!(!scope_of("crates/sim/tests/t.rs").sim_state);
        assert!(scope_of("crates/core/src/x.rs").api_entry);
        assert!(scope_of("crates/serve/src/x.rs").api_entry);
        assert!(!scope_of("crates/sim/src/x.rs").api_entry);
        assert!(!scope_of("crates/system/tests/t.rs").api_entry);
    }
}
